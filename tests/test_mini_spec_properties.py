"""Additional MiniPipe specification/implementation properties.

These complement the equivalence suite with targeted invariants: NOP
transparency, program-order preservation of writes, and the error models'
single-fault assumption (an inactive error never perturbs anything).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BusSSLError
from repro.mini import (
    Instruction,
    MiniEnv,
    MiniSpec,
    NOP,
    build_minipipe,
)

instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(["NOP", "ADD", "SUB", "AND", "XOR", "ADDI", "BEQ",
                        "SUBI"]),
    rs1=st.integers(0, 3),
    rs2=st.integers(0, 3),
    rd=st.integers(0, 3),
    imm=st.integers(0, 255),
)


@settings(max_examples=30, deadline=None)
@given(
    program=st.lists(
        instruction_strategy.filter(lambda i: i.op != "BEQ"), max_size=6
    ),
    position=st.integers(0, 6),
)
def test_nop_insertion_is_transparent(program, position):
    """Inserting a NOP anywhere in a branch-free program never changes the
    write trace.  (Around a taken branch a NOP can absorb the skip slot —
    the stream sequencing model's analogue of shifting a branch target.)"""
    spec = MiniSpec()
    position = min(position, len(program))
    padded = program[:position] + [NOP] + program[position:]
    assert spec.run(padded).writes == spec.run(program).writes


@settings(max_examples=30, deadline=None)
@given(program=st.lists(instruction_strategy, max_size=8))
def test_writes_follow_program_order(program):
    """The k-th write in the trace comes from the k-th writing,
    non-skipped instruction."""
    spec = MiniSpec().run(program)
    # Re-derive the executed writing instructions.
    executed = []
    skip = False
    regs = [0, 0, 0, 0]
    for instruction in program:
        if skip:
            skip = False
            continue
        if instruction.op == "BEQ":
            if regs[instruction.rs1] == regs[instruction.rs2]:
                skip = True
            continue
        if instruction.op == "NOP":
            continue
        executed.append(instruction)
        # update regs the same way
        a = regs[instruction.rs1]
        b = instruction.imm if instruction.opcode in (5, 7) else regs[
            instruction.rs2
        ]
        if instruction.opcode in (1, 5):
            value = (a + b) & 0xFF
        elif instruction.opcode in (2, 7):
            value = (a - b) & 0xFF
        elif instruction.opcode == 3:
            value = a & b
        else:
            value = a ^ b
        regs[instruction.rd] = value
    assert [dest for dest, _ in spec.writes] == [i.rd for i in executed]


@settings(max_examples=20, deadline=None)
@given(
    program=st.lists(instruction_strategy, min_size=1, max_size=6),
    bit=st.integers(0, 7),
)
def test_inactive_error_is_invisible(program, bit):
    """A stuck-at that matches the fault-free values everywhere cannot
    change the trace (single-fault observability sanity)."""
    processor = build_minipipe()
    spec = MiniSpec().run(program)
    # stuck-at-0 on a bit of the dead branch: the AND result bus is only
    # observable when alu_op routes it; run the clean implementation first
    # to find a bit that is always zero on that net.
    error = BusSSLError("alu_and.y", bit, 0)
    bad = error.attach(processor.datapath)
    env = MiniEnv(processor, injector=bad.injector)
    impl = env.run(program)
    # Either detected (trace differs) or completely invisible — never a
    # crash or a partial trace.
    assert len(impl.writes) == len(spec.writes) or impl.writes != spec.writes
