"""Smoke tests: the runnable examples must stay runnable.

The fast examples are executed end-to-end (their asserts are real checks);
the campaign-sized ones are exercised elsewhere (benchmarks).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "DETECTED" in out
    assert "Generated instruction sequence" in out


def test_error_simulation_runs(capsys):
    module = load_example("error_simulation")
    module.main()
    out = capsys.readouterr().out
    assert "DETECTED" in out
    assert "spec writes" in out


def test_pipeline_visualization_runs(capsys):
    module = load_example("pipeline_visualization")
    module.main()
    out = capsys.readouterr().out
    assert "predict-not-taken DLX" in out
    assert "1-bit branch predictor" in out
    assert "cycle" in out


@pytest.mark.slow
def test_custom_processor_runs(capsys):
    module = load_example("custom_processor")
    module.main()
    out = capsys.readouterr().out
    assert "Detected" in out
