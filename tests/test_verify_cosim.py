"""Tests for the processor co-simulator and trace comparison."""

import pytest

from repro.errors import BusSSLError
from repro.mini import Instruction, build_minipipe, to_cpi
from repro.verify import CosimError, ProcessorSimulator, traces_diverge
from repro.verify.cosim import GoldenTraceCache, stimulus_key


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def test_step_resolves_all_ctrl(processor):
    sim = ProcessorSimulator(processor)
    trace = sim.step(to_cpi(Instruction("ADDI", rs1=0, rd=1, imm=5)),
                     {"rf_a": 0, "rf_b": 0, "imm": 5})
    for name in processor.controller.ctrl_signals:
        assert trace.controller[name] is not None


def test_status_feedback_fixpoint(processor):
    """The eq status computed by the datapath must reach the controller
    within the same cycle (squash on taken branch)."""
    sim = ProcessorSimulator(processor)
    # Put a BEQ into EX with equal operands.
    sim.step(to_cpi(Instruction("BEQ", rs1=0, rs2=0)),
             {"rf_a": 7, "rf_b": 7, "imm": 0})
    trace = sim.step(to_cpi(Instruction("ADDI", rs1=0, rd=1, imm=9)),
                     {"rf_a": 7, "rf_b": 7, "imm": 9})
    assert trace.datapath["eq"] == 1
    assert trace.controller["squash"] == 1
    assert trace.controller["squash_ctl"] == 1


def test_resolve_partial_leaves_unknowns(processor):
    sim = ProcessorSimulator(processor)
    externals = {
        net.name: None
        for net in processor.datapath.nets.values()
        if net.is_external_input
    }
    ctl, dp = sim.resolve({}, externals)
    # State-derived signals resolve, input-derived values stay unknown.
    assert ctl["wb_en"] is not None
    assert dp["ex_a.y"] is not None  # register output (state)
    assert dp["opa_mux.y"] is None or isinstance(dp["opa_mux.y"], int)


def test_run_length_mismatch_rejected(processor):
    sim = ProcessorSimulator(processor)
    with pytest.raises(ValueError):
        sim.run([{}], [])


def test_set_stimulus_state_validates(processor):
    sim = ProcessorSimulator(processor)
    with pytest.raises(ValueError):
        sim.set_stimulus_state({"nonexistent": 1})
    sim.set_stimulus_state({"ex_a": 42})
    assert sim.dp_sim.state["ex_a"] == 42


def test_reset(processor):
    sim = ProcessorSimulator(processor)
    sim.step(to_cpi(Instruction("ADDI", rs1=0, rd=1, imm=5)),
             {"rf_a": 1, "rf_b": 2, "imm": 5})
    sim.reset()
    assert sim.dp_sim.state["ex_a"] == 0
    assert sim.ctl_state == processor.controller.reset_state()


def test_traces_diverge_detects_difference(processor):
    program = [Instruction("ADDI", rs1=0, rd=1, imm=4)]
    cpi = [to_cpi(i) for i in program] + [to_cpi(Instruction("NOP"))] * 3
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": i.imm} for i in program]
    dpi += [{"rf_a": 0, "rf_b": 0, "imm": 0}] * 3

    good = ProcessorSimulator(processor)
    error = BusSSLError("alu_add.y", 0, 1)
    bad_dp = error.attach(processor.datapath)
    bad = ProcessorSimulator(processor, injector=bad_dp.injector)
    g = good.run(cpi, dpi)
    b = bad.run(cpi, dpi)
    divergence = traces_diverge(processor, g, b)
    assert divergence is not None
    cycle, net = divergence
    assert net == "out"
    assert cycle == 2  # ADDI reaches write-back two cycles later


def _stimulus(imm):
    program = [Instruction("ADDI", rs1=0, rd=1, imm=imm)]
    cpi = [to_cpi(i) for i in program] + [to_cpi(Instruction("NOP"))] * 3
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": i.imm} for i in program]
    dpi += [{"rf_a": 0, "rf_b": 0, "imm": 0}] * 3
    return cpi, dpi


def test_stimulus_key_is_order_insensitive():
    cpi, dpi = _stimulus(4)
    key = stimulus_key({"ex_a": 1, "ex_b": 2}, cpi, dpi)
    assert key == stimulus_key({"ex_b": 2, "ex_a": 1}, cpi, dpi)
    assert key != stimulus_key({"ex_a": 1, "ex_b": 3}, cpi, dpi)
    assert key != stimulus_key({"ex_a": 1, "ex_b": 2}, cpi, dpi[:-1])


def test_golden_cache_simulates_once_per_stimulus(processor):
    cpi, dpi = _stimulus(4)
    cache = GoldenTraceCache()
    first = cache.trace(processor, {}, cpi, dpi)
    again = cache.trace(processor, {}, cpi, dpi)
    assert again is first
    assert (cache.hits, cache.misses) == (1, 1)
    # The cached trace equals a fresh, uncached simulation.
    fresh = ProcessorSimulator(processor).run(cpi, dpi)
    assert [c.datapath for c in first.cycles] == \
        [c.datapath for c in fresh.cycles]
    # A different stimulus misses.
    cpi2, dpi2 = _stimulus(9)
    cache.trace(processor, {}, cpi2, dpi2)
    assert (cache.hits, cache.misses) == (1, 2)


def test_golden_cache_lru_eviction(processor):
    cache = GoldenTraceCache(max_entries=2)
    stimuli = [_stimulus(imm) for imm in (1, 2, 3)]
    for cpi, dpi in stimuli:
        cache.trace(processor, {}, cpi, dpi)
    assert len(cache._traces) == 2
    # Stimulus 1 was evicted (least recently used); 2 and 3 still hit.
    cache.trace(processor, {}, *stimuli[1])
    cache.trace(processor, {}, *stimuli[2])
    assert cache.hits == 2
    cache.trace(processor, {}, *stimuli[0])
    assert cache.misses == 4


def test_traces_identical_when_error_inactive(processor):
    # Stuck-at-0 on a bit that is already 0 everywhere: no divergence.
    program = [Instruction("ADDI", rs1=0, rd=1, imm=0)]
    cpi = [to_cpi(i) for i in program] + [to_cpi(Instruction("NOP"))] * 3
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": 0}] * 4
    good = ProcessorSimulator(processor)
    error = BusSSLError("alu_add.y", 5, 0)
    bad_dp = error.attach(processor.datapath)
    bad = ProcessorSimulator(processor, injector=bad_dp.injector)
    g = good.run(cpi, dpi)
    b = bad.run(cpi, dpi)
    assert traces_diverge(processor, g, b) is None
