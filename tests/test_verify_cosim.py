"""Tests for the processor co-simulator and trace comparison."""

import pytest

from repro.errors import BusSSLError
from repro.mini import Instruction, build_minipipe, to_cpi
from repro.verify import ProcessorSimulator, traces_diverge
from repro.verify.cosim import GoldenTraceCache, stimulus_key


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def test_step_resolves_all_ctrl(processor):
    sim = ProcessorSimulator(processor)
    trace = sim.step(to_cpi(Instruction("ADDI", rs1=0, rd=1, imm=5)),
                     {"rf_a": 0, "rf_b": 0, "imm": 5})
    for name in processor.controller.ctrl_signals:
        assert trace.controller[name] is not None


def test_status_feedback_fixpoint(processor):
    """The eq status computed by the datapath must reach the controller
    within the same cycle (squash on taken branch)."""
    sim = ProcessorSimulator(processor)
    # Put a BEQ into EX with equal operands.
    sim.step(to_cpi(Instruction("BEQ", rs1=0, rs2=0)),
             {"rf_a": 7, "rf_b": 7, "imm": 0})
    trace = sim.step(to_cpi(Instruction("ADDI", rs1=0, rd=1, imm=9)),
                     {"rf_a": 7, "rf_b": 7, "imm": 9})
    assert trace.datapath["eq"] == 1
    assert trace.controller["squash"] == 1
    assert trace.controller["squash_ctl"] == 1


def test_resolve_partial_leaves_unknowns(processor):
    sim = ProcessorSimulator(processor)
    externals = {
        net.name: None
        for net in processor.datapath.nets.values()
        if net.is_external_input
    }
    ctl, dp = sim.resolve({}, externals)
    # State-derived signals resolve, input-derived values stay unknown.
    assert ctl["wb_en"] is not None
    assert dp["ex_a.y"] is not None  # register output (state)
    assert dp["opa_mux.y"] is None or isinstance(dp["opa_mux.y"], int)


def test_run_length_mismatch_rejected(processor):
    sim = ProcessorSimulator(processor)
    with pytest.raises(ValueError):
        sim.run([{}], [])


def test_set_stimulus_state_validates(processor):
    sim = ProcessorSimulator(processor)
    with pytest.raises(ValueError):
        sim.set_stimulus_state({"nonexistent": 1})
    sim.set_stimulus_state({"ex_a": 42})
    assert sim.dp_sim.state["ex_a"] == 42


def test_reset(processor):
    sim = ProcessorSimulator(processor)
    sim.step(to_cpi(Instruction("ADDI", rs1=0, rd=1, imm=5)),
             {"rf_a": 1, "rf_b": 2, "imm": 5})
    sim.reset()
    assert sim.dp_sim.state["ex_a"] == 0
    assert sim.ctl_state == processor.controller.reset_state()


def test_traces_diverge_detects_difference(processor):
    program = [Instruction("ADDI", rs1=0, rd=1, imm=4)]
    cpi = [to_cpi(i) for i in program] + [to_cpi(Instruction("NOP"))] * 3
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": i.imm} for i in program]
    dpi += [{"rf_a": 0, "rf_b": 0, "imm": 0}] * 3

    good = ProcessorSimulator(processor)
    error = BusSSLError("alu_add.y", 0, 1)
    bad_dp = error.attach(processor.datapath)
    bad = ProcessorSimulator(processor, injector=bad_dp.injector)
    g = good.run(cpi, dpi)
    b = bad.run(cpi, dpi)
    divergence = traces_diverge(processor, g, b)
    assert divergence is not None
    cycle, net = divergence
    assert net == "out"
    assert cycle == 2  # ADDI reaches write-back two cycles later


def _stimulus(imm):
    program = [Instruction("ADDI", rs1=0, rd=1, imm=imm)]
    cpi = [to_cpi(i) for i in program] + [to_cpi(Instruction("NOP"))] * 3
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": i.imm} for i in program]
    dpi += [{"rf_a": 0, "rf_b": 0, "imm": 0}] * 3
    return cpi, dpi


def test_stimulus_key_is_order_insensitive():
    cpi, dpi = _stimulus(4)
    key = stimulus_key({"ex_a": 1, "ex_b": 2}, cpi, dpi)
    assert key == stimulus_key({"ex_b": 2, "ex_a": 1}, cpi, dpi)
    assert key != stimulus_key({"ex_a": 1, "ex_b": 3}, cpi, dpi)
    assert key != stimulus_key({"ex_a": 1, "ex_b": 2}, cpi, dpi[:-1])


def test_golden_cache_simulates_once_per_stimulus(processor):
    cpi, dpi = _stimulus(4)
    cache = GoldenTraceCache()
    first = cache.trace(processor, {}, cpi, dpi)
    again = cache.trace(processor, {}, cpi, dpi)
    assert again is first
    assert (cache.hits, cache.misses) == (1, 1)
    # The cached trace equals a fresh, uncached simulation.
    fresh = ProcessorSimulator(processor).run(cpi, dpi)
    assert [c.datapath for c in first.cycles] == \
        [c.datapath for c in fresh.cycles]
    # A different stimulus misses.
    cpi2, dpi2 = _stimulus(9)
    cache.trace(processor, {}, cpi2, dpi2)
    assert (cache.hits, cache.misses) == (1, 2)


def test_golden_cache_lru_eviction(processor):
    cache = GoldenTraceCache(max_entries=2)
    stimuli = [_stimulus(imm) for imm in (1, 2, 3)]
    for cpi, dpi in stimuli:
        cache.trace(processor, {}, cpi, dpi)
    assert len(cache._traces) == 2
    # Stimulus 1 was evicted (least recently used); 2 and 3 still hit.
    cache.trace(processor, {}, *stimuli[1])
    cache.trace(processor, {}, *stimuli[2])
    assert cache.hits == 2
    cache.trace(processor, {}, *stimuli[0])
    assert cache.misses == 4


def _single_dpo_trace(values):
    """A Trace whose only DPO net ("out") takes the given per-cycle values."""
    from repro.verify.cosim import CycleTrace, Trace

    return Trace(cycles=[
        CycleTrace(datapath={"out": v}, controller={}) for v in values
    ])


def test_traces_diverge_ignores_unknown_values(processor):
    good = _single_dpo_trace([1, None, 3])
    bad = _single_dpo_trace([1, 9, None])
    # None (three-valued X) on either side is compatible with anything.
    assert traces_diverge(processor, good, bad) is None


def test_traces_diverge_truncates_to_shorter_trace(processor):
    good = _single_dpo_trace([1, 2, 3])
    bad = _single_dpo_trace([1, 2])
    assert traces_diverge(processor, good, bad) is None
    bad = _single_dpo_trace([1, 9])
    assert traces_diverge(processor, good, bad) == (1, "out")


def test_traces_diverge_on_final_cycle(processor):
    good = _single_dpo_trace([1, 2, 3])
    bad = _single_dpo_trace([1, 2, 4])
    assert traces_diverge(processor, good, bad) == (2, "out")


def _build_variant_minipipe():
    """A MiniPipe whose alu mux swaps add and sub: behaviourally different
    from the stock machine but accepting exactly the same stimulus."""
    from repro.datapath import DatapathBuilder
    from repro.mini.isa import WIDTH
    from repro.mini.machine import build_minipipe_controller
    from repro.model.processor import Processor

    b = DatapathBuilder("minipipe_variant_dp")
    b.set_stage(0)
    rf_a = b.input("rf_a", WIDTH)
    rf_b = b.input("rf_b", WIDTH)
    imm = b.input("imm", WIDTH)
    squash_ctl = b.ctrl("squash_ctl", 1)
    ex_a = b.register("ex_a", rf_a, clear=squash_ctl)
    ex_b = b.register("ex_b", rf_b, clear=squash_ctl)
    ex_imm = b.register("ex_imm", imm, clear=squash_ctl)
    b.set_stage(1)
    fwd_a = b.ctrl("fwd_a_ctl", 1)
    fwd_b = b.ctrl("fwd_b_ctl", 1)
    alusrc = b.ctrl("alusrc", 1)
    alu_op = b.ctrl("alu_op", 2)
    b.set_stage(2)
    wb_result = b.placeholder_register("wb_res", WIDTH)
    b.set_stage(1)
    opa = b.mux("opa_mux", fwd_a, ex_a, wb_result)
    opb_fwd = b.mux("opb_fwd_mux", fwd_b, ex_b, wb_result)
    opb = b.mux("opb_mux", alusrc, opb_fwd, ex_imm)
    add_r = b.add("alu_add", opa, opb)
    sub_r = b.sub("alu_sub", opa, opb)
    and_r = b.and_("alu_and", opa, opb)
    xor_r = b.xor("alu_xor", opa, opb)
    # The variant: add and sub trade mux ports.
    alu_out = b.mux("alu_mux", alu_op, sub_r, add_r, and_r, xor_r)
    b.status("eq", b.eq("cmp", opa, opb))
    b.set_stage(2)
    b.connect_register("wb_res", alu_out)
    wb_en = b.ctrl("wb_en", 1)
    zero = b.const("zero", WIDTH, 0)
    out = b.mux("out_mux", wb_en, zero, wb_result)
    b.output("out", out)
    variant = Processor(
        name="minipipe_variant",
        datapath=b.build(),
        controller=build_minipipe_controller(),
        n_stages=3,
        stimulus_registers=frozenset(),
        cpi_defaults={"op": 0, "rs1": 0, "rs2": 0, "rd": 0},
        cpi_dpi_bindings={},
    )
    variant.validate()
    return variant


def test_golden_cache_keyed_by_processor_identity(processor):
    """Two behaviourally-different machines sharing one cache must never
    receive each other's traces (regression: the key used to be the
    stimulus alone)."""
    variant = _build_variant_minipipe()
    cpi, dpi = _stimulus(4)
    cache = GoldenTraceCache()
    stock_trace = cache.trace(processor, {}, cpi, dpi)
    variant_trace = cache.trace(variant, {}, cpi, dpi)
    # Identical stimulus, but two misses: no cross-machine hit.
    assert (cache.hits, cache.misses) == (0, 2)
    # ADDI r1, r0, #4 retires at cycle 2: 0+4 on the stock machine, 0-4
    # (mod 256) on the swapped-alu variant.
    assert stock_trace.cycles[2].datapath["out"] == 4
    assert variant_trace.cycles[2].datapath["out"] == 252
    # Each machine still hits its own entry.
    cache.trace(processor, {}, cpi, dpi)
    cache.trace(variant, {}, cpi, dpi)
    assert (cache.hits, cache.misses) == (2, 2)


def test_two_tgs_sharing_one_golden_cache(processor):
    """A golden cache shared between two TGs for different machines gives
    the same verdicts as private caches."""
    from repro.core.tg import TestGenerator

    variant = _build_variant_minipipe()
    error = BusSSLError("alu_add.y", 0, 1)

    tg_stock = TestGenerator(processor)
    tg_shared = TestGenerator(variant, _golden=tg_stock._golden)
    tg_fresh = TestGenerator(variant)
    result_stock = tg_stock.generate(error)
    shared = tg_shared.generate(error)
    fresh = tg_fresh.generate(error)
    assert result_stock.status.value == "detected"
    assert shared.status == fresh.status
    assert shared.test == fresh.test


def test_traces_identical_when_error_inactive(processor):
    # Stuck-at-0 on a bit that is already 0 everywhere: no divergence.
    program = [Instruction("ADDI", rs1=0, rd=1, imm=0)]
    cpi = [to_cpi(i) for i in program] + [to_cpi(Instruction("NOP"))] * 3
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": 0}] * 4
    good = ProcessorSimulator(processor)
    error = BusSSLError("alu_add.y", 5, 0)
    bad_dp = error.attach(processor.datapath)
    bad = ProcessorSimulator(processor, injector=bad_dp.injector)
    g = good.run(cpi, dpi)
    b = bad.run(cpi, dpi)
    assert traces_diverge(processor, g, b) is None
