"""DLX: specification/implementation equivalence and hazard behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlx import (
    DlxEnv,
    DlxSpec,
    Instruction,
    MNEMONICS,
    build_dlx,
)
from repro.utils.bits import to_unsigned


@pytest.fixture(scope="module")
def dlx():
    return build_dlx()


def run_both(dlx, program, init_regs=None, init_memory=None):
    spec = DlxSpec().run(program, init_regs, init_memory)
    impl = DlxEnv(dlx).run(program, init_regs, init_memory)
    return spec, impl


def check(dlx, program, init_regs=None, init_memory=None):
    spec, impl = run_both(dlx, program, init_regs, init_memory)
    assert impl.events == spec.events, (
        f"impl {impl.events} != spec {spec.events} for "
        f"{[str(i) for i in program]}"
    )
    return spec


def test_model_statistics(dlx):
    stats = dlx.statistics()
    assert stats["pipeline_stages"] == 5
    # The pipeframe organization shrinks the justified decision variables,
    # the paper's 96 -> 43 story on our model's scale.
    assert stats["pipeframe_justify_bits"] < stats["timeframe_justify_bits"]
    assert stats["controller_state_bits"] > 40


def test_empty_program(dlx):
    spec = check(dlx, [])
    assert spec.events == []


def test_alu_register_ops(dlx):
    init = [0] * 32
    init[1], init[2] = 0xF0F0F0F0, 0x0F0F00FF
    for op in ("ADD", "ADDU", "SUB", "SUBU", "AND", "OR", "XOR"):
        check(dlx, [Instruction(op, rs=1, rt=2, rd=3)], init)


def test_alu_immediate_ops(dlx):
    init = [0] * 32
    init[1] = 1000
    for op in ("ADDI", "ADDUI", "SUBI", "ANDI", "ORI", "XORI"):
        check(dlx, [Instruction(op, rs=1, rt=2, imm=0x8001)], init)


def test_setcc_ops(dlx):
    init = [0] * 32
    init[1], init[2] = to_unsigned(-5, 32), 3
    for op in ("SEQ", "SNE", "SLT", "SGT", "SLE", "SGE"):
        check(dlx, [Instruction(op, rs=1, rt=2, rd=3)], init)
    for op in ("SEQI", "SNEI", "SLTI", "SGTI", "SLEI", "SGEI"):
        check(dlx, [Instruction(op, rs=1, rt=3, imm=0xFFFB)], init)


def test_shift_ops(dlx):
    init = [0] * 32
    init[1], init[2] = 0x80000001, 4
    for op in ("SLL", "SRL", "SRA"):
        check(dlx, [Instruction(op, rs=1, rt=2, rd=3)], init)
    for op in ("SLLI", "SRLI", "SRAI"):
        check(dlx, [Instruction(op, rs=1, rt=3, imm=7)], init)


def test_store_then_load_word(dlx):
    init = [0] * 32
    init[1], init[2] = 0x100, 0xDEADBEEF
    program = [
        Instruction("SW", rs=1, rt=2, imm=4),
        Instruction("LW", rs=1, rt=3, imm=4),
    ]
    spec = check(dlx, program, init)
    assert ("mem", 0x104, 2, 0xDEADBEEF) in spec.events
    assert ("reg", 3, 0xDEADBEEF) in spec.events


def test_byte_and_half_accesses(dlx):
    init = [0] * 32
    init[1], init[2] = 0x200, 0xFFFFABCD
    program = [
        Instruction("SW", rs=1, rt=2, imm=0),
        Instruction("LB", rs=1, rt=3, imm=1),   # byte 1: 0xAB -> sext
        Instruction("LBU", rs=1, rt=4, imm=1),
        Instruction("LH", rs=1, rt=5, imm=2),   # half 1: 0xFFFF -> sext
        Instruction("LHU", rs=1, rt=6, imm=2),
        Instruction("SB", rs=1, rt=2, imm=5),
        Instruction("SH", rs=1, rt=2, imm=8),
    ]
    check(dlx, program, init)


def test_load_use_stall(dlx):
    init = [0] * 32
    init[1] = 0x300
    program = [
        Instruction("SW", rs=1, rt=1, imm=0),   # mem[0x300] = 0x300
        Instruction("LW", rs=1, rt=2, imm=0),   # r2 = 0x300
        Instruction("ADDI", rs=2, rt=3, imm=1),  # load-use: needs stall
    ]
    spec = check(dlx, program, init)
    assert ("reg", 3, 0x301) in spec.events


def test_forwarding_distance_one_and_two(dlx):
    program = [
        Instruction("ADDI", rs=0, rt=1, imm=5),
        Instruction("ADDI", rs=1, rt=2, imm=1),  # distance 1
        Instruction("ADD", rs=1, rt=2, rd=3),    # distance 2 and 1
        Instruction("ADD", rs=1, rt=3, rd=4),    # distance 3 and 1
    ]
    spec = check(dlx, program)
    assert spec.events == [
        ("reg", 1, 5), ("reg", 2, 6), ("reg", 3, 11), ("reg", 4, 16),
    ]


def test_store_data_forwarding(dlx):
    init = [0] * 32
    init[1] = 0x400
    program = [
        Instruction("ADDI", rs=0, rt=2, imm=0x77),
        Instruction("SW", rs=1, rt=2, imm=0),  # store data needs forwarding
    ]
    spec = check(dlx, program, init)
    assert ("mem", 0x400, 2, 0x77) in spec.events


def test_branch_taken_squashes_two(dlx):
    program = [
        Instruction("BEQZ", rs=0),               # r0 == 0: taken
        Instruction("ADDI", rs=0, rt=1, imm=1),  # squashed
        Instruction("ADDI", rs=0, rt=2, imm=2),  # squashed
        Instruction("ADDI", rs=0, rt=3, imm=3),  # executes
    ]
    spec = check(dlx, program)
    assert spec.events == [("reg", 3, 3)]


def test_branch_not_taken(dlx):
    init = [0] * 32
    init[1] = 9
    program = [
        Instruction("BEQZ", rs=1),               # 9 != 0: not taken
        Instruction("ADDI", rs=0, rt=2, imm=2),
    ]
    spec = check(dlx, program, init)
    assert spec.events == [("reg", 2, 2)]


def test_bnez(dlx):
    init = [0] * 32
    init[1] = 9
    program = [
        Instruction("BNEZ", rs=1),               # taken
        Instruction("ADDI", rs=0, rt=2, imm=2),  # squashed
        Instruction("ADDI", rs=0, rt=3, imm=3),  # squashed
        Instruction("ADDI", rs=0, rt=4, imm=4),
    ]
    spec = check(dlx, program, init)
    assert spec.events == [("reg", 4, 4)]


def test_branch_on_forwarded_value(dlx):
    program = [
        Instruction("ADDI", rs=0, rt=1, imm=0),  # r1 = 0
        Instruction("BEQZ", rs=1),               # needs bypass: taken
        Instruction("ADDI", rs=0, rt=2, imm=9),  # squashed
        Instruction("ADDI", rs=0, rt=3, imm=9),  # squashed
        Instruction("ADDI", rs=0, rt=4, imm=1),
    ]
    spec = check(dlx, program)
    assert spec.events == [("reg", 1, 0), ("reg", 4, 1)]


def test_jump_squashes_one(dlx):
    program = [
        Instruction("J"),
        Instruction("ADDI", rs=0, rt=1, imm=1),  # squashed
        Instruction("ADDI", rs=0, rt=2, imm=2),
    ]
    spec = check(dlx, program)
    assert spec.events == [("reg", 2, 2)]


def test_jal_writes_link(dlx):
    program = [
        Instruction("JAL", imm=0x1234),
        Instruction("ADDI", rs=0, rt=1, imm=1),  # squashed
        Instruction("ADDI", rs=0, rt=2, imm=2),
    ]
    spec = check(dlx, program)
    assert spec.events == [("reg", 31, 0x1234), ("reg", 2, 2)]


def test_jr_squashes_and_stalls(dlx):
    """JR after a load of its target register: stall then squash."""
    init = [0] * 32
    init[1] = 0x500
    program = [
        Instruction("SW", rs=1, rt=1, imm=0),
        Instruction("LW", rs=1, rt=2, imm=0),
        Instruction("JR", rs=2),                 # load-use on r2
        Instruction("ADDI", rs=0, rt=3, imm=3),  # squashed
        Instruction("ADDI", rs=0, rt=4, imm=4),
    ]
    spec = check(dlx, program, init)
    assert ("reg", 4, 4) in spec.events
    assert ("reg", 3, 3) not in spec.events


def test_writes_to_r0_are_dropped(dlx):
    program = [
        Instruction("ADDI", rs=0, rt=0, imm=55),  # the canonical NOP shape
        Instruction("ADD", rs=0, rt=0, rd=0),
    ]
    spec = check(dlx, program)
    assert spec.events == []


def test_consecutive_branches(dlx):
    init = [0] * 32
    program = [
        Instruction("BEQZ", rs=0),  # taken: squashes next two
        Instruction("BEQZ", rs=0),  # squashed
        Instruction("ADDI", rs=0, rt=1, imm=1),  # squashed
        Instruction("ADDI", rs=0, rt=2, imm=2),
    ]
    spec = check(dlx, program, init)
    assert spec.events == [("reg", 2, 2)]


OPS = list(MNEMONICS.values())

instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(OPS),
    rs=st.integers(0, 31),
    rt=st.integers(0, 31),
    rd=st.integers(0, 31),
    imm=st.integers(0, 0xFFFF),
)


@settings(max_examples=40, deadline=None)
@given(
    program=st.lists(instruction_strategy, max_size=10),
    seeds=st.lists(st.integers(0, 0xFFFFFFFF), min_size=8, max_size=8),
)
def test_spec_impl_equivalence_random(dlx, program, seeds):
    """The fundamental correctness property of the DLX implementation."""
    init = [0] * 32
    for i, seed in enumerate(seeds):
        init[1 + i] = seed
    spec = DlxSpec().run(program, init)
    impl = DlxEnv(dlx).run(program, init)
    assert impl.events == spec.events
