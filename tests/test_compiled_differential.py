"""Differential suite: compiled datapath kernels vs the interpretive oracle.

The compiled backend (:mod:`repro.datapath.compiled`) is an optimisation,
not a second semantics: every consumer switches backends through a
``compiled=`` / ``use_compiled_datapath=`` knob, and this suite pins the
two implementations together —

* hypothesis-driven whole-run equivalence on MiniPipe (fault-free and
  with injected errors), cycle-by-cycle over the full co-simulation
  trace;
* seeded whole-run equivalence on DLX and DLX+BP, again fault-free and
  with errors from every model class;
* the cone-forking batch fault simulator against serial co-simulation:
  convergence back to the golden trace, verdict inheritance, and
  artifact-identical conformance classification;
* the TestGenerator fork screen: identical results with the screen on
  and off, with the fork counters proving the screen actually ran.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tg import TestGenerator, TGStatus
from repro.errors.models import (
    enumerate_boe,
    enumerate_bus_ssl,
    enumerate_mse,
)
from repro.mini import Instruction, MiniEnv, MiniSpec, build_minipipe
from repro.mini.spec import batch_detects as mini_batch_detects
from repro.mini.spec import detects as mini_detects


@pytest.fixture(scope="module")
def minipipe():
    return build_minipipe()


def _mini_errors(processor):
    dp = processor.datapath
    return (enumerate_bus_ssl(dp, stages={1, 2})
            + enumerate_mse(dp) + enumerate_boe(dp))


def _mini_trace(processor, program, init_regs, error=None, compiled=True):
    if error is not None:
        bad = error.attach(processor.datapath)
        env = MiniEnv(processor, injector=bad.injector,
                      module_overrides=bad.module_overrides,
                      compiled=compiled)
    else:
        env = MiniEnv(processor, compiled=compiled)
    result = env.run(program, init_regs)
    return result, [(c.controller, c.datapath) for c in env.trace.cycles]


instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(["NOP", "ADD", "SUB", "AND", "XOR", "ADDI", "BEQ",
                        "SUBI"]),
    rs1=st.integers(0, 3),
    rs2=st.integers(0, 3),
    rd=st.integers(0, 3),
    imm=st.integers(0, 255),
)
program_strategy = st.lists(instruction_strategy, max_size=8)
regs_strategy = st.lists(st.integers(0, 255), min_size=4, max_size=4)


@settings(max_examples=25, deadline=None)
@given(program=program_strategy, regs=regs_strategy)
def test_mini_fault_free_equivalence(minipipe, program, regs):
    """Same writes, same registers, same cycle-by-cycle trace."""
    compiled, ct = _mini_trace(minipipe, program, regs, compiled=True)
    interp, it = _mini_trace(minipipe, program, regs, compiled=False)
    assert compiled.writes == interp.writes
    assert compiled.registers == interp.registers
    assert ct == it


@settings(max_examples=25, deadline=None)
@given(
    program=program_strategy,
    regs=regs_strategy,
    error_index=st.integers(min_value=0, max_value=10**6),
)
def test_mini_injected_equivalence(minipipe, program, regs, error_index):
    """Backend equivalence holds under every error-model hook: injectors
    (bus SSL) and module overrides (MSE / BOE) alike."""
    errors = _mini_errors(minipipe)
    error = errors[error_index % len(errors)]
    compiled, ct = _mini_trace(minipipe, program, regs, error, True)
    interp, it = _mini_trace(minipipe, program, regs, error, False)
    assert compiled.writes == interp.writes
    assert ct == it


@pytest.mark.parametrize("branch_prediction", [False, True])
def test_dlx_equivalence(branch_prediction):
    from repro.baselines.random_gen import (
        RandomDlxGenerator,
        RandomProgramConfig,
    )
    from repro.dlx import build_dlx
    from repro.dlx.env import DlxEnv

    dlx = build_dlx(branch_prediction=branch_prediction)
    errors = (enumerate_bus_ssl(dlx.datapath, max_bits_per_net=1)
              + enumerate_mse(dlx.datapath) + enumerate_boe(dlx.datapath))
    for seed in (1, 2):
        generator = RandomDlxGenerator(
            RandomProgramConfig(length=14, seed=seed)
        )
        program = generator.program(0)
        regs = generator.initial_registers(0)
        for error in [None] + errors[seed::17][:4]:
            runs = []
            for compiled in (True, False):
                if error is not None:
                    bad = error.attach(dlx.datapath)
                    env = DlxEnv(dlx, injector=bad.injector,
                                 module_overrides=bad.module_overrides,
                                 compiled=compiled)
                else:
                    env = DlxEnv(dlx, compiled=compiled)
                result = env.run(program, regs)
                runs.append((
                    result.events, result.registers,
                    [(c.controller, c.datapath) for c in env.trace.cycles],
                ))
            assert runs[0] == runs[1], f"seed={seed} error={error}"


# ----------------------------------------------------------------------
# Cone-forking batch fault simulation
# ----------------------------------------------------------------------
def test_cone_fork_converges_and_inherits_verdict(minipipe):
    """Forks that stay inside their cone converge back to the golden
    trace and may inherit its verdict; serial co-simulation confirms
    every inherited verdict."""
    from repro.baselines.random_gen import (
        RandomMiniGenerator,
        RandomProgramConfig,
    )
    from repro.datapath.faultsim import BatchFaultSimulator

    generator = RandomMiniGenerator(RandomProgramConfig(length=10, seed=3))
    program = generator.program(0)
    regs = generator.initial_registers(0)
    spec = MiniSpec().run(program, regs)
    env = MiniEnv(minipipe)
    golden = env.run(program, regs)
    golden_detects = golden.writes != spec.writes
    sim = BatchFaultSimulator(minipipe, env.trace)

    transient = 0
    for error in _mini_errors(minipipe):
        fork = sim.fork(error, stop_at_first_observed=True)
        if fork.kind != "clean":
            continue
        # Inherited verdict must match a full serial co-simulation.
        assert mini_detects(minipipe, program, error, regs) \
            == golden_detects, error.describe()
        if fork.forked_cycles:
            transient += 1
    # At least one clean fork actually diverged inside its cone for a few
    # cycles and then re-converged — the concurrent-fault-simulation case
    # this machinery exists for (not merely never-activated errors).
    assert transient > 0


def test_mini_batch_detects_matches_serial(minipipe):
    from repro.baselines.random_gen import (
        RandomMiniGenerator,
        RandomProgramConfig,
    )

    errors = _mini_errors(minipipe)
    generator = RandomMiniGenerator(RandomProgramConfig(length=12, seed=7))
    for index in range(2):
        program = generator.program(index)
        regs = generator.initial_registers(index)
        batch = mini_batch_detects(minipipe, program, errors, regs)
        serial = [
            mini_detects(minipipe, program, error, regs)
            for error in errors
        ]
        assert batch == serial


def test_dlx_batch_detects_matches_serial():
    from repro.baselines.random_gen import (
        RandomDlxGenerator,
        RandomProgramConfig,
    )
    from repro.campaign import DlxCampaign
    from repro.dlx import build_dlx
    from repro.dlx.env import batch_detects as dlx_batch_detects
    from repro.dlx.env import detects as dlx_detects

    dlx = build_dlx()
    errors = DlxCampaign().default_errors(max_bits_per_net=2)[::7]
    generator = RandomDlxGenerator(RandomProgramConfig(length=12, seed=5))
    program = generator.program(0)
    regs = generator.initial_registers(0)
    batch = dlx_batch_detects(dlx, program, errors, regs)
    serial = [dlx_detects(dlx, program, error, regs) for error in errors]
    assert batch == serial


def test_conformance_matrix_batch_matches_serial():
    """The batch strategy is invisible in the artifact: identical rows,
    budgets and detecting-program indices."""
    from repro.fuzz.conformance import MatrixConfig, run_matrix

    base = dict(machine="mini", programs=4, length=10, seed=3)
    assert run_matrix(MatrixConfig(batch=True, **base)) \
        == run_matrix(MatrixConfig(batch=False, **base))


# ----------------------------------------------------------------------
# TestGenerator exposure fork screen
# ----------------------------------------------------------------------
def test_tg_fork_screen_matches_interpretive(minipipe):
    errors = enumerate_bus_ssl(minipipe.datapath, stages={1, 2})[:6]
    fast = TestGenerator(minipipe, deadline_seconds=10.0,
                         use_compiled_datapath=True)
    slow = TestGenerator(minipipe, deadline_seconds=10.0,
                         use_compiled_datapath=False)
    screened = 0
    for error in errors:
        a = fast.generate(error)
        b = slow.generate(error)
        assert a.status == b.status
        if a.status is TGStatus.DETECTED:
            assert a.test.cpi_frames == b.test.cpi_frames
            assert a.test.stimulus_state == b.test.stimulus_state
        # The interpretive path never forks; the compiled path forks on
        # every exposure check.
        assert b.exposure_forks == 0
        screened += a.exposure_forks
    assert screened > 0
