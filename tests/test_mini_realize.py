"""Unit tests for the MiniPipe realizer."""

import pytest

from repro.core.tg import TestCase
from repro.mini import MiniEnv, MiniSpec, build_minipipe
from repro.mini.isa import OPCODES
from repro.mini.realize import RealizationError, realize


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def make_test(n_frames, cpi_overrides, dpi_overrides, decided=()):
    cpi = [{"op": 0, "rs1": 0, "rs2": 0, "rd": 0} for _ in range(n_frames)]
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": 0} for _ in range(n_frames)]
    for frame, fields in cpi_overrides.items():
        cpi[frame].update(fields)
    for frame, fields in dpi_overrides.items():
        dpi[frame].update(fields)
    return TestCase(
        n_frames=n_frames,
        cpi_frames=cpi,
        dpi_frames=dpi,
        stimulus_state={},
        error="synthetic",
        activation_frame=0,
        decided_cpi=frozenset(decided),
    )


def replay_ok(processor, realized) -> bool:
    spec = MiniSpec().run(realized.program, realized.init_regs)
    impl = MiniEnv(processor).run(realized.program, realized.init_regs)
    return impl.writes == spec.writes


def test_nops_realize(processor):
    realized = realize(make_test(4, {}, {}))
    assert all(i.op == "NOP" for i in realized.program)
    assert realized.init_regs == [0, 0, 0, 0]


def test_read_binding(processor):
    test = make_test(
        4,
        {0: {"op": OPCODES["ADD"], "rd": 3}},
        {0: {"rf_a": 9, "rf_b": 4}},
        decided=[(0, "op"), (0, "rd")],
    )
    realized = realize(test)
    instr = realized.program[0]
    assert realized.init_regs[instr.rs1] == 9
    assert realized.init_regs[instr.rs2] == 4
    assert replay_ok(processor, realized)


def test_bypass_read_is_dont_care(processor):
    """Instruction 1 reads the register instruction 0 wrote: the raw read
    value (0 here) is covered by the bypass, so no conflict arises even
    though the architectural value is different."""
    test = make_test(
        4,
        {0: {"op": OPCODES["ADDI"], "rs1": 0, "rd": 1},
         1: {"op": OPCODES["ADDI"], "rs1": 1, "rd": 2}},
        {0: {"imm": 5}, 1: {"rf_a": 0, "imm": 1}},
        decided=[(0, "op"), (0, "rd"), (0, "rs1"),
                 (1, "op"), (1, "rs1"), (1, "rd")],
    )
    realized = realize(test)
    assert replay_ok(processor, realized)
    spec = MiniSpec().run(realized.program, realized.init_regs)
    assert (2, 6) in spec.writes  # 5 + 1 through the bypass


def test_register_exhaustion_aborts(processor):
    # Four distinct read values on a 4-register file with r-binding for
    # each... the fifth distinct value cannot be delivered.
    overrides_cpi = {}
    overrides_dpi = {}
    decided = []
    for frame in range(5):
        overrides_cpi[frame] = {"op": OPCODES["ADD"], "rd": 0}
        overrides_dpi[frame] = {"rf_a": 10 + frame, "rf_b": 10 + frame}
        decided += [(frame, "op"), (frame, "rd")]
    test = make_test(5, overrides_cpi, overrides_dpi, decided)
    with pytest.raises(RealizationError):
        realize(test)


def test_taken_branch_skips_constraints(processor):
    test = make_test(
        5,
        {0: {"op": OPCODES["BEQ"], "rs1": 0, "rs2": 0},
         1: {"op": OPCODES["ADD"], "rd": 3}},  # squashed
        {0: {"rf_a": 0, "rf_b": 0}, 1: {"rf_a": 77, "rf_b": 88}},
        decided=[(0, "op"), (0, "rs1"), (0, "rs2")],
    )
    realized = realize(test)
    # The squashed instruction's reads were not bound.
    assert realized.init_regs == [0, 0, 0, 0]
    assert replay_ok(processor, realized)
