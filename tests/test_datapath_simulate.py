"""Tests for partial (three-valued) datapath evaluation and overrides."""

from repro.datapath import DatapathBuilder, DatapathSimulator
from tests.helpers import build_toy_pipeline


def test_partial_unknown_inputs_propagate():
    sim = DatapathSimulator(build_toy_pipeline())
    values = sim.evaluate_partial({"a": 5})
    assert values["a"] == 5
    assert values["b"] is None
    assert values["alu_add.y"] is None  # needs b
    assert values["eq"] is None


def test_partial_mux_needs_only_selected_input():
    sim = DatapathSimulator(build_toy_pipeline())
    # alusrc=1 selects the constant 4: opb resolves without b.
    values = sim.evaluate_partial({"a": 3, "alusrc": 1, "op": 0})
    assert values["opbmux.y"] == 4
    assert values["alu_add.y"] == 7
    # The AND unit still needs opb (known) and a (known): resolved too.
    assert values["alu_and.y"] == 3 & 4


def test_partial_unknown_control_blocks_module():
    sim = DatapathSimulator(build_toy_pipeline())
    values = sim.evaluate_partial({"a": 3, "b": 9})
    assert values["opbmux.y"] is None  # alusrc unknown
    assert values["eq"] == 0  # comparator needs only a, b


def test_partial_state_is_always_known():
    b = DatapathBuilder("st")
    x = b.input("x", 8)
    q = b.register("r", x, reset_value=0x42)
    b.output("o", b.add("n", q, b.const("z", 8, 0)))
    sim = DatapathSimulator(b.build())
    values = sim.evaluate_partial({})
    assert values["r.y"] == 0x42
    assert values["o"] == 0x42


def test_partial_injection_applies_to_known_values():
    netlist = build_toy_pipeline()

    def stuck(net, value):
        return value | 1 if net == "alu_add.y" else value

    sim = DatapathSimulator(netlist, injector=stuck)
    values = sim.evaluate_partial({"a": 2, "b": 2, "alusrc": 0, "op": 0})
    assert values["alu_add.y"] == 5


def test_module_override_in_full_evaluation():
    netlist = build_toy_pipeline()
    sim = DatapathSimulator(
        netlist,
        module_overrides={"alu_add": lambda ins, ctl: (ins[0] - ins[1]) & 0xFF},
    )
    values = sim.evaluate({"a": 9, "b": 4, "alusrc": 0, "op": 0})
    assert values["alu_add.y"] == 5


def test_module_override_in_partial_evaluation():
    netlist = build_toy_pipeline()
    sim = DatapathSimulator(
        netlist,
        module_overrides={"alu_and": lambda ins, ctl: ins[0] | ins[1]},
    )
    values = sim.evaluate_partial({"a": 1, "b": 2, "alusrc": 0, "op": 1})
    assert values["alu_and.y"] == 3
