"""Search-effort comparison between the two organizations at unit scale."""

import pytest

from repro.baselines import TimeframeJust
from repro.core.ctrljust import CtrlJust, JustStatus
from repro.model.synthetic import build_synthetic_controller


@pytest.mark.parametrize("p,op_values,n2,n3", [
    (2, 8, 4, 1),
    (3, 8, 4, 1),
    (3, 16, 6, 2),
])
def test_pipeframe_never_needs_more_decisions(p, op_values, n2, n3):
    ctl = build_synthetic_controller(p, op_values, n2, n3)
    unrolled = ctl.unroll(p + 2)
    objective = [(f"{p + 1}:c{p}_0", 1)]
    pipeframe = CtrlJust(unrolled).justify(objective)
    timeframe = TimeframeJust(unrolled).justify(objective)
    assert pipeframe.status is JustStatus.SUCCESS
    assert timeframe.status is JustStatus.SUCCESS
    assert pipeframe.decisions <= timeframe.decisions


def test_solutions_are_functionally_equivalent():
    """Both organizations must produce *working* input sequences: replay
    the decided CPIs on the concrete controller and check the objective."""
    p = 3
    ctl = build_synthetic_controller(p, 8, 4, 1)
    unrolled = ctl.unroll(p + 2)
    objective_signal, objective_value = f"{p + 1}:c{p}_0", 1
    for engine_cls in (CtrlJust, TimeframeJust):
        result = engine_cls(unrolled).justify(
            [(objective_signal, objective_value)]
        )
        assert result.status is JustStatus.SUCCESS
        cpi_frames = result.cpi_sequence(unrolled, defaults={"op": 0})
        state = ctl.reset_state()
        seen = None
        for frame, inputs in enumerate(cpi_frames):
            values, state = ctl.simulate_cycle(state, inputs)
            if frame == p + 1:
                seen = values[f"c{p}_0"]
        assert seen == objective_value, engine_cls.__name__


def test_timeframe_handles_squash_chain():
    """The conventional organization must also justify through cleared
    CPRs (squash), not only plain pipeline flow."""
    ctl = build_synthetic_controller(3, 8, 4, 2)
    unrolled = ctl.unroll(5)
    # c1_and = b0 & b1 of stage 1: needs an opcode with both low bits.
    result = TimeframeJust(unrolled).justify([("3:c1_and", 1)])
    assert result.status is JustStatus.SUCCESS
    op = result.implied.get("2:op")
    assert op is not None and (op & 3) == 3
