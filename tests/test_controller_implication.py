"""Differential tests for the incremental implication engine.

The contract of :class:`ImplicationSession` is exact equivalence with the
full-sweep oracle: after any sequence of ``assume``/``retract`` operations
the session's values and justified / conflicting classifications must be
bit-identical to a fresh ``ControlNetwork.consistency`` sweep over the
same assignment and overrides.  The tests below drive random operation
sequences on the two-stage toy, the MiniPipe controller, and the DLX
controller, and additionally demand that CTRLJUST reaches bit-identical
outcomes (status, assignment, CTI values, implied values, backtracks,
decisions) through the incremental and full-sweep backends.
"""

import random
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.implication import CompiledNetwork
from repro.controller.nodes import BufNode, InSetNode, NotNode
from repro.controller.pipeline import PipelinedController, PipeRegister
from repro.controller.signals import SignalKind, bit_signal, field_signal
from repro.core.ctrljust import CtrlJust, JustStatus
from repro.dlx.controller import build_dlx_controller
from repro.mini.machine import build_minipipe_controller
from tests.test_controller_network import build_two_stage


@lru_cache(maxsize=None)
def _unrolled(which: str, n_frames: int):
    builder = {
        "two_stage": build_two_stage,
        "mini": build_minipipe_controller,
        "dlx": build_dlx_controller,
    }[which]
    return builder().unroll(n_frames)


def _mirror(unrolled, stack):
    """Split the mirrored decision stack into (assignment, overrides)."""
    compiled = unrolled.compiled()
    assignment: dict[str, int] = {}
    overrides: dict[str, int] = {}
    for name, value in stack:
        if compiled.is_driven[compiled.index[name]]:
            overrides[name] = value
        else:
            assignment[name] = value
    return assignment, overrides


def _assert_matches_oracle(unrolled, session, stack):
    assignment, overrides = _mirror(unrolled, stack)
    values, justified, conflicting = unrolled.network.consistency(
        assignment, overrides
    )
    assert session.snapshot() == values
    assert session.justified_names == set(justified)
    assert session.conflicting_names == set(conflicting)
    assert session.has_conflict == bool(conflicting)
    assert session.depth == len(stack)


def _random_walk(unrolled, rng, n_ops, check_every=1):
    """Drive a random assume/retract sequence, checking against the
    oracle every ``check_every`` operations and once at the end."""
    decisions = unrolled.decision_instances()
    signals = unrolled.network.signals
    session = unrolled.session()
    stack = []
    for op in range(n_ops):
        if stack and rng.random() < 0.4:
            session.retract()
            stack.pop()
        else:
            name = rng.choice(decisions)
            value = rng.choice(signals[name].domain)
            session.assume(name, value)
            stack.append((name, value))
        if (op + 1) % check_every == 0:
            _assert_matches_oracle(unrolled, session, stack)
    _assert_matches_oracle(unrolled, session, stack)
    # Rewinding the whole trail restores the empty-assignment fixpoint.
    while stack:
        session.retract()
        stack.pop()
    _assert_matches_oracle(unrolled, session, stack)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_two_stage_session_matches_full_sweep(seed):
    _random_walk(_unrolled("two_stage", 4), random.Random(seed), n_ops=30)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_minipipe_session_matches_full_sweep(seed):
    _random_walk(_unrolled("mini", 4), random.Random(seed), n_ops=25)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_dlx_session_matches_full_sweep(seed):
    # The DLX full sweep is the expensive side; check every 4th op.
    _random_walk(
        _unrolled("dlx", 4), random.Random(seed), n_ops=16, check_every=4
    )


def test_assume_same_signal_twice_then_retract():
    unrolled = _unrolled("two_stage", 4)
    session = unrolled.session()
    session.assume("1:op", 2)
    session.assume("1:op", 0)
    _assert_matches_oracle(unrolled, session, [("1:op", 2), ("1:op", 0)])
    session.retract()
    _assert_matches_oracle(unrolled, session, [("1:op", 2)])
    session.retract()
    _assert_matches_oracle(unrolled, session, [])


def test_cut_cti_classification_transitions():
    # Cutting stall@2 to 1 is open until the cone justifies or refutes it.
    unrolled = _unrolled("two_stage", 4)
    session = unrolled.session()
    session.assume("2:stall", 1)
    assert not session.is_justified("2:stall")
    assert not session.has_conflict
    session.assume("0:op", 0)  # no load at frame 0: no stall at frame 1
    assert not session.is_justified("2:stall")  # frame-1 op still X
    session.assume("1:op", 2)  # load at frame 1 -> is_load_ex@2 = 1
    assert session.is_justified("2:stall")
    assert session.justified_names == {"2:stall"}
    session.retract()
    session.assume("1:op", 0)  # non-load -> cone computes 0, decided 1
    assert session.conflicting_names == {"2:stall"}
    assert session.has_conflict
    session.retract()
    assert not session.has_conflict
    assert not session.is_justified("2:stall")


def test_retract_without_assume_raises():
    session = _unrolled("two_stage", 4).session()
    with pytest.raises(IndexError):
        session.retract()


def test_base_assignment_seeds_externals():
    unrolled = _unrolled("two_stage", 4)
    session = unrolled.session({"1:op": 2})
    oracle = unrolled.network.evaluate({"1:op": 2})
    assert session.snapshot() == oracle
    assert session.value("1:is_load") == 1


def test_compiled_network_levels_and_fanout():
    unrolled = _unrolled("two_stage", 4)
    compiled = unrolled.compiled()
    assert isinstance(compiled, CompiledNetwork)
    # Compilation is cached on the network.
    assert unrolled.compiled() is compiled
    # Levels strictly increase along every driven edge.
    for out in compiled.topo_ids:
        for i in compiled.inputs_of[out]:
            assert compiled.level[i] < compiled.level[out]
            assert out in compiled.fanout[i]
    # Externals sit at level 0 and have no driver.
    for i in compiled.external_ids:
        assert compiled.level[i] == 0
        assert compiled.node_of[i] is None


def test_sweep_matches_evaluate_with_unknown_override():
    # evaluate historically ignored override names absent from the
    # network; the compiled sweep must preserve that.
    unrolled = _unrolled("two_stage", 4)
    values = unrolled.network.evaluate(
        {"1:op": 3}, {"2:stall": 1, "no_such_signal": 1}
    )
    assert values["2:stall"] == 1
    assert "no_such_signal" not in values


# ----------------------------------------------------------------------
# CTRLJUST backend identity: incremental vs full-sweep reference
# ----------------------------------------------------------------------
def _result_tuple(result):
    return (
        result.status,
        result.assignment,
        result.cti_values,
        result.implied,
        result.backtracks,
        result.decisions,
    )


def _assert_backends_identical(unrolled, objectives, **kwargs):
    fast = CtrlJust(unrolled, incremental=True, **kwargs).justify(objectives)
    slow = CtrlJust(unrolled, incremental=False, **kwargs).justify(objectives)
    assert _result_tuple(fast) == _result_tuple(slow)
    return fast


@pytest.mark.parametrize("objectives", [
    [],
    [("2:write_en", 1)],
    [("2:write_en", 0)],
    [("0:write_en", 1)],
    [("2:write_en", 1), ("2:stall", 0)],
    [("2:stall", 1), ("3:stall", 1)],
    [("3:stall", 1)],
])
def test_two_stage_backends_identical(objectives):
    _assert_backends_identical(_unrolled("two_stage", 4), objectives)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_minipipe_backends_identical_random_objectives(seed):
    rng = random.Random(seed)
    unrolled = _unrolled("mini", 5)
    signals = unrolled.network.signals
    candidates = [
        name for name, sig in signals.items()
        if sig.kind in (SignalKind.CTRL, SignalKind.CTI) and
        name in unrolled.network.drivers
    ]
    objectives = []
    for name in rng.sample(candidates, rng.randint(1, 3)):
        objectives.append((name, rng.choice(signals[name].domain)))
    _assert_backends_identical(unrolled, objectives)


@pytest.mark.parametrize("objectives", [
    [("4:regwrite_g_ctl", 1)],
    [("4:memwrite_ctl", 1)],
    [("3:stall", 1)],
    [("4:regwrite_g_ctl", 1), ("3:stall", 1)],
])
def test_dlx_backends_identical(objectives):
    _assert_backends_identical(_unrolled("dlx", 5), objectives)


def test_backtrack_budget_enforced_inside_loop():
    # These objectives are satisfiable after 6 backtracks; a budget of 1
    # must stop the search as soon as the count passes max_backtracks
    # (inside the backtrack loop), not only at the next decision.
    unrolled = _unrolled("mini", 5)
    objectives = [("1:squash", 1), ("1:alusrc", 0)]
    for incremental in (True, False):
        full = CtrlJust(unrolled, incremental=incremental)
        assert full.justify(objectives).status is JustStatus.SUCCESS
        tiny = CtrlJust(unrolled, max_backtracks=1,
                        incremental=incremental)
        result = tiny.justify(objectives)
        assert result.status is JustStatus.FAILURE
        assert result.backtracks == 2  # budget + the overflowing attempt


def _deep_chain_controller(depth: int) -> PipelinedController:
    ctl = PipelinedController("deep_chain", n_stages=2)
    ctl.add_signal(field_signal("op", (0, 1, 2, 3), SignalKind.CPI, stage=0))
    ctl.add_signal(bit_signal("is_load", stage=0))
    ctl.drive("is_load", InSetNode("op", {2, 3}))
    previous = "is_load"
    for k in range(depth):
        name = f"chain{k}"
        ctl.add_signal(bit_signal(name, stage=0))
        ctl.drive(name, BufNode(previous) if k % 2 else NotNode(previous))
        previous = name
    ctl.add_signal(bit_signal("deep_out", SignalKind.CTRL, stage=0))
    ctl.drive("deep_out", BufNode(previous))
    ctl.validate()
    return ctl


def test_deep_network_no_recursion_limit():
    # A combinational chain far deeper than CPython's recursion limit:
    # topological_order and the CTRLJUST backtrace must both be iterative.
    depth = 3000
    unrolled = _deep_chain_controller(depth).unroll(1)
    order = unrolled.network.topological_order()
    assert len(order) == len(unrolled.network.drivers)
    inverted = ((depth + 1) // 2) % 2  # NOT stages sit at even positions
    result = CtrlJust(unrolled).justify([("0:deep_out", 1)])
    assert result.status is JustStatus.SUCCESS
    assert result.assignment["0:op"] in ((0, 1) if inverted else (2, 3))
    session = unrolled.session()
    session.assume("0:op", 2)  # a load: is_load = 1
    assert session.value("0:deep_out") == (0 if inverted else 1)
    session.retract()
    assert session.value("0:deep_out") is None
