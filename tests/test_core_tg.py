"""Unit-level tests for the overall TG driver."""

import pytest

from repro.core.tg import TestGenerator, TGStatus
from repro.errors import BusSSLError, ModuleSubstitutionError
from repro.mini import build_minipipe


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def test_deadline_aborts_quickly(processor):
    generator = TestGenerator(processor, deadline_seconds=0.0)
    result = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    assert result.status is TGStatus.ABORTED
    assert result.attempts == 0


def test_window_bounds_default(processor):
    generator = TestGenerator(processor)
    assert generator.min_frames == processor.n_stages + 1
    assert generator.max_frames == processor.n_stages + 4


def test_custom_window_bounds(processor):
    generator = TestGenerator(processor, min_frames=4, max_frames=4)
    result = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    assert result.status is TGStatus.DETECTED
    assert result.test.n_frames == 4


def test_result_records_effort(processor):
    generator = TestGenerator(processor)
    result = generator.generate(BusSSLError("alu_mux.y", 2, 1))
    assert result.status is TGStatus.DETECTED
    assert result.attempts >= 1
    assert result.frames_used >= 4
    assert result.relax_events > 0
    assert result.error.startswith("bus-ssl")


def test_stuck_constant_bit_aborts(processor):
    """A stuck-at on a bit of the gated-zero constant path that can never
    differ: the 'zero' constant output is excluded from enumeration, but
    targeting an impossible activation directly must abort, not loop."""
    # The comparator output drives only the STS net 'eq', which the model
    # treats as unobservable: TG must abort cleanly (the paper's aborted
    # class), not loop.
    error = BusSSLError("eq", 0, 0)
    result = TestGenerator(processor).generate(error)
    assert result.status is TGStatus.ABORTED


def test_mse_error_generation(processor):
    """TG also handles module-substitution errors (site from the netlist,
    no activation constraint — exposure relies on the seed loop)."""
    error = ModuleSubstitutionError("alu_add", "AddModule")
    generator = TestGenerator(processor)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED


def test_tg_caches_window_structures(processor):
    generator = TestGenerator(processor)
    generator.generate(BusSSLError("alu_mux.y", 0, 0))
    analyzers_before = dict(generator._analyzers)
    generator.generate(BusSSLError("alu_mux.y", 1, 0))
    # Same windows reused, not rebuilt.
    for k, v in analyzers_before.items():
        assert generator._analyzers[k] is v


def test_tg_records_phase_timings_and_golden_stats(processor):
    generator = TestGenerator(processor)
    result = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    assert result.status is TGStatus.DETECTED
    assert set(result.phase_seconds) <= {"dptrace", "ctrljust",
                                         "dprelax", "cosim"}
    assert "dptrace" in result.phase_seconds
    assert all(v >= 0.0 for v in result.phase_seconds.values())
    # Every exposure check is either a golden-cache hit or a fault-free
    # simulation; the first run must have simulated at least once.
    assert result.golden_misses >= 1
    assert result.golden_hits >= 0


def test_tg_golden_cache_shared_across_errors(processor):
    """Re-targeting an error re-proposes the same candidate stimuli, so
    the fault-free machine is simulated once per distinct stimulus."""
    generator = TestGenerator(processor)
    first = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    second = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    assert second.status is first.status
    assert second.golden_misses == 0
    assert second.golden_hits >= 1


def test_tg_full_sweep_backend_matches_incremental(processor):
    for error in (BusSSLError("alu_mux.y", 2, 1), BusSSLError("eq", 0, 0)):
        fast = TestGenerator(processor).generate(error)
        slow = TestGenerator(
            processor, use_incremental_implication=False
        ).generate(error)
        assert slow.status is fast.status
        assert slow.backtracks == fast.backtracks
        assert slow.attempts == fast.attempts
        if fast.status is TGStatus.DETECTED:
            assert slow.test.cpi_frames == fast.test.cpi_frames
            assert slow.test.stimulus_state == fast.test.stimulus_state
