"""Unit-level tests for the overall TG driver."""

import pytest

from repro.core.tg import TestGenerator, TGStatus
from repro.errors import BusSSLError, ModuleSubstitutionError
from repro.mini import build_minipipe


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def test_deadline_aborts_quickly(processor):
    generator = TestGenerator(processor, deadline_seconds=0.0)
    result = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    assert result.status is TGStatus.ABORTED
    assert result.attempts == 0


def test_window_bounds_default(processor):
    generator = TestGenerator(processor)
    assert generator.min_frames == processor.n_stages + 1
    assert generator.max_frames == processor.n_stages + 4


def test_custom_window_bounds(processor):
    generator = TestGenerator(processor, min_frames=4, max_frames=4)
    result = generator.generate(BusSSLError("alu_mux.y", 0, 0))
    assert result.status is TGStatus.DETECTED
    assert result.test.n_frames == 4


def test_result_records_effort(processor):
    generator = TestGenerator(processor)
    result = generator.generate(BusSSLError("alu_mux.y", 2, 1))
    assert result.status is TGStatus.DETECTED
    assert result.attempts >= 1
    assert result.frames_used >= 4
    assert result.relax_events > 0
    assert result.error.startswith("bus-ssl")


def test_stuck_constant_bit_aborts(processor):
    """A stuck-at on a bit of the gated-zero constant path that can never
    differ: the 'zero' constant output is excluded from enumeration, but
    targeting an impossible activation directly must abort, not loop."""
    # The comparator output drives only the STS net 'eq', which the model
    # treats as unobservable: TG must abort cleanly (the paper's aborted
    # class), not loop.
    error = BusSSLError("eq", 0, 0)
    result = TestGenerator(processor).generate(error)
    assert result.status is TGStatus.ABORTED


def test_mse_error_generation(processor):
    """TG also handles module-substitution errors (site from the netlist,
    no activation constraint — exposure relies on the seed loop)."""
    error = ModuleSubstitutionError("alu_add", "AddModule")
    generator = TestGenerator(processor)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED


def test_tg_caches_window_structures(processor):
    generator = TestGenerator(processor)
    generator.generate(BusSSLError("alu_mux.y", 0, 0))
    analyzers_before = dict(generator._analyzers)
    generator.generate(BusSSLError("alu_mux.y", 1, 0))
    # Same windows reused, not rebuilt.
    for k, v in analyzers_before.items():
        assert generator._analyzers[k] is v
