"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_stats_command(capsys):
    assert main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "pipeline_stages" in out
    assert "pipeframe_justify_bits" in out


def test_generate_command_detects(capsys):
    assert main(["generate", "mem_sdata.y", "2", "0"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "ISA-level detection: yes" in out


def test_generate_command_aborts_on_unobservable(capsys):
    # The branch-condition status bit is unobservable in the model.
    assert main(["generate", "zero", "0", "0", "--deadline", "5"]) == 1
    out = capsys.readouterr().out
    assert "aborted" in out


def test_minipipe_command_with_orchestration_flags(tmp_path, capsys):
    """minipipe with sharding, checkpointing and the JSON report."""
    from repro.campaign.checkpoint import CampaignCheckpoint
    from repro.campaign.serialize import load_json

    checkpoint = tmp_path / "cp.jsonl"
    out = tmp_path / "run.json"
    assert main(["minipipe", "--sample", "30", "--jobs", "2",
                 "--checkpoint", str(checkpoint), "--json", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "MiniPipe bus SSL campaign" in stdout
    assert "2 job(s)" in stdout

    data = load_json(str(out))
    assert data["kind"] == "campaign-run"
    assert data["config"]["target"] == "mini"
    assert data["config"]["jobs"] == 2
    n_errors = len(data["report"]["outcomes"])
    assert n_errors >= 1
    assert len(CampaignCheckpoint.load(str(checkpoint))) == n_errors
    kinds = {event["kind"] for event in data["events"]}
    assert {"campaign-started", "error-finished", "checkpoint-written",
            "campaign-finished"} <= kinds

    # Resuming from the finished checkpoint regenerates nothing and
    # reports the same counts.
    out2 = tmp_path / "run2.json"
    assert main(["minipipe", "--sample", "30", "--jobs", "2",
                 "--checkpoint", str(checkpoint), "--resume",
                 "--json", str(out2)]) == 0
    capsys.readouterr()
    data2 = load_json(str(out2))
    assert {o["error"]: o["detected"]
            for o in data2["report"]["outcomes"]} == {
        o["error"]: o["detected"] for o in data["report"]["outcomes"]
    }
    started = [e for e in data2["events"] if e["kind"] == "campaign-started"]
    assert started[0]["data"]["resumed"] == n_errors
    assert not any(e["kind"] == "error-started" for e in data2["events"])


def test_minipipe_profile_flag(tmp_path, capsys):
    from repro.campaign.serialize import load_json

    out = tmp_path / "run.json"
    assert main(["minipipe", "--sample", "40", "--profile",
                 "--json", str(out)]) == 0
    capsys.readouterr()
    data = load_json(str(out))
    events = data["events"]
    n_errors = len(data["report"]["outcomes"])
    profiles = [e for e in events if e["kind"] == "error-profile"]
    assert len(profiles) == n_errors
    for event in profiles:
        assert set(event["data"]["phase_seconds"]) <= {
            "dptrace", "ctrljust", "dprelax", "cosim"}
        assert event["data"]["golden_misses"] >= 0
    summaries = [e for e in events if e["kind"] == "profile-summary"]
    assert len(summaries) == 1
    summary = summaries[0]["data"]
    assert summary["golden_hits"] + summary["golden_misses"] >= n_errors
    # The summary is the per-error sum.
    for phase, total in summary["phase_seconds"].items():
        per_error = sum(e["data"]["phase_seconds"].get(phase, 0.0)
                        for e in profiles)
        assert total == pytest.approx(per_error)


def test_minipipe_dropping_flag(capsys):
    assert main(["minipipe", "--sample", "40", "--dropping"]) == 0
    out = capsys.readouterr().out
    assert "fault dropping skipped TG for" in out


def test_resume_requires_checkpoint(capsys):
    assert main(["minipipe", "--resume"]) == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_jobs_must_be_positive(capsys):
    assert main(["minipipe", "--jobs", "0"]) == 2
    assert "--jobs must be >= 1" in capsys.readouterr().err


def test_resume_rejects_corrupt_checkpoint(tmp_path, capsys):
    path = tmp_path / "cp.jsonl"
    path.write_text("GARBAGE\n{}\n")
    assert main(["minipipe", "--checkpoint", str(path), "--resume"]) == 2
    assert "corrupt checkpoint" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_sigint_interrupts_campaign_exit_130(tmp_path):
    """A real SIGINT against the real CLI: the in-flight error finishes
    and checkpoints, stderr explains, and the exit code is 130."""
    import os
    import signal
    import subprocess
    import sys
    import time

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src")
    checkpoint = tmp_path / "cp.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "minipipe", "--sample", "2",
         "--deadline", "10", "--checkpoint", str(checkpoint)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        # Wait until at least one outcome has been checkpointed, so the
        # interrupt lands mid-campaign.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.1)
        assert proc.poll() is None, proc.communicate()[1]
        proc.send_signal(signal.SIGINT)
        _, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130, err
    assert "campaign interrupted" in err
    assert "campaign INTERRUPTED" in err  # the renderer's progress line
    from repro.campaign.checkpoint import CampaignCheckpoint

    records = CampaignCheckpoint.load(str(checkpoint))
    assert len(records) >= 1  # resumable from what completed
