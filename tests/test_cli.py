"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_stats_command(capsys):
    assert main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "pipeline_stages" in out
    assert "pipeframe_justify_bits" in out


def test_generate_command_detects(capsys):
    assert main(["generate", "mem_sdata.y", "2", "0"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "ISA-level detection: yes" in out


def test_generate_command_aborts_on_unobservable(capsys):
    # The branch-condition status bit is unobservable in the model.
    assert main(["generate", "zero", "0", "0", "--deadline", "5"]) == 1
    out = capsys.readouterr().out
    assert "aborted" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
