"""Tests for netlist construction, validation and the builder/simulator."""

import pytest

from repro.datapath import (
    DatapathBuilder,
    DatapathSimulator,
    NetRole,
    NetlistError,
)
from repro.utils import mask


def build_tiny_alu():
    """y = (a + b) when op=0 else (a & b); z = (a == b)."""
    b = DatapathBuilder("tiny_alu")
    a = b.input("a", 8)
    c = b.input("b", 8)
    op = b.ctrl("op", 1)
    total = b.add("adder", a, c)
    conj = b.and_("ander", a, c)
    y = b.mux("outmux", op, total, conj)
    b.output("y", y)
    b.status("eq", b.eq("cmp", a, c))
    return b.build()


def test_builder_produces_valid_netlist():
    netlist = build_tiny_alu()
    assert netlist.net("a").role is NetRole.DPI
    assert netlist.net("y").role is NetRole.DPO
    assert netlist.net("eq").role is NetRole.STS
    assert netlist.net("op").role is NetRole.CTRL
    assert len(netlist.combinational_modules) == 4


def test_fanout_stems_detected():
    netlist = build_tiny_alu()
    stems = {n.name for n in netlist.fanout_stems()}
    # a and b each feed adder, ander, and cmp.
    assert "a" in stems and "b" in stems


def test_simulator_add_and_mux():
    sim = DatapathSimulator(build_tiny_alu())
    values = sim.evaluate({"a": 5, "b": 3, "op": 0})
    assert values["y"] == 8
    values = sim.evaluate({"a": 5, "b": 3, "op": 1})
    assert values["y"] == 1
    assert values["eq"] == 0
    values = sim.evaluate({"a": 7, "b": 7, "op": 0})
    assert values["eq"] == 1


def test_simulator_missing_external_defaults_to_zero():
    sim = DatapathSimulator(build_tiny_alu())
    values = sim.evaluate({})
    assert values["y"] == 0


def test_register_pipeline_steps():
    b = DatapathBuilder("pipe")
    a = b.input("a", 8)
    q1 = b.register("r1", a)
    q2 = b.register("r2", q1)
    b.output("out", b.add("inc", q2, b.const("one", 8, 1)))
    netlist = b.build()
    sim = DatapathSimulator(netlist)
    outs = [sim.step({"a": v})["out"] for v in (10, 20, 30, 0)]
    # Two-stage delay: out sees reset (0) for two cycles, then 10+1, 20+1.
    assert outs == [1, 1, 11, 21]


def test_register_enable_stalls():
    b = DatapathBuilder("stall")
    a = b.input("a", 8)
    en = b.ctrl("en", 1)
    q = b.register("r", a, enable=en)
    b.output("out", b.add("nop", q, b.const("zero", 8, 0)))
    sim = DatapathSimulator(b.build())
    sim.step({"a": 42, "en": 1})
    assert sim.state["r"] == 42
    sim.step({"a": 99, "en": 0})
    assert sim.state["r"] == 42  # held
    sim.step({"a": 99, "en": 1})
    assert sim.state["r"] == 99


def test_register_clear_squashes():
    b = DatapathBuilder("squash")
    a = b.input("a", 8)
    clr = b.ctrl("clr", 1)
    b.register("r", a, clear=clr, clear_value=0)
    sim = DatapathSimulator(b.build())
    sim.step({"a": 42, "clr": 0})
    assert sim.state["r"] == 42
    sim.step({"a": 99, "clr": 1})
    assert sim.state["r"] == 0


def test_injector_corrupts_named_net():
    netlist = build_tiny_alu()

    def stuck_bit0(net_name, value):
        if net_name == "adder.y":
            return value | 1
        return value

    good = DatapathSimulator(netlist)
    bad = DatapathSimulator(netlist, injector=stuck_bit0)
    g = good.evaluate({"a": 4, "b": 4, "op": 0})
    e = bad.evaluate({"a": 4, "b": 4, "op": 0})
    assert g["y"] == 8 and e["y"] == 9


def test_duplicate_net_name_rejected():
    b = DatapathBuilder("dup")
    b.input("a", 8)
    with pytest.raises(NetlistError):
        b.input("a", 8)


def test_duplicate_module_name_rejected():
    b = DatapathBuilder("dup")
    a = b.input("a", 8)
    b.add("m", a, a)
    with pytest.raises(NetlistError):
        b.add("m", a, a)


def test_width_mismatch_rejected():
    b = DatapathBuilder("w")
    a = b.input("a", 8)
    c = b.input("c", 4)
    with pytest.raises(NetlistError):
        b.add("bad", a, c)


def test_undriven_internal_net_rejected():
    b = DatapathBuilder("undriven")
    b.netlist.add_net("floating", 8, NetRole.STS)
    with pytest.raises(NetlistError):
        b.build()


def test_combinational_cycle_rejected():
    b = DatapathBuilder("cyc")
    a = b.input("a", 8)
    # Create a module whose input we then wire to its own output cone.
    y1 = b.add("m1", a, a)
    y2 = b.add("m2", y1, y1)
    # Manually wire m1's second input to m2's output to create a cycle.
    m1 = b.netlist.module("m1")
    m1.data_inputs[1].net.sinks.remove(m1.data_inputs[1])
    b.netlist.connect(y2, m1.add_data_input("extra", 8))
    with pytest.raises(NetlistError):
        b.netlist.topological_order()


def test_state_bits_accounting():
    b = DatapathBuilder("state")
    a = b.input("a", 8)
    q = b.register("r1", a)
    b.register("r2", q)
    b.output("o", b.add("n", q, q))
    netlist = b.build()
    assert netlist.state_bits() == 16


def test_stage_tagging():
    b = DatapathBuilder("staged")
    b.set_stage(0)
    a = b.input("a", 8)
    y = b.add("m", a, a)
    b.set_stage(1)
    z = b.add("m2", y, y)
    b.output("o", z)
    netlist = b.build()
    assert netlist.net("m.y").stage == 0
    assert netlist.net("o").stage == 1
    assert netlist.module("m").stage == 0
    assert {n.name for n in netlist.nets_in_stages({1})} >= {"o"}


def test_rename_rejects_collision():
    b = DatapathBuilder("r")
    a = b.input("a", 8)
    y = b.add("m", a, a)
    with pytest.raises(ValueError):
        b.rename(y, "a")


def test_double_role_mark_rejected():
    b = DatapathBuilder("r")
    a = b.input("a", 8)
    y = b.add("m", a, a)
    b.output("o", y)
    with pytest.raises(ValueError):
        b.status("s", y)


def test_run_sequence():
    b = DatapathBuilder("seq")
    a = b.input("a", 8)
    q = b.register("r", a)
    b.output("o", b.add("n", q, b.const("z", 8, 0)))
    sim = DatapathSimulator(b.build())
    traces = sim.run([{"a": 1}, {"a": 2}, {"a": 3}])
    assert [t["o"] for t in traces] == [0, 1, 2]
    sim.reset()
    assert sim.state["r"] == 0


def test_values_respect_width():
    b = DatapathBuilder("wmask")
    a = b.input("a", 8)
    c = b.input("c", 8)
    b.output("o", b.add("n", a, c))
    sim = DatapathSimulator(b.build())
    values = sim.evaluate({"a": mask(8), "c": mask(8)})
    assert 0 <= values["o"] <= mask(8)
