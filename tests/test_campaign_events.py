"""Tests for the structured campaign event stream."""

import io
import time

import pytest

from repro.campaign.events import (
    EVENT_KINDS,
    CampaignEvent,
    EventLog,
    EventStream,
    ProgressRenderer,
    event_from_dict,
)


def test_emit_dispatches_to_all_subscribers():
    stream = EventStream()
    seen_a, seen_b = [], []
    stream.subscribe(seen_a.append)
    stream.subscribe(seen_b.append)
    event = stream.emit("error-started", error="e", index=0)
    assert seen_a == [event]
    assert seen_b == [event]
    assert event.kind == "error-started"
    assert event.data == {"error": "e", "index": 0}
    assert event.wall_time > 0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        EventStream().emit("no-such-event")


def test_event_to_dict_roundtrip_shape():
    event = CampaignEvent("checkpoint-written", 12.5, {"path": "x"}, seq=7)
    data = event.to_dict()
    assert data == {
        "kind": "checkpoint-written",
        "schema_version": 1,
        "seq": 7,
        "wall_time": 12.5,
        "data": {"path": "x"},
    }
    rebuilt = event_from_dict(data)
    assert rebuilt == event


def test_event_from_dict_tolerates_preversion_records():
    """Logs written before schema_version/seq existed still load."""
    old = {"kind": "error-started", "wall_time": 1.0,
           "data": {"error": "e", "index": 0}}
    event = event_from_dict(old)
    assert event.seq == 0
    assert event.kind == "error-started"
    # Unknown kinds stream through unchanged (newer server, older client).
    assert event_from_dict({"kind": "from-the-future"}).kind == \
        "from-the-future"
    with pytest.raises(ValueError):
        event_from_dict({"wall_time": 1.0})


def test_event_stream_seq_is_monotonic_per_stream():
    stream = EventStream()
    events = [stream.emit("error-started", error="e", index=i)
              for i in range(3)]
    assert [e.seq for e in events] == [0, 1, 2]
    assert EventStream().emit("error-started", error="x", index=0).seq == 0


def test_event_log_ring_buffer_bounds_memory():
    stream = EventStream()
    log = EventLog(max_events=3)
    stream.subscribe(log)
    for i in range(10):
        stream.emit("error-started", error=f"e{i}", index=i)
    assert len(log.events) == 3
    assert log.seen == 10
    assert log.dropped == 7
    # seq survives eviction, so readers can detect the gap and resume.
    assert [e.seq for e in log.events] == [7, 8, 9]
    assert [e.seq for e in log.since(8)] == [9]
    with pytest.raises(ValueError):
        EventLog(max_events=0)


def test_event_log_is_thread_safe_under_concurrent_append_and_read():
    """The service appends from a worker thread while /events streamers
    iterate from the asyncio thread: an unguarded deque raises
    ``deque mutated during iteration`` under that interleaving."""
    import threading

    stream = EventStream()
    log = EventLog(max_events=64)
    stream.subscribe(log)
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer() -> None:
        i = 0
        while not stop.is_set():
            stream.emit("error-started", error=f"e{i}", index=i)
            i += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        deadline = time.time() + 1.0
        while time.time() < deadline:
            try:
                log.since(-1)
                log.to_dicts()
                log.of_kind("error-started")
                _ = log.dropped
            except BaseException as exc:  # noqa: BLE001 - recorded
                errors.append(exc)
                break
    finally:
        stop.set()
        thread.join(timeout=5)
    assert not errors
    assert log.seen > 0


def test_event_log_clear_keeps_seen():
    stream = EventStream()
    log = EventLog()
    stream.subscribe(log)
    for i in range(4):
        stream.emit("error-started", error=f"e{i}", index=i)
    log.clear()
    assert log.events == []
    assert log.seen == 4
    stream.emit("error-started", error="e4", index=4)
    assert [e.seq for e in log.events] == [4]


def test_event_log_collects_and_filters():
    stream = EventStream()
    log = EventLog()
    stream.subscribe(log)
    stream.emit("campaign-started", target="mini", n_errors=1, jobs=1,
                error_simulation=False, resumed=0)
    stream.emit("error-started", error="e", index=0)
    assert len(log.events) == 2
    assert [e.kind for e in log.of_kind("error-started")] == ["error-started"]
    assert log.to_dicts()[0]["kind"] == "campaign-started"


def test_progress_renderer_lines():
    out = io.StringIO()
    stream = EventStream()
    stream.subscribe(ProgressRenderer(out))
    stream.emit("campaign-started", target="mini", n_errors=3, jobs=2,
                error_simulation=True, resumed=1)
    stream.emit("error-finished", error="e1", index=0, detected=True,
                failure_stage="", test_length=4, backtracks=2,
                final_backtracks=1, attempts=1, seconds=0.5)
    stream.emit("test-dropped-others", error="e1", dropped=["e2"],
                seconds=0.1)
    stream.emit("campaign-finished", n_errors=3, n_detected=3, n_aborted=0,
                backtracks=2, wall_seconds=1.0)
    text = out.getvalue()
    assert "3 errors" in text
    assert "1 resumed from checkpoint" in text
    assert "[   2/3] e1: detected (len 4, 1 backtracks) in 0.5s" in text
    assert "[   3/3] dropped 1 error(s)" in text
    assert "campaign finished: 3 detected, 0 aborted" in text


def test_progress_renderer_aborted_line():
    out = io.StringIO()
    renderer = ProgressRenderer(out)
    renderer(CampaignEvent("campaign-started", 0.0,
                           {"target": "dlx", "n_errors": 1, "jobs": 1,
                            "error_simulation": False, "resumed": 0}))
    renderer(CampaignEvent("error-finished", 0.0,
                           {"error": "e", "index": 0, "detected": False,
                            "failure_stage": "tg", "test_length": 0,
                            "backtracks": 9, "final_backtracks": 9,
                            "attempts": 3, "seconds": 2.0}))
    assert "aborted (tg)" in out.getvalue()


def test_event_kinds_frozen():
    assert "error-finished" in EVENT_KINDS
    assert "campaign-finished" in EVENT_KINDS
