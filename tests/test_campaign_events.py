"""Tests for the structured campaign event stream."""

import io

import pytest

from repro.campaign.events import (
    EVENT_KINDS,
    CampaignEvent,
    EventLog,
    EventStream,
    ProgressRenderer,
)


def test_emit_dispatches_to_all_subscribers():
    stream = EventStream()
    seen_a, seen_b = [], []
    stream.subscribe(seen_a.append)
    stream.subscribe(seen_b.append)
    event = stream.emit("error-started", error="e", index=0)
    assert seen_a == [event]
    assert seen_b == [event]
    assert event.kind == "error-started"
    assert event.data == {"error": "e", "index": 0}
    assert event.wall_time > 0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        EventStream().emit("no-such-event")


def test_event_to_dict_roundtrip_shape():
    event = CampaignEvent("checkpoint-written", 12.5, {"path": "x"})
    data = event.to_dict()
    assert data == {
        "kind": "checkpoint-written",
        "wall_time": 12.5,
        "data": {"path": "x"},
    }


def test_event_log_collects_and_filters():
    stream = EventStream()
    log = EventLog()
    stream.subscribe(log)
    stream.emit("campaign-started", target="mini", n_errors=1, jobs=1,
                error_simulation=False, resumed=0)
    stream.emit("error-started", error="e", index=0)
    assert len(log.events) == 2
    assert [e.kind for e in log.of_kind("error-started")] == ["error-started"]
    assert log.to_dicts()[0]["kind"] == "campaign-started"


def test_progress_renderer_lines():
    out = io.StringIO()
    stream = EventStream()
    stream.subscribe(ProgressRenderer(out))
    stream.emit("campaign-started", target="mini", n_errors=3, jobs=2,
                error_simulation=True, resumed=1)
    stream.emit("error-finished", error="e1", index=0, detected=True,
                failure_stage="", test_length=4, backtracks=2,
                final_backtracks=1, attempts=1, seconds=0.5)
    stream.emit("test-dropped-others", error="e1", dropped=["e2"],
                seconds=0.1)
    stream.emit("campaign-finished", n_errors=3, n_detected=3, n_aborted=0,
                backtracks=2, wall_seconds=1.0)
    text = out.getvalue()
    assert "3 errors" in text
    assert "1 resumed from checkpoint" in text
    assert "[   2/3] e1: detected (len 4, 1 backtracks) in 0.5s" in text
    assert "[   3/3] dropped 1 error(s)" in text
    assert "campaign finished: 3 detected, 0 aborted" in text


def test_progress_renderer_aborted_line():
    out = io.StringIO()
    renderer = ProgressRenderer(out)
    renderer(CampaignEvent("campaign-started", 0.0,
                           {"target": "dlx", "n_errors": 1, "jobs": 1,
                            "error_simulation": False, "resumed": 0}))
    renderer(CampaignEvent("error-finished", 0.0,
                           {"error": "e", "index": 0, "detected": False,
                            "failure_stage": "tg", "test_length": 0,
                            "backtracks": 9, "final_backtracks": 9,
                            "attempts": 3, "seconds": 2.0}))
    assert "aborted (tg)" in out.getvalue()


def test_event_kinds_frozen():
    assert "error-finished" in EVENT_KINDS
    assert "campaign-finished" in EVENT_KINDS
