"""Tests for the persistent campaign service (``repro.service``).

The end-to-end tests boot the real asyncio server on a loopback port in a
background thread and talk to it with the real stdlib client — the same
code path CI's service-smoke job and the CLI ``--remote`` flag use.
"""

from __future__ import annotations

import contextlib
import json
import threading

import asyncio

import pytest

from repro.campaign.serialize import canonical_campaign_run, load_json
from repro.service import (
    CampaignServer,
    RateLimited,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TenantGovernor,
    TokenBucket,
)

# One quick mini campaign shape shared by the identity tests: every 40th
# error keeps the HTTP round trip seconds-long while exercising the full
# TG -> realize -> ISA-check pipeline.
REQUEST = {"target": "mini", "sample": 40, "deadline": 10.0}


@contextlib.contextmanager
def running_server(state_dir, **config_kwargs):
    """The real server on a loopback port, in a background event loop."""
    config = ServiceConfig(state_dir=str(state_dir), **config_kwargs)
    box: dict = {}
    ready = threading.Event()

    def serve() -> None:
        async def main() -> None:
            server = CampaignServer(config)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            ready.set()
            task = asyncio.get_running_loop().create_task(
                server.serve_forever()
            )
            await box["stop"].wait()
            task.cancel()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    try:
        yield box["server"]
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=10)


def _run_once(client: ServiceClient, request=REQUEST):
    """Submit, stream every event, and return (status, events)."""
    job_id = client.submit_campaign(**request)["id"]
    events = list(client.events(job_id))
    status = client.wait(job_id)
    return status, events


def _canonical(run: dict, include_cache_traffic: bool = True) -> str:
    return json.dumps(
        canonical_campaign_run(
            run, include_cache_traffic=include_cache_traffic
        ),
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# End to end: HTTP vs CLI identity, warm caches, streaming
# ---------------------------------------------------------------------------
def test_http_campaign_matches_cli_and_warms_caches(tmp_path, capsys):
    """The ISSUE's acceptance criterion, as one server lifetime:

    request 1 (cold) must be byte-identical to the CLI run in canonical
    form, and request 2 (warm) must report cross-request cache hits
    while changing nothing but the hit/miss split.
    """
    from repro.__main__ import main

    cli_json = tmp_path / "cli.json"
    assert main(["minipipe", "--sample", str(REQUEST["sample"]),
                 "--deadline", str(REQUEST["deadline"]),
                 "--json", str(cli_json)]) == 0
    capsys.readouterr()
    cli_run = load_json(str(cli_json))

    with running_server(tmp_path / "state") as server:
        client = ServiceClient(server.url)
        status1, events1 = _run_once(client)
        assert status1["status"] == "done"

        # The live stream is the report's event list, versioned and
        # monotonically sequenced.
        assert [e["kind"] for e in events1] == [
            e["kind"] for e in status1["result"]["events"]
        ]
        assert all(e["schema_version"] == 1 for e in events1)
        seqs = [e["seq"] for e in events1]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

        # Byte-identity with the CLI run (timing stripped).
        assert _canonical(status1["result"]) == _canonical(cli_run)

        # Second identical request: warm start, nonzero cross-request
        # hits, identical outcomes.
        status2, _ = _run_once(client)
        cache = status2["cache"]
        assert cache["warm_start"]["golden_traces"] > 0
        assert cache["warm_start"]["path_entries"] > 0
        assert cache["delta"]["golden"]["hits"] > 0
        assert cache["delta"]["golden"]["misses"] == 0
        assert cache["delta"]["path"]["hits"] > 0
        assert _canonical(status1["result"], include_cache_traffic=False) \
            == _canonical(status2["result"], include_cache_traffic=False)

        metrics = client.metrics()
        mini = metrics["caches"]["mini"]
        assert mini["requests"] == 2
        assert mini["warm_requests"] == 1
        assert mini["counters"]["golden"]["hits"] > 0
        assert metrics["workers"]["capacity"] == 2
        assert metrics["phase_cpu_seconds"]  # per-phase CPU accumulated


def test_healthz_metrics_and_errors(tmp_path):
    with running_server(tmp_path / "state") as server:
        client = ServiceClient(server.url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs_running"] == 0

        metrics = client.metrics()
        assert metrics["kind"] == "service-metrics"
        assert metrics["requests"]["total"] >= 1
        assert metrics["queue"]["depth"] == 0

        with pytest.raises(ServiceError) as excinfo:
            client.job("campaign-doesnotexist")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(target="z80")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(target="mini", jobs=0)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(target="mini",
                                   resume="campaign-doesnotexist")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/nowhere")
        assert excinfo.value.status == 404


def test_malformed_requests_get_clean_error_responses(tmp_path):
    """Garbage on the wire answers 400/413, not a dropped connection."""
    import socket

    def raw_exchange(server, payload: bytes) -> str:
        with socket.create_connection(
            (server.config.host, server.port), timeout=10
        ) as sock:
            sock.sendall(payload)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks).decode("latin-1")

    with running_server(tmp_path / "state") as server:
        assert "400 Bad Request" in raw_exchange(server, b"GARBAGE\r\n\r\n")
        assert "400 Bad Request" in raw_exchange(
            server, b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n"
        )
        assert "413 Payload Too Large" in raw_exchange(
            server,
            b"POST /v1/campaigns HTTP/1.1\r\n"
            b"Content-Length: 999999999999\r\n\r\n",
        )
        # The server survives all of the above.
        assert ServiceClient(server.url).healthz()["status"] == "ok"


def test_finished_jobs_are_compacted_then_forgotten(tmp_path):
    """A long-lived server bounds the memory terminal jobs hold: beyond
    max_finished_jobs full results are released (status metadata stays),
    beyond 4x the cap the job is forgotten entirely."""
    with running_server(tmp_path / "state", max_finished_jobs=1,
                        burst=50.0) as server:
        client = ServiceClient(server.url)
        job_ids = []
        for seed in range(6):
            job_id = client.submit_fuzz(machine="mini", iters=2,
                                        seed=seed + 1)["id"]
            status = client.wait(job_id)
            assert status["status"] == "done"
            job_ids.append(job_id)

        # 6 terminal jobs, cap 1, metadata cap 4: the 2 oldest are gone.
        for job_id in job_ids[:2]:
            with pytest.raises(ServiceError) as excinfo:
                client.job(job_id)
            assert excinfo.value.status == 404
        # The middle ones keep status metadata but no result/events.
        for job_id in job_ids[2:5]:
            status = client.job(job_id)
            assert status["evicted"]
            assert status["result"] is None
            assert status["status"] == "done"
            assert status["events_seen"] > 0
            assert status["events_dropped"] == 0  # no ring evictions
        # The newest keeps its full result.
        newest = client.job(job_ids[-1])
        assert not newest["evicted"]
        assert newest["result"]["report"]["iterations"] == 2

        metrics = client.metrics()
        assert metrics["jobs"]["total"] == 6
        assert metrics["jobs"]["retained"] == 4
        assert metrics["jobs"]["forgotten"] == 2
        assert metrics["jobs"]["compacted"] >= 3
        assert metrics["events"]["emitted"] > 0  # forgotten jobs counted


def test_remote_flag_rejects_local_checkpoint_flags(tmp_path, capsys):
    """--checkpoint/--resume are local-run flags; combining them with
    --remote is an error, not a silently non-resumable run."""
    from repro.__main__ import main

    assert main(["minipipe", "--remote", "http://127.0.0.1:1",
                 "--checkpoint", str(tmp_path / "ckpt.jsonl")]) == 2
    assert "--checkpoint/--resume" in capsys.readouterr().err


def test_single_error_tg_request(tmp_path):
    """A campaign body with explicit error specs is the TG-request shape."""
    with running_server(tmp_path / "state") as server:
        client = ServiceClient(server.url)
        job_id = client.submit_campaign(
            target="mini", deadline=10.0,
            errors=["bus-ssl:alu_add.y:0:1"],
        )["id"]
        status = client.wait(job_id)
        assert status["status"] == "done"
        outcomes = status["result"]["report"]["outcomes"]
        assert len(outcomes) == 1
        assert outcomes[0]["error"] == "bus-ssl alu_add.y[0] stuck-at-1"
        assert outcomes[0]["detected"]

        # Spec parsing needs the netlist, so bad specs fail the job
        # (cleanly) rather than the submit.
        bad = client.wait(
            client.submit_campaign(target="mini", errors=["nope:x"])["id"]
        )
        assert bad["status"] == "failed"
        assert "unknown error class" in bad["error"]


def test_fuzz_endpoint(tmp_path):
    with running_server(tmp_path / "state") as server:
        client = ServiceClient(server.url)
        job_id = client.submit_fuzz(machine="mini", iters=20, seed=1)["id"]
        events = list(client.events(job_id))
        status = client.wait(job_id)
        assert status["status"] == "done"
        report = status["result"]["report"]
        assert report["iterations"] == 20
        assert report["divergences"] == []
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "fuzz-started"
        assert kinds[-1] == "fuzz-finished"


def test_drain_interrupts_checkpoints_and_resumes(tmp_path):
    """SIGTERM's drain path: a running checkpointed campaign stops
    cooperatively, reports resumable, and a later server on the same
    state dir finishes it via ``resume``."""
    state = tmp_path / "state"
    request = {"target": "mini", "sample": 6, "deadline": 10.0,
               "checkpoint": True}
    with running_server(state) as server:
        client = ServiceClient(server.url)
        job_id = client.submit_campaign(**request)["id"]
        # Wait for the campaign to make some progress, then drain.
        finished = 0
        for event in client.events(job_id):
            if event["kind"] == "error-finished":
                finished += 1
                if finished >= 2:
                    drain = client.drain()
                    break
        status = client.wait(job_id)
        assert status["status"] == "interrupted"
        assert status["resumable"]
        assert job_id in drain["interrupted"]
        kinds = [e["kind"] for e in status["result"]["events"]]
        assert "campaign-interrupted" in kinds
        n_before = len(status["result"]["report"]["outcomes"])
        assert n_before >= 2

        # Draining servers refuse new work.
        assert client.healthz()["status"] == "draining"
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(**request)
        assert excinfo.value.status == 503

    # "Restart": a fresh server over the same state dir resumes the
    # checkpointed job and completes the tail.
    from repro.campaign.runner import MiniCampaign
    from repro.service.jobs import select_campaign_errors

    expected = len(select_campaign_errors(
        MiniCampaign(), "mini", {"sample": request["sample"]}
    ))
    with running_server(state) as server:
        client = ServiceClient(server.url)
        job_id2 = client.submit_campaign(
            **{**request, "resume": job_id}
        )["id"]
        status2 = client.wait(job_id2)
        assert status2["status"] == "done"
        report = status2["result"]["report"]
        assert len(report["outcomes"]) == expected
        started = [e for e in status2["result"]["events"]
                   if e["kind"] == "campaign-started"]
        assert started[0]["data"]["resumed"] == n_before


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
def test_rate_limit_rejects_with_retry_after(tmp_path):
    with running_server(tmp_path / "state", rate_per_second=0.001,
                        burst=2.0) as server:
        client = ServiceClient(server.url, tenant="greedy")
        client.submit_campaign(**REQUEST)
        client.submit_campaign(**REQUEST)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(**REQUEST)
        assert excinfo.value.status == 429
        assert excinfo.value.body.get("retry_after", 0) > 0
        # Another tenant owns its own bucket.
        other = ServiceClient(server.url, tenant="patient")
        other.submit_campaign(**REQUEST)
        metrics = client.metrics()
        assert metrics["requests"]["rate_limited"] == 1


def test_token_bucket_refills():
    bucket = TokenBucket(capacity=2.0, rate=1.0, tokens=2.0, updated=0.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    assert bucket.seconds_until_token() == pytest.approx(1.0)
    assert bucket.try_take(1.5)  # refilled
    assert not bucket.try_take(1.6)


def test_tenant_governor_caps_and_rates():
    clock = {"now": 0.0}
    governor = TenantGovernor(
        per_tenant_concurrency=1, rate_per_second=1.0, burst=2.0,
        clock=lambda: clock["now"],
    )
    governor.admit("a")
    governor.admit("a")
    with pytest.raises(RateLimited) as excinfo:
        governor.admit("a")
    assert excinfo.value.retry_after > 0
    governor.admit("b")  # independent bucket
    clock["now"] = 5.0
    governor.admit("a")  # refilled

    assert governor.can_start("a")
    governor.started("a")
    assert not governor.can_start("a")
    assert governor.can_start("b")
    governor.finished("a")
    assert governor.can_start("a")
    assert governor.running_by_tenant() == {}


def test_service_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(max_workers=0)
    with pytest.raises(ValueError):
        ServiceConfig(per_tenant_concurrency=0)
