"""Width-masking semantics pinned identically across datapath backends.

Every value stored for a net must lie inside the net's width — whatever
the environment, injector or module override handed the simulator.  The
contract (shared by the interpretive, scalar-compiled and batched numpy
backends):

* externals are masked to the net width at *emission*, before injection;
* injector and override results are masked to the output net's width;
* register state set through ``set_stimulus_state`` is masked to the
  register width.

The batched backend cannot tolerate out-of-range values at all (uint64
lane arrays refuse negative or oversized Python ints), which is what
turned the historical "environments always pass in-range values"
assumption into an enforced invariant.  These tests drive out-of-range
stimulus through every backend and assert bit-identical, in-range
results — including full-width 64-bit arithmetic at the wraparound
boundaries.
"""

import pytest

from repro.datapath import (
    HAS_NUMPY,
    CompiledDatapathSimulator,
    DatapathBuilder,
    DatapathSimulator,
)
from tests.helpers import build_toy_pipeline

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy absent (batched backend unavailable)"
)

#: Every external of the toy pipeline, all out of range: too wide,
#: negative, absurdly wide, and an out-of-range 1-bit control.
OUT_OF_RANGE = {
    "a": 0x1FF,          # 9 bits into an 8-bit net
    "b": -1,             # negative
    "c": (1 << 70) + 5,  # way past any width
    "alusrc": 2,         # 2 into a 1-bit control
    "op": 0,
    "wbsel": 1,
}


def _in_range(netlist, values):
    for name, value in values.items():
        if value is None:
            continue
        assert 0 <= value < (1 << netlist.nets[name].width), name


def test_concrete_out_of_range_externals():
    netlist = build_toy_pipeline()
    interp = DatapathSimulator(netlist).evaluate(OUT_OF_RANGE)
    compiled = CompiledDatapathSimulator(netlist).evaluate(OUT_OF_RANGE)
    assert compiled == interp
    _in_range(netlist, interp)
    assert interp["a"] == 0xFF  # 0x1FF & 0xFF
    assert interp["b"] == 0xFF  # -1 masked
    assert interp["c"] == 5
    assert interp["alusrc"] == 0  # 2 & 1


def test_partial_out_of_range_externals():
    netlist = build_toy_pipeline()
    frame = {"a": 0x1FF, "b": -2, "alusrc": 3, "op": 0}
    interp = DatapathSimulator(netlist).evaluate_partial(frame)
    compiled = CompiledDatapathSimulator(netlist).evaluate_partial(frame)
    assert compiled == interp
    _in_range(netlist, interp)
    assert interp["b"] == 0xFE
    assert interp["c"] is None  # genuinely unknown, not masked-to-0


def test_injector_result_masked():
    netlist = build_toy_pipeline()

    def overflowing(net, value):
        return value + 0x100 if net == "alu_add.y" else value

    frame = {"a": 9, "b": 4, "c": 0, "alusrc": 0, "op": 0, "wbsel": 0}
    interp = DatapathSimulator(netlist, injector=overflowing).evaluate(frame)
    compiled = CompiledDatapathSimulator(
        netlist, injector=overflowing
    ).evaluate(frame)
    assert compiled == interp
    _in_range(netlist, interp)
    assert interp["alu_add.y"] == 13  # +0x100 masked away


def test_injector_on_external_masked():
    netlist = build_toy_pipeline()

    def negate(net, value):
        return -value if net == "a" else value

    frame = {"a": 1, "b": 0, "c": 0, "alusrc": 0, "op": 0, "wbsel": 0}
    interp = DatapathSimulator(netlist, injector=negate).evaluate(frame)
    compiled = CompiledDatapathSimulator(
        netlist, injector=negate
    ).evaluate(frame)
    assert compiled == interp
    assert interp["a"] == 0xFF  # -1 masked to width


@pytest.mark.parametrize("partial", [False, True])
def test_override_result_masked(partial):
    netlist = build_toy_pipeline()
    overrides = {"alu_add": lambda ins, ctl: ins[0] - ins[1]}  # can go < 0
    frame = {"a": 1, "b": 9, "c": 0, "alusrc": 0, "op": 0, "wbsel": 0}
    interp_sim = DatapathSimulator(netlist, module_overrides=overrides)
    compiled = CompiledDatapathSimulator(netlist, module_overrides=overrides)
    if partial:
        interp = interp_sim.evaluate_partial(frame)
        assert compiled.evaluate_partial(frame) == interp
    else:
        interp = interp_sim.evaluate(frame)
        assert compiled.evaluate(frame) == interp
    _in_range(netlist, interp)
    assert interp["alu_add.y"] == (1 - 9) & 0xFF


def test_set_stimulus_state_masks_to_register_width():
    from repro.mini import build_minipipe
    from repro.verify import ProcessorSimulator

    processor = build_minipipe()
    sim = ProcessorSimulator(processor)
    reg_name = next(iter(sim.dp_sim.state))
    width = processor.datapath.module(reg_name).width
    sim.set_stimulus_state({reg_name: (1 << 70) | 5})
    assert sim.dp_sim.state[reg_name] == ((1 << 70) | 5) & ((1 << width) - 1)
    with pytest.raises(ValueError):
        sim.set_stimulus_state({"no_such_register": 0})


# ----------------------------------------------------------------------
# Full-width (64-bit) arithmetic at the wraparound boundaries
# ----------------------------------------------------------------------
def build_wide64():
    b = DatapathBuilder("wide64")
    b.set_stage(0)
    x = b.input("x", 64)
    y = b.input("y", 64)
    s = b.input("s", 7)  # shift amounts 0..127 — includes >= 64
    b.output("sum", b.add("add", x, y))
    b.output("diff", b.sub("sub", x, y))
    b.output("prod", b.mult("mul", x, y))
    b.output("sl", b.shl("shl", x, s))
    b.output("srl", b.shr("shr", x, s))
    b.output("sar", b.sra("sra", x, s))
    b.output("lt_s", b.lt("slt", x, y))
    b.output("inv", b.not_("neg", x))
    return b.build()


TOP = (1 << 64) - 1
WIDE_FRAMES = [
    {"x": TOP, "y": 1, "s": 0},           # add wraps to 0
    {"x": 0, "y": 1, "s": 63},            # sub wraps to TOP
    {"x": 1 << 63, "y": 1 << 63, "s": 1},  # mult wraps; signed lt ties
    {"x": TOP, "y": 1 << 63, "s": 64},     # shift amount == width
    {"x": 1 << 63, "y": TOP, "s": 100},    # shift amount > width
    {"x": 0xDEADBEEFCAFEF00D, "y": 0x0123456789ABCDEF, "s": 33},
]


def test_width64_scalar_backends_agree():
    netlist = build_wide64()
    compiled = CompiledDatapathSimulator(netlist)
    for frame in WIDE_FRAMES:
        interp = DatapathSimulator(netlist).evaluate(frame)
        assert compiled.evaluate(frame) == interp, frame
        _in_range(netlist, interp)
    # Spot-check the boundary semantics themselves.
    wrap = DatapathSimulator(netlist).evaluate({"x": TOP, "y": 1, "s": 64})
    assert wrap["sum"] == 0
    assert wrap["sl"] == 0 and wrap["srl"] == 0  # shift-by-width -> 0
    assert wrap["sar"] == TOP  # arithmetic shift saturates at the sign


@requires_numpy
def test_width64_batched_matches_scalar():
    from repro.datapath import BatchedDatapathSimulator

    netlist = build_wide64()
    batch = BatchedDatapathSimulator(netlist, len(WIDE_FRAMES))
    lanes = batch.evaluate(WIDE_FRAMES)
    for frame, lane in zip(WIDE_FRAMES, lanes):
        assert lane == DatapathSimulator(netlist).evaluate(frame), frame


@requires_numpy
def test_batched_out_of_range_externals_match_scalar():
    from repro.datapath import BatchedDatapathSimulator

    netlist = build_toy_pipeline()
    frames = [
        OUT_OF_RANGE,
        {"a": -7, "b": 300, "c": 1, "alusrc": 1, "op": 1, "wbsel": 0},
        {"a": 0, "b": 0, "c": 0, "alusrc": 0, "op": 0, "wbsel": 0},
    ]
    batch = BatchedDatapathSimulator(netlist, len(frames))
    lanes = batch.evaluate(frames)
    for frame, lane in zip(frames, lanes):
        assert lane == DatapathSimulator(netlist).evaluate(frame), frame


@requires_numpy
def test_batched_partial_out_of_range_match_scalar():
    from repro.datapath import BatchedDatapathSimulator

    netlist = build_toy_pipeline()
    frames = [
        {"a": 0x1FF, "b": -2, "alusrc": 3, "op": 0},
        {"a": 5},
        {"b": -1, "alusrc": 1, "op": 0},
    ]
    batch = BatchedDatapathSimulator(netlist, len(frames))
    lanes = batch.evaluate_partial(frames)
    for frame, lane in zip(frames, lanes):
        assert lane == DatapathSimulator(netlist).evaluate_partial(frame), \
            frame


@requires_numpy
def test_batched_step_masks_clocked_state():
    """Out-of-range externals feed a register: the clocked state must be
    masked identically to the scalar step."""
    from repro.datapath import BatchedDatapathSimulator
    from tests.helpers import build_linear_chain

    netlist = build_linear_chain()
    frames = [{"x": 0x1FF}, {"x": -1}, {"x": 254}]
    batch = BatchedDatapathSimulator(netlist, len(frames))
    batch.step(frames)
    for b, frame in enumerate(frames):
        scalar = DatapathSimulator(netlist)
        scalar.step(frame)
        assert batch.lane_state(b) == scalar.state, frame
