"""Tests for the timeframe baseline and the random test generator."""

import pytest

from repro.baselines import (
    RandomDlxGenerator,
    RandomMiniGenerator,
    RandomProgramConfig,
    TimeframeJust,
    random_campaign,
    search_space_sizes,
)
from repro.core.ctrljust import CtrlJust, JustStatus
from repro.errors import BusSSLError
from tests.test_controller_network import build_two_stage


@pytest.fixture(scope="module")
def unrolled():
    return build_two_stage().unroll(4)


def test_timeframe_decides_on_state_bits(unrolled):
    engine = TimeframeJust(unrolled)
    # CSI instances are decision variables in the timeframe organization.
    assert "2:is_load_ex" in engine._decidable
    # ... and are NOT in the pipeframe organization.
    pipeframe = CtrlJust(unrolled)
    assert "2:is_load_ex" not in pipeframe._decidable
    assert "2:stall" in pipeframe._decidable


def test_timeframe_solves_same_problem(unrolled):
    objective = [("2:write_en", 1)]
    pipeframe = CtrlJust(unrolled).justify(objective)
    timeframe = TimeframeJust(unrolled).justify(objective)
    assert pipeframe.status is JustStatus.SUCCESS
    assert timeframe.status is JustStatus.SUCCESS
    # Both solutions imply the objective.
    assert pipeframe.implied["2:write_en"] == 1
    assert timeframe.implied["2:write_en"] == 1


def test_timeframe_rejects_unreachable_state(unrolled):
    # Frame-0 state is the reset state: justifying write_en@0 = 1 needs
    # is_load_ex@0 = 1, which conflicts with reset in both organizations.
    assert TimeframeJust(unrolled).justify(
        [("0:write_en", 1)]
    ).status is JustStatus.FAILURE


def test_search_space_sizes(unrolled):
    sizes = search_space_sizes(unrolled)
    # op (2 bits) x 4 frames = 8 shared bits; 1 CTI bit and 1 CSI bit per
    # frame on each side.
    assert sizes["pipeframe_bits"] == sizes["timeframe_bits"]  # n2 == n3 here
    assert sizes["pipeframe_justify_bits"] == 4
    assert sizes["timeframe_justify_bits"] == 4


def test_search_space_sizes_dlx():
    from repro.dlx import build_dlx

    unrolled = build_dlx().controller.unroll(3)
    sizes = search_space_sizes(unrolled)
    assert sizes["pipeframe_bits"] < sizes["timeframe_bits"]
    assert sizes["pipeframe_justify_bits"] < sizes["timeframe_justify_bits"]


def test_random_generators_are_deterministic():
    gen = RandomDlxGenerator(RandomProgramConfig(length=8, seed=5))
    assert [str(i) for i in gen.program(0)] == [str(i) for i in gen.program(0)]
    assert [str(i) for i in gen.program(0)] != [str(i) for i in gen.program(1)]
    regs = gen.initial_registers(0)
    assert regs == gen.initial_registers(0)
    assert len(regs) == 32 and regs[0] == 0


def test_random_mini_generator():
    gen = RandomMiniGenerator(RandomProgramConfig(length=5, seed=2))
    program = gen.program(0)
    assert len(program) == 5
    regs = gen.initial_registers(0)
    assert len(regs) == 4


def test_random_campaign_on_minipipe():
    from repro.mini import build_minipipe, detects

    processor = build_minipipe()
    errors = [BusSSLError("alu_mux.y", bit, 0) for bit in range(4)]
    gen = RandomMiniGenerator(RandomProgramConfig(length=12, seed=9))

    def detect_fn(program, init_regs, error):
        return detects(processor, program, error, init_regs)

    result = random_campaign(errors, detect_fn, gen, n_programs=6)
    assert result.programs_run <= 6
    # Random programs find at least some stuck ALU bits quickly.
    assert result.coverage(len(errors)) > 0
