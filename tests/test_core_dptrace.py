"""Tests for DPTRACE path selection."""

import pytest

from repro.core.dptrace import DPTrace, TraceStatus
from repro.model.pathgraph import DatapathPathAnalyzer
from tests.helpers import (
    build_linear_chain,
    build_masking_datapath,
    build_toy_pipeline,
)


def test_chain_error_is_trivially_traceable():
    netlist = build_linear_chain()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=3)
    tracer = DPTrace(analyzer, implied_ctrl={})
    result = tracer.select_paths("a1.y", 0)
    assert result.status is TraceStatus.SUCCESS
    # The path ends at a DPO instance.
    last_frame, last_net = result.propagation_path[-1]
    assert last_net == "out"


def test_chain_error_at_last_frame_fails():
    netlist = build_linear_chain()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=2)
    tracer = DPTrace(analyzer, implied_ctrl={})
    # At the last frame the register never clocks the value out.
    result = tracer.select_paths("a1.y", 1)
    assert result.status is TraceStatus.FAILURE


def test_toy_pipeline_selects_controls():
    netlist = build_toy_pipeline()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=3)
    tracer = DPTrace(analyzer, implied_ctrl={})
    result = tracer.select_paths("alu_add.y", 0)
    assert result.status is TraceStatus.SUCCESS
    # Observation forces exmux to route the adder (op=0) at frame 0 and the
    # write-back mux to route the register (wbsel=0) at frame 1.
    assert result.ctrl_objectives.get((0, "op")) == 0
    assert result.ctrl_objectives.get((1, "wbsel")) == 0


def test_implied_controls_are_respected():
    netlist = build_toy_pipeline()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=3)
    # The controller already committed exmux to the AND result at frame 0:
    # the adder output cannot be observed in frame 0.
    tracer = DPTrace(analyzer, implied_ctrl={(0, "op"): 1})
    result = tracer.select_paths("alu_add.y", 0)
    assert result.status is TraceStatus.FAILURE
    assert (0, "op") not in result.ctrl_objectives


def test_and_class_side_inputs_get_controlled():
    netlist = build_masking_datapath()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=1)
    tracer = DPTrace(analyzer, implied_ctrl={})
    result = tracer.select_paths("adder.y", 0)
    # m is a DPI (C4 already), so observation through the AND succeeds with
    # no extra decisions needed on the side input.
    assert result.status is TraceStatus.SUCCESS


def test_unknown_error_net_rejected():
    netlist = build_linear_chain()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=2)
    tracer = DPTrace(analyzer, implied_ctrl={})
    with pytest.raises(ValueError):
        tracer.select_paths("nope", 0)
    with pytest.raises(ValueError):
        tracer.select_paths("a1.y", 9)


def test_error_on_dpo_is_immediately_observable():
    netlist = build_linear_chain()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=2)
    tracer = DPTrace(analyzer, implied_ctrl={})
    # At frame 0 'out' depends only on the reset-state register: it is not
    # controllable, but it IS closed (C3) — a determined value can still
    # activate a stuck bit, so path selection succeeds and leaves the
    # feasibility question to value selection.
    result = tracer.select_paths("out", 0)
    assert result.status is TraceStatus.SUCCESS
    result = tracer.select_paths("out", 1)
    assert result.status is TraceStatus.SUCCESS
    assert result.propagation_path == [(1, "out")]


def test_fo_choice_recorded():
    netlist = build_toy_pipeline()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=3)
    tracer = DPTrace(analyzer, implied_ctrl={})
    result = tracer.select_paths("alu_add.y", 0)
    assert result.status is TraceStatus.SUCCESS
    # Justifying the adder requires granting stem a or b (or alusrc const).
    assert result.fo_choices or result.ctrl_objectives
