"""Differential battery: batched lane simulation vs the scalar backends.

The batched numpy backend (:mod:`repro.datapath.batched` and the lane
co-simulator / environments built on it) is an execution strategy, not a
second semantics.  This suite pins it to the scalar compiled kernels —
which the compiled differential suite in turn pins to the interpretive
oracle — bit-for-bit:

* hypothesis-driven whole-batch equivalence on MiniPipe (fault-free and
  with injected errors), every lane compared cycle-by-cycle against a
  scalar run of that lane's program alone, ragged batches included;
* seeded equivalence on DLX and DLX+BP, fault-free and with errors from
  every model class, including failure-message parity for lanes whose
  scalar run raises ``CosimError``;
* lane widths 1, 2, 7 and 64 all produce the same per-program outcomes,
  and a width-1 batch reproduces the scalar trace exactly;
* the ``lanes`` knob and the numpy-absent fallback: ``effective_lanes``
  resolution, and a clean ``ImportError`` from every batched entry point
  when numpy is missing (simulated by stubbing the module's numpy
  handle, so this also runs on the real no-numpy CI tier).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.datapath.batched as batched
from repro.datapath.batched import HAS_NUMPY, effective_lanes
from repro.errors.models import (
    enumerate_boe,
    enumerate_bus_ssl,
    enumerate_mse,
)
from repro.mini import Instruction, MiniEnv, build_minipipe
from repro.verify.cosim import CosimError
from tests.helpers import build_toy_pipeline

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy absent (batched backend unavailable)"
)


@pytest.fixture(scope="module")
def minipipe():
    return build_minipipe()


def _mini_errors(processor):
    dp = processor.datapath
    return (enumerate_bus_ssl(dp, stages={1, 2})
            + enumerate_mse(dp) + enumerate_boe(dp))


def _scalar_mini(processor, program, regs, error=None):
    """One scalar run: (result, trace cycles, failure message)."""
    if error is not None:
        bad = error.attach(processor.datapath)
        env = MiniEnv(processor, injector=bad.injector,
                      module_overrides=bad.module_overrides)
    else:
        env = MiniEnv(processor)
    try:
        result = env.run(program, regs)
    except CosimError as exc:
        return None, _cycles(env.trace), str(exc)
    return result, _cycles(env.trace), None


def _cycles(trace):
    return [(c.controller, c.datapath) for c in trace.cycles]


def _batch_mini(processor, programs, regs_list, error=None,
                record="full"):
    from repro.mini.lanes import BatchMiniEnv

    if error is not None:
        bad = error.attach(processor.datapath)
        env = BatchMiniEnv(processor, len(programs), injector=bad.injector,
                           module_overrides=bad.module_overrides)
    else:
        env = BatchMiniEnv(processor, len(programs))
    return env.run(programs, regs_list, record=record)


def _assert_lane_matches_scalar(run, processor, program, regs, error=None):
    result, cycles, fail = _scalar_mini(processor, program, regs, error)
    assert run.failure == fail
    assert _cycles(run.trace) == cycles
    if fail is None:
        assert run.result.writes == result.writes
        assert run.result.registers == result.registers
    else:
        assert run.result is None


instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(["NOP", "ADD", "SUB", "AND", "XOR", "ADDI", "BEQ",
                        "SUBI"]),
    rs1=st.integers(0, 3),
    rs2=st.integers(0, 3),
    rd=st.integers(0, 3),
    imm=st.integers(0, 255),
)
#: Lanes are (program, initial registers); programs of different lengths
#: in one batch exercise the ragged-lane NOP padding.
lane_strategy = st.tuples(
    st.lists(instruction_strategy, max_size=8),
    st.lists(st.integers(0, 255), min_size=4, max_size=4),
)
batch_strategy = st.lists(lane_strategy, min_size=1, max_size=5)


@requires_numpy
@settings(max_examples=15, deadline=None)
@given(batch=batch_strategy)
def test_mini_fault_free_batch_equivalence(minipipe, batch):
    """Every lane of a (possibly ragged) batch is byte-identical to a
    scalar run of that lane's program alone."""
    programs = [program for program, _ in batch]
    regs_list = [regs for _, regs in batch]
    runs = _batch_mini(minipipe, programs, regs_list)
    for run, (program, regs) in zip(runs, batch):
        _assert_lane_matches_scalar(run, minipipe, program, regs)


@requires_numpy
@settings(max_examples=15, deadline=None)
@given(
    batch=st.lists(lane_strategy, min_size=2, max_size=4),
    error_index=st.integers(min_value=0, max_value=10**6),
)
def test_mini_injected_batch_equivalence(minipipe, batch, error_index):
    """Equivalence holds under every error-model hook — injectors (bus
    SSL) and module overrides (MSE / BOE) — applied to all lanes."""
    errors = _mini_errors(minipipe)
    error = errors[error_index % len(errors)]
    programs = [program for program, _ in batch]
    regs_list = [regs for _, regs in batch]
    runs = _batch_mini(minipipe, programs, regs_list, error)
    for run, (program, regs) in zip(runs, batch):
        _assert_lane_matches_scalar(run, minipipe, program, regs, error)


@requires_numpy
def test_mini_error_failure_message_parity(minipipe):
    """For every sampled error model: if the scalar run raises
    ``CosimError``, the lane records exactly that message; if it does
    not, the lane result matches."""
    from repro.baselines.random_gen import (
        RandomMiniGenerator,
        RandomProgramConfig,
    )

    generator = RandomMiniGenerator(RandomProgramConfig(length=10, seed=13))
    program = generator.program(0)
    regs = generator.initial_registers(0)
    for error in _mini_errors(minipipe)[::3]:
        runs = _batch_mini(minipipe, [program], [regs], error)
        _assert_lane_matches_scalar(runs[0], minipipe, program, regs, error)


@requires_numpy
@pytest.mark.parametrize("width", [1, 2, 7, 64])
def test_mini_lane_widths_agree(minipipe, width):
    """The lane width is invisible: 1, 2, 7 and 64 lanes all reproduce
    the scalar outcome of each lane's program."""
    from repro.baselines.random_gen import (
        RandomMiniGenerator,
        RandomProgramConfig,
    )
    from repro.mini.lanes import BatchMiniEnv

    generator = RandomMiniGenerator(RandomProgramConfig(length=10, seed=21))
    cases = [
        (generator.program(i), generator.initial_registers(i))
        for i in range(7)
    ]
    scalar = [MiniEnv(minipipe).run(p, r) for p, r in cases]
    programs = [cases[i % 7][0] for i in range(width)]
    regs_list = [cases[i % 7][1] for i in range(width)]
    runs = BatchMiniEnv(minipipe, width).run(programs, regs_list)
    for i, run in enumerate(runs):
        expected = scalar[i % 7]
        assert run.failure is None
        assert run.result.writes == expected.writes
        assert run.result.registers == expected.registers


@requires_numpy
def test_single_lane_reproduces_scalar_trace(minipipe):
    """A width-1 batch is the scalar co-simulation, trace and all."""
    from repro.baselines.random_gen import (
        RandomMiniGenerator,
        RandomProgramConfig,
    )

    generator = RandomMiniGenerator(RandomProgramConfig(length=12, seed=5))
    program = generator.program(0)
    regs = generator.initial_registers(0)
    runs = _batch_mini(minipipe, [program], [regs])
    _assert_lane_matches_scalar(runs[0], minipipe, program, regs)


@requires_numpy
def test_batch_env_validates_arguments(minipipe):
    from repro.mini.lanes import BatchMiniEnv

    env = BatchMiniEnv(minipipe, 2)
    with pytest.raises(ValueError, match="expected 2 programs"):
        env.run([[]])
    with pytest.raises(ValueError, match="record"):
        env.run([[], []], record="everything")


# ----------------------------------------------------------------------
# DLX and DLX+BP
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("branch_prediction", [False, True])
def test_dlx_batch_matches_scalar(branch_prediction):
    from repro.baselines.random_gen import (
        RandomDlxGenerator,
        RandomProgramConfig,
    )
    from repro.dlx import build_dlx
    from repro.dlx.env import DlxEnv
    from repro.dlx.lanes import BatchDlxEnv

    dlx = build_dlx(branch_prediction=branch_prediction)
    errors = (enumerate_bus_ssl(dlx.datapath, max_bits_per_net=1)
              + enumerate_mse(dlx.datapath) + enumerate_boe(dlx.datapath))
    generator = RandomDlxGenerator(RandomProgramConfig(length=12, seed=9))
    cases = [
        (generator.program(i), generator.initial_registers(i))
        for i in range(3)
    ]
    programs = [program for program, _ in cases]
    regs_list = [regs for _, regs in cases]

    for error in [None] + errors[5::41][:3]:
        scalar = []
        for program, regs in cases:
            if error is not None:
                bad = error.attach(dlx.datapath)
                env = DlxEnv(dlx, injector=bad.injector,
                             module_overrides=bad.module_overrides)
            else:
                env = DlxEnv(dlx)
            try:
                result = env.run(program, regs)
            except CosimError as exc:
                scalar.append((None, _cycles(env.trace), str(exc)))
            else:
                scalar.append((result, _cycles(env.trace), None))

        if error is not None:
            bad = error.attach(dlx.datapath)
            batch_env = BatchDlxEnv(dlx, 3, injector=bad.injector,
                                    module_overrides=bad.module_overrides)
        else:
            batch_env = BatchDlxEnv(dlx, 3)
        runs = batch_env.run(programs, regs_list, record="full")

        for run, (result, cycles, fail) in zip(runs, scalar):
            tag = f"bp={branch_prediction} error={error}"
            assert run.failure == fail, tag
            assert _cycles(run.trace) == cycles, tag
            if fail is None:
                assert run.result.events == result.events, tag
                assert run.result.registers == result.registers, tag
                assert run.result.memory.words == result.memory.words, tag


@requires_numpy
def test_dlx_ragged_batch():
    """Lanes with different program lengths (hence cycle counts) finish
    independently and still match their scalar runs."""
    from repro.baselines.random_gen import (
        RandomDlxGenerator,
        RandomProgramConfig,
    )
    from repro.dlx import build_dlx
    from repro.dlx.env import DlxEnv
    from repro.dlx.lanes import BatchDlxEnv

    dlx = build_dlx()
    short = RandomDlxGenerator(RandomProgramConfig(length=4, seed=2))
    long = RandomDlxGenerator(RandomProgramConfig(length=16, seed=2))
    cases = [
        (short.program(0), short.initial_registers(0)),
        (long.program(0), long.initial_registers(0)),
        ([], [0] * 32),
    ]
    runs = BatchDlxEnv(dlx, 3).run(
        [p for p, _ in cases], [r for _, r in cases], record="full"
    )
    for run, (program, regs) in zip(runs, cases):
        result = DlxEnv(dlx).run(program, regs)
        assert run.failure is None
        assert run.result.events == result.events
        assert run.result.registers == result.registers


# ----------------------------------------------------------------------
# The lanes knob and the numpy-absent fallback
# ----------------------------------------------------------------------
def test_effective_lanes_without_numpy(monkeypatch):
    monkeypatch.setattr(batched, "_np", None)
    monkeypatch.setattr(batched, "HAS_NUMPY", False)
    assert batched.effective_lanes(None) == 0  # auto falls back to scalar
    assert batched.effective_lanes(0) == 0
    with pytest.raises(ImportError, match="optional"):
        batched.effective_lanes(4)
    with pytest.raises(ImportError, match="lanes=0"):
        batched.require_numpy()


def test_effective_lanes_rejects_negative():
    with pytest.raises(ValueError, match="lanes"):
        effective_lanes(-1)


def test_entry_points_raise_clean_import_error(monkeypatch):
    monkeypatch.setattr(batched, "_np", None)
    netlist = build_toy_pipeline()
    with pytest.raises(ImportError, match="numpy"):
        batched.BatchedDatapathSimulator(netlist, 2)
    with pytest.raises(ImportError, match="numpy"):
        batched.batched_datapath(netlist)
    with pytest.raises(ImportError, match="numpy"):
        batched.BatchedDatapath(netlist)


@requires_numpy
def test_effective_lanes_with_numpy():
    assert effective_lanes(None) == batched.DEFAULT_LANES
    assert effective_lanes(0) == 0
    assert effective_lanes(5) == 5


@requires_numpy
def test_batched_rejects_bad_shapes():
    from repro.datapath import BatchedDatapathSimulator, DatapathBuilder

    with pytest.raises(ValueError, match="n_lanes"):
        BatchedDatapathSimulator(build_toy_pipeline(), 0)

    b = DatapathBuilder("toowide")
    x = b.input("x", 65)
    b.output("out", b.not_("inv", x))
    with pytest.raises(ValueError, match="<= 64"):
        BatchedDatapathSimulator(b.build(), 2)
