"""Tests for the differential fuzzing harness (repro.fuzz.harness)."""

import pytest

from repro.campaign.events import EventLog, EventStream
from repro.fuzz import (
    FuzzConfig,
    first_mismatch,
    machine_adapter,
    run_fuzz,
)
from repro.fuzz.harness import _shards

PLANT = "bus-ssl:alu_add.y:0:1"


def _event_stream():
    stream = EventStream()
    log = EventLog()
    stream.subscribe(log)
    return stream, log


# ---------------------------------------------------------------------------
# Fault-free runs: the oracle agrees with itself
# ---------------------------------------------------------------------------
def test_fault_free_mini_run_has_no_divergences():
    stream, log = _event_stream()
    config = FuzzConfig(machine="mini", iters=25, seed=3)
    report = run_fuzz(config, events=stream)
    assert report.iterations == 25
    assert report.divergences == []
    assert report.minimized == []
    assert not report.budget_exhausted
    assert [e.kind for e in log.events] == ["fuzz-started", "fuzz-finished"]

    processor = machine_adapter("mini").build()
    artifact = report.to_dict(processor)
    assert artifact["kind"] == "fuzz-report"
    assert artifact["n_divergences"] == 0
    coverage = artifact["coverage"]
    assert coverage["states"] > 0
    assert coverage["transitions"] > 0
    assert 0 < coverage["tertiary_value_coverage"] <= 1
    # Activity counters cover exactly the tertiary (hazard/bypass/squash)
    # signals, and random programs exercise at least one of them.
    assert set(coverage["tertiary_activity"]) == \
        set(processor.controller.cti_signals)
    assert any(count > 0 for count in coverage["tertiary_activity"].values())


def test_fault_free_dlx_run_has_no_divergences():
    report = run_fuzz(FuzzConfig(machine="dlx", iters=8, seed=5, length=8))
    assert report.iterations == 8
    assert report.divergences == []


# ---------------------------------------------------------------------------
# Planted errors: divergences are found, minimized and persisted
# ---------------------------------------------------------------------------
def test_planted_error_detected_and_minimized(tmp_path):
    stream, log = _event_stream()
    config = FuzzConfig(
        machine="mini", iters=20, seed=3, plant=PLANT, max_minimize=2
    )
    report = run_fuzz(config, events=stream, report_dir=str(tmp_path))
    assert report.divergences, "planted stuck-at must diverge"
    assert report.minimized
    assert len(report.minimized) <= 2
    for case in report.minimized:
        # The acceptance bar: every documented error model shrinks to a
        # handful of instructions.
        assert case["n_instructions"] <= 4
        path = tmp_path / case["reproducer_file"]
        assert path.exists()
        namespace: dict = {}
        exec(compile(path.read_text(), str(path), "exec"), namespace)
        namespace["test_fuzz_reproducer"]()  # emitted case passes
    assert log.of_kind("fuzz-divergence")
    assert log.of_kind("fuzz-minimized")


# ---------------------------------------------------------------------------
# Config validation, adapters, mismatch rendering, sharding, budget
# ---------------------------------------------------------------------------
def test_fuzz_config_validation():
    with pytest.raises(ValueError):
        FuzzConfig(machine="vax")
    with pytest.raises(ValueError):
        FuzzConfig(iters=-1)
    with pytest.raises(ValueError):
        FuzzConfig(jobs=0)


def test_machine_adapter_unknown_name():
    with pytest.raises(ValueError):
        machine_adapter("vax")


def test_first_mismatch_reports_element():
    spec = {"writes": [[1, 0], [2, 5]], "registers": [0, 5, 0, 0]}
    impl = {"writes": [[1, 0], [2, 7]], "registers": [0, 5, 0, 0]}
    assert first_mismatch(spec, impl) == "writes[1]: spec [2, 5] impl [2, 7]"
    assert first_mismatch(spec, spec) is None


def test_first_mismatch_reports_length():
    spec = {"writes": [[1, 0], [2, 5]]}
    impl = {"writes": [[1, 0]]}
    assert "length 2 (spec) vs 1 (impl)" in first_mismatch(spec, impl)


def test_shards_partition_indices():
    for iters in (0, 1, 7, 20):
        for jobs in (1, 3, 4, 8):
            shards = _shards(iters, jobs)
            flat = [i for shard in shards for i in shard]
            assert flat == list(range(iters))
            assert all(shard == sorted(shard) for shard in shards)


def test_budget_stops_early():
    report = run_fuzz(
        FuzzConfig(machine="mini", iters=100000, budget_seconds=0.05)
    )
    assert report.budget_exhausted
    assert 0 < report.iterations < 100000


def test_opcode_weights_bias_generator():
    # Weighting everything but ADDI to zero yields ADDI-only programs.
    weights = {"NOP": 0, "ADD": 0, "SUB": 0, "AND": 0, "XOR": 0,
               "BEQ": 0, "SUBI": 0}
    config = FuzzConfig(machine="mini", iters=3, opcode_weights=weights)
    generator = machine_adapter("mini").generator(config)
    for index in range(3):
        assert all(i.op == "ADDI" for i in generator.program(index))
