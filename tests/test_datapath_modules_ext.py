"""Tests for the extended module library (mult, min/max, abs, rotates)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.datapath.module import ModuleClass
from repro.datapath.modules import (
    AbsModule,
    MaxModule,
    MinModule,
    MultModule,
    RotlModule,
    RotrModule,
)
from repro.utils import mask, to_signed, to_unsigned

W = 8
words = st.integers(0, mask(W))


def test_classes():
    assert MultModule("m", W).module_class is ModuleClass.AND
    assert MinModule("m", W).module_class is ModuleClass.AND
    assert MaxModule("m", W).module_class is ModuleClass.AND
    assert AbsModule("m", W).module_class is ModuleClass.ADD
    assert RotlModule("m", W, 3).module_class is ModuleClass.AND


@given(words, words)
def test_mult_semantics(a, b):
    assert MultModule("m", W).evaluate([a, b], []) == (a * b) & mask(W)


@given(words, words)
def test_min_max_semantics(a, b):
    lo = MinModule("mn", W).evaluate([a, b], [])
    hi = MaxModule("mx", W).evaluate([a, b], [])
    assert {lo, hi} == {a, b} or lo == hi
    assert to_signed(lo, W) <= to_signed(hi, W)


@given(words)
def test_abs_semantics(a):
    result = AbsModule("ab", W).evaluate([a], [])
    assert result == to_unsigned(abs(to_signed(a, W)), W)


@given(words, st.integers(0, 15))
def test_rotate_roundtrip(a, amount):
    left = RotlModule("rl", W, 4).evaluate([a, amount], [])
    back = RotrModule("rr", W, 4).evaluate([left, amount], [])
    assert back == a


@given(words, st.integers(0, 15))
def test_rotate_preserves_popcount(a, amount):
    rotated = RotlModule("rl", W, 4).evaluate([a, amount], [])
    assert bin(rotated).count("1") == bin(a).count("1")


def _check_contract(module, index, target, inputs):
    value = module.solve_input(index, target, list(inputs), [])
    if value is not None:
        trial = list(inputs)
        trial[index] = value
        assert module.evaluate(trial, []) == target
    return value


@given(words, words, st.integers(0, 1))
def test_mult_solve_contract(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    _check_contract(MultModule("m", W), index, target, inputs)


@given(st.integers(1, mask(W), ).filter(lambda v: v % 2 == 1), words)
def test_mult_solve_odd_factor_always_works(odd, target):
    m = MultModule("m", W)
    value = m.solve_input(0, target, [None, odd], [])
    assert value is not None
    assert m.evaluate([value, odd], []) == target


@given(words, words, st.integers(0, 1))
def test_min_max_solve_contract(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    _check_contract(MinModule("mn", W), index, target, inputs)
    _check_contract(MaxModule("mx", W), index, target, inputs)


@given(words)
def test_abs_solve_contract(target):
    _check_contract(AbsModule("ab", W), 0, target, [None])


def test_abs_solve_negative_target_impossible():
    # |x| can never be a value with the sign bit set (except min itself).
    assert AbsModule("ab", W).solve_input(0, 0x90, [None], []) is None
    assert AbsModule("ab", W).solve_input(0, 0x80, [None], []) == 0x80
