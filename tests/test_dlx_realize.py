"""Unit tests for the DLX realizer (TG stimulus -> instruction program)."""

import pytest

from repro.core.tg import TestCase
from repro.dlx import NOP, build_dlx, to_cpi
from repro.dlx.isa import OPCODES
from repro.dlx.realize import RealizationError, RealizedDlxTest, realize
from repro.dlx.spec import DlxSpec
from repro.dlx.env import DlxEnv


@pytest.fixture(scope="module")
def dlx():
    return build_dlx()


def make_test(n_frames, cpi_overrides, dpi_overrides, decided=()):
    """Construct a TestCase with NOP defaults plus overrides."""
    cpi = [dict(to_cpi(NOP)) for _ in range(n_frames)]
    dpi = [
        {"rf_a": 0, "rf_b": 0, "imm16": 0, "dmem_rdata": 0}
        for _ in range(n_frames)
    ]
    for frame, fields in cpi_overrides.items():
        cpi[frame].update(fields)
    for frame, fields in dpi_overrides.items():
        dpi[frame].update(fields)
    return TestCase(
        n_frames=n_frames,
        cpi_frames=cpi,
        dpi_frames=dpi,
        stimulus_state={},
        error="synthetic",
        activation_frame=0,
        decided_cpi=frozenset(decided),
    )


def replay_matches_spec(dlx, realized: RealizedDlxTest) -> bool:
    spec = DlxSpec().run(
        realized.program, realized.init_regs, realized.init_memory
    )
    impl = DlxEnv(dlx).run(
        realized.program, realized.init_regs, realized.init_memory
    )
    return impl.events == spec.events


def test_nop_stimulus_realizes_to_nops(dlx):
    test = make_test(6, {}, {})
    realized = realize(dlx, test)
    assert len(realized.program) == 6
    assert all(i == NOP for i in realized.program)
    assert realized.init_regs == [0] * 32
    assert realized.init_memory == {}


def test_register_read_binds_initial_value(dlx):
    # An ADD at frame 0 whose operand A must read 0x1234.
    test = make_test(
        6,
        {0: {"op": OPCODES["ADD"], "rd": 3}},
        {1: {"rf_a": 0x1234, "rf_b": 0x10}},
        decided=[(0, "op"), (0, "rd")],
    )
    realized = realize(dlx, test)
    instr = realized.program[0]
    assert instr.op == "ADD"
    # The free rs/rt specifiers were allocated to registers whose initial
    # values are now bound.
    assert realized.init_regs[instr.rs] == 0x1234
    assert realized.init_regs[instr.rt] == 0x10
    assert replay_matches_spec(dlx, realized)


def test_same_value_reuses_register(dlx):
    test = make_test(
        7,
        {0: {"op": OPCODES["ADD"], "rd": 3},
         1: {"op": OPCODES["SUB"], "rd": 4}},
        {1: {"rf_a": 7, "rf_b": 7}, 2: {"rf_a": 7, "rf_b": 9}},
        decided=[(0, "op"), (0, "rd"), (1, "op"), (1, "rd")],
    )
    realized = realize(dlx, test)
    add, sub = realized.program[0], realized.program[1]
    # All reads of value 7 can share one register.
    assert realized.init_regs[add.rs] == 7
    assert realized.init_regs[sub.rt] == 9
    assert replay_matches_spec(dlx, realized)


def test_decided_specifier_conflict_aborts(dlx):
    # rs is DECIDED to r5 at both frames but must read two different
    # values with no intervening write: unrealizable.
    test = make_test(
        7,
        {0: {"op": OPCODES["ADD"], "rs": 5, "rd": 1},
         1: {"op": OPCODES["ADD"], "rs": 5, "rd": 2}},
        {1: {"rf_a": 1}, 2: {"rf_a": 2}},
        decided=[(0, "op"), (0, "rs"), (0, "rd"),
                 (1, "op"), (1, "rs"), (1, "rd")],
    )
    with pytest.raises(RealizationError):
        realize(dlx, test)


def test_immediate_taken_from_id_cycle(dlx):
    test = make_test(
        6,
        {0: {"op": OPCODES["ADDI"], "rt": 2}},
        {1: {"imm16": 0x00FF}},
        decided=[(0, "op"), (0, "rt")],
    )
    realized = realize(dlx, test)
    assert realized.program[0].imm == 0x00FF
    assert replay_matches_spec(dlx, realized)


def test_load_word_binds_memory(dlx):
    test = make_test(
        7,
        {0: {"op": OPCODES["LW"], "rt": 2}},
        {1: {"rf_a": 0x40, "imm16": 0},
         3: {"dmem_rdata": 0xCAFEBABE}},
        decided=[(0, "op"), (0, "rt")],
    )
    realized = realize(dlx, test)
    assert realized.init_memory.get(0x40) == 0xCAFEBABE
    assert replay_matches_spec(dlx, realized)


def test_store_then_load_consistency_checked(dlx):
    # Store 0 to address 0x40 at frame 0; load at frame 2 expecting a
    # different word from the same address: unrealizable.
    test = make_test(
        9,
        {0: {"op": OPCODES["SW"], "rt": 1},
         2: {"op": OPCODES["LW"], "rt": 2}},
        {1: {"rf_a": 0x40, "rf_b": 0, "imm16": 0},
         3: {"rf_a": 0x40, "imm16": 0},
         5: {"dmem_rdata": 0x999}},
        decided=[(0, "op"), (0, "rt"), (2, "op"), (2, "rt")],
    )
    with pytest.raises(RealizationError):
        realize(dlx, test)


def test_loads_into_r0_are_dont_care(dlx):
    # Two loads from the same address wanting different words — but the
    # first load's destination is r0, so its word is a don't-care.
    test = make_test(
        8,
        {0: {"op": OPCODES["LW"], "rt": 0},
         1: {"op": OPCODES["LW"], "rt": 2}},
        {3: {"dmem_rdata": 0x111}, 4: {"dmem_rdata": 0x222}},
        decided=[(0, "op"), (0, "rt"), (1, "op"), (1, "rt")],
    )
    realized = realize(dlx, test)
    assert realized.init_memory.get(0) == 0x222


def test_program_length_matches_frames(dlx):
    test = make_test(8, {}, {})
    realized = realize(dlx, test)
    assert len(realized.program) == 8
