"""Tests for the synthetic design-error models and enumeration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    BusOrderError,
    BusSSLError,
    ModuleSubstitutionError,
    enumerate_boe,
    enumerate_bus_ssl,
    enumerate_mse,
)
from repro.utils.bits import mask
from tests.helpers import build_toy_pipeline


def test_bus_ssl_validation():
    with pytest.raises(ValueError):
        BusSSLError("n", 0, 2)
    with pytest.raises(ValueError):
        BusSSLError("n", -1, 0)


@given(st.integers(0, mask(8)), st.integers(0, 7), st.integers(0, 1))
def test_bus_ssl_corrupt(value, bit, stuck):
    error = BusSSLError("n", bit, stuck)
    corrupted = error.corrupt(value)
    assert (corrupted >> bit) & 1 == stuck
    # Every other bit is untouched.
    assert corrupted & ~(1 << bit) == value & ~(1 << bit)


def test_bus_ssl_activation_constraint():
    error = BusSSLError("n", 3, 1)
    constraint = error.activation_constraint(2)
    assert constraint.frame == 2
    assert constraint.satisfied_by(0b0000)  # bit 3 == 0 activates sa1
    assert not constraint.satisfied_by(0b1000)
    error0 = BusSSLError("n", 3, 0)
    constraint0 = error0.activation_constraint(0)
    assert constraint0.satisfied_by(0b1000)


def test_bus_ssl_attach_and_inject():
    netlist = build_toy_pipeline()
    error = BusSSLError("alu_add.y", 0, 1)
    sim = error.attach(netlist)
    values = sim.evaluate({"a": 2, "b": 2, "alusrc": 0, "op": 0})
    assert values["alu_add.y"] == 5  # 4 with bit0 stuck at 1


def test_bus_ssl_attach_validates():
    netlist = build_toy_pipeline()
    with pytest.raises(ValueError):
        BusSSLError("nonexistent", 0, 0).attach(netlist)
    with pytest.raises(ValueError):
        BusSSLError("alu_add.y", 99, 0).attach(netlist)


def test_mse_substitutes_function():
    netlist = build_toy_pipeline()
    error = ModuleSubstitutionError("alu_add", "AddModule")
    sim = error.attach(netlist)
    values = sim.evaluate({"a": 9, "b": 4, "alusrc": 0, "op": 0})
    assert values["alu_add.y"] == 5  # add became sub
    assert error.site_net_in(netlist) == "alu_add.y"


def test_boe_swaps_inputs():
    from repro.datapath import DatapathBuilder

    b = DatapathBuilder("sw")
    x = b.input("x", 8)
    y = b.input("y", 8)
    b.output("o", b.sub("s", x, y))
    netlist = b.build()
    error = BusOrderError("s")
    sim = error.attach(netlist)
    values = sim.evaluate({"x": 10, "y": 3})
    assert values["o"] == (3 - 10) & 0xFF


def test_enumerate_bus_ssl_counts():
    netlist = build_toy_pipeline()
    errors = enumerate_bus_ssl(netlist)
    # Only module-driven, non-constant nets; both polarities per bit.
    nets = {e.net for e in errors}
    assert "four.y" not in nets  # constants excluded
    assert "a" not in nets  # external inputs excluded
    assert "alu_add.y" in nets
    by_net = [e for e in errors if e.net == "alu_add.y"]
    assert len(by_net) == 16  # 8 bits x 2 polarities


def test_enumerate_bus_ssl_bit_sampling():
    netlist = build_toy_pipeline()
    errors = enumerate_bus_ssl(netlist, max_bits_per_net=4)
    by_net = [e for e in errors if e.net == "alu_add.y"]
    # 3 low bits + MSB, both polarities.
    assert len(by_net) == 8
    bits = {e.bit for e in by_net}
    assert bits == {0, 1, 2, 7}


def test_enumerate_mse():
    netlist = build_toy_pipeline()
    errors = enumerate_mse(netlist)
    modules = {e.module for e in errors}
    assert "alu_add" in modules
    assert "alu_and" in modules  # AND has an OR substitution
    assert "outmux" not in modules  # no substitution for muxes


def test_enumerate_boe_skips_symmetric():
    netlist = build_toy_pipeline()
    errors = enumerate_boe(netlist)
    modules = {e.module for e in errors}
    assert "alu_add" not in modules  # addition is symmetric
    assert "ander" not in modules


def test_stage_filtered_enumeration():
    netlist = build_toy_pipeline()
    stage1 = enumerate_bus_ssl(netlist, stages={1})
    assert all(netlist.net(e.net).stage == 1 for e in stage1)
    assert stage1  # write-back stage has nets
