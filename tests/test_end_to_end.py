"""Consolidated end-to-end checks across the whole tool chain.

Each test runs the full Figure-3 flow on a small error batch and checks the
strongest available contract at every stage — the same chain the Table-1
campaign uses, exercised as plain tests so regressions surface here first.
"""

import pytest

from repro.campaign import DlxCampaign, MiniCampaign
from repro.core.tg import TestGenerator, TGStatus
from repro.errors import BusSSLError


DLX_BATCH = [
    BusSSLError("alu_add.y", 1, 0),
    BusSSLError("alu_xor.y", 0, 1),
    BusSSLError("load_mux.y", 2, 1),
    BusSSLError("mem_alu.y", 7, 0),
    BusSSLError("wb_alu.y", 31, 1),
]


@pytest.fixture(scope="module")
def dlx_campaign():
    return DlxCampaign(deadline_seconds=20.0)


def test_dlx_batch_end_to_end(dlx_campaign):
    for error in DLX_BATCH:
        outcome = dlx_campaign.run_error(error)
        assert outcome.detected, (outcome.error, outcome.failure_stage)
        assert outcome.test_length >= 6
        assert outcome.nontrivial_instructions >= 1


def test_dlx_tests_are_short(dlx_campaign):
    """The paper's 6.2-average: tests stay near the pipeline depth."""
    lengths = []
    for error in DLX_BATCH[:3]:
        outcome = dlx_campaign.run_error(error)
        assert outcome.detected
        lengths.append(outcome.test_length)
    assert sum(lengths) / len(lengths) <= 8


def test_dlx_fault_dropping_preserves_coverage(dlx_campaign):
    plain = dlx_campaign.run(DLX_BATCH, error_simulation=False)
    dropped = DlxCampaign(deadline_seconds=20.0).run(
        DLX_BATCH, error_simulation=True
    )
    assert dropped.n_detected == plain.n_detected == len(DLX_BATCH)
    assert any(o.dropped_by for o in dropped.outcomes)


def test_minipipe_batch_with_final_backtracks():
    campaign = MiniCampaign(deadline_seconds=10.0)
    batch = [BusSSLError("alu_sub.y", b, b % 2) for b in range(4)]
    report = campaign.run(batch)
    assert report.n_detected == len(batch)
    # Successful-search backtracks stay small (the paper's 50-for-252 scale).
    assert report.backtracks_detected <= 20 * len(batch)


def test_bp_machine_batch():
    """The same DLX errors detect on the branch-predicted variant."""
    from repro.dlx import build_dlx
    from repro.dlx.env import dlx_exposure_comparator

    generator = TestGenerator(
        build_dlx(branch_prediction=True),
        deadline_seconds=20,
        exposure_comparator=dlx_exposure_comparator,
    )
    for error in DLX_BATCH[:2]:
        assert generator.generate(error).status is TGStatus.DETECTED


def test_cli_minipipe_smoke(capsys):
    from repro.__main__ import main

    # A one-error 'campaign' through the CLI paths: generate command.
    assert main(["generate", "alu_or.y", "2", "1", "--deadline", "20"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
