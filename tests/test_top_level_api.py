"""The public API surface: everything advertised in __all__ exists and the
documented quickstart flows run."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_names_resolve():
    import repro.analysis
    import repro.baselines
    import repro.campaign
    import repro.controller
    import repro.core
    import repro.datapath
    import repro.dlx
    import repro.errors
    import repro.mini
    import repro.model
    import repro.verify

    for module in (
        repro.analysis, repro.baselines, repro.campaign, repro.controller,
        repro.core, repro.datapath, repro.dlx, repro.errors, repro.mini,
        repro.model, repro.verify,
    ):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_module_docstring_quickstart():
    """The quickstart in the package docstring must actually work."""
    from repro import BusSSLError, TestGenerator, build_dlx

    dlx = build_dlx()
    tg = TestGenerator(dlx)
    result = tg.generate(BusSSLError("alu_add.y", 0, 0))
    assert result.status.value == "detected"


def test_version():
    assert repro.__version__
