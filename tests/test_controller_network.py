"""Tests for the controller network, pipelined controller and unrolling."""

import pytest

from repro.controller import (
    AndNode,
    BufNode,
    ControlNetworkError,
    InSetNode,
    NotNode,
    OrNode,
    PipeRegister,
    PipelinedController,
    Signal,
    SignalKind,
    bit_signal,
    field_signal,
    instance_name,
)


def build_small_network():
    """c = a AND b; d = NOT c."""
    from repro.controller.network import ControlNetwork

    net = ControlNetwork("small")
    net.add_signal(bit_signal("a", SignalKind.CPI))
    net.add_signal(bit_signal("b", SignalKind.CPI))
    net.add_signal(bit_signal("c"))
    net.add_signal(bit_signal("d", SignalKind.CTRL))
    net.drive("c", AndNode(["a", "b"]))
    net.drive("d", NotNode("c"))
    return net


def test_evaluate_full_assignment():
    net = build_small_network()
    values = net.evaluate({"a": 1, "b": 1})
    assert values["c"] == 1 and values["d"] == 0


def test_evaluate_with_unknowns():
    net = build_small_network()
    values = net.evaluate({"a": 0})
    assert values["c"] == 0 and values["d"] == 1
    values = net.evaluate({"a": 1})
    assert values["c"] is None and values["d"] is None


def test_evaluate_with_override():
    net = build_small_network()
    values = net.evaluate({}, overrides={"c": 1})
    assert values["d"] == 0  # downstream consumes the decided value


def test_consistency_classification():
    net = build_small_network()
    # Decide c=1; with a=1,b=1 the cone computes 1 -> justified.
    _, justified, conflicting = net.consistency({"a": 1, "b": 1}, {"c": 1})
    assert justified == ["c"] and conflicting == []
    # With a=0 the cone computes 0 -> conflict.
    _, justified, conflicting = net.consistency({"a": 0}, {"c": 1})
    assert conflicting == ["c"]
    # With everything unknown the decision is still open.
    _, justified, conflicting = net.consistency({}, {"c": 1})
    assert justified == [] and conflicting == []


def test_duplicate_signal_rejected():
    net = build_small_network()
    with pytest.raises(ControlNetworkError):
        net.add_signal(bit_signal("a"))


def test_double_drive_rejected():
    net = build_small_network()
    with pytest.raises(ControlNetworkError):
        net.drive("c", OrNode(["a", "b"]))


def test_unknown_input_signal_rejected():
    net = build_small_network()
    net.add_signal(bit_signal("e"))
    with pytest.raises(ControlNetworkError):
        net.drive("e", BufNode("nonexistent"))


def test_cycle_detection():
    from repro.controller.network import ControlNetwork

    net = ControlNetwork("cyclic")
    net.add_signal(bit_signal("x"))
    net.add_signal(bit_signal("y"))
    net.drive("x", BufNode("y"))
    net.drive("y", BufNode("x"))
    with pytest.raises(ControlNetworkError):
        net.topological_order()


def test_external_signals():
    net = build_small_network()
    assert set(net.external_signals()) == {"a", "b"}


def test_empty_domain_rejected():
    with pytest.raises(ValueError):
        Signal("bad", ())


def test_duplicate_domain_rejected():
    with pytest.raises(ValueError):
        Signal("bad", (1, 1))


# ---------------------------------------------------------------------------
# A 2-stage pipelined controller used by several tests:
#
#   stage 0: decodes op (domain 0..3) -> is_load; CPR carries is_load to
#   stage 1; a tertiary 'stall' is computed from stage-1 state and feeds
#   back to gate the stage-0 CPR.
# ---------------------------------------------------------------------------
def build_two_stage():
    ctl = PipelinedController("two_stage", n_stages=2)
    ctl.add_signal(field_signal("op", (0, 1, 2, 3), SignalKind.CPI, stage=0))
    ctl.add_signal(bit_signal("is_load", stage=0))
    ctl.add_signal(bit_signal("is_load_ex", SignalKind.CSI, stage=1))
    ctl.add_signal(bit_signal("stall", SignalKind.CTI, stage=0))
    ctl.add_signal(bit_signal("not_stall", stage=0))
    ctl.add_signal(bit_signal("write_en", SignalKind.CTRL, stage=1))
    ctl.drive("is_load", InSetNode("op", {2, 3}))
    ctl.drive("stall", BufNode("is_load_ex"))
    ctl.drive("not_stall", NotNode("stall"))
    ctl.drive("write_en", BufNode("is_load_ex"))
    ctl.add_cpr(
        PipeRegister(
            q="is_load_ex", d="is_load", stage=1, reset=0, enable="not_stall"
        )
    )
    ctl.validate()
    return ctl


def test_two_stage_classification():
    ctl = build_two_stage()
    assert ctl.cpi_signals == ["op"]
    assert ctl.cti_signals == ["stall"]
    assert ctl.ctrl_signals == ["write_en"]
    assert ctl.csi_signals == ["is_load_ex"]


def test_state_and_tertiary_bits():
    ctl = build_two_stage()
    assert ctl.state_bits() == 1
    assert ctl.tertiary_bits() == 1
    stats = ctl.search_space_stats()
    assert stats["cpi_bits"] == 2  # op has 4 values -> 2 bits
    assert stats["timeframe_decision_bits"] == 3
    assert stats["pipeframe_decision_bits"] == 3


def test_simulate_cycle_pipeline_flow():
    ctl = build_two_stage()
    state = ctl.reset_state()
    values, state = ctl.simulate_cycle(state, {"op": 2})  # a load enters
    assert values["is_load"] == 1 and values["stall"] == 0
    assert state["is_load_ex"] == 1
    # Next cycle the load is in stage 1 and stalls stage 0.
    values, state2 = ctl.simulate_cycle(state, {"op": 0})
    assert values["stall"] == 1
    assert values["write_en"] == 1
    # The CPR was stalled (enable low), so it held its value.
    assert state2["is_load_ex"] == 1


def test_cpr_output_must_be_csi():
    ctl = PipelinedController("bad", 1)
    ctl.add_signal(bit_signal("q"))  # INTERNAL, not CSI
    ctl.add_signal(bit_signal("d", SignalKind.CPI))
    with pytest.raises(ControlNetworkError):
        ctl.add_cpr(PipeRegister(q="q", d="d", stage=0))


def test_validate_rejects_floating_internal():
    ctl = PipelinedController("bad", 1)
    ctl.add_signal(bit_signal("x"))  # undriven INTERNAL
    with pytest.raises(ControlNetworkError):
        ctl.validate()


def test_reset_out_of_domain_rejected():
    ctl = PipelinedController("bad", 1)
    ctl.add_signal(field_signal("q", (0, 1), SignalKind.CSI))
    ctl.add_signal(bit_signal("d", SignalKind.CPI))
    with pytest.raises(ValueError):
        ctl.add_cpr(PipeRegister(q="q", d="d", stage=0, reset=9))


# ---------------------------------------------------------------------------
# Unrolling
# ---------------------------------------------------------------------------
def test_unroll_structure():
    ctl = build_two_stage()
    unrolled = ctl.unroll(3)
    net = unrolled.network
    # Frame 0 CSI is the reset constant.
    values = net.evaluate({})
    assert values[instance_name(0, "is_load_ex")] == 0
    # All instances exist.
    for t in range(3):
        assert instance_name(t, "op") in net.signals


def test_unroll_concrete_agrees_with_simulation():
    ctl = build_two_stage()
    unrolled = ctl.unroll(4)
    ops = [2, 0, 3, 1]
    assignment = {instance_name(t, "op"): op for t, op in enumerate(ops)}
    values = unrolled.network.evaluate(assignment)

    state = ctl.reset_state()
    for t, op in enumerate(ops):
        cycle_values, state = ctl.simulate_cycle(state, {"op": op})
        for sig in ("is_load", "stall", "write_en", "is_load_ex"):
            assert values[instance_name(t, sig)] == cycle_values[sig], (
                f"mismatch at t={t} signal {sig}"
            )


def test_unroll_partial_inputs_leave_x():
    ctl = build_two_stage()
    unrolled = ctl.unroll(2)
    values = unrolled.network.evaluate({})
    # Frame 0 state is known (reset), so frame-0 stall is 0.
    assert values[instance_name(0, "stall")] == 0
    # Frame 1 state depends on the unknown op, so it is X.
    assert values[instance_name(1, "stall")] is None


def test_decision_instances():
    ctl = build_two_stage()
    unrolled = ctl.unroll(2)
    decisions = unrolled.decision_instances()
    assert instance_name(0, "op") in decisions
    assert instance_name(1, "stall") in decisions
    timeframe = unrolled.timeframe_decision_instances()
    assert instance_name(1, "is_load_ex") in timeframe


def test_unroll_rejects_zero_frames():
    ctl = build_two_stage()
    with pytest.raises(ValueError):
        ctl.unroll(0)


def test_instance_bounds_check():
    ctl = build_two_stage()
    unrolled = ctl.unroll(2)
    with pytest.raises(ValueError):
        unrolled.instance(5, "op")
    assert unrolled.frame_and_signal("1:op") == (1, "op")
