"""Extra coverage for controller unrolling corner cases."""

import pytest

from repro.controller import (
    BufNode,
    ControlNetworkError,
    PipeRegister,
    PipelinedController,
    SignalKind,
    bit_signal,
    field_signal,
    instance_name,
)


def build_enable_clear_controller():
    """A 1-stage controller whose CPR has both enable and clear."""
    ctl = PipelinedController("ec", 1)
    ctl.add_signal(bit_signal("d_in", SignalKind.CPI, stage=0))
    ctl.add_signal(bit_signal("en_in", SignalKind.CPI, stage=0))
    ctl.add_signal(bit_signal("clr_in", SignalKind.CPI, stage=0))
    ctl.add_signal(bit_signal("q", SignalKind.CSI, stage=0))
    ctl.add_signal(bit_signal("out", SignalKind.CTRL, stage=0))
    ctl.drive("out", BufNode("q"))
    ctl.add_cpr(PipeRegister(
        "q", "d_in", stage=0, reset=0, enable="en_in", clear="clr_in",
        clear_value=0,
    ))
    ctl.validate()
    return ctl


def test_enable_clear_simulation():
    ctl = build_enable_clear_controller()
    state = ctl.reset_state()
    _, state = ctl.simulate_cycle(state, {"d_in": 1, "en_in": 1, "clr_in": 0})
    assert state["q"] == 1
    _, state = ctl.simulate_cycle(state, {"d_in": 0, "en_in": 0, "clr_in": 0})
    assert state["q"] == 1  # held
    _, state = ctl.simulate_cycle(state, {"d_in": 1, "en_in": 1, "clr_in": 1})
    assert state["q"] == 0  # cleared, clear dominates


def test_enable_clear_unroll_agrees():
    ctl = build_enable_clear_controller()
    unrolled = ctl.unroll(4)
    stimulus = [
        {"d_in": 1, "en_in": 1, "clr_in": 0},
        {"d_in": 0, "en_in": 0, "clr_in": 0},
        {"d_in": 1, "en_in": 1, "clr_in": 1},
        {"d_in": 0, "en_in": 0, "clr_in": 0},
    ]
    assignment = {}
    for frame, inputs in enumerate(stimulus):
        for name, value in inputs.items():
            assignment[instance_name(frame, name)] = value
    values = unrolled.network.evaluate(assignment)

    state = ctl.reset_state()
    for frame, inputs in enumerate(stimulus):
        cycle_values, state = ctl.simulate_cycle(state, inputs)
        assert values[instance_name(frame, "q")] == cycle_values["q"], frame


def test_cpr_d_unknown_raises_in_concrete_sim():
    ctl = build_enable_clear_controller()
    state = ctl.reset_state()
    with pytest.raises(ControlNetworkError):
        # Enabled load with unknown D input is a modelling error.
        ctl.simulate_cycle(state, {"en_in": 1, "clr_in": 0})


def test_cso_and_internal_kinds_must_be_driven():
    ctl = PipelinedController("bad", 1)
    ctl.add_signal(bit_signal("dangling", SignalKind.CSO, stage=0))
    with pytest.raises(ControlNetworkError):
        ctl.validate()


def test_field_cpr_round_trip():
    """A multi-valued field travels a 3-deep CPR chain intact."""
    ctl = PipelinedController("chain", 3)
    domain = tuple(range(5))
    ctl.add_signal(field_signal("f", domain, SignalKind.CPI, stage=0))
    previous = "f"
    for stage in range(1, 4):
        name = f"f{stage}"
        ctl.add_signal(field_signal(name, domain, SignalKind.CSI, stage=stage))
        ctl.add_cpr(PipeRegister(name, previous, stage=stage, reset=0))
        previous = name
    ctl.add_signal(field_signal("out", domain, SignalKind.CTRL, stage=3))
    ctl.drive("out", BufNode("f3"))
    ctl.validate()

    unrolled = ctl.unroll(5)
    assignment = {instance_name(0, "f"): 4}
    values = unrolled.network.evaluate(assignment)
    assert values[instance_name(3, "out")] == 4
    assert values[instance_name(2, "out")] == 0  # still reset-propagated
