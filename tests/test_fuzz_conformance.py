"""Tests for the error-model conformance matrix (repro.fuzz.conformance)."""

import json
import os

from repro.datapath import DatapathBuilder
from repro.fuzz import (
    MatrixConfig,
    compare_matrices,
    matrix_artifact,
    reaches_observable,
    run_matrix,
)
from repro.mini import build_minipipe

BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "docs", "conformance_baseline_mini.json"
)


# ---------------------------------------------------------------------------
# Structural benign proof
# ---------------------------------------------------------------------------
def test_reaches_observable_on_minipipe():
    netlist = build_minipipe().datapath
    # Data inputs, ALU outputs and the DPO itself all reach an observable.
    for net in ("rf_a", "alu_add.y", "out"):
        assert reaches_observable(netlist, net)
    # On MiniPipe every net is observable — the matrix proves nothing
    # benign (cross-checked against the committed baseline below).
    assert all(reaches_observable(netlist, name) for name in netlist.nets)


def test_reaches_observable_false_for_dangling_cone():
    b = DatapathBuilder("dangling")
    b.set_stage(0)
    a = b.input("a", 8)
    k = b.const("k", 8, 1)
    b.add("dead", a, k)  # output net feeds nothing
    b.output("out", b.xor("live", a, k))
    netlist = b.build()
    assert not reaches_observable(netlist, "dead.y")
    assert reaches_observable(netlist, "a")  # reaches out via live


# ---------------------------------------------------------------------------
# Matrix runs
# ---------------------------------------------------------------------------
def test_mini_matrix_sampled_classifies_every_error():
    config = MatrixConfig(machine="mini", programs=12, sample=9)
    fragment = run_matrix(config)
    rows = fragment["errors"]
    assert rows
    assert all(
        row["classification"] in
        ("detected", "undetected_by_budget", "proven_benign")
        for row in rows
    )
    # Summary counts are consistent with the rows.
    total = sum(c["total"] for c in fragment["summary"].values())
    assert total == len(rows)
    for class_name, counts in fragment["summary"].items():
        class_rows = [r for r in rows if r["class"] == class_name]
        assert counts["total"] == len(class_rows)
        assert counts["detected"] == sum(
            1 for r in class_rows if r["classification"] == "detected"
        )
    # Detected rows record which budget program caught them.
    for row in rows:
        if row["classification"] == "detected":
            assert row["detected_by_program"] is not None
            assert row["programs_run"] == row["detected_by_program"] + 1


def test_matrix_artifact_shape():
    fragment = run_matrix(MatrixConfig(machine="mini", programs=4,
                                       sample=50, classes=("boe",)))
    artifact = matrix_artifact({"mini": fragment})
    assert artifact["kind"] == "conformance-matrix"
    assert artifact["schema"] == 1
    assert list(artifact["machines"]) == ["mini"]


def test_committed_baseline_is_consistent_with_fresh_run():
    with open(BASELINE, encoding="utf-8") as handle:
        baseline = json.load(handle)
    assert baseline["kind"] == "conformance-matrix"
    fragment = baseline["machines"]["mini"]
    # The committed baseline claims full detection on MiniPipe.
    for counts in fragment["summary"].values():
        assert counts["undetected_by_budget"] == 0
        assert counts["proven_benign"] == 0
    # A sampled fresh run at the baseline's budget must agree: every
    # sampled-detected error is detected in the committed artifact too.
    config = MatrixConfig(
        machine="mini",
        programs=fragment["config"]["programs"],
        length=fragment["config"]["length"],
        seed=fragment["config"]["seed"],
        sample=25,
    )
    sampled = matrix_artifact({"mini": run_matrix(config)})
    assert compare_matrices(sampled, baseline) == []


# ---------------------------------------------------------------------------
# Baseline comparison (the one-directional CI gate)
# ---------------------------------------------------------------------------
def _artifact(rows):
    return matrix_artifact({"mini": {
        "config": {}, "summary": {}, "errors": rows,
    }})


def _row(spec, classification):
    return {"error": spec, "spec": spec, "class": spec.split(":")[0],
            "classification": classification}


def test_compare_matrices_flags_regression():
    baseline = _artifact([_row("bus-ssl:x:0:1", "detected")])
    current = _artifact([_row("bus-ssl:x:0:1", "undetected_by_budget")])
    regressions = compare_matrices(baseline, current)
    assert len(regressions) == 1
    assert "regressed detected -> undetected_by_budget" in regressions[0]


def test_compare_matrices_flags_disappearance():
    baseline = _artifact([_row("bus-ssl:x:0:1", "detected")])
    current = _artifact([])
    assert "no longer enumerated" in compare_matrices(baseline, current)[0]


def test_compare_matrices_flags_missing_machine():
    baseline = _artifact([_row("bus-ssl:x:0:1", "detected")])
    current = {"machines": {}}
    assert "machine missing" in compare_matrices(baseline, current)[0]


def test_compare_matrices_ignores_improvements():
    baseline = _artifact([_row("bus-ssl:x:0:1", "undetected_by_budget")])
    current = _artifact([
        _row("bus-ssl:x:0:1", "detected"),
        _row("bus-ssl:y:0:1", "undetected_by_budget"),  # newly enumerated
    ])
    assert compare_matrices(baseline, current) == []
