"""C/O propagation through gated registers (stall/squash routes)."""

import pytest

from repro.core.costates import CState, OState
from repro.datapath import DatapathBuilder
from repro.model.pathgraph import DatapathPathAnalyzer

C1, C2, C3, C4 = CState.C1, CState.C2, CState.C3, CState.C4
O1, O2, O3 = OState.O1, OState.O2, OState.O3


def build_gated_pipeline():
    """x(DPI) -> reg(en, clr) -> +0 -> out(DPO)."""
    b = DatapathBuilder("gated")
    b.set_stage(0)
    x = b.input("x", 8)
    en = b.ctrl("en", 1)
    clr = b.ctrl("clr", 1)
    q = b.register("r", x, enable=en, clear=clr, clear_value=0)
    b.set_stage(1)
    b.output("out", b.add("pass", q, b.const("z", 8, 0)))
    return b.build()


@pytest.fixture(scope="module")
def analyzer():
    return DatapathPathAnalyzer(build_gated_pipeline(), n_frames=3)


def test_open_gating_is_unknown(analyzer):
    states = analyzer.compute({}, {})
    # With en/clr unknown at frame 0, the frame-1 register is unknown.
    assert states.net_c[(1, "r.y")] is C1


def test_load_route(analyzer):
    ctrl = {(0, "en"): 1, (0, "clr"): 0}
    states = analyzer.compute(ctrl, {})
    assert states.net_c[(1, "r.y")] is C4  # tracks the DPI


def test_hold_route(analyzer):
    ctrl = {(0, "en"): 0, (0, "clr"): 0}
    states = analyzer.compute(ctrl, {})
    # Holding keeps the frame-0 reset value: closed, not controllable.
    assert states.net_c[(1, "r.y")] is C3


def test_clear_route(analyzer):
    ctrl = {(0, "en"): 1, (0, "clr"): 1}
    states = analyzer.compute(ctrl, {})
    assert states.net_c[(1, "r.y")] is C3  # squashed to the constant


def test_observability_blocked_when_cleared(analyzer):
    # x@0 is observable through the register only if frame 0 loads.
    open_states = analyzer.compute({(0, "en"): 1, (0, "clr"): 0}, {})
    assert open_states.net_o[(0, "x")] is O3
    blocked = analyzer.compute({(0, "en"): 1, (0, "clr"): 1}, {})
    assert blocked.net_o[(0, "x")] is O2


def test_observability_unknown_when_gating_open(analyzer):
    states = analyzer.compute({}, {})
    assert states.net_o[(0, "x")] is O1


def test_hold_keeps_old_value_observable(analyzer):
    # Frame-0 q (reset) is observed at frame 1 out when frame 0 holds.
    ctrl = {(0, "en"): 0, (0, "clr"): 0}
    states = analyzer.compute(ctrl, {})
    assert states.net_o[(0, "r.y")] is O3
