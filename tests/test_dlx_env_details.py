"""Focused tests for the DLX environment shim (fetch/RF/memory contract)."""

import pytest

from repro.dlx import DlxEnv, DlxSpec, Instruction, build_dlx


@pytest.fixture(scope="module")
def dlx():
    return build_dlx()


def test_memory_initialization_respected(dlx):
    program = [Instruction("LW", rs=0, rt=1, imm=0x80)]
    impl = DlxEnv(dlx).run(program, init_memory={0x80: 0x1234})
    assert ("reg", 1, 0x1234) in impl.events


def test_misaligned_word_load_convention(dlx):
    """Misaligned loads truncate within the word — the documented
    convention, identical in spec and implementation."""
    program = [Instruction("LW", rs=0, rt=1, imm=0x82)]
    memory = {0x80: 0xAABBCCDD}
    spec = DlxSpec().run(program, init_memory=memory)
    impl = DlxEnv(dlx).run(program, init_memory=memory)
    assert impl.events == spec.events
    assert ("reg", 1, 0x0000AABB) in spec.events


def test_store_beyond_word_boundary_truncates(dlx):
    program = [
        Instruction("SH", rs=0, rt=1, imm=0x43),  # half at lane 3
        Instruction("LW", rs=0, rt=2, imm=0x40),
        Instruction("LW", rs=0, rt=3, imm=0x44),
    ]
    init = [0, 0xBEEF] + [0] * 30
    spec = DlxSpec().run(program, init)
    impl = DlxEnv(dlx).run(program, init)
    assert impl.events == spec.events
    # Only the byte that fits the word is written; the next word untouched.
    assert ("reg", 2, 0xEF000000) in spec.events
    assert ("reg", 3, 0) in spec.events


def test_r0_reads_stay_zero_after_attempted_write(dlx):
    program = [
        Instruction("ADDI", rs=0, rt=0, imm=0xFF),  # write to r0: dropped
        Instruction("ADDI", rs=0, rt=1, imm=1),     # r1 = r0 + 1
    ]
    impl = DlxEnv(dlx).run(program)
    assert impl.events == [("reg", 1, 1)]


def test_long_stall_chain(dlx):
    """Consecutive load-use pairs each stall once; everything retires."""
    program = []
    init_memory = {}
    for i in range(3):
        addr = 0x100 + 4 * i
        init_memory[addr] = i + 1
        program.append(Instruction("LW", rs=0, rt=1, imm=addr))
        program.append(Instruction("ADDI", rs=1, rt=2 + i, imm=0))
    spec = DlxSpec().run(program, init_memory=init_memory)
    impl = DlxEnv(dlx).run(program, init_memory=init_memory)
    assert impl.events == spec.events
    assert ("reg", 4, 3) in spec.events


def test_max_cycles_guard(dlx):
    """The cycle limit prevents runaway loops even with a tiny budget."""
    program = [Instruction("ADDI", rs=0, rt=1, imm=1)] * 4
    impl = DlxEnv(dlx).run(program, max_cycles=2)
    # Truncated run: fewer (or no) events, but no hang or crash.
    assert len(impl.events) <= 4
