"""Tests for coverage metrics, trace rendering and the Verilog export."""

import pytest

from repro.analysis import ControllerCoverage, CoverageCollector, render_pipeline_trace
from repro.datapath.export import export_verilog, structural_line_count
from repro.mini import Instruction, build_minipipe, to_cpi
from repro.verify import ProcessorSimulator


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def run(processor, program):
    sim = ProcessorSimulator(processor)
    cpi = [to_cpi(i) for i in program]
    dpi = [{"rf_a": 1, "rf_b": 2, "imm": i.imm} for i in program]
    return sim.run(cpi, dpi)


# ---------------------------------------------------------------------------
# Coverage
# ---------------------------------------------------------------------------
def test_states_and_transitions_counted(processor):
    collector = CoverageCollector(processor)
    trace = run(processor, [Instruction("ADDI", rd=1, imm=3),
                            Instruction("NOP"), Instruction("NOP")])
    collector.observe_trace(trace)
    assert collector.coverage.n_states() >= 2
    assert collector.coverage.n_transitions() >= 1


def test_nops_cover_little(processor):
    collector = CoverageCollector(processor)
    collector.observe_trace(run(processor, [Instruction("NOP")] * 4))
    # Only the idle state and self-transition.
    assert collector.coverage.n_states() == 1
    assert collector.coverage.n_transitions() == 1
    assert collector.coverage.tertiary_value_coverage(processor) < 1.0


def test_diverse_program_covers_more(processor):
    nops = CoverageCollector(processor)
    nops.observe_trace(run(processor, [Instruction("NOP")] * 6))
    rich = CoverageCollector(processor)
    rich.observe_trace(run(processor, [
        Instruction("ADDI", rd=1, imm=1),
        Instruction("SUB", rs1=1, rs2=1, rd=2),
        Instruction("BEQ", rs1=0, rs2=0),
        Instruction("XOR", rs1=1, rs2=2, rd=3),
        Instruction("NOP"),
        Instruction("NOP"),
    ]))
    assert rich.coverage.n_states() > nops.coverage.n_states()
    assert (rich.coverage.ctrl_value_coverage(processor)
            > nops.coverage.ctrl_value_coverage(processor))


def test_coverage_merge(processor):
    a = CoverageCollector(processor)
    a.observe_trace(run(processor, [Instruction("ADDI", rd=1, imm=1)] * 2))
    b = CoverageCollector(processor)
    b.observe_trace(run(processor, [Instruction("BEQ")] * 2))
    merged = ControllerCoverage()
    merged.merge(a.coverage)
    merged.merge(b.coverage)
    assert merged.n_states() >= max(a.coverage.n_states(),
                                    b.coverage.n_states())


def test_observe_tests_api(processor):
    from repro.core.tg import TestGenerator
    from repro.errors import BusSSLError

    result = TestGenerator(processor).generate(BusSSLError("alu_mux.y", 0, 0))
    collector = CoverageCollector(processor)
    coverage = collector.observe_tests([result.test])
    assert coverage.n_states() >= 2


# ---------------------------------------------------------------------------
# Pipeline trace rendering
# ---------------------------------------------------------------------------
def test_render_pipeline_trace(processor):
    trace = run(processor, [Instruction("ADDI", rd=1, imm=3),
                            Instruction("NOP")])
    text = render_pipeline_trace(
        trace,
        columns=[("op_id" if False else "wb_en", "ctl", None),
                 ("out", "dp", None)],
    )
    lines = text.splitlines()
    assert lines[0].startswith("cycle")
    assert len(lines) == 1 + len(trace.cycles)


def test_render_with_decoder(processor):
    from repro.mini.isa import MNEMONICS

    trace = run(processor, [Instruction("SUB", rd=1)])
    text = render_pipeline_trace(
        trace, columns=[("op", "ctl", None)], decoders={"op": MNEMONICS}
    )
    assert "SUB" in text


def test_render_empty_trace():
    from repro.verify.cosim import Trace

    text = render_pipeline_trace(Trace(), columns=[("x", "ctl", None)])
    assert text.startswith("cycle")


# ---------------------------------------------------------------------------
# Verilog export
# ---------------------------------------------------------------------------
def test_export_contains_structure(processor):
    text = export_verilog(processor.datapath)
    assert text.startswith("// generated")
    assert "module minipipe_dp (" in text
    assert "endmodule" in text
    assert "input [7:0] rf_a;" in text
    assert "output [7:0] out;" in text
    assert "add #(.WIDTH(8)) alu_add" in text
    assert ".clock(clock)" in text  # registers are clocked


def test_export_escapes_dotted_names(processor):
    text = export_verilog(processor.datapath)
    # Auto-generated net names like 'alu_add.y' must be escaped in wires
    # and connections.
    assert "alu_add_y" in text
    assert "wire [7:0] alu_add_y;" in text


def test_structural_line_count_dlx():
    from repro.dlx import build_dlx

    count = structural_line_count(build_dlx().datapath)
    # The paper's DLX was 1552 lines of structural Verilog (datapath +
    # controller); our leaner datapath alone lands in the same order of
    # magnitude.
    assert 100 <= count <= 2000
