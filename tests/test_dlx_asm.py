"""Tests for the DLX assembler/disassembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dlx.asm import AsmError, assemble, assemble_line, disassemble
from repro.dlx.isa import MNEMONIC_LIST, Instruction
from repro.dlx.spec import DlxSpec


def test_basic_forms():
    program = assemble(
        """
        ; a comment line
        ADD r3, r1, r2
        ADDI r2, r1, #5
        SLLI r2, r1, #3
        LW r2, 8(r1)
        SW 4(r1), r2
        BEQZ r1
        JR r1
        JAL #16
        J
        NOP
        """
    )
    assert [i.op for i in program] == [
        "ADD", "ADDI", "SLLI", "LW", "SW", "BEQZ", "JR", "JAL", "J", "ADDI",
    ]
    lw = program[3]
    assert (lw.rt, lw.rs, lw.imm) == (2, 1, 8)
    sw = program[4]
    assert (sw.rs, sw.rt, sw.imm) == (1, 2, 4)


def test_negative_and_hex_immediates():
    instr = assemble_line("ADDI r1, r0, #-1")
    assert instr.imm == 0xFFFF
    instr = assemble_line("ANDI r1, r0, #0xFF")
    assert instr.imm == 0xFF


def test_errors():
    with pytest.raises(AsmError):
        assemble_line("FROB r1, r2, r3")
    with pytest.raises(AsmError):
        assemble_line("ADD r1, r2")  # missing operand
    with pytest.raises(AsmError):
        assemble_line("ADD r1, r2, r99")  # bad register
    with pytest.raises(AsmError):
        assemble_line("ADDI r1, r0, #70000")  # immediate out of range
    with pytest.raises(AsmError):
        assemble_line("LW r1, 8[r2]")  # bad memory syntax
    with pytest.raises(AsmError):
        assemble_line("NOP r1")
    with pytest.raises(AsmError):
        assemble_line("J r1")


def test_blank_and_comment_lines_skipped():
    assert assemble("\n  ; only comments\n# hash comment\n") == []


instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(MNEMONIC_LIST),
    rs=st.integers(0, 31),
    rt=st.integers(0, 31),
    rd=st.integers(0, 31),
    imm=st.integers(0, 0xFFFF),
)


@given(st.lists(instruction_strategy, max_size=12))
def test_roundtrip_preserves_semantics(program):
    """assemble(disassemble(p)) behaves identically to p under the spec.

    (Field-level equality doesn't hold — don't-care fields are dropped by
    the textual form — so the property is semantic equivalence.)
    """
    text = disassemble(program)
    reassembled = assemble(text)
    assert len(reassembled) == len(program)
    init = [0] + [7 * i + 1 for i in range(1, 32)]
    init_memory = {0: 0x11223344, 4: 0x55667788}
    spec = DlxSpec()
    original = spec.run(program, init, init_memory)
    rebuilt = spec.run(reassembled, init, init_memory)
    assert original.events == rebuilt.events
    assert original.registers == rebuilt.registers
