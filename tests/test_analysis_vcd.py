"""Tests for the VCD trace export."""

import pytest

from repro.analysis.vcd import _binary, _identifier, read_vcd_header, write_vcd
from repro.mini import Instruction, build_minipipe, to_cpi
from repro.verify import ProcessorSimulator


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


@pytest.fixture(scope="module")
def trace(processor):
    sim = ProcessorSimulator(processor)
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=5),
        Instruction("SUB", rs1=1, rs2=0, rd=2),
        Instruction("NOP"),
        Instruction("NOP"),
    ]
    cpi = [to_cpi(i) for i in program]
    dpi = [{"rf_a": 0, "rf_b": 0, "imm": i.imm} for i in program]
    return sim.run(cpi, dpi)


def test_identifier_uniqueness():
    ids = {_identifier(i) for i in range(500)}
    assert len(ids) == 500


def test_binary_encoding():
    assert _binary(5, 4) == "0101"
    assert _binary(None, 3) == "xxx"
    assert _binary(0x1FF, 4) == "1111"  # masked to width


def test_write_and_parse_header(processor, trace, tmp_path):
    path = tmp_path / "trace.vcd"
    n_vars = write_vcd(trace, processor, str(path))
    scopes = read_vcd_header(str(path))
    assert set(scopes) == {"controller", "datapath"}
    assert len(scopes["controller"]) + len(scopes["datapath"]) == n_vars
    assert "wb_en" in scopes["controller"]
    assert "out" in scopes["datapath"]
    text = path.read_text()
    assert text.startswith("$date")
    assert "$dumpvars" in text
    assert "$enddefinitions $end" in text


def test_value_changes_recorded(processor, trace, tmp_path):
    path = tmp_path / "trace.vcd"
    write_vcd(trace, processor, str(path),
              controller_signals=["wb_en"], datapath_nets=["out"])
    text = path.read_text()
    # wb_en goes 0 -> 1 when the ADDI reaches write-back.
    lines = text.splitlines()
    one_changes = [ln for ln in lines if ln.startswith("1") and len(ln) <= 3]
    assert one_changes, "expected a wb_en rising change"
    # Timestamps are present and increasing.
    stamps = [int(ln[1:]) for ln in lines if ln.startswith("#")]
    assert stamps == sorted(stamps)


def test_narrowed_dump(processor, trace, tmp_path):
    path = tmp_path / "narrow.vcd"
    n_vars = write_vcd(trace, processor, str(path),
                       controller_signals=["squash"],
                       datapath_nets=["out", "alu_mux.y"])
    assert n_vars == 3
    scopes = read_vcd_header(str(path))
    assert scopes["datapath"] == ["out", "alu_mux_y"]
