"""DLX with branch prediction: equivalence and predictor behaviour.

The predictor is purely micro-architectural, so the ISA specification is
the same ``DlxSpec``; the fundamental property is that the predicted
machine still matches it on every program.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlx import DlxEnv, DlxSpec, Instruction, MNEMONICS, build_dlx


@pytest.fixture(scope="module")
def dlx_bp():
    return build_dlx(branch_prediction=True)


def check(dlx_bp, program, init_regs=None, init_memory=None):
    spec = DlxSpec().run(program, init_regs, init_memory)
    impl = DlxEnv(dlx_bp).run(program, init_regs, init_memory)
    assert impl.events == spec.events, (
        f"impl {impl.events} != spec {spec.events} for "
        f"{[str(i) for i in program]}"
    )
    return spec


def test_model_has_predictor(dlx_bp):
    controller = dlx_bp.controller
    assert "pred" in controller.network.signals
    assert "redirect_forward" in controller.cti_signals
    assert "redirect_back" in controller.cti_signals
    assert "branch_taken" not in controller.cti_signals
    assert DlxEnv(dlx_bp).branch_prediction


def test_plain_programs_unchanged(dlx_bp):
    program = [
        Instruction("ADDI", rs=0, rt=1, imm=5),
        Instruction("ADD", rs=1, rt=1, rd=2),
        Instruction("SW", rs=0, rt=2, imm=0x40),
        Instruction("LW", rs=0, rt=3, imm=0x40),
    ]
    spec = check(dlx_bp, program)
    assert ("reg", 3, 10) in spec.events


def test_first_branch_predicted_not_taken(dlx_bp):
    # Predictor resets to 0: the first taken branch mispredicts (squash 2)
    # but the architectural outcome is the spec's.
    program = [
        Instruction("BEQZ", rs=0),               # taken (r0 == 0)
        Instruction("ADDI", rs=0, rt=1, imm=1),  # skipped
        Instruction("ADDI", rs=0, rt=2, imm=2),  # skipped
        Instruction("ADDI", rs=0, rt=3, imm=3),
    ]
    spec = check(dlx_bp, program)
    assert spec.events == [("reg", 3, 3)]


def test_second_taken_branch_is_predicted(dlx_bp):
    # After one taken branch trains the predictor, the next taken branch
    # costs no squash — and the outcome still matches the spec.
    program = [
        Instruction("BEQZ", rs=0),               # taken: trains pred=1
        Instruction("ADDI", rs=0, rt=1, imm=1),  # skipped
        Instruction("ADDI", rs=0, rt=2, imm=2),  # skipped
        Instruction("BEQZ", rs=0),               # taken: predicted
        Instruction("ADDI", rs=0, rt=3, imm=3),  # skipped
        Instruction("ADDI", rs=0, rt=4, imm=4),  # skipped
        Instruction("ADDI", rs=0, rt=5, imm=5),
    ]
    spec = check(dlx_bp, program)
    assert spec.events == [("reg", 5, 5)]


def test_mispredicted_taken_rewinds(dlx_bp):
    # Train the predictor taken, then a NOT-taken branch: the fetch ran
    # ahead on the wrong path and must rewind (redirect_back).
    program = [
        Instruction("BEQZ", rs=0),               # taken: pred := 1
        Instruction("ADDI", rs=0, rt=1, imm=1),  # skipped
        Instruction("ADDI", rs=0, rt=2, imm=2),  # skipped
        Instruction("ADDI", rs=0, rt=6, imm=6),  # executes; r6 != 0
        Instruction("BNEZ", rs=0),               # NOT taken; predicted taken
        Instruction("ADDI", rs=0, rt=7, imm=7),  # must still execute!
        Instruction("ADDI", rs=0, rt=8, imm=8),  # must still execute!
    ]
    spec = check(dlx_bp, program)
    assert ("reg", 7, 7) in spec.events
    assert ("reg", 8, 8) in spec.events


def test_branch_with_load_use_stall(dlx_bp):
    program = [
        Instruction("SW", rs=0, rt=1, imm=0x10),
        Instruction("LW", rs=0, rt=2, imm=0x10),
        Instruction("BEQZ", rs=2),               # load-use on the branch
        Instruction("ADDI", rs=0, rt=3, imm=3),
        Instruction("ADDI", rs=0, rt=4, imm=4),
        Instruction("ADDI", rs=0, rt=5, imm=5),
    ]
    check(dlx_bp, program, init_regs=[0, 0] + [0] * 30)


def test_back_to_back_branches(dlx_bp):
    init = [0, 9] + [0] * 30
    program = [
        Instruction("BEQZ", rs=0),               # taken
        Instruction("BNEZ", rs=1),               # skipped
        Instruction("ADDI", rs=0, rt=2, imm=2),  # skipped
        Instruction("BNEZ", rs=1),               # taken, now predicted
        Instruction("ADDI", rs=0, rt=3, imm=3),  # skipped
        Instruction("ADDI", rs=0, rt=4, imm=4),  # skipped
        Instruction("ADDI", rs=0, rt=5, imm=5),
    ]
    spec = check(dlx_bp, program, init)
    assert spec.events == [("reg", 5, 5)]


OPS = list(MNEMONICS.values())
instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(OPS),
    rs=st.integers(0, 31),
    rt=st.integers(0, 31),
    rd=st.integers(0, 31),
    imm=st.integers(0, 0xFFFF),
)


@settings(max_examples=40, deadline=None)
@given(
    program=st.lists(instruction_strategy, max_size=10),
    seeds=st.lists(st.integers(0, 0xFFFFFFFF), min_size=8, max_size=8),
)
def test_spec_impl_equivalence_random_bp(dlx_bp, program, seeds):
    """Branch prediction must never change the architectural outcome."""
    init = [0] * 32
    for i, seed in enumerate(seeds):
        init[1 + i] = seed
    spec = DlxSpec().run(program, init)
    impl = DlxEnv(dlx_bp).run(program, init)
    assert impl.events == spec.events


def test_tg_works_on_bp_machine(dlx_bp):
    """The pipeframe TG runs unchanged on the predicted machine — the new
    tertiary signals are just more CTIs."""
    from repro.core.tg import TestGenerator, TGStatus
    from repro.errors import BusSSLError

    generator = TestGenerator(dlx_bp, deadline_seconds=20)
    result = generator.generate(BusSSLError("alu_add.y", 0, 0))
    assert result.status is TGStatus.DETECTED
