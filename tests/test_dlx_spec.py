"""Unit tests for the DLX ISA specification simulator and memory model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dlx.isa import Instruction, MNEMONIC_LIST
from repro.dlx.spec import DlxSpec, Memory
from repro.utils.bits import mask, to_unsigned


def test_isa_has_exactly_44_instructions():
    assert len(MNEMONIC_LIST) == 44
    assert len(set(MNEMONIC_LIST)) == 44


def test_instruction_validation():
    with pytest.raises(ValueError):
        Instruction("FOO")
    with pytest.raises(ValueError):
        Instruction("ADD", rs=32)
    with pytest.raises(ValueError):
        Instruction("ADDI", imm=1 << 16)


def test_instruction_dest():
    assert Instruction("ADD", rd=5).dest == 5  # R-type: rd
    assert Instruction("ADDI", rt=7).dest == 7  # I-type: rt
    assert Instruction("LW", rt=9).dest == 9
    assert Instruction("JAL").dest == 31


def test_instruction_str_forms():
    assert "ADD" in str(Instruction("ADD", rs=1, rt=2, rd=3))
    assert str(Instruction("J")) == "J"
    assert "BEQZ" in str(Instruction("BEQZ", rs=4))
    assert "(r1)" in str(Instruction("LW", rs=1, rt=2, imm=8))


# ---------------------------------------------------------------------------
# Memory model
# ---------------------------------------------------------------------------
def test_memory_word_roundtrip():
    m = Memory()
    m.write(0x100, 0xDEADBEEF, 2)  # word
    assert m.read_word(0x100) == 0xDEADBEEF
    assert m.read_word(0x102) == 0xDEADBEEF  # aligned read


def test_memory_byte_lanes():
    m = Memory()
    m.write(0x100, 0xAA, 0)  # byte at lane 0
    m.write(0x101, 0xBB, 0)  # byte at lane 1
    assert m.read_word(0x100) == 0xBBAA


def test_memory_halfword():
    m = Memory()
    m.write(0x102, 0x1234, 1)  # half at lane 2
    assert m.read_word(0x100) == 0x12340000


def test_memory_sub_word_write_preserves_rest():
    m = Memory()
    m.write(0x100, 0xFFFFFFFF, 2)
    m.write(0x101, 0x00, 0)
    assert m.read_word(0x100) == 0xFFFF00FF


def test_memory_load_shifts_to_lane():
    m = Memory()
    m.write(0x200, 0x44332211, 2)
    assert m.load(0x200, 0) & 0xFF == 0x11
    assert m.load(0x201, 0) & 0xFF == 0x22
    assert m.load(0x202, 1) & 0xFFFF == 0x4433


@given(st.integers(0, mask(32)), st.integers(0, 3), st.integers(0, mask(32)))
def test_memory_byte_write_read_roundtrip(addr, lane, value):
    m = Memory()
    address = (addr & ~0x3) + lane
    m.write(address, value, 0)
    assert m.load(address, 0) & 0xFF == value & 0xFF


# ---------------------------------------------------------------------------
# Specification semantics
# ---------------------------------------------------------------------------
def test_sign_vs_zero_extended_immediates():
    spec = DlxSpec()
    # ADDI sign-extends: 0xFFFF is -1.
    r = spec.run([Instruction("ADDI", rs=0, rt=1, imm=0xFFFF)])
    assert r.registers[1] == to_unsigned(-1, 32)
    # ANDI zero-extends: 0xFFFF stays 0x0000FFFF.
    r = spec.run(
        [Instruction("ANDI", rs=1, rt=2, imm=0xFFFF)],
        init_regs=[0, 0xFFFFFFFF] + [0] * 30,
    )
    assert r.registers[2] == 0xFFFF


def test_setcc_results_are_0_or_1():
    init = [0, 5, 9] + [0] * 29
    spec = DlxSpec()
    r = spec.run([Instruction("SLT", rs=1, rt=2, rd=3)], init)
    assert r.registers[3] == 1
    r = spec.run([Instruction("SGE", rs=1, rt=2, rd=3)], init)
    assert r.registers[3] == 0


def test_shift_amount_masked_to_5_bits():
    init = [0, 1, 33] + [0] * 29  # 33 & 31 == 1
    r = DlxSpec().run([Instruction("SLL", rs=1, rt=2, rd=3)], init)
    assert r.registers[3] == 2


def test_branch_skip_two():
    program = [
        Instruction("BNEZ", rs=1),
        Instruction("ADDI", rs=0, rt=2, imm=1),
        Instruction("ADDI", rs=0, rt=3, imm=1),
        Instruction("ADDI", rs=0, rt=4, imm=1),
    ]
    r = DlxSpec().run(program, [0, 1] + [0] * 30)
    assert r.registers[2] == 0 and r.registers[3] == 0 and r.registers[4] == 1


def test_jump_skip_one_and_jal_link():
    program = [
        Instruction("JAL", imm=0x8000),  # link = sign-extended imm
        Instruction("ADDI", rs=0, rt=2, imm=1),  # skipped
        Instruction("ADDI", rs=0, rt=3, imm=1),
    ]
    r = DlxSpec().run(program)
    assert r.registers[31] == to_unsigned(-0x8000, 32)
    assert r.registers[2] == 0 and r.registers[3] == 1


def test_r0_always_zero():
    r = DlxSpec().run([Instruction("ADDI", rs=0, rt=0, imm=99)])
    assert r.registers[0] == 0
    assert r.events == []


def test_load_event_emitted():
    r = DlxSpec().run(
        [Instruction("LW", rs=0, rt=1, imm=0x20)],
        init_memory={0x20: 0x777},
    )
    assert ("load", 0x20, 2) in r.events
    assert r.registers[1] == 0x777


def test_store_event_masked_to_size():
    r = DlxSpec().run(
        [Instruction("SB", rs=0, rt=1, imm=0x10)],
        init_regs=[0, 0xABCD] + [0] * 30,
    )
    assert ("mem", 0x10, 0, 0xCD) in r.events


def test_init_regs_length_checked():
    with pytest.raises(ValueError):
        DlxSpec().run([], init_regs=[0, 1, 2])
