"""Tests for the C/O state algebra (Figure 5 propagation rules)."""

from repro.core.costates import (
    CState,
    OState,
    add_c_forward,
    add_o_backward,
    and_c_forward,
    and_o_backward,
    branch_c_from_stem,
    mux_c_forward,
    mux_o_backward,
    net_o_from_sinks,
)

C1, C2, C3, C4 = CState.C1, CState.C2, CState.C3, CState.C4
O1, O2, O3 = OState.O1, OState.O2, OState.O3


def test_add_c_single_controlled_input_controls_output():
    assert add_c_forward([C4, C3]) is C4
    assert add_c_forward([C2, C4]) is C4
    assert add_c_forward([C4, C4]) is C4


def test_add_c_unknown_dominates_uncontrollable():
    assert add_c_forward([C1, C3]) is C1
    assert add_c_forward([C1, C2]) is C1


def test_add_c_uncontrollable():
    assert add_c_forward([C2, C3]) is C2
    assert add_c_forward([C3, C3]) is C3


def test_and_c_all_inputs_needed():
    assert and_c_forward([C4, C4]) is C4
    assert and_c_forward([C4, C3]) is C3
    assert and_c_forward([C3, C1]) is C2  # legible Figure 5 entry
    assert and_c_forward([C4, C1]) is C1
    assert and_c_forward([C2, C4]) is C2
    assert and_c_forward([C1, C1]) is C1


def test_mux_c_with_select_assigned():
    assert mux_c_forward([C4, C3], selected=0) is C4
    assert mux_c_forward([C4, C3], selected=1) is C3


def test_mux_c_with_select_open():
    assert mux_c_forward([C4, C3], selected=None) is C1
    assert mux_c_forward([C2, C3], selected=None) is C2
    assert mux_c_forward([C2, C2], selected=None) is C2


def test_add_o_requires_closed_sides():
    assert add_o_backward(O3, [C3]) is O3
    assert add_o_backward(O3, [C4]) is O3
    assert add_o_backward(O3, [C1]) is O1
    assert add_o_backward(O3, [C2]) is O1
    assert add_o_backward(O2, [C4]) is O2
    assert add_o_backward(O1, [C4]) is O1


def test_and_o_requires_controlled_sides():
    assert and_o_backward(O3, [C4]) is O3
    assert and_o_backward(O3, [C3]) is O2  # uncontrollable side blocks
    assert and_o_backward(O3, [C2]) is O2
    assert and_o_backward(O3, [C1]) is O1
    assert and_o_backward(O2, [C4]) is O2


def test_mux_o_respects_select():
    assert mux_o_backward(O3, selected=0, input_index=0) is O3
    assert mux_o_backward(O3, selected=1, input_index=0) is O2
    assert mux_o_backward(O3, selected=None, input_index=0) is O1
    assert mux_o_backward(O2, selected=0, input_index=0) is O2


def test_net_o_from_sinks():
    assert net_o_from_sinks([O2, O3]) is O3
    assert net_o_from_sinks([O2, O2]) is O2
    assert net_o_from_sinks([O1, O2]) is O1
    assert net_o_from_sinks([]) is O2  # dangling nets are unobservable


def test_branch_c_from_stem_unassigned_fo():
    assert branch_c_from_stem(C4, None, 0) is C1
    assert branch_c_from_stem(C3, None, 0) is C3
    assert branch_c_from_stem(C1, None, 0) is C1


def test_branch_c_from_stem_assigned_fo():
    assert branch_c_from_stem(C4, 1, 1) is C4  # selected branch wins
    assert branch_c_from_stem(C4, 1, 0) is C2  # other branches blocked
    assert branch_c_from_stem(C3, 1, 0) is C3  # determined stays determined
