"""Unit tests for the DLX controller's decode, hazard and forwarding logic."""

import pytest

from repro.dlx.controller import SQUASH_OP, build_dlx_controller
from repro.dlx.isa import (
    Instruction,
    to_cpi,
)


@pytest.fixture(scope="module")
def controller():
    return build_dlx_controller()


def drive_instruction(controller, state, instruction, sts=None):
    inputs = dict(to_cpi(instruction))
    inputs.update(sts or {})
    return controller.simulate_cycle(state, inputs)


def run_instructions(controller, instructions, sts_per_cycle=None):
    """Clock a list of instructions through; returns per-cycle values."""
    state = controller.reset_state()
    traces = []
    for i, instruction in enumerate(instructions):
        sts = (sts_per_cycle or {}).get(i, {"zero": 0, "addrlo": 0})
        values, state = drive_instruction(controller, state, instruction, sts)
        traces.append(values)
    return traces, state


def test_reset_state_is_inert(controller):
    state = controller.reset_state()
    assert state["op_id"] == SQUASH_OP
    values, _ = drive_instruction(
        controller, state, Instruction("ADD"), {"zero": 0, "addrlo": 0}
    )
    assert values["regwrite_g_ctl"] == 0
    assert values["memwrite_ctl"] == 0
    assert values["stall"] == 0
    assert values["branch_taken"] == 0


def test_decode_classes(controller):
    cases = [
        (Instruction("ADD", rd=3), dict(regwrite_id=1, alusrc_id=0)),
        (Instruction("ADDI", rt=3), dict(regwrite_id=1, alusrc_id=1)),
        (Instruction("LW", rt=3), dict(memread_id=1, memtoreg_id=1)),
        (Instruction("SW"), dict(memwrite_id=1, regwrite_id=0)),
        (Instruction("BEQZ"), dict(is_beqz_id=1, regwrite_id=0)),
        (Instruction("J"), dict(jump_in_id=1, uses_rs_id=0)),
        (Instruction("JR"), dict(jump_in_id=1, uses_rs_id=1)),
    ]
    for instruction, expected in cases:
        # Clock the instruction into ID, then observe the decode.
        traces, state = run_instructions(
            controller, [instruction, Instruction("ADDI")]
        )
        for signal, value in expected.items():
            assert traces[1][signal] == value, (instruction.op, signal)


def test_dest_selection(controller):
    # R-type -> rd, I-type -> rt, JAL -> r31.
    for instruction, dest in [
        (Instruction("ADD", rs=1, rt=2, rd=3), 3),
        (Instruction("ADDI", rs=1, rt=2), 2),
        (Instruction("JAL"), 31),
    ]:
        traces, _ = run_instructions(
            controller, [instruction, Instruction("ADDI")]
        )
        assert traces[1]["dest_id"] == dest, instruction.op


def test_load_use_stall_asserted(controller):
    program = [
        Instruction("LW", rs=1, rt=2),
        Instruction("ADD", rs=2, rt=3, rd=4),  # uses the loaded r2
        Instruction("ADDI"),
    ]
    traces, _ = run_instructions(controller, program)
    # When the LW is in EX and the ADD in ID, the hazard stalls.
    assert traces[2]["stall"] == 1


def test_no_stall_for_independent(controller):
    program = [
        Instruction("LW", rs=1, rt=2),
        Instruction("ADD", rs=3, rt=4, rd=5),
        Instruction("ADDI"),
    ]
    traces, _ = run_instructions(controller, program)
    assert traces[2]["stall"] == 0


def test_no_stall_when_load_targets_r0(controller):
    program = [
        Instruction("LW", rs=1, rt=0),
        Instruction("ADD", rs=0, rt=3, rd=4),
        Instruction("ADDI"),
    ]
    traces, _ = run_instructions(controller, program)
    assert traces[2]["stall"] == 0


def test_forwarding_selects(controller):
    program = [
        Instruction("ADDI", rs=0, rt=1, imm=1),  # writes r1
        Instruction("ADD", rs=1, rt=2, rd=3),    # rs needs EX/MEM fwd
        Instruction("ADD", rs=2, rt=1, rd=4),    # rt needs MEM/WB fwd
        Instruction("ADDI"),
        Instruction("ADDI"),
    ]
    traces, _ = run_instructions(controller, program)
    # Cycle 3: first ADD in EX, ADDI in MEM -> fwd_a = 1 (EX/MEM).
    assert traces[3]["fwd_a"] == 1
    # Cycle 4: second ADD in EX, ADDI in WB -> fwd_b = 2 (MEM/WB).
    assert traces[4]["fwd_b"] == 2


def test_branch_taken_squash(controller):
    program = [
        Instruction("BEQZ", rs=1),
        Instruction("ADDI", rt=2, imm=1),
        Instruction("ADDI", rt=3, imm=1),
        Instruction("ADDI", rt=4, imm=1),
    ]
    sts = {2: {"zero": 1, "addrlo": 0}}  # branch condition true in EX
    traces, state = run_instructions(controller, program, sts)
    assert traces[2]["branch_taken"] == 1
    assert traces[2]["if_id_clear"] == 1
    assert traces[2]["id_ex_clear"] == 1
    # The squashed slots decode as the canonical NOP next cycle.
    assert traces[3]["op_id"] == SQUASH_OP


def test_jump_squashes_next(controller):
    program = [Instruction("J"), Instruction("ADDI", rt=1, imm=1),
               Instruction("ADDI", rt=2, imm=2)]
    traces, _ = run_instructions(controller, program)
    # J in ID at cycle 1: the incoming ADDI is squashed.
    assert traces[1]["jump_advancing"] == 1
    assert traces[2]["op_id"] == SQUASH_OP


def test_bytesel_follows_addrlo_status(controller):
    traces, _ = run_instructions(
        controller,
        [Instruction("LB", rt=1), Instruction("ADDI")],
        {0: {"zero": 0, "addrlo": 3}, 1: {"zero": 0, "addrlo": 3}},
    )
    assert traces[1]["bytesel_ctl"] == 3


def test_statistics(controller):
    assert controller.n_stages == 5
    assert controller.state_bits() > 40
    stats = controller.search_space_stats()
    assert stats["cti_bits"] == 6  # stall + branch_taken + 2x 2-bit fwd
