"""Lattice/monotonicity properties of the C/O state algebra.

The search relies on two meta-properties of the Figure 5 propagation rules:

* **decision monotonicity** — making a decision (C1 -> {C2, C3, C4},
  resolving a mux select) never moves an output from 'decided' back to
  'unknown' in a way that breaks earlier conclusions: concretely, if all
  inputs are final (C3/C4) the output is final;
* **conservatism** — O3 is only granted when the class semantics
  guarantee propagation (side inputs closed for ADD, controlled for AND,
  selected for MUX).
"""

from itertools import product

import pytest

from repro.core.costates import (
    CState,
    OState,
    add_c_forward,
    add_o_backward,
    and_c_forward,
    and_o_backward,
    branch_c_from_stem,
    mux_c_forward,
    mux_o_backward,
    net_o_from_sinks,
)

ALL_C = list(CState)
ALL_O = list(OState)
FINAL = (CState.C3, CState.C4)


def is_final(state: CState) -> bool:
    return state in FINAL


@pytest.mark.parametrize("forward", [add_c_forward, and_c_forward])
def test_final_inputs_give_final_outputs(forward):
    for a, b in product(ALL_C, repeat=2):
        result = forward([a, b])
        if is_final(a) and is_final(b):
            assert is_final(result), (forward.__name__, a, b, result)


def test_mux_final_when_selected_final():
    for a, b in product(ALL_C, repeat=2):
        assert mux_c_forward([a, b], selected=0) is a
        assert mux_c_forward([a, b], selected=1) is b


def test_c_tables_are_symmetric():
    for a, b in product(ALL_C, repeat=2):
        assert add_c_forward([a, b]) is add_c_forward([b, a])
        assert and_c_forward([a, b]) is and_c_forward([b, a])


def test_add_dominates_and():
    """An ADD-class module is never harder to control than an AND-class
    one with the same inputs (single-input vs all-input justification)."""
    rank = {CState.C3: 0, CState.C2: 1, CState.C1: 2, CState.C4: 3}
    for a, b in product(ALL_C, repeat=2):
        add_result = add_c_forward([a, b])
        and_result = and_c_forward([a, b])
        assert rank[add_result] >= rank[and_result], (a, b)


def test_o3_requires_closed_sides_add():
    for out, side in product(ALL_O, ALL_C):
        result = add_o_backward(out, [side])
        if result is OState.O3:
            assert out is OState.O3 and side in FINAL


def test_o3_requires_controlled_sides_and():
    for out, side in product(ALL_O, ALL_C):
        result = and_o_backward(out, [side])
        if result is OState.O3:
            assert out is OState.O3 and side is CState.C4


def test_o2_is_sticky():
    """A blocked output can never make an input observable."""
    for side in ALL_C:
        assert add_o_backward(OState.O2, [side]) is OState.O2
        assert and_o_backward(OState.O2, [side]) is OState.O2
    for sel, idx in product((None, 0, 1), (0, 1)):
        assert mux_o_backward(OState.O2, sel, idx) is OState.O2


def test_mux_deselected_input_blocked():
    for out in ALL_O:
        assert mux_o_backward(out, selected=1, input_index=0) is OState.O2


def test_net_o_join_is_monotone():
    """Adding an observable sink can only improve the stem's O-state."""
    for states in product(ALL_O, repeat=2):
        base = net_o_from_sinks(list(states))
        improved = net_o_from_sinks(list(states) + [OState.O3])
        assert improved is OState.O3 or base is improved


def test_branch_never_exceeds_stem():
    """A fanout branch is never easier to control than its stem."""
    rank = {CState.C3: 0, CState.C2: 1, CState.C1: 2, CState.C4: 3}
    for stem, choice, index in product(ALL_C, (None, 0, 1), (0, 1)):
        branch = branch_c_from_stem(stem, choice, index)
        if choice == index:
            assert branch is stem  # the granted branch inherits exactly
        else:
            assert rank[branch] <= rank[stem] or branch is CState.C2