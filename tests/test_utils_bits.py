"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    add_overflows,
    bit,
    bits_of,
    from_bits,
    mask,
    popcount,
    sign_extend,
    sub_overflows,
    to_signed,
    to_unsigned,
)


def test_mask_small_widths():
    assert mask(1) == 1
    assert mask(4) == 0xF
    assert mask(32) == 0xFFFFFFFF


def test_mask_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        mask(0)
    with pytest.raises(ValueError):
        mask(-3)


def test_to_unsigned_wraps():
    assert to_unsigned(-1, 8) == 0xFF
    assert to_unsigned(256, 8) == 0
    assert to_unsigned(257, 8) == 1


def test_to_signed_basic():
    assert to_signed(0xFF, 8) == -1
    assert to_signed(0x7F, 8) == 127
    assert to_signed(0x80, 8) == -128
    assert to_signed(0, 8) == 0


def test_sign_extend():
    assert sign_extend(0xF, 4, 8) == 0xFF
    assert sign_extend(0x7, 4, 8) == 0x07
    assert sign_extend(0x8000, 16, 32) == 0xFFFF8000


def test_sign_extend_rejects_narrowing():
    with pytest.raises(ValueError):
        sign_extend(0, 8, 4)


def test_bit_and_bits_of():
    assert bit(0b1010, 0) == 0
    assert bit(0b1010, 1) == 1
    assert bits_of(0b1010, 4) == [0, 1, 0, 1]


def test_from_bits_roundtrip():
    assert from_bits([0, 1, 0, 1]) == 0b1010


def test_from_bits_rejects_non_binary():
    with pytest.raises(ValueError):
        from_bits([0, 2])


def test_add_overflow_cases():
    assert add_overflows(0x7F, 1, 8)  # 127 + 1
    assert not add_overflows(0x7E, 1, 8)
    assert add_overflows(0x80, 0xFF, 8)  # -128 + -1
    assert not add_overflows(0x80, 0, 8)


def test_sub_overflow_cases():
    assert sub_overflows(0x80, 1, 8)  # -128 - 1
    assert not sub_overflows(0x80, 0, 8)
    assert sub_overflows(0x7F, 0xFF, 8)  # 127 - (-1)


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    with pytest.raises(ValueError):
        popcount(-1)


@given(st.integers(min_value=-(1 << 40), max_value=1 << 40), st.integers(1, 64))
def test_signed_unsigned_roundtrip(value, width):
    unsigned = to_unsigned(value, width)
    assert 0 <= unsigned <= mask(width)
    assert to_unsigned(to_signed(unsigned, width), width) == unsigned


@given(st.integers(0, mask(16)), st.integers(1, 16), st.integers(0, 16))
def test_sign_extend_preserves_signed_value(value, from_width, extra):
    value = to_unsigned(value, from_width)
    extended = sign_extend(value, from_width, from_width + extra)
    assert to_signed(extended, from_width + extra) == to_signed(value, from_width)


@given(st.integers(0, mask(32)))
def test_bits_roundtrip(value):
    assert from_bits(bits_of(value, 32)) == value


@given(st.integers(0, mask(12)), st.integers(0, mask(12)))
def test_add_overflow_matches_definition(a, b):
    total = to_signed(a, 12) + to_signed(b, 12)
    assert add_overflows(a, b, 12) == (total < -2048 or total > 2047)


@given(st.integers(0, mask(12)), st.integers(0, mask(12)))
def test_sub_overflow_matches_definition(a, b):
    total = to_signed(a, 12) - to_signed(b, 12)
    assert sub_overflows(a, b, 12) == (total < -2048 or total > 2047)
