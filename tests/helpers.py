"""Shared fixtures: small datapaths used across the core-engine tests."""

from repro.datapath import DatapathBuilder


def build_toy_pipeline():
    """A 2-stage toy datapath.

    Stage 0 (execute): opb = mux(alusrc: b, const 4); sum = a + opb;
    conj = a & opb; ex_out = mux(op: sum, conj); STS eq = (a == b).
    Stage 1 (write-back): r = DPR(ex_out); out(DPO) = mux(wbsel: r, c).
    """
    b = DatapathBuilder("toy")
    b.set_stage(0)
    a = b.input("a", 8)
    bb = b.input("b", 8)
    alusrc = b.ctrl("alusrc", 1)
    op = b.ctrl("op", 1)
    four = b.const("four", 8, 4)
    opb = b.mux("opbmux", alusrc, bb, four)
    total = b.add("alu_add", a, opb)
    conj = b.and_("alu_and", a, opb)
    ex_out = b.mux("exmux", op, total, conj)
    b.status("eq", b.eq("cmp", a, bb))
    b.set_stage(1)
    r = b.register("r_exmem", ex_out)
    c = b.input("c", 8)
    wbsel = b.ctrl("wbsel", 1)
    out = b.mux("wbmux", wbsel, r, c)
    b.output("out", out)
    return b.build()


def build_linear_chain():
    """in(DPI) -> add const -> register -> xor const -> out(DPO)."""
    b = DatapathBuilder("chain")
    b.set_stage(0)
    x = b.input("x", 8)
    k1 = b.const("k1", 8, 3)
    s = b.add("a1", x, k1)
    b.set_stage(1)
    q = b.register("r1", s)
    k2 = b.const("k2", 8, 0x55)
    y = b.xor("x1", q, k2)
    b.output("out", y)
    return b.build()


def build_masking_datapath():
    """A datapath whose propagation path runs through an AND side input.

    out(DPO) = (a + k) & m, where m is a DPI: observation of the adder
    output requires controlling m (AND-class side input).
    """
    b = DatapathBuilder("masker")
    b.set_stage(0)
    a = b.input("a", 8)
    m = b.input("m", 8)
    k = b.const("k", 8, 1)
    s = b.add("adder", a, k)
    y = b.and_("masker", s, m)
    b.output("out", y)
    return b.build()
