"""Tests for the synthetic controller family."""

import pytest

from repro.baselines import TimeframeJust, search_space_sizes
from repro.core.ctrljust import CtrlJust, JustStatus
from repro.model.synthetic import (
    build_synthetic_controller,
    restricted_opcode_controller,
)


def test_shape_parameters():
    ctl = build_synthetic_controller(p=3, op_values=8, n2=4, n3=2)
    assert ctl.state_bits() == 3 * 4
    assert ctl.tertiary_bits() == 2 * 2  # stages 1..p-1 carry tertiary bits
    stats = ctl.search_space_stats()
    assert stats["pipeframe_justify_bits"] < stats["timeframe_justify_bits"]


def test_parameter_validation():
    with pytest.raises(ValueError):
        build_synthetic_controller(n2=2, n3=3)
    with pytest.raises(ValueError):
        build_synthetic_controller(p=1)


def test_decode_pipeline_simulates():
    ctl = build_synthetic_controller(p=2, op_values=8, n2=3, n3=1)
    state = ctl.reset_state()
    values, state = ctl.simulate_cycle(state, {"op": 0b101})
    assert state["s1_b0"] == 1 and state["s1_b1"] == 0 and state["s1_b2"] == 1
    values, state = ctl.simulate_cycle(state, {"op": 0})
    assert state["s2_b0"] == 1 and state["s2_b2"] == 1


def test_justify_control_output():
    ctl = build_synthetic_controller(p=2, op_values=8, n2=3, n3=1)
    unrolled = ctl.unroll(4)
    result = CtrlJust(unrolled).justify([("3:c2_0", 1)])
    assert result.status is JustStatus.SUCCESS
    # The opcode two frames earlier must have bit 0 set.
    op = result.assignment.get("1:op")
    assert op is not None and op & 1


def test_both_organizations_agree_on_feasible(op_values=8):
    ctl = build_synthetic_controller(p=2, op_values=op_values, n2=3, n3=1)
    unrolled = ctl.unroll(4)
    objective = [("3:c2_1", 1)]
    assert CtrlJust(unrolled).justify(objective).status is JustStatus.SUCCESS
    assert TimeframeJust(unrolled).justify(
        objective
    ).status is JustStatus.SUCCESS


def test_restricted_unreachable_state():
    ctl = restricted_opcode_controller(p=2, n2=4, n3=1)
    unrolled = ctl.unroll(4)
    # No opcode has both low bits set: c_and = 1 is infeasible.
    pipeframe = CtrlJust(unrolled).justify([("3:c2_and", 1)])
    timeframe = TimeframeJust(unrolled).justify([("3:c2_and", 1)])
    assert pipeframe.status is JustStatus.FAILURE
    assert timeframe.status is JustStatus.FAILURE
    # The pipeframe organization proves infeasibility with no more wasted
    # backtracks than the conventional organization (Section IV: decisions
    # on CSIs construct invalid states that conflict late).
    assert pipeframe.backtracks <= timeframe.backtracks


def test_search_space_shrinks_with_n3():
    small = build_synthetic_controller(p=4, op_values=16, n2=6, n3=1)
    sizes = search_space_sizes(small.unroll(3))
    assert sizes["pipeframe_bits"] < sizes["timeframe_bits"]
