"""Tests for C/O propagation over the unrolled datapath."""

import pytest

from repro.core.costates import CState, OState
from repro.model.pathgraph import DatapathPathAnalyzer
from tests.helpers import build_linear_chain, build_toy_pipeline

C1, C2, C3, C4 = CState.C1, CState.C2, CState.C3, CState.C4
O1, O2, O3 = OState.O1, OState.O2, OState.O3


def test_dpi_is_controlled_everywhere():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), n_frames=3)
    states = analyzer.compute({}, {})
    for frame in range(3):
        assert states.net_c[(frame, "a")] is C4
        assert states.net_c[(frame, "b")] is C4


def test_constants_are_determined():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), n_frames=2)
    states = analyzer.compute({}, {})
    assert states.net_c[(0, "four.y")] is C3


def test_register_reset_is_closed_at_frame0():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), n_frames=2)
    states = analyzer.compute({}, {})
    assert states.net_c[(0, "r_exmem.y")] is C3


def test_stimulus_register_is_controlled_at_frame0():
    analyzer = DatapathPathAnalyzer(
        build_toy_pipeline(), n_frames=2, stimulus_registers={"r_exmem"}
    )
    states = analyzer.compute({}, {})
    assert states.net_c[(0, "r_exmem.y")] is C4


def test_mux_output_unknown_until_select_assigned():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), n_frames=1)
    states = analyzer.compute({}, {})
    assert states.net_c[(0, "exmux.y")] is C1
    # a feeds alu_add, alu_and and cmp: fanout stem; with FO open the sum is
    # reachable but not yet granted.
    states = analyzer.compute({(0, "op"): 0, (0, "alusrc"): 0}, {})
    assert states.net_c[(0, "exmux.y")] is C1  # FO vars still open
    fo = {(0, "a"): 0, (0, "b"): 0}
    states = analyzer.compute({(0, "op"): 0, (0, "alusrc"): 0}, fo)
    assert states.net_c[(0, "alu_add.y")] is C4
    assert states.net_c[(0, "exmux.y")] is C4


def test_register_crossing_propagates_c():
    analyzer = DatapathPathAnalyzer(build_linear_chain(), n_frames=3)
    states = analyzer.compute({}, {})
    # x is C4, a1 is ADD with constant side -> C4; register carries it on.
    assert states.net_c[(0, "a1.y")] is C4
    assert states.net_c[(1, "r1.y")] is C4
    assert states.net_c[(2, "r1.y")] is C4
    # Frame-0 register output is the reset value.
    assert states.net_c[(0, "r1.y")] is C3


def test_chain_observability():
    analyzer = DatapathPathAnalyzer(build_linear_chain(), n_frames=3)
    states = analyzer.compute({}, {})
    # out is a DPO in every frame.
    for frame in range(3):
        assert states.net_o[(frame, "out")] is O3
    # The adder output at frame t is observed through the register at t+1;
    # at the last frame there is no next frame, so it is unobservable.
    assert states.net_o[(0, "a1.y")] is O3
    assert states.net_o[(1, "a1.y")] is O3
    assert states.net_o[(2, "a1.y")] is O2


def test_mux_blocks_observation_of_deselected_input():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), n_frames=2)
    # wbsel=1 selects the c input, so the register output is unobservable.
    ctrl = {(0, "wbsel"): 1, (1, "wbsel"): 1}
    states = analyzer.compute(ctrl, {})
    assert states.net_o[(1, "r_exmem.y")] is O2
    # wbsel=0 selects the register: observable.
    ctrl = {(0, "wbsel"): 0, (1, "wbsel"): 0}
    states = analyzer.compute(ctrl, {})
    assert states.net_o[(1, "r_exmem.y")] is O3


def test_sts_sinks_are_not_observation_points():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), n_frames=1)
    states = analyzer.compute({(0, "wbsel"): 1}, {})
    # cmp.y only feeds the STS net; with wbmux deselecting the register the
    # whole execute cone is unobservable in a 1-frame window.
    assert states.net_o[(0, "eq")] is O2


def test_fanout_branch_gating():
    netlist = build_toy_pipeline()
    analyzer = DatapathPathAnalyzer(netlist, n_frames=1)
    # Grant stem 'a' to the adder branch (find its index first).
    a_net = netlist.net("a")
    adder_port = next(
        p for p in a_net.sinks if p.module.name == "alu_add"
    )
    index = a_net.sinks.index(adder_port)
    fo = {(0, "a"): index, (0, "b"): 0}
    ctrl = {(0, "alusrc"): 0, (0, "op"): 0}
    states = analyzer.compute(ctrl, fo)
    assert states.port_c[(0, "alu_add.a")] is C4
    # The deselected branch (cmp.a) is blocked while the choice stands.
    assert states.port_c[(0, "cmp.a")] is C2


def test_invalid_frames_rejected():
    with pytest.raises(ValueError):
        DatapathPathAnalyzer(build_toy_pipeline(), n_frames=0)
