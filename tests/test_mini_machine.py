"""MiniPipe: spec/implementation equivalence and hazard behaviour.

The crucial property: for every fault-free program, the pipelined
implementation's ISA-visible write trace equals the specification's.  This
validates the whole substrate stack (datapath, controller, co-simulation)
before any test generation runs on it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mini import (
    Instruction,
    MiniEnv,
    MiniSpec,
    NOP,
    build_minipipe,
)

import pytest


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


def run_both(processor, program, init_regs=None):
    spec = MiniSpec().run(program, init_regs)
    impl = MiniEnv(processor).run(program, init_regs)
    return spec, impl


def test_model_validates(processor):
    stats = processor.statistics()
    assert stats["pipeline_stages"] == 3
    assert stats["controller_tertiary_bits"] == 3  # squash, fwd_a, fwd_b
    assert stats["controller_state_bits"] > stats["controller_tertiary_bits"]


def test_empty_program(processor):
    spec, impl = run_both(processor, [])
    assert spec.writes == impl.writes == []


def test_single_addi(processor):
    program = [Instruction("ADDI", rs1=0, rd=1, imm=7)]
    spec, impl = run_both(processor, [*program])
    assert spec.writes == [(1, 7)]
    assert impl.writes == spec.writes


def test_independent_instructions(processor):
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=5),
        Instruction("ADDI", rs1=0, rd=2, imm=9),
        Instruction("ADD", rs1=1, rs2=2, rd=3),
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes[-1] == (3, 14)
    assert impl.writes == spec.writes


def test_forwarding_distance_one(processor):
    """Back-to-back dependency exercises the bypass path."""
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=5),
        Instruction("ADDI", rs1=1, rd=2, imm=1),  # needs r1 immediately
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes == [(1, 5), (2, 6)]
    assert impl.writes == spec.writes


def test_forwarding_operand_b(processor):
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=5),
        Instruction("SUB", rs1=0, rs2=1, rd=2),  # rs2 needs the bypass
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes == [(1, 5), (2, (0 - 5) & 0xFF)]
    assert impl.writes == spec.writes


def test_branch_taken_squashes_next(processor):
    program = [
        Instruction("BEQ", rs1=0, rs2=0),  # always taken
        Instruction("ADDI", rs1=0, rd=1, imm=99),  # must be squashed
        Instruction("ADDI", rs1=0, rd=2, imm=1),
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes == [(2, 1)]
    assert impl.writes == spec.writes


def test_branch_not_taken(processor):
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=3),
        Instruction("BEQ", rs1=0, rs2=1),  # 0 != 3: not taken
        Instruction("ADDI", rs1=0, rd=2, imm=7),
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes == [(1, 3), (2, 7)]
    assert impl.writes == spec.writes


def test_branch_compares_forwarded_value(processor):
    """The branch in EX must see the just-computed value via the bypass."""
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=0),  # r1 = 0
        Instruction("BEQ", rs1=1, rs2=0),  # r1 == r0: taken
        Instruction("ADDI", rs1=0, rd=2, imm=50),  # squashed
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes == [(1, 0)]
    assert impl.writes == spec.writes


def test_initial_registers(processor):
    program = [Instruction("ADD", rs1=1, rs2=2, rd=3)]
    spec, impl = run_both(processor, program, init_regs=[0, 10, 20, 0])
    assert spec.writes == [(3, 30)]
    assert impl.writes == spec.writes


def test_all_alu_operations(processor):
    init = [0, 0xF0, 0x3C, 0]
    for op, expected in [
        ("ADD", (0xF0 + 0x3C) & 0xFF),
        ("SUB", (0xF0 - 0x3C) & 0xFF),
        ("AND", 0xF0 & 0x3C),
        ("XOR", 0xF0 ^ 0x3C),
    ]:
        program = [Instruction(op, rs1=1, rs2=2, rd=3)]
        spec, impl = run_both(processor, program, init)
        assert spec.writes == [(3, expected)], op
        assert impl.writes == spec.writes, op


def test_subi(processor):
    program = [Instruction("SUBI", rs1=1, rd=2, imm=5)]
    spec, impl = run_both(processor, program, init_regs=[0, 3, 0, 0])
    assert spec.writes == [(2, (3 - 5) & 0xFF)]
    assert impl.writes == spec.writes


instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(["NOP", "ADD", "SUB", "AND", "XOR", "ADDI", "BEQ", "SUBI"]),
    rs1=st.integers(0, 3),
    rs2=st.integers(0, 3),
    rd=st.integers(0, 3),
    imm=st.integers(0, 255),
)


@settings(max_examples=60, deadline=None)
@given(
    program=st.lists(instruction_strategy, max_size=8),
    init_regs=st.lists(st.integers(0, 255), min_size=4, max_size=4),
)
def test_spec_impl_equivalence_random(program, init_regs):
    """The fundamental correctness property of the MiniPipe implementation."""
    processor = build_minipipe()
    spec = MiniSpec().run(program, init_regs)
    impl = MiniEnv(processor).run(program, init_regs)
    assert impl.writes == spec.writes


def test_nop_padding_changes_nothing(processor):
    program = [
        Instruction("ADDI", rs1=0, rd=1, imm=5),
        NOP,
        NOP,
        Instruction("ADDI", rs1=1, rd=2, imm=1),
    ]
    spec, impl = run_both(processor, program)
    assert spec.writes == [(1, 5), (2, 6)]
    assert impl.writes == spec.writes
