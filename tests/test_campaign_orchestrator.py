"""Tests for the parallel campaign orchestrator.

MiniPipe is the vehicle (fast TG per error); the assertions are about the
orchestration itself: serial equivalence, shard merging, coordinator-side
fault dropping, checkpoint/resume, and the emitted event stream.
"""

import pytest

from repro.campaign import MiniCampaign
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.events import EventLog, EventStream
from repro.campaign.orchestrator import (
    CampaignOrchestrator,
    OrchestratorConfig,
    _worker_init,
    _worker_run,
    build_campaign,
    campaign_run_to_dict,
)
from repro.errors import BusSSLError

# A set every MiniPipe campaign detects, including one deterministic
# dropping pair: the test for alu_mux.y[0] stuck-at-0 also detects
# wb_res.y[3] stuck-at-1.
ERRORS = [
    BusSSLError("alu_mux.y", 0, 0),
    BusSSLError("wb_res.y", 3, 1),
    BusSSLError("alu_add.y", 2, 0),
    BusSSLError("opa_mux.y", 1, 1),
]


def _mini_config(**kwargs) -> OrchestratorConfig:
    kwargs.setdefault("target", "mini")
    kwargs.setdefault("deadline_seconds", 10.0)
    return OrchestratorConfig(**kwargs)


def _signature(report):
    return sorted(
        (o.error, o.detected, o.test_length, o.failure_stage, o.dropped_by)
        for o in report.outcomes
    )


def test_config_validation():
    with pytest.raises(ValueError):
        OrchestratorConfig(target="no-such-processor")
    with pytest.raises(ValueError):
        OrchestratorConfig(jobs=0)
    with pytest.raises(ValueError):
        OrchestratorConfig(resume=True, checkpoint_path=None)
    assert OrchestratorConfig(jobs=4).to_dict()["jobs"] == 4


def test_build_campaign_targets():
    assert isinstance(build_campaign("mini", 10.0), MiniCampaign)
    with pytest.raises(ValueError):
        build_campaign("z80", 10.0)


def test_serial_orchestration_matches_classic_driver():
    classic = MiniCampaign(deadline_seconds=10.0).run(ERRORS)
    orchestrated = CampaignOrchestrator(_mini_config(jobs=1)).run(ERRORS)
    assert [o.error for o in orchestrated.outcomes] == [
        o.error for o in classic.outcomes
    ]
    assert _signature(orchestrated) == _signature(classic)


def test_parallel_matches_serial_counts():
    serial = CampaignOrchestrator(_mini_config(jobs=1)).run(ERRORS)
    parallel = CampaignOrchestrator(_mini_config(jobs=2)).run(ERRORS)
    assert _signature(parallel) == _signature(serial)
    assert parallel.n_detected == serial.n_detected
    assert parallel.n_aborted == serial.n_aborted


def test_parallel_dropping_composes_with_sharding():
    report = CampaignOrchestrator(
        _mini_config(jobs=2, error_simulation=True)
    ).run(ERRORS)
    # Every error accounted for exactly once, dropped or generated.
    assert sorted(o.error for o in report.outcomes) == sorted(
        e.describe() for e in ERRORS
    )
    assert report.n_detected == len(ERRORS)


def test_serial_dropping_emits_drop_events():
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    report = CampaignOrchestrator(
        _mini_config(jobs=1, error_simulation=True), events=events
    ).run(ERRORS)
    drops = log.of_kind("test-dropped-others")
    assert len(drops) >= 1
    assert drops[0].data["error"] == "bus-ssl alu_mux.y[0] stuck-at-0"
    assert "bus-ssl wb_res.y[3] stuck-at-1" in drops[0].data["dropped"]
    dropped_outcomes = [o for o in report.outcomes if o.dropped_by]
    assert dropped_outcomes and all(o.detected for o in dropped_outcomes)


def test_event_stream_covers_lifecycle():
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    CampaignOrchestrator(_mini_config(jobs=2), events=events).run(ERRORS)
    assert len(log.of_kind("campaign-started")) == 1
    assert len(log.of_kind("error-started")) == len(ERRORS)
    assert len(log.of_kind("error-finished")) == len(ERRORS)
    finished = log.of_kind("campaign-finished")[0]
    assert finished.data["n_detected"] == len(ERRORS)
    assert finished.data["wall_seconds"] > 0
    for event in log.of_kind("error-finished"):
        assert event.data["seconds"] > 0
        assert event.data["backtracks"] >= 0


def test_checkpoint_written_per_outcome(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    report = CampaignOrchestrator(
        _mini_config(jobs=2, checkpoint_path=path), events=events
    ).run(ERRORS)
    records = CampaignCheckpoint.load(path)
    assert len(records) == report.n_errors == len(ERRORS)
    # Detected errors carry their serialized realized test in the record.
    assert all(
        r.test is not None and r.test["kind"] == "mini-test"
        for r in records
        if r.outcome.detected and not r.outcome.dropped_by
    )
    assert len(log.of_kind("checkpoint-written")) == len(records)


def test_resume_skips_completed_and_reproduces_report(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    full = CampaignOrchestrator(
        _mini_config(jobs=1, checkpoint_path=path)
    ).run(ERRORS)

    # Simulate a killed run: keep only the first two checkpoint records.
    lines = open(path).read().splitlines()
    with open(path, "w") as handle:
        handle.write("\n".join(lines[:2]) + "\n")

    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    resumed = CampaignOrchestrator(
        _mini_config(jobs=1, checkpoint_path=path, resume=True),
        events=events,
    ).run(ERRORS)
    assert log.of_kind("campaign-started")[0].data["resumed"] == 2
    # Only the remaining errors were regenerated...
    assert len(log.of_kind("error-started")) == len(ERRORS) - 2
    # ... and the final report is identical to the uninterrupted run.
    assert [o.error for o in resumed.outcomes] == [
        o.error for o in full.outcomes
    ]
    assert _signature(resumed) == _signature(full)
    # The checkpoint now covers the whole campaign again.
    assert CampaignCheckpoint.completed_errors(path) == {
        e.describe() for e in ERRORS
    }


def test_resume_with_complete_checkpoint_does_no_work(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    config = _mini_config(jobs=1, checkpoint_path=path)
    first = CampaignOrchestrator(config).run(ERRORS)
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    again = CampaignOrchestrator(
        _mini_config(jobs=4, checkpoint_path=path, resume=True),
        events=events,
    ).run(ERRORS)
    assert log.of_kind("error-started") == []
    assert _signature(again) == _signature(first)


def test_interrupt_mid_campaign_checkpoints_and_resumes(tmp_path):
    """Cooperative interruption (SIGINT / service drain): in-flight work
    finishes and checkpoints, the tail is left resumable, and the event
    stream says so."""
    path = str(tmp_path / "cp.jsonl")
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    orchestrator = CampaignOrchestrator(
        _mini_config(jobs=1, checkpoint_path=path), events=events
    )
    events.subscribe(
        lambda e: orchestrator.interrupt()
        if e.kind == "error-finished" else None
    )
    report = orchestrator.run(ERRORS)
    assert report.interrupted
    # The stop flag is polled between errors: exactly one completed.
    assert len(report.outcomes) == 1
    event = log.of_kind("campaign-interrupted")[0]
    assert event.data == {
        "completed": 1, "remaining": len(ERRORS) - 1, "resumable": True,
    }
    assert len(CampaignCheckpoint.load(path)) == 1

    # Resume finishes the tail and reproduces the uninterrupted report.
    resumed = CampaignOrchestrator(
        _mini_config(jobs=1, checkpoint_path=path, resume=True)
    ).run(ERRORS)
    assert not resumed.interrupted
    full = CampaignOrchestrator(_mini_config(jobs=1)).run(ERRORS)
    assert _signature(resumed) == _signature(full)


def test_interrupt_before_run_attempts_nothing():
    orchestrator = CampaignOrchestrator(_mini_config(jobs=1))
    assert not orchestrator.interrupt_requested
    orchestrator.interrupt()
    assert orchestrator.interrupt_requested
    report = orchestrator.run(ERRORS)
    assert report.interrupted
    assert report.outcomes == []


def test_interrupt_parallel_run_leaves_tail_unattempted(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    orchestrator = CampaignOrchestrator(
        _mini_config(jobs=2, checkpoint_path=path), events=events
    )
    events.subscribe(
        lambda e: orchestrator.interrupt()
        if e.kind == "error-finished" else None
    )
    report = orchestrator.run(ERRORS)
    assert report.interrupted
    # In-flight shards finish; nothing new is dispatched after the stop.
    assert 1 <= len(report.outcomes) <= len(ERRORS)
    event = log.of_kind("campaign-interrupted")[0]
    assert event.data["completed"] == len(report.outcomes)
    assert event.data["completed"] + event.data["remaining"] <= len(ERRORS)
    assert len(CampaignCheckpoint.load(path)) == len(report.outcomes)


def test_worker_entry_points_in_process():
    """The pool worker functions themselves, run in-process."""
    _worker_init("mini", 10.0)
    (index, outcome_dict, test, learned, learned_clauses,
     learned_activity) = _worker_run(
        (7, ERRORS[0], [], [], [], 0.0)
    )
    assert index == 7
    assert outcome_dict["detected"]
    assert outcome_dict["error"] == ERRORS[0].describe()
    assert test["kind"] == "mini-test"
    assert len(test["program"]) == outcome_dict["test_length"]
    assert isinstance(learned, list)
    assert isinstance(learned_clauses, list)
    assert isinstance(learned_activity, list)


def test_campaign_run_to_dict_shape():
    config = _mini_config(jobs=2)
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    report = CampaignOrchestrator(config, events=events).run(ERRORS[:2])
    data = campaign_run_to_dict(config, report, log.events)
    assert data["kind"] == "campaign-run"
    assert data["config"]["target"] == "mini"
    assert data["config"]["jobs"] == 2
    assert len(data["report"]["outcomes"]) == 2
    assert {e["kind"] for e in data["events"]} >= {
        "campaign-started", "error-finished", "campaign-finished",
    }
