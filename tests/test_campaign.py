"""Tests for the campaign drivers and Table-1 reporting."""

import pytest

from repro.campaign import CampaignReport, DlxCampaign, ErrorOutcome, MiniCampaign
from repro.errors import BusSSLError


def test_report_statistics():
    report = CampaignReport(
        outcomes=[
            ErrorOutcome("e1", True, test_length=6, backtracks=3,
                         final_backtracks=2),
            ErrorOutcome("e2", True, test_length=8, backtracks=1,
                         final_backtracks=1),
            ErrorOutcome("e3", False, failure_stage="tg", backtracks=99,
                         final_backtracks=50),
        ],
        total_seconds=120.0,
    )
    assert report.n_errors == 3
    assert report.n_detected == 2
    assert report.n_aborted == 1
    assert report.detection_rate == pytest.approx(2 / 3)
    assert report.avg_test_length == 7.0
    # The paper counts the successful searches' backtracks, detected only.
    assert report.backtracks_detected == 3
    assert report.backtracks_total == 103
    assert report.cpu_minutes == 2.0


def test_report_table_format():
    report = CampaignReport(
        outcomes=[ErrorOutcome("e", True, test_length=6)],
        total_seconds=60.0,
    )
    table = report.table1("My campaign")
    assert "My campaign" in table
    assert "No. of errors detected" in table
    assert "CPU time [minutes]" in table
    lines = table.splitlines()
    assert len(lines) == 8


def test_empty_report():
    report = CampaignReport()
    assert report.detection_rate == 0.0
    assert report.avg_test_length == 0.0


def test_mini_campaign_end_to_end():
    campaign = MiniCampaign(deadline_seconds=10.0)
    errors = [BusSSLError("alu_mux.y", 0, 0), BusSSLError("wb_res.y", 3, 1)]
    report = campaign.run(errors)
    assert report.n_errors == 2
    assert report.n_detected == 2
    for outcome in report.outcomes:
        assert outcome.test_length > 0
        assert outcome.seconds > 0


def test_mini_campaign_default_errors():
    campaign = MiniCampaign()
    errors = campaign.default_errors()
    assert len(errors) > 50
    nets = {e.net for e in errors}
    assert "alu_mux.y" in nets


def test_dlx_campaign_default_error_count():
    campaign = DlxCampaign()
    errors = campaign.default_errors(max_bits_per_net=4)
    # The paper targeted 298 errors; our enumeration lands nearby.
    assert 250 <= len(errors) <= 350
    # Only EX/MEM/WB stage nets.
    dp = campaign.processor.datapath
    assert all(dp.net(e.net).stage in (2, 3, 4) for e in errors)


def test_mini_campaign_error_simulation_drops():
    """MiniCampaign.run supports the same fault dropping as DlxCampaign:
    the test for alu_mux.y[0] stuck-at-0 also detects wb_res.y[3]
    stuck-at-1, which is dropped from the TG work list."""
    campaign = MiniCampaign(deadline_seconds=10.0)
    errors = [BusSSLError("alu_mux.y", 0, 0), BusSSLError("wb_res.y", 3, 1)]
    report = campaign.run(errors, error_simulation=True)
    assert report.n_errors == 2
    assert report.n_detected == 2
    dropped = [o for o in report.outcomes if o.dropped_by]
    assert len(dropped) == 1
    assert dropped[0].error == "bus-ssl wb_res.y[3] stuck-at-1"
    assert dropped[0].dropped_by == "bus-ssl alu_mux.y[0] stuck-at-0"
    assert dropped[0].detected
    assert dropped[0].test_length > 0
    # Dropping spent zero TG effort on the dropped error.
    assert dropped[0].backtracks == 0
    assert dropped[0].attempts == 0


def test_mini_campaign_dropping_off_by_default():
    campaign = MiniCampaign(deadline_seconds=10.0)
    errors = [BusSSLError("alu_mux.y", 0, 0), BusSSLError("wb_res.y", 3, 1)]
    report = campaign.run(errors)
    assert all(not o.dropped_by for o in report.outcomes)
    assert report.n_detected == 2


def test_dropped_outcome_ordering_follows_dropper():
    """Dropped outcomes are recorded right after the error whose test
    dropped them — the order a resumable checkpoint must reproduce."""
    campaign = MiniCampaign(deadline_seconds=10.0)
    errors = [
        BusSSLError("alu_mux.y", 0, 0),
        BusSSLError("alu_add.y", 2, 0),
        BusSSLError("wb_res.y", 3, 1),
    ]
    report = campaign.run(errors, error_simulation=True)
    names = [o.error for o in report.outcomes]
    assert names[0] == "bus-ssl alu_mux.y[0] stuck-at-0"
    assert names[1] == "bus-ssl wb_res.y[3] stuck-at-1"  # dropped, pulled up
    assert names[2] == "bus-ssl alu_add.y[2] stuck-at-0"


def test_dlx_campaign_single_error():
    campaign = DlxCampaign(deadline_seconds=15.0)
    outcome = campaign.run_error(BusSSLError("mem_sdata.y", 2, 0))
    assert outcome.detected
    assert outcome.test_length >= campaign.processor.n_stages
    assert outcome.nontrivial_instructions >= 1
