"""Unit and differential tests for the CDCL clause machinery.

Three layers, matching :mod:`repro.core.clauses`:

* :func:`one_uip` — pure conflict resolution; pinned on hand-built
  implication graphs and fuzzed for its structural invariants (exactly
  one literal at the conflict level, correct assertion level, level-0
  conflicts collapse to an objective core);
* :class:`CdclRefuter` — every completed refutation must be *sound*:
  the chronological CTRLJUST search fails the same question, and the
  reported core is a subset of the objectives that is itself refutable;
* :class:`ClauseDB` — subset (subsumption) lookup, idempotent insert,
  deterministic eviction, and the frame-offset-normalized wire format
  used to pool certificates across orchestrator workers.

The deadline-taint rule for blame no-goods (enforced centrally in
``LearnedNogoods.record_blame``) gets its regression test here too.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.serialize import (
    clause_records_from_wire,
    clause_records_to_wire,
)
from repro.core.clauses import CdclRefuter, ClauseDB, one_uip
from repro.core.ctrljust import CtrlJust, JustStatus
from repro.core.nogoods import LearnedNogoods, blame_key
from repro.mini.machine import build_minipipe

N_FRAMES = 4


@pytest.fixture(scope="module")
def mini():
    return build_minipipe()


@pytest.fixture(scope="module")
def unrolled(mini):
    return mini.controller.unroll(N_FRAMES)


# ----------------------------------------------------------------------
# one_uip: pinned examples
# ----------------------------------------------------------------------
def test_one_uip_keeps_single_literal_at_conflict_level():
    # Level 1 decision (var 1), level 2 decision (var 2) forcing var 3;
    # the conflict mentions 1 and 3.  Var 3 is already the only literal
    # at the conflict level, so it is the UIP and no resolution runs.
    level_of = {1: 1, 2: 2, 3: 2}
    pos_of = {1: 0, 2: 1, 3: 2}
    reason_of = {1: None, 2: None, 3: (((2, 0),), frozenset())}
    learned, obj, assertion = one_uip(
        {1: 0, 3: 1}, {(9, 1)}, level_of, pos_of, reason_of
    )
    assert learned == ((1, 0), (3, 1))  # (level, pos)-sorted, UIP last
    assert obj == frozenset({(9, 1)})
    assert assertion == 1


def test_one_uip_resolves_forced_literal_to_its_reason():
    # Vars 2 (decision) and 3 (forced by 2, importing objective (8, 1))
    # both sit at the conflict level: 3 resolves away, leaving the
    # decision as the UIP and folding 3's reason objective into the cut.
    level_of = {2: 2, 3: 2}
    pos_of = {2: 1, 3: 2}
    reason_of = {2: None, 3: (((2, 0),), frozenset({(8, 1)}))}
    learned, obj, assertion = one_uip(
        {2: 0, 3: 1}, {(9, 1)}, level_of, pos_of, reason_of
    )
    assert learned == ((2, 0),)
    assert obj == frozenset({(8, 1), (9, 1)})
    assert assertion == 0


def test_one_uip_level0_conflict_yields_objective_core():
    # Every conflict literal is forced at level 0, so resolution runs to
    # the empty external set and returns an unsat core of assumptions.
    level_of = {1: 0}
    pos_of = {1: 0}
    reason_of = {1: ((), frozenset({(5, 1)}))}
    learned, obj, assertion = one_uip(
        {1: 1}, {(6, 0)}, level_of, pos_of, reason_of
    )
    assert learned == ()
    assert obj == frozenset({(5, 1), (6, 0)})
    assert assertion == 0


def test_one_uip_pure_objective_conflict():
    learned, obj, assertion = one_uip({}, {(7, 1), (8, 0)}, {}, {}, {})
    assert learned == ()
    assert obj == frozenset({(7, 1), (8, 0)})
    assert assertion == 0


# ----------------------------------------------------------------------
# one_uip: fuzzed structural invariants
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.data())
def test_one_uip_invariants(data):
    """Random trails: the cut is 1-UIP and asserting by construction."""
    level_of: dict[int, int] = {}
    pos_of: dict[int, int] = {}
    reason_of: dict[int, tuple | None] = {}
    trail: list[int] = []
    var = 0
    for level in range(data.draw(st.integers(1, 4)) + 1):
        for k in range(data.draw(st.integers(0 if level else 1, 3))):
            var += 1
            level_of[var] = level
            pos_of[var] = len(trail)
            if level > 0 and k == 0:
                reason_of[var] = None  # the level's decision
            else:
                # Forced: antecedents only from earlier trail positions.
                ante = data.draw(st.lists(
                    st.sampled_from(trail), max_size=2, unique=True,
                )) if trail else []
                obj = (
                    frozenset({(100 + data.draw(st.integers(0, 3)), 1)})
                    if data.draw(st.booleans()) else frozenset()
                )
                reason_of[var] = (tuple((a, 0) for a in ante), obj)
            trail.append(var)
    conflict_vars = data.draw(st.lists(
        st.sampled_from(trail), min_size=1, max_size=4, unique=True,
    ))
    ext = {v: 0 for v in conflict_vars}
    obj0 = frozenset({(200, 1)})
    learned, obj, assertion = one_uip(ext, obj0, level_of, pos_of,
                                      reason_of)
    assert obj0 <= obj  # resolution only ever adds assumptions
    conflict_level = max(level_of[v] for v in ext)
    if conflict_level == 0:
        assert learned == () and assertion == 0
        return
    levels = [level_of[v] for v, _ in learned]
    # Exactly one literal at the conflict level: the UIP.
    assert levels.count(conflict_level) == 1
    assert all(lv <= conflict_level for lv in levels)
    assert assertion == max(
        (lv for lv in levels if lv < conflict_level), default=0
    )
    assert assertion < conflict_level
    # Sorted (level, pos): the UIP is the last entry.
    keys = [(level_of[v], pos_of[v]) for v, _ in learned]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# CdclRefuter: soundness against the chronological oracle
# ----------------------------------------------------------------------
def _ctrl_objective_space(mini, unrolled):
    """All (instance, value) ctrl-signal literals at frame 1."""
    compiled = unrolled.network.compiled()
    out = []
    for name in mini.controller.ctrl_signals:
        inst = unrolled.instance(1, name)
        for value in compiled.domains[compiled.index[inst]]:
            out.append((inst, value))
    return out


def test_refuter_proofs_match_chronological_failures(mini, unrolled):
    """Every completed refutation is a question CTRLJUST also fails,
    and the reported core is an unjustifiable objective subset."""
    space = _ctrl_objective_space(mini, unrolled)
    singles = [
        lit for lit in space
        if CdclRefuter(unrolled.network, [lit], conflict_limit=64)
        .run().refuted
    ]
    assert singles  # MiniPipe has singleton-unjustifiable ctrl literals
    refuted = [[lit] for lit in singles]
    for pair in itertools.combinations(space, 2):
        if pair[0][0] == pair[1][0]:
            continue  # same instance twice is not a well-formed question
        result = CdclRefuter(
            unrolled.network, list(pair), conflict_limit=64,
        ).run()
        if result.refuted:
            assert set(result.core) <= set(pair)
            refuted.append(list(pair))
    assert len(refuted) > len(singles)  # pair-level conflicts exist too
    for objectives in refuted[:6]:
        chrono = CtrlJust(unrolled).justify(objectives)
        assert chrono.status is JustStatus.FAILURE
        assert not chrono.deadline_hit


def test_refuter_never_refutes_a_justifiable_question(mini, unrolled):
    """SAT questions fall through: the probe reports nothing to refute,
    and the chronological search still succeeds after the probe."""
    space = _ctrl_objective_space(mini, unrolled)
    checked = 0
    for lit in space:
        chrono = CtrlJust(unrolled).justify([lit])
        refutation = CdclRefuter(
            unrolled.network, [lit], conflict_limit=400,
        ).run()
        if chrono.status is JustStatus.SUCCESS:
            assert not refutation.refuted, lit
            checked += 1
        # The full pipeline (probe + search) agrees with the oracle.
        piped = CtrlJust(unrolled, refute_conflicts=400).justify([lit])
        assert piped.status is chrono.status
    assert checked > 0


def test_refuter_core_seeds_clause_db_for_supersets(mini, unrolled):
    """A refuted core certifies every superset question in the window."""
    space = _ctrl_objective_space(mini, unrolled)
    lit = next(
        lit for lit in space
        if CdclRefuter(unrolled.network, [lit], conflict_limit=64)
        .run().refuted
    )
    result = CdclRefuter(unrolled.network, [lit], conflict_limit=64).run()
    db = ClauseDB()
    frame_items = tuple(
        ((1, inst.split(":", 1)[1]), value) for inst, value in result.core
    )
    assert db.add(N_FRAMES, frame_items, lbd=result.lbd)
    other = ((2, "unrelated"), 1)
    assert db.lookup(N_FRAMES, frame_items + (other,)) == frozenset(
        frame_items
    )


# ----------------------------------------------------------------------
# ClauseDB: subsumption lookup, eviction, wire pooling
# ----------------------------------------------------------------------
def test_clause_db_subsumption_and_idempotence():
    db = ClauseDB()
    ab = (((0, "a"), 1), ((1, "b"), 0))
    assert db.add(4, ab, lbd=2) is True
    assert db.add(4, ab, lbd=2) is False  # idempotent
    superset = ab + (((2, "c"), 1),)
    assert db.lookup(4, superset) == frozenset(ab)
    assert db.lookup(5, superset) is None  # window size is part of the key
    assert db.lookup(4, ab[:1]) is None  # proper subsets never match
    assert db.stats() == {
        "hits": 1, "misses": 2, "records": 1, "added": 1, "evicted": 0,
    }
    assert db.add(4, (), lbd=1) is False  # empty certificates are refused


def test_clause_db_eviction_drops_worst_lbd_first():
    db = ClauseDB(max_certs=2)
    keep_small = (((0, "a"), 1),)
    keep_good = (((0, "a"), 1), ((1, "b"), 0))
    drop = (((3, "d"), 1), ((4, "e"), 0), ((5, "f"), 1))
    assert db.add(4, keep_good, lbd=2)
    assert db.add(4, keep_small, lbd=1)
    assert db.add(4, drop, lbd=3)  # over capacity: worst (lbd, size) goes
    assert len(db) == 2 and db.evicted == 1
    assert db.lookup(4, drop) is None
    assert db.lookup(4, keep_good) == frozenset(keep_good)
    assert db.lookup(4, keep_small) == frozenset(keep_small)


def test_clause_records_wire_roundtrip_and_merge():
    records = [
        (6, (((2, "alu_op"), 1), ((3, "wb_sel"), 0)), 2),
        (4, (((0, "squash"), 1),), 1),
    ]
    wire = clause_records_to_wire(records)
    # JSON-able end to end (the orchestrator pipes it through json).
    assert wire == json.loads(json.dumps(wire))
    # Frames normalize to the certificate's minimum frame plus an offset.
    assert wire[0][1] == 2
    assert [row[0] for row in wire[0][2]] == [0, 1]
    assert clause_records_from_wire(wire) == records

    db = ClauseDB()
    assert db.merge_records(records) == 2
    assert db.merge_records(records) == 0  # re-merge is idempotent
    # Foreign records never re-export (the coordinator is the hub)...
    assert db.export_records() == []
    # ...but natively learned certificates do, draining on export.
    native = ClauseDB()
    assert native.add(6, records[0][1], lbd=2)
    exported = native.export_records()
    assert clause_records_from_wire(
        clause_records_to_wire(exported)
    ) == [records[0]]
    assert native.export_records() == []


# ----------------------------------------------------------------------
# Satellite regression: deadline taint is enforced inside record_blame
# ----------------------------------------------------------------------
def test_record_blame_taint_rule_is_centralized():
    items = (((1, "alu_op"), 1),)
    key = blame_key(4, items, items, set(), 0, (2000, 500))
    store = LearnedNogoods()
    store.record_blame(key, [items[0]], 42, cdcl=(1, 1, 0, 0, 1),
                       deadline_hit=True)
    assert store.lookup_blame(key) is None  # tainted: nothing stored
    assert store.export_records() == []  # and nothing pooled to workers
    store.record_blame(key, [items[0]], 42, cdcl=(1, 1, 0, 0, 1))
    assert store.lookup_blame(key) == ((items[0],), 42, (1, 1, 0, 0, 1))
