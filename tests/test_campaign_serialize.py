"""Round-trip tests for test-suite serialization."""

import pytest

from repro.campaign.runner import CampaignReport, ErrorOutcome
from repro.campaign.serialize import (
    load_json,
    realized_dlx_from_dict,
    realized_dlx_to_dict,
    report_from_dict,
    report_to_dict,
    save_json,
)
from repro.campaign.serialize import testcase_from_dict as tc_from_dict
from repro.campaign.serialize import testcase_to_dict as tc_to_dict
from repro.core.tg import TestCase, TestGenerator, TGStatus
from repro.errors import BusSSLError
from repro.mini import build_minipipe


def test_testcase_roundtrip():
    test = TestCase(
        n_frames=3,
        cpi_frames=[{"op": 1}, {"op": 0}, {"op": 2}],
        dpi_frames=[{"rf_a": 5}, {}, {"imm": 7}],
        stimulus_state={"r": 9},
        error="bus-ssl x[0] stuck-at-1",
        activation_frame=1,
        observation=(2, "out"),
        decided_cpi=frozenset({(0, "op"), (2, "op")}),
    )
    data = tc_to_dict(test)
    rebuilt = tc_from_dict(data)
    assert rebuilt == test


def test_testcase_kind_checked():
    with pytest.raises(ValueError):
        tc_from_dict({"kind": "other"})


def test_generated_testcase_roundtrips(tmp_path):
    processor = build_minipipe()
    result = TestGenerator(processor).generate(BusSSLError("alu_mux.y", 1, 0))
    assert result.status is TGStatus.DETECTED
    path = tmp_path / "test.json"
    save_json(tc_to_dict(result.test), str(path))
    rebuilt = tc_from_dict(load_json(str(path)))
    assert rebuilt == result.test


def test_realized_dlx_roundtrip_behaviour(tmp_path):
    """A saved DLX test replays with identical specification behaviour."""
    from repro.dlx import DlxSpec, build_dlx, detects
    from repro.dlx.realize import realize

    dlx = build_dlx()
    error = BusSSLError("alu_add.y", 0, 0)
    result = TestGenerator(dlx, deadline_seconds=20).generate(error)
    assert result.status is TGStatus.DETECTED
    realized = realize(dlx, result.test)

    path = tmp_path / "dlx_test.json"
    save_json(realized_dlx_to_dict(realized), str(path))
    rebuilt = realized_dlx_from_dict(load_json(str(path)))

    original = DlxSpec().run(
        realized.program, realized.init_regs, realized.init_memory
    )
    replayed = DlxSpec().run(
        rebuilt.program, rebuilt.init_regs, rebuilt.init_memory
    )
    assert replayed.events == original.events
    assert detects(dlx, rebuilt.program, error,
                   rebuilt.init_regs, rebuilt.init_memory)


def test_report_roundtrip():
    report = CampaignReport(
        outcomes=[
            ErrorOutcome("e1", True, test_length=6, final_backtracks=2),
            ErrorOutcome("e2", False, failure_stage="tg"),
        ],
        total_seconds=30.0,
    )
    rebuilt = report_from_dict(report_to_dict(report))
    assert rebuilt.n_detected == 1
    assert rebuilt.outcomes[0].final_backtracks == 2
    assert rebuilt.table1() == report.table1()


def test_report_roundtrip_with_dropped_outcomes():
    """A report containing fault-dropped outcomes survives the round trip
    with the dropping provenance intact."""
    report = CampaignReport(
        outcomes=[
            ErrorOutcome("e1", True, test_length=4, final_backtracks=1),
            ErrorOutcome("e2", True, test_length=4,
                         nontrivial_instructions=2, dropped_by="e1"),
            ErrorOutcome("e3", False, failure_stage="realize"),
        ],
        total_seconds=12.0,
    )
    rebuilt = report_from_dict(report_to_dict(report))
    assert rebuilt.n_errors == 3
    assert rebuilt.n_detected == 2
    assert rebuilt.outcomes[1].dropped_by == "e1"
    assert rebuilt.outcomes[1].detected
    assert rebuilt.outcomes[1].nontrivial_instructions == 2
    assert rebuilt.outcomes[2].failure_stage == "realize"
    assert rebuilt.table1() == report.table1()


def test_realized_mini_roundtrip_behaviour():
    """A saved MiniPipe test replays with identical detection behaviour."""
    from repro.campaign.serialize import (
        realized_mini_from_dict,
        realized_mini_to_dict,
    )
    from repro.mini import detects
    from repro.mini.realize import realize

    processor = build_minipipe()
    error = BusSSLError("alu_mux.y", 1, 0)
    result = TestGenerator(processor).generate(error)
    assert result.status is TGStatus.DETECTED
    realized = realize(result.test)

    rebuilt = realized_mini_from_dict(realized_mini_to_dict(realized))
    assert rebuilt.program == realized.program
    assert rebuilt.init_regs == realized.init_regs
    assert detects(processor, rebuilt.program, error, rebuilt.init_regs)


def test_realized_mini_kind_checked():
    from repro.campaign.serialize import realized_mini_from_dict

    with pytest.raises(ValueError):
        realized_mini_from_dict({"kind": "dlx-test"})


def test_save_json_is_atomic(tmp_path):
    """save_json replaces the target in one step and leaves no temp file."""
    import os

    path = tmp_path / "report.json"
    save_json({"kind": "campaign-report", "v": 1}, str(path))
    save_json({"kind": "campaign-report", "v": 2}, str(path))
    assert load_json(str(path))["v"] == 2
    assert os.listdir(tmp_path) == ["report.json"]


def test_save_json_failure_leaves_old_file_intact(tmp_path):
    """An unserializable object must not clobber the previous artifact."""
    import os

    path = tmp_path / "report.json"
    save_json({"v": "good"}, str(path))
    with pytest.raises(TypeError):
        save_json({"v": object()}, str(path))
    assert load_json(str(path))["v"] == "good"
    assert os.listdir(tmp_path) == ["report.json"]
