"""Extra coverage for utilities used across the substrates."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bit, bits_of, from_bits, mask, popcount, to_unsigned


@given(st.integers(0, mask(32)), st.integers(0, 31))
def test_bit_matches_bits_of(value, index):
    assert bit(value, index) == bits_of(value, 32)[index]


@given(st.integers(0, mask(24)))
def test_popcount_matches_bits(value):
    assert popcount(value) == sum(bits_of(value, 24))


@given(st.lists(st.integers(0, 1), min_size=1, max_size=24))
def test_from_bits_inverse(bits):
    value = from_bits(bits)
    assert bits_of(value, len(bits)) == bits


@given(st.integers(-(1 << 40), 1 << 40), st.integers(1, 48))
def test_to_unsigned_idempotent(value, width):
    once = to_unsigned(value, width)
    assert to_unsigned(once, width) == once
