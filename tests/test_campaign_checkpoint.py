"""Tests for the JSONL campaign checkpoint (append, load, torn writes)."""

import json

import pytest

from repro.campaign.checkpoint import CampaignCheckpoint, CheckpointRecord
from repro.campaign.runner import ErrorOutcome


def _outcome(name: str, detected: bool = True) -> ErrorOutcome:
    return ErrorOutcome(name, detected, test_length=4, backtracks=1,
                        final_backtracks=1, seconds=0.5)


def test_append_and_load_roundtrip(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    with CampaignCheckpoint(path) as checkpoint:
        checkpoint.append(_outcome("e1"), test={"kind": "mini-test"})
        checkpoint.append(_outcome("e2", detected=False))
        assert checkpoint.n_written == 2
    records = CampaignCheckpoint.load(path)
    assert [r.outcome.error for r in records] == ["e1", "e2"]
    assert records[0].test == {"kind": "mini-test"}
    assert records[1].test is None
    assert records[0].outcome.test_length == 4
    assert not records[1].outcome.detected


def test_load_missing_file_is_empty():
    assert CampaignCheckpoint.load("/nonexistent/cp.jsonl") == []


def test_append_resumes_existing_file(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    with CampaignCheckpoint(path) as checkpoint:
        checkpoint.append(_outcome("e1"))
    with CampaignCheckpoint(path) as checkpoint:
        checkpoint.append(_outcome("e2"))
    assert CampaignCheckpoint.completed_errors(path) == {"e1", "e2"}


def test_torn_final_line_tolerated(tmp_path):
    """A killed run may truncate the last record; load skips it."""
    path = str(tmp_path / "cp.jsonl")
    with CampaignCheckpoint(path) as checkpoint:
        checkpoint.append(_outcome("e1"))
        checkpoint.append(_outcome("e2"))
    with open(path, "a") as handle:
        handle.write('{"kind": "campaign-checkpoint", "outco')
    records = CampaignCheckpoint.load(path)
    assert [r.outcome.error for r in records] == ["e1", "e2"]


def test_mid_file_corruption_raises(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    good = json.dumps(CheckpointRecord(_outcome("e1")).to_dict())
    with open(path, "w") as handle:
        handle.write("not json at all\n" + good + "\n")
    with pytest.raises(ValueError, match="corrupt checkpoint"):
        CampaignCheckpoint.load(path)


def test_wrong_record_kind_rejected():
    with pytest.raises(ValueError):
        CheckpointRecord.from_dict({"kind": "other", "outcome": {}})


def test_record_dict_roundtrip():
    record = CheckpointRecord(_outcome("e9"), test={"kind": "dlx-test"})
    rebuilt = CheckpointRecord.from_dict(record.to_dict())
    assert rebuilt.outcome == record.outcome
    assert rebuilt.test == record.test
