"""Tests for three-valued controller nodes.

Two contracts matter:
* eval3 is *monotone and sound*: with every input known it equals the
  concrete function; with unknowns it returns a value only when all
  completions agree.
* backtrace options are *consistent*: applying an option never makes the
  target unreachable when eval3 would allow it (checked per node type).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.controller.nodes import (
    AndNode,
    BufNode,
    ConstNode,
    EqConstNode,
    EqNode,
    InSetNode,
    MuxNode,
    NotNode,
    OrNode,
    TableNode,
    XorNode,
)
from repro.controller.pipeline import CprNode

BIT = (0, 1)
maybe_bit = st.sampled_from([0, 1, None])


def test_const_node():
    n = ConstNode(1)
    assert n.eval3([]) == 1
    assert n.backtrace_options(0, [], []) == []


def test_buf_node():
    n = BufNode("a")
    assert n.eval3([0]) == 0
    assert n.eval3([None]) is None
    assert n.backtrace_options(1, [None], [BIT]) == [(0, 1)]


def test_not_node():
    n = NotNode("a")
    assert n.eval3([0]) == 1
    assert n.eval3([1]) == 0
    assert n.eval3([None]) is None
    assert n.backtrace_options(0, [None], [BIT]) == [(0, 1)]


def test_and_node_three_valued():
    n = AndNode(["a", "b"])
    assert n.eval3([0, None]) == 0
    assert n.eval3([1, 1]) == 1
    assert n.eval3([1, None]) is None
    options = n.backtrace_options(1, [1, None], [BIT, BIT])
    assert options == [(1, 1)]


def test_or_node_three_valued():
    n = OrNode(["a", "b"])
    assert n.eval3([1, None]) == 1
    assert n.eval3([0, 0]) == 0
    assert n.eval3([0, None]) is None
    assert n.backtrace_options(0, [None, 0], [BIT, BIT]) == [(0, 0)]


def test_xor_node():
    n = XorNode(["a", "b"])
    assert n.eval3([1, 1]) == 0
    assert n.eval3([1, 0]) == 1
    assert n.eval3([1, None]) is None
    assert n.backtrace_options(1, [1, None], [BIT, BIT]) == [(1, 0)]


def test_eq_const_node():
    n = EqConstNode("op", 5)
    assert n.eval3([5]) == 1
    assert n.eval3([4]) == 0
    assert n.eval3([None]) is None
    assert n.backtrace_options(1, [None], [(3, 4, 5)]) == [(0, 5)]
    assert (0, 3) in n.backtrace_options(0, [None], [(3, 4, 5)])


def test_eq_const_unreachable_target():
    n = EqConstNode("op", 9)
    assert n.backtrace_options(1, [None], [(3, 4, 5)]) == []


def test_in_set_node():
    n = InSetNode("op", {1, 2})
    assert n.eval3([1]) == 1
    assert n.eval3([3]) == 0
    assert n.eval3([None]) is None
    ones = n.backtrace_options(1, [None], [(0, 1, 2, 3)])
    assert set(ones) == {(0, 1), (0, 2)}
    zeros = n.backtrace_options(0, [None], [(0, 1, 2, 3)])
    assert set(zeros) == {(0, 0), (0, 3)}


def test_eq_node():
    n = EqNode("a", "b")
    assert n.eval3([3, 3]) == 1
    assert n.eval3([3, 4]) == 0
    assert n.eval3([3, None]) is None
    dom = [(1, 2, 3), (1, 2, 3)]
    assert n.backtrace_options(1, [None, 2], dom) == [(0, 2)]
    assert n.backtrace_options(1, [2, None], dom) == [(1, 2)]
    assert (0, 1) in n.backtrace_options(0, [None, 2], dom)
    assert n.backtrace_options(1, [None, None], dom) == [(0, 1)]


def test_mux_node():
    n = MuxNode("sel", "a", "b")
    assert n.eval3([0, 10, 20]) == 10
    assert n.eval3([1, 10, 20]) == 20
    assert n.eval3([None, 10, 10]) == 10  # both branches agree
    assert n.eval3([None, 10, 20]) is None
    # sel known, selected input unknown
    dom = [BIT, (10, 20), (10, 20)]
    assert n.backtrace_options(20, [1, 10, None], dom) == [(2, 20)]
    # sel unknown: prefer steering toward an input already at target
    options = n.backtrace_options(20, [None, 10, 20], dom)
    assert options[0] == (0, 1)


def test_mux_node_rejects_single_data():
    with pytest.raises(ValueError):
        MuxNode("s", "a")


def test_table_node_full_and_partial():
    # A 2-bit decoder: out = a + 2*b
    n = TableNode(["a", "b"], lambda a, b: a + 2 * b, [BIT, BIT])
    assert n.eval3([1, 1]) == 3
    assert n.eval3([None, 1]) is None
    # When all completions agree the value is implied.
    n2 = TableNode(["a", "b"], lambda a, b: b, [BIT, BIT])
    assert n2.eval3([None, 1]) == 1


def test_table_node_backtrace():
    n = TableNode(["a", "b"], lambda a, b: a & b, [BIT, BIT])
    options = n.backtrace_options(1, [None, 1], [BIT, BIT])
    assert (0, 1) in options
    assert (0, 0) not in options


def test_table_node_enum_limit():
    big_domain = tuple(range(100))
    n = TableNode(
        ["a", "b"], lambda a, b: 0, [big_domain, big_domain], max_enum=64
    )
    assert n.eval3([None, None]) is None  # too many completions: stays X


@given(maybe_bit, maybe_bit, maybe_bit)
def test_and_or_soundness(a, b, c):
    """eval3 result must match every completion of the unknowns."""
    for node_cls, fn in ((AndNode, min), (OrNode, max)):
        node = node_cls(["a", "b", "c"])
        result = node.eval3([a, b, c])
        if result is not None:
            for xa in ([a] if a is not None else [0, 1]):
                for xb in ([b] if b is not None else [0, 1]):
                    for xc in ([c] if c is not None else [0, 1]):
                        assert fn((xa, xb, xc)) == result


# ---------------------------------------------------------------------------
# CprNode semantics
# ---------------------------------------------------------------------------
def test_cpr_plain_follows_d():
    n = CprNode("d", None, None, None, 0)
    assert n.eval3([5]) == 5
    assert n.eval3([None]) is None


def test_cpr_with_enable():
    n = CprNode("d", "q", "en", None, 0)
    assert n.eval3([5, 3, 1]) == 5  # enabled: follow d
    assert n.eval3([5, 3, 0]) == 3  # stalled: hold q
    assert n.eval3([5, 5, None]) == 5  # both branches agree
    assert n.eval3([5, 3, None]) is None


def test_cpr_with_clear():
    n = CprNode("d", None, None, "clr", 7)
    assert n.eval3([5, 1]) == 7  # cleared
    assert n.eval3([5, 0]) == 5
    assert n.eval3([7, None]) == 7  # either way it's 7
    assert n.eval3([5, None]) is None


def test_cpr_enable_and_clear():
    n = CprNode("d", "q", "en", "clr", 0)
    # order: d, q_prev, en, clr
    assert n.eval3([5, 3, 1, 1]) == 0  # clear dominates
    assert n.eval3([5, 3, 0, 0]) == 3
    assert n.eval3([5, 3, 1, 0]) == 5


def test_cpr_requires_qprev_with_enable():
    with pytest.raises(ValueError):
        CprNode("d", None, "en", None, 0)


def test_cpr_backtrace_clear_path():
    n = CprNode("d", "q", "en", "clr", 0)
    dom = [(0, 1, 2, 3)] * 2 + [BIT, BIT]
    options = n.backtrace_options(0, [None, None, None, None], dom)
    assert options[0] == (3, 1)  # clearing is the cheapest way to get 0
    options = n.backtrace_options(2, [None, None, None, None], dom)
    assert (3, 0) in options  # must not clear to reach a non-clear value


def test_cpr_backtrace_through_d():
    n = CprNode("d", "q", "en", "clr", 0)
    dom = [(0, 1, 2, 3)] * 2 + [BIT, BIT]
    options = n.backtrace_options(2, [None, None, 1, 0], dom)
    assert (0, 2) in options
    options = n.backtrace_options(2, [None, None, 0, 0], dom)
    assert (1, 2) in options  # stalled: value must come from q_prev
