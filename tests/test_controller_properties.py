"""Property tests tying the three-valued controller semantics to the
concrete semantics (the soundness obligations of the implication engine)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.controller.nodes import (
    AndNode,
    EqConstNode,
    EqNode,
    InSetNode,
    MuxNode,
    NotNode,
    OrNode,
    TableNode,
    XorNode,
)
from repro.controller.pipeline import CprNode

maybe_bit = st.sampled_from([0, 1, None])
small_field = st.sampled_from([0, 1, 2, 3, None])


def completions(values, domains):
    """All concrete completions of a partial assignment."""
    import itertools

    axes = [
        (v,) if v is not None else tuple(domains[i])
        for i, v in enumerate(values)
    ]
    return itertools.product(*axes)


def check_soundness(node, values, domains, concrete_fn):
    """If eval3 returns a concrete value, every completion agrees with it;
    and on fully-concrete inputs eval3 equals the concrete function."""
    result = node.eval3(values)
    if all(v is not None for v in values):
        assert result == concrete_fn(*values)
        return
    if result is not None:
        for combo in completions(values, domains):
            assert concrete_fn(*combo) == result


@given(st.lists(maybe_bit, min_size=2, max_size=4))
def test_and_or_xor_soundness(values):
    domains = [(0, 1)] * len(values)
    names = [f"i{k}" for k in range(len(values))]
    check_soundness(AndNode(names), values, domains, lambda *v: min(v))
    check_soundness(OrNode(names), values, domains, lambda *v: max(v))
    check_soundness(XorNode(names), values, domains,
                    lambda *v: sum(v) & 1)


@given(maybe_bit)
def test_not_soundness(value):
    check_soundness(NotNode("a"), [value], [(0, 1)], lambda v: 1 - v)


@given(small_field, st.integers(0, 3))
def test_eqconst_soundness(value, constant):
    node = EqConstNode("a", constant)
    check_soundness(node, [value], [(0, 1, 2, 3)],
                    lambda v: int(v == constant))


@given(small_field, small_field)
def test_eq_soundness(a, b):
    node = EqNode("a", "b")
    check_soundness(node, [a, b], [(0, 1, 2, 3)] * 2,
                    lambda x, y: int(x == y))


@given(small_field, st.sets(st.integers(0, 3), max_size=4))
def test_inset_soundness(value, members):
    node = InSetNode("a", members)
    check_soundness(node, [value], [(0, 1, 2, 3)],
                    lambda v: int(v in members))


@given(maybe_bit, small_field, small_field)
def test_mux_soundness(sel, a, b):
    node = MuxNode("s", "a", "b")
    domains = [(0, 1), (0, 1, 2, 3), (0, 1, 2, 3)]

    def concrete(s, x, y):
        return (x, y)[s if s < 2 else 0]

    check_soundness(node, [sel, a, b], domains, concrete)


@given(small_field, small_field)
def test_table_soundness(a, b):
    node = TableNode(["a", "b"], lambda x, y: (x + y) % 4,
                     [(0, 1, 2, 3)] * 2)
    check_soundness(node, [a, b], [(0, 1, 2, 3)] * 2,
                    lambda x, y: (x + y) % 4)


@given(small_field, small_field, maybe_bit, maybe_bit)
def test_cpr_soundness(d, q_prev, enable, clear):
    """CprNode's three-valued semantics agrees with the clock-edge rule."""
    node = CprNode("d", "q", "en", "clr", clear_value=0)
    domains = [(0, 1, 2, 3)] * 2 + [(0, 1)] * 2

    def concrete(dv, qv, env, clrv):
        if clrv == 1:
            return 0
        return dv if env == 1 else qv

    check_soundness(node, [d, q_prev, enable, clear], domains, concrete)


@given(small_field, small_field, maybe_bit, maybe_bit, st.integers(0, 3))
def test_cpr_backtrace_options_are_feasible(d, q_prev, enable, clear, target):
    """Every backtrace option keeps the target reachable: applying it and
    completing the rest somehow can still produce the target (no option is
    an immediate dead end)."""
    node = CprNode("d", "q", "en", "clr", clear_value=0)
    domains = [(0, 1, 2, 3)] * 2 + [(0, 1)] * 2
    values = [d, q_prev, enable, clear]

    def concrete(dv, qv, env, clrv):
        if clrv == 1:
            return 0
        return dv if env == 1 else qv

    reachable_before = any(
        concrete(*combo) == target for combo in completions(values, domains)
    )
    options = node.backtrace_options(target, values, domains)
    for index, want in options:
        assert values[index] is None  # options only touch open inputs
    if not reachable_before:
        return  # infeasible targets are caught by implication, not here
    # At least one option must keep the target reachable (PODEM tries the
    # alternatives in turn, so not every option has to).
    if options:
        assert any(
            any(
                concrete(*combo) == target
                for combo in completions(
                    [want if i == index else v for i, v in enumerate(values)],
                    domains,
                )
            )
            for index, want in options
        ), (values, target, options)
