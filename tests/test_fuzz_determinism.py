"""Seeded determinism of the fuzz harness.

The report artifact must be byte-identical for the same ``(machine, iters,
seed, ...)`` whatever the worker count — the property the CI gate and any
cross-PR diffing rely on.  The batched ``lanes`` knob is held to the same
standard: it is an execution strategy, so reports and conformance-matrix
artifacts must be byte-identical with batching off (``lanes=0``), at any
explicit lane width, and on auto (``lanes=None``).
"""

import json

import pytest

from repro.datapath import HAS_NUMPY
from repro.fuzz import FuzzConfig, machine_adapter, run_fuzz
from repro.fuzz.conformance import MatrixConfig, run_matrix

PLANT = "bus-ssl:alu_add.y:0:1"

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy absent (batched backend unavailable)"
)


def _report_bytes(**kwargs) -> bytes:
    config = FuzzConfig(**kwargs)
    report = run_fuzz(config)
    processor = machine_adapter(config.machine).build()
    return json.dumps(report.to_dict(processor), sort_keys=True).encode()


def _matrix_bytes(**kwargs) -> bytes:
    fragment = run_matrix(MatrixConfig(**kwargs))
    return json.dumps(fragment, sort_keys=True).encode()


def test_same_seed_byte_identical_report():
    first = _report_bytes(machine="mini", iters=20, seed=11)
    second = _report_bytes(machine="mini", iters=20, seed=11)
    assert first == second


def test_jobs_do_not_change_report():
    serial = _report_bytes(machine="mini", iters=12, seed=11, jobs=1)
    two = _report_bytes(machine="mini", iters=12, seed=11, jobs=2)
    four = _report_bytes(machine="mini", iters=12, seed=11, jobs=4)
    assert serial == two == four


def test_planted_minimization_is_deterministic():
    runs = []
    for _ in range(2):
        config = FuzzConfig(
            machine="mini", iters=10, seed=11, plant=PLANT, max_minimize=2
        )
        report = run_fuzz(config)
        assert report.minimized
        runs.append(report)
    first, second = runs
    assert [d["index"] for d in first.divergences] == \
        [d["index"] for d in second.divergences]
    assert first.minimized == second.minimized  # incl. pytest_case text


def test_planted_jobs_identical_minimizers():
    reports = [
        run_fuzz(FuzzConfig(machine="mini", iters=10, seed=11,
                            plant=PLANT, max_minimize=2, jobs=jobs))
        for jobs in (1, 2)
    ]
    assert reports[0].minimized == reports[1].minimized


# ----------------------------------------------------------------------
# The lanes knob: byte-identical artifacts at any lane width
# ----------------------------------------------------------------------
@requires_numpy
def test_lanes_do_not_change_report():
    base = dict(machine="mini", iters=12, seed=11)
    scalar = _report_bytes(lanes=0, **base)
    assert scalar == _report_bytes(lanes=1, **base)
    assert scalar == _report_bytes(lanes=7, **base)
    assert scalar == _report_bytes(lanes=None, **base)


@requires_numpy
def test_lanes_with_plant_and_jobs():
    base = dict(machine="mini", iters=10, seed=11, plant=PLANT,
                max_minimize=2)
    scalar = _report_bytes(lanes=0, **base)
    assert scalar == _report_bytes(lanes=4, **base)
    assert scalar == _report_bytes(lanes=4, jobs=2, **base)


@requires_numpy
def test_dlx_bp_lanes_identity():
    base = dict(machine="dlx_bp", iters=6, seed=3)
    assert _report_bytes(lanes=0, **base) == _report_bytes(lanes=None, **base)


def test_scalar_lanes_always_available():
    """``lanes=0`` never needs numpy — the fallback the no-numpy CI tier
    exercises for real."""
    _report_bytes(machine="mini", iters=5, seed=3, lanes=0)


def test_lanes_left_out_of_artifact_config():
    """The knob is an execution strategy: the report's config block (and
    so the artifact bytes) must not mention it."""
    config = FuzzConfig(machine="mini", iters=5, seed=3, lanes=0)
    report = run_fuzz(config)
    processor = machine_adapter(config.machine).build()
    assert "lanes" not in report.to_dict(processor)["config"]


def test_lanes_validation():
    with pytest.raises(ValueError, match="lanes"):
        FuzzConfig(machine="mini", iters=1, seed=1, lanes=-2)


@requires_numpy
def test_matrix_lanes_do_not_change_artifact():
    base = dict(machine="mini", programs=6, length=10, seed=3)
    scalar = _matrix_bytes(lanes=0, **base)
    assert scalar == _matrix_bytes(lanes=3, **base)
    assert scalar == _matrix_bytes(lanes=None, **base)


def test_different_seeds_differ():
    a = run_fuzz(FuzzConfig(machine="mini", iters=10, seed=1, plant=PLANT))
    b = run_fuzz(FuzzConfig(machine="mini", iters=10, seed=2, plant=PLANT))
    # Same machine and planted error, different seeds: the diverging
    # programs themselves must differ (the generator really is seeded).
    assert [d["program"] for d in a.divergences] != \
        [d["program"] for d in b.divergences]
