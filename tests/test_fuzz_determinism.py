"""Seeded determinism of the fuzz harness.

The report artifact must be byte-identical for the same ``(machine, iters,
seed, ...)`` whatever the worker count — the property the CI gate and any
cross-PR diffing rely on.
"""

import json

from repro.fuzz import FuzzConfig, machine_adapter, run_fuzz

PLANT = "bus-ssl:alu_add.y:0:1"


def _report_bytes(**kwargs) -> bytes:
    config = FuzzConfig(**kwargs)
    report = run_fuzz(config)
    processor = machine_adapter(config.machine).build()
    return json.dumps(report.to_dict(processor), sort_keys=True).encode()


def test_same_seed_byte_identical_report():
    first = _report_bytes(machine="mini", iters=20, seed=11)
    second = _report_bytes(machine="mini", iters=20, seed=11)
    assert first == second


def test_jobs_do_not_change_report():
    serial = _report_bytes(machine="mini", iters=12, seed=11, jobs=1)
    two = _report_bytes(machine="mini", iters=12, seed=11, jobs=2)
    four = _report_bytes(machine="mini", iters=12, seed=11, jobs=4)
    assert serial == two == four


def test_planted_minimization_is_deterministic():
    runs = []
    for _ in range(2):
        config = FuzzConfig(
            machine="mini", iters=10, seed=11, plant=PLANT, max_minimize=2
        )
        report = run_fuzz(config)
        assert report.minimized
        runs.append(report)
    first, second = runs
    assert [d["index"] for d in first.divergences] == \
        [d["index"] for d in second.divergences]
    assert first.minimized == second.minimized  # incl. pytest_case text


def test_planted_jobs_identical_minimizers():
    reports = [
        run_fuzz(FuzzConfig(machine="mini", iters=10, seed=11,
                            plant=PLANT, max_minimize=2, jobs=jobs))
        for jobs in (1, 2)
    ]
    assert reports[0].minimized == reports[1].minimized


def test_different_seeds_differ():
    a = run_fuzz(FuzzConfig(machine="mini", iters=10, seed=1, plant=PLANT))
    b = run_fuzz(FuzzConfig(machine="mini", iters=10, seed=2, plant=PLANT))
    # Same machine and planted error, different seeds: the diverging
    # programs themselves must differ (the generator really is seeded).
    assert [d["program"] for d in a.divergences] != \
        [d["program"] for d in b.divergences]
