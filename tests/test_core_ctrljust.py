"""Tests for CTRLJUST justification on unrolled controllers."""

import pytest

from repro.core.ctrljust import CtrlJust, JustStatus
from tests.test_controller_network import build_two_stage


@pytest.fixture()
def unrolled():
    return build_two_stage().unroll(4)


def test_empty_objectives_succeed(unrolled):
    result = CtrlJust(unrolled).justify([])
    assert result.status is JustStatus.SUCCESS
    assert result.assignment == {}


def test_justify_ctrl_via_cpi_decision(unrolled):
    # write_en@2 = is_load_ex@2 = CPR of is_load@1 = (op@1 in {2,3}).
    result = CtrlJust(unrolled).justify([("2:write_en", 1)])
    assert result.status is JustStatus.SUCCESS
    assert result.assignment.get("1:op") in (2, 3)
    assert result.implied["2:write_en"] == 1


def test_justify_zero_objective(unrolled):
    result = CtrlJust(unrolled).justify([("2:write_en", 0)])
    assert result.status is JustStatus.SUCCESS
    assert result.implied["2:write_en"] == 0


def test_unsatisfiable_at_reset_frame(unrolled):
    # Frame 0 CSI is the reset state (0), so write_en@0 == 0 always.
    result = CtrlJust(unrolled).justify([("0:write_en", 1)])
    assert result.status is JustStatus.FAILURE


def test_conflicting_objectives_fail(unrolled):
    result = CtrlJust(unrolled).justify(
        [("2:write_en", 1), ("2:stall", 0)]
    )
    # write_en@2 == is_load_ex@2 == stall@2, so 1 and 0 conflict.
    assert result.status is JustStatus.FAILURE


def test_consistent_pair_succeeds(unrolled):
    result = CtrlJust(unrolled).justify(
        [("2:write_en", 1), ("2:stall", 1)]
    )
    assert result.status is JustStatus.SUCCESS


def test_cti_decision_is_justified(unrolled):
    # Objective directly on a tertiary signal instance.
    result = CtrlJust(unrolled).justify([("3:stall", 1)])
    assert result.status is JustStatus.SUCCESS
    # stall@3 = is_load_ex@3 requires a load at op@2 that was not stalled.
    assert result.implied["3:stall"] == 1


def test_stall_interaction_across_frames(unrolled):
    """A load at frame 1 stalls frame 2, so the frame-2 op is not latched:
    is_load_ex@3 must hold the frame-1 load (enable low holds CPR)."""
    result = CtrlJust(unrolled).justify(
        [("2:stall", 1), ("3:stall", 1)]
    )
    assert result.status is JustStatus.SUCCESS
    values = result.implied
    assert values["2:is_load_ex"] == 1
    assert values["3:is_load_ex"] == 1


def test_invalid_objective_value_rejected(unrolled):
    with pytest.raises(ValueError):
        CtrlJust(unrolled).justify([("1:op", 9)])


def test_sts_requirements_and_cpi_sequence(unrolled):
    result = CtrlJust(unrolled).justify([("2:write_en", 1)])
    assert result.status is JustStatus.SUCCESS
    # No STS signals in this controller.
    assert result.sts_requirements(unrolled) == []
    frames = result.cpi_sequence(unrolled, defaults={"op": 0})
    assert len(frames) == 4
    assert frames[1]["op"] in (2, 3)
    assert frames[0]["op"] in (0, 1, 2, 3)  # default or decided


def test_backtrack_count_reported(unrolled):
    result = CtrlJust(unrolled).justify([("0:write_en", 1)])
    assert result.status is JustStatus.FAILURE
    assert result.backtracks >= 0


def test_pre_assignment_respected(unrolled):
    # Pre-assign op@1 to a non-load.  write_en@2 = is_load_ex@2 can then
    # only be justified the long way round: a load at frame 0 raises
    # stall@1, which holds the CPR so is_load_ex@2 keeps the frame-0 load.
    result = CtrlJust(unrolled).justify(
        [("2:write_en", 1)], pre_assignment={"1:op": 0}
    )
    assert result.status is JustStatus.SUCCESS
    assert result.assignment.get("0:op") in (2, 3)
    assert result.implied["1:stall"] == 1
