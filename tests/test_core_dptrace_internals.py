"""Unit tests for DPTRACE search mechanics: variants, discouragement,
blame metadata and the static observability distance."""

from repro.core.dptrace import DPTrace, Decision, TraceStatus, _observability_distance
from repro.model.pathgraph import DatapathPathAnalyzer
from tests.helpers import build_linear_chain, build_toy_pipeline


def test_observability_distance():
    netlist = build_linear_chain()
    distance = _observability_distance(netlist)
    assert distance["out"] == 0  # the DPO (x1's output, renamed)
    assert distance["r1.y"] == 1  # one module from the output
    assert distance["a1.y"] == 2  # through the register
    assert distance["x"] == 3


def test_rotation_changes_nothing_for_variant_zero():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), 3)
    tracer = DPTrace(analyzer, {}, variant=0)
    items = [1, 2, 3]
    assert tracer._rotate(items) == [1, 2, 3]
    tracer2 = DPTrace(analyzer, {}, variant=1)
    assert tracer2._rotate([1, 2, 3]) == [2, 3, 1]
    assert tracer2._rotate([]) == []


def test_discouragement_rotates_values():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), 3)
    tracer = DPTrace(
        analyzer, {}, discouraged={((0, "op"), 0)}
    )
    decision = Decision("ctrl", (0, "op"), 0, alternatives=[1])
    rotated = tracer._apply_discouragement(decision)
    assert rotated.value == 1
    assert rotated.alternatives == [0]


def test_discouragement_keeps_sole_value():
    analyzer = DatapathPathAnalyzer(build_toy_pipeline(), 3)
    tracer = DPTrace(analyzer, {}, discouraged={((0, "op"), 0)})
    decision = Decision("ctrl", (0, "op"), 0, alternatives=[])
    unchanged = tracer._apply_discouragement(decision)
    assert unchanged.value == 0


def test_control_side_metadata():
    netlist = build_toy_pipeline()
    analyzer = DatapathPathAnalyzer(netlist, 3)
    tracer = DPTrace(analyzer, {})
    result = tracer.select_paths("alu_add.y", 0)
    assert result.status is TraceStatus.SUCCESS
    # Every control-side entry is one of the ctrl objectives.
    for (var, value) in result.control_side:
        assert result.ctrl_objectives.get(var) == value


def test_variants_explore_different_paths():
    """With multiple viable observation routes, variants differ."""
    netlist = build_toy_pipeline()
    analyzer = DatapathPathAnalyzer(netlist, 4)
    objective_sets = set()
    for variant in range(3):
        tracer = DPTrace(analyzer, {}, variant=variant)
        result = tracer.select_paths("opbmux.y", 0)
        if result.status is TraceStatus.SUCCESS:
            objective_sets.add(tuple(sorted(result.ctrl_objectives.items())))
    assert objective_sets  # at least one viable selection
