"""Tests for the ddmin failing-sequence minimizer (repro.fuzz.minimize)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BusOrderError, BusSSLError, ModuleSubstitutionError
from repro.fuzz.minimize import (
    MinimizedCase,
    ddmin,
    emit_pytest_case,
    error_to_spec,
    minimize_case,
    parse_error_spec,
    reduce_init_regs,
    reduce_operand_fields,
)
from repro.mini import Instruction, build_minipipe
from repro.mini.spec import detects

NOP = Instruction("NOP")


# ---------------------------------------------------------------------------
# ddmin on plain lists
# ---------------------------------------------------------------------------
@given(
    before=st.lists(st.integers(0, 9), max_size=8),
    after=st.lists(st.integers(0, 9), max_size=8),
)
@settings(deadline=None)
def test_ddmin_isolates_single_poison_element(before, after):
    poison = 99
    items = before + [poison] + after
    result = ddmin(items, lambda seq: poison in seq)
    assert result == [poison]


def test_ddmin_requires_failing_input():
    with pytest.raises(ValueError):
        ddmin([1, 2, 3], lambda seq: False)


def test_ddmin_keeps_multi_element_dependency():
    items = [7, 1, 7, 7, 2, 7]
    result = ddmin(items, lambda seq: 1 in seq and 2 in seq)
    assert sorted(result) == [1, 2]


def test_ddmin_result_is_subsequence():
    items = list(range(20))
    result = ddmin(items, lambda seq: sum(seq) >= 30)
    it = iter(items)
    assert all(x in it for x in result)  # order-preserving subsequence
    assert sum(result) >= 30


# ---------------------------------------------------------------------------
# Property: a planted single-instruction discrepancy always minimizes to
# a 1-instruction reproducer (the satellite requirement).
# ---------------------------------------------------------------------------
_PROCESSOR = build_minipipe()
_ERROR = BusSSLError("alu_add.y", 0, 1)


@given(
    before=st.integers(0, 3),
    after=st.integers(0, 3),
    rd=st.integers(0, 3),
    # Even immediates: bit 0 of the ADDI result is 0, so stuck-at-1 on
    # alu_add.y bit 0 corrupts the retired write and the case diverges.
    imm=st.integers(0, 120).map(lambda v: v * 2),
)
@settings(max_examples=25, deadline=None)
def test_planted_discrepancy_minimizes_to_one_instruction(
    before, after, rd, imm
):
    planted = Instruction("ADDI", rs1=0, rd=rd, imm=imm)
    program = [NOP] * before + [planted] + [NOP] * after
    init_regs = [0, 0, 0, 0]

    def diverges(prog, regs):
        return bool(prog) and detects(_PROCESSOR, prog, _ERROR, regs)

    assert diverges(program, init_regs)  # NOPs never write: only the
    case = minimize_case(program, init_regs, diverges)  # ADDI can expose
    assert len(case.program) == 1
    assert case.program[0].op == "ADDI"
    assert case.original_length == len(program)
    assert diverges(case.program, case.init_regs)


# ---------------------------------------------------------------------------
# Field / register reduction
# ---------------------------------------------------------------------------
def test_reduce_operand_fields_zeroes_unneeded():
    program = [Instruction("ADDI", rs1=2, rd=1, imm=6)]
    reduced = reduce_operand_fields(
        program, lambda p: p[0].rd == 1  # only rd matters
    )
    assert reduced == [Instruction("ADDI", rs1=0, rd=1, imm=0)]


def test_reduce_operand_fields_keeps_needed():
    program = [Instruction("ADDI", rs1=2, rd=1, imm=6)]
    reduced = reduce_operand_fields(
        program, lambda p: p[0].imm == 6 and p[0].rd == 1
    )
    assert reduced == [Instruction("ADDI", rs1=0, rd=1, imm=6)]


def test_reduce_init_regs():
    regs = reduce_init_regs([5, 7, 0, 9], lambda r: r[1] == 7)
    assert regs == [0, 7, 0, 0]


def test_minimize_case_counts_predicate_calls():
    case = minimize_case(
        [NOP, Instruction("ADDI", rd=1, imm=4), NOP],
        [0, 0, 0, 0],
        lambda prog, regs: any(i.op == "ADDI" for i in prog),
    )
    assert isinstance(case, MinimizedCase)
    assert [i.op for i in case.program] == ["ADDI"]
    assert case.predicate_calls > 0


# ---------------------------------------------------------------------------
# Error spec round-trip
# ---------------------------------------------------------------------------
def test_error_spec_roundtrip():
    for error in (
        BusSSLError("alu_add.y", 3, 1),
        ModuleSubstitutionError("alu_add", "Sub"),
        BusOrderError("opa_mux"),
    ):
        spec = error_to_spec(error)
        assert parse_error_spec(spec) == error


def test_parse_mse_without_type_infers_from_netlist():
    netlist = build_minipipe().datapath
    error = parse_error_spec("mse:alu_add", netlist)
    assert error.module == "alu_add"
    assert error.module_type == type(netlist.module("alu_add")).__name__


def test_parse_error_spec_rejects_bad_input():
    for spec in ("bus-ssl:net:0", "mse:a:b:c", "boe:a:b", "nope:x", "mse:m"):
        with pytest.raises(ValueError):
            parse_error_spec(spec)


# ---------------------------------------------------------------------------
# Emitted pytest cases actually run
# ---------------------------------------------------------------------------
def _run_emitted(source: str) -> None:
    namespace: dict = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)
    namespace["test_fuzz_reproducer"]()


def test_emit_pytest_case_planted_runs():
    source = emit_pytest_case(
        "mini",
        [Instruction("ADDI", rd=1, imm=4)],
        [0, 0, 0, 0],
        error=_ERROR,
        provenance="unit test",
    )
    assert "assert detects(" in source
    assert "unit test" in source
    _run_emitted(source)


def test_emit_pytest_case_fault_free_runs():
    source = emit_pytest_case(
        "mini", [Instruction("ADDI", rd=1, imm=4)], [0, 0, 0, 0]
    )
    assert "MiniSpec" in source and "detects" not in source
    _run_emitted(source)  # fault-free machine: spec == impl, so it passes


def test_emit_pytest_case_unknown_machine():
    with pytest.raises(ValueError):
        emit_pytest_case("vax", [], [])
