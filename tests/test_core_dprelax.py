"""Tests for the DPRELAX discrete-relaxation value solver."""

import pytest

from repro.core.dprelax import (
    ActivationConstraint,
    DiscreteRelaxer,
)
from repro.datapath import DatapathBuilder, DatapathSimulator
from tests.helpers import build_linear_chain, build_toy_pipeline


def full_ctrl(pairs, n_frames):
    """Expand {name: value} to {(frame, name): value} for all frames."""
    out = {}
    for frame in range(n_frames):
        for name, value in pairs.items():
            out[(frame, name)] = value
    return out


def test_forward_propagation_computes_outputs():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    relaxer.fix(0, "x", 10)
    result = relaxer.relax()
    assert result.converged
    assert result.values[(0, "a1.y")] == 13
    assert result.values[(1, "r1.y")] == 13
    assert result.values[(1, "out")] == 13 ^ 0x55


def test_backward_solving_through_adder_and_xor():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    relaxer.fix(1, "out", 0xAA)  # require the DPO value
    result = relaxer.relax()
    assert result.converged
    # The solver must have derived x at frame 0.
    x = result.values[(0, "x")]
    sim = DatapathSimulator(netlist)
    sim.step({"x": x})
    values = sim.step({"x": 0})
    assert values["out"] == 0xAA


def test_conflicting_fixed_values_rejected():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    relaxer.fix(0, "x", 1)
    with pytest.raises(ValueError):
        relaxer.fix(0, "x", 2)


def test_infeasible_fixed_pair_reported():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    relaxer.fix(0, "x", 0)
    relaxer.fix(0, "a1.y", 99)  # inconsistent: 0 + 3 != 99
    result = relaxer.relax()
    assert not result.converged
    assert result.inconsistent


def test_activation_constraint_steers_value():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    # Stuck-at-0 on bit 3 of a1.y: need fault-free bit 3 = 1.
    relaxer.require_activation(ActivationConstraint(0, "a1.y", 0b1000, 0b1000))
    result = relaxer.relax()
    assert result.converged
    assert result.values[(0, "a1.y")] & 0b1000


def test_activation_conflicts_with_fixed_value():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    relaxer.fix(0, "a1.y", 0)  # bit 3 is 0, FIXED
    relaxer.require_activation(ActivationConstraint(0, "a1.y", 0b1000, 0b1000))
    result = relaxer.relax()
    assert not result.converged


def test_toy_pipeline_sts_justification():
    netlist = build_toy_pipeline()
    ctrl = full_ctrl({"alusrc": 0, "op": 0, "wbsel": 0}, 2)
    relaxer = DiscreteRelaxer(netlist, 2, ctrl=ctrl)
    relaxer.fix(0, "eq", 1)  # require a == b at frame 0
    result = relaxer.relax()
    assert result.converged
    a = result.values.get((0, "a"), 0)
    b = result.values.get((0, "b"), 0)
    assert a == b


def test_toy_pipeline_mux_routing():
    netlist = build_toy_pipeline()
    ctrl = full_ctrl({"alusrc": 1, "op": 0, "wbsel": 0}, 2)
    relaxer = DiscreteRelaxer(netlist, 2, ctrl=ctrl)
    relaxer.fix(0, "a", 10)
    result = relaxer.relax()
    assert result.converged
    # alusrc=1 routes the constant 4: sum = 14.
    assert result.values[(0, "alu_add.y")] == 14
    assert result.values[(1, "out")] == 14


def test_unknown_controls_leave_modules_unconstrained():
    netlist = build_toy_pipeline()
    relaxer = DiscreteRelaxer(netlist, 1, ctrl={})  # no controls known
    relaxer.fix(0, "a", 1)
    result = relaxer.relax()
    assert result.converged  # nothing evaluable is inconsistent
    assert (0, "opbmux.y") not in result.values or result.values[
        (0, "opbmux.y")
    ] is not None


def test_register_hold_route():
    b = DatapathBuilder("holdreg")
    x = b.input("x", 8)
    en = b.ctrl("en", 1)
    q = b.register("r", x, enable=en)
    b.output("o", b.add("n", q, b.const("z", 8, 0)))
    netlist = b.build()
    # Frame 0 loads, frame 1 stalls: q(2) must equal q(1) = x(0).
    ctrl = {(0, "en"): 1, (1, "en"): 0}
    relaxer = DiscreteRelaxer(netlist, 3, ctrl=ctrl)
    relaxer.fix(0, "x", 42)
    result = relaxer.relax()
    assert result.converged
    assert result.values[(1, "r.y")] == 42
    assert result.values[(2, "r.y")] == 42


def test_register_clear_route():
    b = DatapathBuilder("clrreg")
    x = b.input("x", 8)
    clr = b.ctrl("clr", 1)
    q = b.register("r", x, clear=clr, clear_value=0)
    b.output("o", b.add("n", q, b.const("z", 8, 0)))
    netlist = b.build()
    ctrl = {(0, "clr"): 1}
    relaxer = DiscreteRelaxer(netlist, 2, ctrl=ctrl)
    relaxer.fix(0, "x", 42)
    result = relaxer.relax()
    assert result.converged
    assert result.values[(1, "r.y")] == 0  # squashed


def test_stimulus_register_is_free():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 1, ctrl={}, stimulus_registers={"r1"})
    relaxer.fix(0, "out", 0xFF)
    result = relaxer.relax()
    assert result.converged
    # r1's frame-0 value was solved backward through the xor.
    assert result.values[(0, "r1.y")] == 0xFF ^ 0x55


def test_nonstimulus_register_reset_is_fixed():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 1, ctrl={})
    relaxer.fix(0, "out", 0xFF)  # impossible: reset 0 ^ 0x55 = 0x55
    result = relaxer.relax()
    assert not result.converged


def test_dpi_values_extraction():
    netlist = build_linear_chain()
    relaxer = DiscreteRelaxer(netlist, 2, ctrl={})
    relaxer.fix(0, "x", 7)
    result = relaxer.relax()
    frames = result.dpi_values(netlist, 2)
    assert frames[0]["x"] == 7
    assert frames[1]["x"] == 0  # unassigned defaults to 0


def test_relaxed_solution_matches_simulation():
    """End-to-end: the values relaxation finds replay exactly in the
    concrete simulator (the ground-truth contract of DPRELAX)."""
    netlist = build_toy_pipeline()
    ctrl = full_ctrl({"alusrc": 0, "op": 1, "wbsel": 0}, 3)
    relaxer = DiscreteRelaxer(netlist, 3, ctrl=ctrl)
    relaxer.fix(1, "out", 0)
    relaxer.fix(0, "a", 0xF0)
    result = relaxer.relax()
    assert result.converged
    frames = result.dpi_values(netlist, 3)
    sim = DatapathSimulator(netlist)
    per_cycle = []
    for frame_inputs in frames:
        externals = dict(frame_inputs)
        externals.update({"alusrc": 0, "op": 1, "wbsel": 0})
        per_cycle.append(sim.step(externals))
    assert per_cycle[1]["out"] == 0
