"""Integration: the full TG algorithm on the MiniPipe processor.

These tests exercise the complete Figure-3/Figure-4 loop: DPTRACE path
selection, CTRLJUST justification in the unrolled controller, DPRELAX value
selection, exposure by co-simulation, and realization as an instruction
program checked against the ISA specification.
"""

import pytest

from repro.core.tg import TestGenerator, TGStatus
from repro.errors import BusSSLError, enumerate_bus_ssl
from repro.mini import build_minipipe, detects
from repro.mini.realize import realize


@pytest.fixture(scope="module")
def processor():
    return build_minipipe()


@pytest.fixture(scope="module")
def generator(processor):
    return TestGenerator(processor)


def test_ssl_on_alu_output_detected(processor, generator):
    error = BusSSLError("alu_mux.y", 0, 0)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED
    assert result.test is not None
    # The co-simulation observed a divergence at a DPO.
    assert result.test.observation is not None


def test_ssl_stuck_at_1_detected(processor, generator):
    error = BusSSLError("alu_add.y", 3, 1)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED


def test_ssl_on_writeback_register_output(processor, generator):
    error = BusSSLError("wb_res.y", 7, 0)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED


def test_ssl_on_operand_mux(processor, generator):
    error = BusSSLError("opa_mux.y", 2, 1)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED


def test_generated_test_realizes_and_detects_at_isa_level(
    processor, generator
):
    error = BusSSLError("alu_mux.y", 4, 0)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED
    realized = realize(result.test)
    assert detects(processor, realized.program, error, realized.init_regs)


def test_campaign_over_execute_stage(processor):
    """A mini Table-1: all SSL errors on the ALU result mux bus."""
    generator = TestGenerator(processor)
    errors = [BusSSLError("alu_mux.y", bit, stuck)
              for bit in range(8) for stuck in (0, 1)]
    detected = 0
    for error in errors:
        result = generator.generate(error)
        if result.status is TGStatus.DETECTED:
            detected += 1
    assert detected == len(errors)


def test_enumerate_bus_ssl_stage_filter(processor):
    errors = enumerate_bus_ssl(processor.datapath, stages={1, 2})
    nets = {e.net for e in errors}
    assert "alu_mux.y" in nets
    assert "out" in nets
    # Stage-0 nets are excluded.
    assert all("ex_a" not in n or n == "ex_a.y" for n in nets)
    # Both polarities for every bit.
    alu_errors = [e for e in errors if e.net == "alu_mux.y"]
    assert len(alu_errors) == 16
