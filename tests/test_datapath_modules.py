"""Unit and property tests for the word-level module library.

The key invariant for every module is the *solve/evaluate contract*: whenever
``solve_input(i, target, inputs, controls)`` returns a value v, substituting
v for input i must make ``evaluate`` produce exactly ``target``.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datapath.module import ModuleClass
from repro.datapath.modules import (
    AddModule,
    AddOvfModule,
    AndModule,
    ConcatModule,
    ConstantModule,
    EqModule,
    GeModule,
    GtModule,
    GtuModule,
    LeModule,
    LtModule,
    LtuModule,
    MuxModule,
    NandModule,
    NeModule,
    NorModule,
    NotModule,
    OrModule,
    RegisterModule,
    ShlModule,
    ShrModule,
    SignExtendModule,
    SliceModule,
    SraModule,
    SubModule,
    SubOvfModule,
    TristateModule,
    XnorModule,
    XorModule,
    ZeroExtendModule,
)
from repro.utils import mask, to_signed

W = 8
words = st.integers(0, mask(W))


# ---------------------------------------------------------------------------
# Forward semantics
# ---------------------------------------------------------------------------
def test_add_wraps_modulo():
    m = AddModule("add", W)
    assert m.evaluate([0xFF, 1], []) == 0
    assert m.evaluate([100, 28], []) == 128


def test_sub_wraps_modulo():
    m = SubModule("sub", W)
    assert m.evaluate([0, 1], []) == 0xFF
    assert m.evaluate([5, 3], []) == 2


def test_logic_gates():
    assert AndModule("a", W).evaluate([0b1100, 0b1010], []) == 0b1000
    assert OrModule("o", W).evaluate([0b1100, 0b1010], []) == 0b1110
    assert XorModule("x", W).evaluate([0b1100, 0b1010], []) == 0b0110
    assert NandModule("na", W).evaluate([0b1100, 0b1010], []) == 0xF7
    assert NorModule("no", W).evaluate([0b1100, 0b1010], []) == 0xF1
    assert XnorModule("xn", W).evaluate([0b1100, 0b1010], []) == 0xF9
    assert NotModule("n", W).evaluate([0b1100], []) == 0xF3


def test_predicates_signed():
    lt = LtModule("lt", W)
    assert lt.evaluate([0xFF, 0], []) == 1  # -1 < 0
    assert lt.evaluate([0, 0xFF], []) == 0
    ge = GeModule("ge", W)
    assert ge.evaluate([0, 0xFF], []) == 1
    gt = GtModule("gt", W)
    assert gt.evaluate([1, 0xFF], []) == 1
    le = LeModule("le", W)
    assert le.evaluate([0x80, 0x7F], []) == 1  # -128 <= 127


def test_predicates_unsigned():
    assert LtuModule("ltu", W).evaluate([0, 0xFF], []) == 1
    assert GtuModule("gtu", W).evaluate([0xFF, 0], []) == 1


def test_eq_ne():
    assert EqModule("eq", W).evaluate([7, 7], []) == 1
    assert EqModule("eq2", W).evaluate([7, 8], []) == 0
    assert NeModule("ne", W).evaluate([7, 8], []) == 1


def test_overflow_predicates():
    assert AddOvfModule("ao", W).evaluate([0x7F, 1], []) == 1
    assert AddOvfModule("ao2", W).evaluate([0x7F, 0], []) == 0
    assert SubOvfModule("so", W).evaluate([0x80, 1], []) == 1
    assert SubOvfModule("so2", W).evaluate([0x80, 0], []) == 0


def test_shifts():
    assert ShlModule("shl", W, 3).evaluate([0b1, 3], []) == 0b1000
    assert ShrModule("shr", W, 3).evaluate([0b1000, 3], []) == 0b1
    assert SraModule("sra", W, 3).evaluate([0x80, 1], []) == 0xC0
    assert SraModule("sra2", W, 3).evaluate([0x40, 1], []) == 0x20


def test_shift_beyond_width():
    assert ShlModule("shl", 4, 4).evaluate([0b1111, 8], []) == 0
    assert ShrModule("shr", 4, 4).evaluate([0b1111, 8], []) == 0


def test_extend_and_slice():
    assert SignExtendModule("se", 4, 8).evaluate([0x8], []) == 0xF8
    assert ZeroExtendModule("ze", 4, 8).evaluate([0x8], []) == 0x08
    assert SliceModule("sl", 8, 4, 4).evaluate([0xAB], []) == 0xA


def test_slice_rejects_out_of_range():
    with pytest.raises(ValueError):
        SliceModule("sl", 8, 6, 4)


def test_concat():
    m = ConcatModule("c", 4, 4)
    assert m.evaluate([0xB, 0xA], []) == 0xAB


def test_mux_selects():
    m = MuxModule("m", W, 3)
    assert m.evaluate([10, 20, 30], [0]) == 10
    assert m.evaluate([10, 20, 30], [2]) == 30
    # out-of-range select falls back to input 0
    assert m.evaluate([10, 20, 30], [3]) == 10


def test_mux_rejects_single_input():
    with pytest.raises(ValueError):
        MuxModule("m", W, 1)


def test_tristate():
    m = TristateModule("t", W)
    assert m.evaluate([0x5A], [1]) == 0x5A
    assert m.evaluate([0x5A], [0]) == 0


def test_constant_and_register():
    c = ConstantModule("c", W, 300)  # wraps to 300 & 0xFF
    assert c.evaluate([], []) == 300 & 0xFF
    r = RegisterModule("r", W, reset_value=7)
    assert r.reset_value == 7
    assert r.next_state(7, 99, []) == 99
    with pytest.raises(RuntimeError):
        r.evaluate([0], [])


def test_register_enable_and_clear():
    r = RegisterModule("r", W, has_enable=True, has_clear=True, clear_value=0xEE)
    assert r.next_state(5, 99, [0, 0]) == 5  # stalled
    assert r.next_state(5, 99, [1, 0]) == 99  # normal
    assert r.next_state(5, 99, [1, 1]) == 0xEE  # squashed
    assert r.next_state(5, 99, [0, 1]) == 0xEE  # clear wins over stall


# ---------------------------------------------------------------------------
# Module classes match the paper's taxonomy
# ---------------------------------------------------------------------------
def test_module_classes():
    assert AddModule("a", W).module_class is ModuleClass.ADD
    assert SubModule("s", W).module_class is ModuleClass.ADD
    assert XorModule("x", W).module_class is ModuleClass.ADD
    assert LtModule("lt", W).module_class is ModuleClass.ADD
    assert AddOvfModule("ao", W).module_class is ModuleClass.ADD
    assert AndModule("an", W).module_class is ModuleClass.AND
    assert OrModule("o", W).module_class is ModuleClass.AND
    assert ShlModule("sh", W, 3).module_class is ModuleClass.AND
    assert MuxModule("m", W, 2).module_class is ModuleClass.MUX
    assert TristateModule("t", W).module_class is ModuleClass.MUX
    assert ConstantModule("c", W, 0).module_class is ModuleClass.SOURCE
    assert RegisterModule("r", W).module_class is ModuleClass.STATE


# ---------------------------------------------------------------------------
# solve/evaluate contract (property tests)
# ---------------------------------------------------------------------------
def _check_contract(module, index, target, inputs, controls=()):
    value = module.solve_input(index, target, list(inputs), list(controls))
    if value is not None:
        trial = list(inputs)
        trial[index] = value
        assert module.evaluate(trial, list(controls)) == target
    return value


@given(words, words, st.integers(0, 1))
def test_add_solve_always_succeeds(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    assert _check_contract(AddModule("a", W), index, target, inputs) is not None


@given(words, words, st.integers(0, 1))
def test_sub_solve_always_succeeds(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    assert _check_contract(SubModule("s", W), index, target, inputs) is not None


@given(words, words, st.integers(0, 1))
def test_xor_solve_always_succeeds(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    assert _check_contract(XorModule("x", W), index, target, inputs) is not None


@given(words, words)
def test_xnor_solve(other, target):
    assert _check_contract(XnorModule("x", W), 0, target, [None, other]) is not None


@given(words)
def test_not_solve(target):
    assert _check_contract(NotModule("n", W), 0, target, [None]) is not None


@given(words, words, st.integers(0, 1))
def test_and_solve_contract(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    value = _check_contract(AndModule("a", W), index, target, inputs)
    # Solvable exactly when the other input has 1s everywhere target does.
    assert (value is not None) == (target & ~other & mask(W) == 0)


@given(words, words, st.integers(0, 1))
def test_or_solve_contract(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    value = _check_contract(OrModule("o", W), index, target, inputs)
    assert (value is not None) == (other & ~target & mask(W) == 0)


@given(words, words, st.integers(0, 1))
def test_nand_nor_solve_contract(other, target, index):
    inputs = [None, None]
    inputs[1 - index] = other
    _check_contract(NandModule("na", W), index, target, inputs)
    _check_contract(NorModule("no", W), index, target, inputs)


@given(words, st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
def test_predicate_solve_contract(other, target, index, which):
    for cls in (EqModule, NeModule, LtModule, LeModule, GtModule, GeModule,
                LtuModule, GtuModule, AddOvfModule, SubOvfModule):
        inputs = [None, None]
        inputs[1 - index] = other
        _check_contract(cls("p", W), index, target, inputs)


def test_eq_solve_finds_equal_and_unequal():
    eq = EqModule("eq", W)
    assert eq.solve_input(0, 1, [None, 42], []) == 42
    value = eq.solve_input(0, 0, [None, 42], [])
    assert value is not None and value != 42


def test_lt_solve_impossible_at_extreme():
    lt = LtModule("lt", W)
    # Nothing is < -128 (signed 8-bit), so target 1 with b = 0x80 must fail.
    assert lt.solve_input(0, 1, [None, 0x80], []) is None


@given(words, st.integers(0, W), words)
def test_shift_solve_contract(a, amount, target):
    for cls in (ShlModule, ShrModule, SraModule):
        m = cls("sh", W, 4)
        _check_contract(m, 0, target, [None, amount])
        _check_contract(m, 1, target, [a, None])


def test_shl_solve_exact():
    shl = ShlModule("shl", W, 3)
    value = shl.solve_input(0, 0b1000, [None, 3], [])
    assert value is not None
    assert shl.evaluate([value, 3], []) == 0b1000
    # Impossible when the target has 1s in the low (shifted-in) bits.
    assert shl.solve_input(0, 0b0001, [None, 3], []) is None


@given(words, words, words, st.integers(0, 2), st.integers(0, 2))
def test_mux_solve_contract(a, b, target, sel, index):
    m = MuxModule("m", W, 3)
    inputs = [a, b, 0]
    inputs[index] = None
    value = m.solve_input(index, target, inputs, [sel])
    if sel == index:
        assert value == target
    else:
        assert value is None


@given(words, st.integers(0, 1))
def test_tristate_solve(target, enable):
    t = TristateModule("t", W)
    value = t.solve_input(0, target, [None], [enable])
    if enable:
        assert value == target
    else:
        assert value is None


@given(st.integers(0, mask(16)))
def test_sign_extend_solve_contract(target):
    m = SignExtendModule("se", 8, 16)
    value = m.solve_input(0, target, [None], [])
    valid = to_signed(target, 16) == to_signed(target & 0xFF, 8)
    assert (value is not None) == valid


@given(st.integers(0, mask(16)))
def test_zero_extend_solve_contract(target):
    m = ZeroExtendModule("ze", 8, 16)
    value = m.solve_input(0, target, [None], [])
    assert (value is not None) == (target <= 0xFF)


@given(st.integers(0, mask(4)))
def test_slice_solve_contract(target):
    m = SliceModule("sl", 8, 2, 4)
    value = m.solve_input(0, target, [None], [])
    assert value is not None
    assert m.evaluate([value], []) == target


@given(st.integers(0, mask(8)), st.integers(0, mask(4)), st.integers(0, 1))
def test_concat_solve_contract(target_low_part, other, index):
    m = ConcatModule("c", 4, 4)
    inputs = [None, None]
    inputs[1 - index] = other
    target = target_low_part
    _check_contract(m, index, target, inputs)
