"""Differential pinning of the TG search accelerators.

Three accelerators (incremental C/O propagation in DPTRACE, learned
no-goods + memoized justifications in CTRLJUST, the per-window path-set
cache) claim to be *outcome-transparent*: turning them on changes wall
clock only, never a search result.  These tests enforce that claim
against the interpretive oracles:

* random assume/retract walks on :class:`AnalyzerSession` must equal a
  full ``analyzer.compute`` of the same assignment at every checkpoint;
* ``DPTrace(incremental=True)`` must produce bit-identical
  :class:`TraceResult`\\ s to the full-recompute path;
* ``TestGenerator`` with learning on must produce identical outcomes
  and backtrack statistics to learning off, on MiniPipe and DLX;
* deadline-tainted results must never enter any cache, and deadlines
  must abort promptly (the PR's deadline-threading bugfix).
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctrljust import CtrlJust, JustResult, JustStatus
from repro.core.dptrace import DPTrace, TraceResult, TraceStatus
from repro.core.nogoods import (
    LearnedNogoods,
    PathCache,
    blame_key,
    justify_key,
)
from repro.core.tg import TestGenerator, TGStatus
from repro.errors.models import enumerate_bus_ssl
from repro.mini.machine import build_minipipe
from repro.model.pathsession import AnalyzerSession, _session_meta

N_FRAMES = 4


@pytest.fixture(scope="module")
def mini():
    return build_minipipe()


@pytest.fixture(scope="module")
def analyzer(mini):
    return mini.analyzer(N_FRAMES)


def _decision_candidates(analyzer):
    """All (kind, var, value) decisions a walk may apply."""
    meta = _session_meta(analyzer)
    ctrl_nets = sorted(set(meta.ctrl_muxes) | set(meta.ctrl_regs))
    candidates = []
    for frame in range(analyzer.n_frames):
        for name in ctrl_nets:
            for value in (0, 1):
                candidates.append(("ctrl", (frame, name), value))
    for name, sinks in sorted(meta.comb_consumers.items()):
        if len(sinks) > 1:
            for frame in range(analyzer.n_frames):
                for value in range(len(sinks)):
                    candidates.append(("fo", (frame, name), value))
    return candidates


def _assert_states_equal(session, analyzer):
    full = analyzer.compute(session.ctrl, session.fo)
    assert session.net_c == full.net_c
    assert session.port_c == full.port_c
    assert session.net_o == full.net_o
    assert session.port_o == full.port_o


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.booleans()),
        max_size=24,
    )
)
def test_session_walk_matches_full_compute(mini, analyzer, steps):
    """Random assume/retract walks equal a fresh full sweep throughout."""
    candidates = _decision_candidates(analyzer)
    session = AnalyzerSession(analyzer, {}, {})
    depth = 0
    for pick, pop in steps:
        if pop and depth:
            session.retract()
            depth -= 1
        else:
            kind, var, value = candidates[pick % len(candidates)]
            session.assume(kind, var, value)
            depth += 1
        _assert_states_equal(session, analyzer)
    while depth:
        session.retract()
        depth -= 1
    _assert_states_equal(session, analyzer)


def _trace_fields(trace: TraceResult) -> tuple:
    return (
        trace.status,
        trace.ctrl_objectives,
        trace.fo_choices,
        trace.propagation_path,
        trace.backtracks,
        trace.decisions,
        trace.control_side,
        trace.deadline_hit,
    )


def test_dptrace_incremental_matches_full(mini, analyzer):
    """Path selection is bit-identical with and without the session."""
    nets = sorted(mini.datapath.nets)[::3]
    for site in nets:
        for act_frame in range(N_FRAMES):
            for variant in (0, 1):
                full = DPTrace(
                    analyzer, {}, variant=variant, incremental=False
                ).select_paths(site, act_frame)
                fast = DPTrace(
                    analyzer, {}, variant=variant, incremental=True
                ).select_paths(site, act_frame)
                assert _trace_fields(fast) == _trace_fields(full), (
                    site, act_frame, variant,
                )


def _generate_all(processor, errors, **knobs):
    generator = TestGenerator(processor, deadline_seconds=10.0, **knobs)
    results = []
    for error in errors:
        result = generator.generate(error)
        test = result.test
        results.append((
            result.error,
            result.status,
            result.backtracks,
            result.dptrace_backtracks,
            result.ctrljust_backtracks,
            result.final_backtracks,
            result.attempts,
            result.frames_used,
            None if test is None else (
                test.n_frames, test.cpi_frames, test.dpi_frames,
                test.stimulus_state, test.activation_frame,
            ),
        ))
    return generator, results


def test_tg_learning_on_off_identical_mini(mini):
    """Learning/caching changes wall clock only, never an outcome."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    assert len(errors) >= 10
    accel, on = _generate_all(
        mini, errors,
        use_learned_nogoods=True, use_incremental_dptrace=True,
    )
    _, off = _generate_all(
        mini, errors,
        use_learned_nogoods=False, use_incremental_dptrace=False,
    )
    assert on == off
    # The accelerators actually engaged (else this test proves nothing).
    assert accel._sweeps_avoided > 0
    assert accel.nogoods.justify_misses > 0


def test_tg_learning_on_off_identical_dlx_spot():
    """Two DLX spot checks: one detected, one justification-heavy."""
    from repro.dlx.machine import build_dlx

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    _, on = _generate_all(
        processor, errors,
        use_learned_nogoods=True, use_incremental_dptrace=True,
    )
    _, off = _generate_all(
        processor, errors,
        use_learned_nogoods=False, use_incremental_dptrace=False,
    )
    assert on == off


def _outcome_fields(results):
    """Outcome-only projection of ``_generate_all`` rows: error, status,
    dptrace backtracks, attempts, frames and the final test — everything
    except the CTRLJUST effort counters, which clause learning and
    backjumping are *allowed* (indeed expected) to shrink."""
    return [
        (error, status, dpt, attempts, frames, test)
        for (error, status, _bt, dpt, _cj, _fin, attempts, frames, test)
        in results
    ]


def test_tg_clause_learning_on_off_identical_outcomes_mini(mini):
    """CDCL refutation changes effort only: detected/aborted outcomes and
    the emitted tests are byte-identical with learning on or off."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    accel, on = _generate_all(mini, errors, use_clause_learning=True)
    _, off = _generate_all(mini, errors, use_clause_learning=False)
    assert _outcome_fields(on) == _outcome_fields(off)
    # The machinery engaged: a certificate was learned and then re-hit.
    assert accel.clauses.added > 0
    assert accel.clauses.hits > 0


def test_tg_clause_learning_on_off_identical_outcomes_dlx():
    """DLX spot check: the refuter retires an exhaustion family (fewer
    CTRLJUST backtracks, a clause hit) without moving any outcome."""
    from repro.dlx.machine import build_dlx

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    accel, on = _generate_all(processor, errors, use_clause_learning=True)
    _, off = _generate_all(processor, errors, use_clause_learning=False)
    assert _outcome_fields(on) == _outcome_fields(off)
    # Learning actually saved work on this workload: the second error's
    # unjustifiable window is refuted and later certified instead of
    # being exhausted twice.
    assert accel.clauses.added > 0
    assert sum(r[4] for r in on) < sum(r[4] for r in off)


def test_tg_backjumping_verdict_identity(mini):
    """CBJ skips refuted subtrees only: same decisions, same verdicts,
    same tests — with and without backjumping, on both machines."""
    from repro.dlx.machine import build_dlx

    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    _, on = _generate_all(mini, errors, use_backjumping=True)
    _, off = _generate_all(mini, errors, use_backjumping=False)
    assert _outcome_fields(on) == _outcome_fields(off)

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    _, on = _generate_all(processor, errors, use_backjumping=True)
    _, off = _generate_all(processor, errors, use_backjumping=False)
    assert _outcome_fields(on) == _outcome_fields(off)


def test_tgresult_exposes_last_attempt_justified(mini):
    error = enumerate_bus_ssl(mini.datapath, stages={1})[0]
    generator = TestGenerator(mini, deadline_seconds=10.0)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED
    assert result.last_attempt_justified is True
    # The old mutable-attribute protocol is gone.
    assert not hasattr(generator, "_had_justification")
    assert not hasattr(generator, "_last_attempt_justified")


def test_deadline_aborts_promptly(mini):
    """A tiny budget aborts in bounded time even mid-search."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[:6]
    generator = TestGenerator(mini, deadline_seconds=0.02)
    start = time.process_time()
    for error in errors:
        generator.generate(error)
    elapsed = time.process_time() - start
    # 6 errors x 0.02s budget; generous slack for slow CI machines.
    assert elapsed < 3.0


def test_engine_deadline_flags(mini, analyzer):
    """Both engines surface deadline cuts as tainted FAILUREs."""
    past = time.process_time() - 1.0
    site = sorted(mini.datapath.nets)[0]
    trace = DPTrace(analyzer, {}, deadline=past).select_paths(site, 1)
    assert trace.status is TraceStatus.FAILURE
    assert trace.deadline_hit is True

    unrolled = mini.controller.unroll(N_FRAMES)
    ctrl = mini.controller.ctrl_signals[0]
    objectives = [(unrolled.instance(1, ctrl), 1)]
    just = CtrlJust(unrolled, deadline=past).justify(objectives)
    assert just.status is JustStatus.FAILURE
    assert just.deadline_hit is True


def test_tainted_results_never_cached():
    store = LearnedNogoods()
    tainted = JustResult(JustStatus.FAILURE, deadline_hit=True)
    key = justify_key(4, (((1, "op"), 1),), 0, 100)
    assert store.cached_justify(key, lambda: tainted) is tainted
    # The taint passed through uncached: the next call recomputes.
    clean = JustResult(JustStatus.FAILURE)
    assert store.cached_justify(key, lambda: clean) is clean
    assert store.cached_justify(key, lambda: tainted) is clean

    cache = PathCache()
    trace = TraceResult(TraceStatus.FAILURE, deadline_hit=True)
    pkey = PathCache.key(4, "net", 1, {}, set(), 0, 100)
    cache.store(pkey, trace, 0)
    assert cache.lookup(pkey) is None


def test_nogood_records_roundtrip_and_pooling():
    from repro.campaign.serialize import (
        nogood_records_from_wire,
        nogood_records_to_wire,
    )

    items = (((2, "alu_op"), 1), ((3, "wb_sel"), 0))
    key = blame_key(6, items, items, {items[0]}, 1, (2000, 500))
    store = LearnedNogoods()
    assert store.lookup_blame(key) is None  # miss counted
    store.record_blame(key, [items[0]], 1234, cdcl=(7, 3, 2, 1, 1))
    assert store.lookup_blame(key) == ((items[0],), 1234, (7, 3, 2, 1, 1))
    assert store.hits == 1 and store.misses == 1

    wire = nogood_records_to_wire(store.export_records())
    # Exported records drain: nothing left to report.
    assert store.export_records() == []
    decoded = nogood_records_from_wire(wire)
    other = LearnedNogoods()
    assert other.merge_records(decoded) == 1
    assert other.lookup_blame(key) == ((items[0],), 1234, (7, 3, 2, 1, 1))
    # Pre-CDCL rows (three columns) decode with zeroed counters.
    legacy_key = blame_key(6, items, items, set(), 2, (2000, 500))
    legacy = nogood_records_from_wire(
        [[row[0] if i == 0 else row[i] for i in range(3)]
         for row in nogood_records_to_wire(
             [(legacy_key, ((items[1],), 9, (0, 0, 0, 0, 0)))]
         )]
    )
    assert legacy == [(legacy_key, ((items[1],), 9, (0, 0, 0, 0, 0)))]
    # Merged (foreign) records do not re-export.
    assert other.export_records() == []
    # Re-merge is idempotent.
    assert other.merge_records(decoded) == 0
