"""Differential pinning of the TG search accelerators.

Three accelerators (incremental C/O propagation in DPTRACE, learned
no-goods + memoized justifications in CTRLJUST, the per-window path-set
cache) claim to be *outcome-transparent*: turning them on changes wall
clock only, never a search result.  These tests enforce that claim
against the interpretive oracles:

* random assume/retract walks on :class:`AnalyzerSession` must equal a
  full ``analyzer.compute`` of the same assignment at every checkpoint;
* ``DPTrace(incremental=True)`` must produce bit-identical
  :class:`TraceResult`\\ s to the full-recompute path;
* ``TestGenerator`` with learning on must produce identical outcomes
  and backtrack statistics to learning off, on MiniPipe and DLX;
* deadline-tainted results must never enter any cache, and deadlines
  must abort promptly (the PR's deadline-threading bugfix).
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clauses import SearchActivity, luby
from repro.core.ctrljust import CtrlJust, JustResult, JustStatus
from repro.core.dptrace import DPTrace, TraceResult, TraceStatus
from repro.core.nogoods import (
    LearnedNogoods,
    PathCache,
    blame_key,
    justify_key,
)
from repro.core.tg import TestGenerator, TGStatus
from repro.errors.models import enumerate_bus_ssl
from repro.mini.machine import build_minipipe
from repro.model.pathsession import AnalyzerSession, _session_meta

N_FRAMES = 4


@pytest.fixture(scope="module")
def mini():
    return build_minipipe()


@pytest.fixture(scope="module")
def analyzer(mini):
    return mini.analyzer(N_FRAMES)


def _decision_candidates(analyzer):
    """All (kind, var, value) decisions a walk may apply."""
    meta = _session_meta(analyzer)
    ctrl_nets = sorted(set(meta.ctrl_muxes) | set(meta.ctrl_regs))
    candidates = []
    for frame in range(analyzer.n_frames):
        for name in ctrl_nets:
            for value in (0, 1):
                candidates.append(("ctrl", (frame, name), value))
    for name, sinks in sorted(meta.comb_consumers.items()):
        if len(sinks) > 1:
            for frame in range(analyzer.n_frames):
                for value in range(len(sinks)):
                    candidates.append(("fo", (frame, name), value))
    return candidates


def _assert_states_equal(session, analyzer):
    full = analyzer.compute(session.ctrl, session.fo)
    assert session.net_c == full.net_c
    assert session.port_c == full.port_c
    assert session.net_o == full.net_o
    assert session.port_o == full.port_o


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.booleans()),
        max_size=24,
    )
)
def test_session_walk_matches_full_compute(mini, analyzer, steps):
    """Random assume/retract walks equal a fresh full sweep throughout."""
    candidates = _decision_candidates(analyzer)
    session = AnalyzerSession(analyzer, {}, {})
    depth = 0
    for pick, pop in steps:
        if pop and depth:
            session.retract()
            depth -= 1
        else:
            kind, var, value = candidates[pick % len(candidates)]
            session.assume(kind, var, value)
            depth += 1
        _assert_states_equal(session, analyzer)
    while depth:
        session.retract()
        depth -= 1
    _assert_states_equal(session, analyzer)


def _trace_fields(trace: TraceResult) -> tuple:
    return (
        trace.status,
        trace.ctrl_objectives,
        trace.fo_choices,
        trace.propagation_path,
        trace.backtracks,
        trace.decisions,
        trace.control_side,
        trace.deadline_hit,
    )


def test_dptrace_incremental_matches_full(mini, analyzer):
    """Path selection is bit-identical with and without the session."""
    nets = sorted(mini.datapath.nets)[::3]
    for site in nets:
        for act_frame in range(N_FRAMES):
            for variant in (0, 1):
                full = DPTrace(
                    analyzer, {}, variant=variant, incremental=False
                ).select_paths(site, act_frame)
                fast = DPTrace(
                    analyzer, {}, variant=variant, incremental=True
                ).select_paths(site, act_frame)
                assert _trace_fields(fast) == _trace_fields(full), (
                    site, act_frame, variant,
                )


def _generate_all(processor, errors, **knobs):
    generator = TestGenerator(processor, deadline_seconds=10.0, **knobs)
    results = []
    for error in errors:
        result = generator.generate(error)
        test = result.test
        results.append((
            result.error,
            result.status,
            result.backtracks,
            result.dptrace_backtracks,
            result.ctrljust_backtracks,
            result.final_backtracks,
            result.attempts,
            result.frames_used,
            None if test is None else (
                test.n_frames, test.cpi_frames, test.dpi_frames,
                test.stimulus_state, test.activation_frame,
            ),
        ))
    return generator, results


def test_tg_learning_on_off_identical_mini(mini):
    """Learning/caching changes wall clock only, never an outcome."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    assert len(errors) >= 10
    accel, on = _generate_all(
        mini, errors,
        use_learned_nogoods=True, use_incremental_dptrace=True,
    )
    _, off = _generate_all(
        mini, errors,
        use_learned_nogoods=False, use_incremental_dptrace=False,
    )
    assert on == off
    # The accelerators actually engaged (else this test proves nothing).
    assert accel._sweeps_avoided > 0
    assert accel.nogoods.justify_misses > 0


def test_tg_learning_on_off_identical_dlx_spot():
    """Two DLX spot checks: one detected, one justification-heavy."""
    from repro.dlx.machine import build_dlx

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    _, on = _generate_all(
        processor, errors,
        use_learned_nogoods=True, use_incremental_dptrace=True,
    )
    _, off = _generate_all(
        processor, errors,
        use_learned_nogoods=False, use_incremental_dptrace=False,
    )
    assert on == off


def _outcome_fields(results):
    """Outcome-only projection of ``_generate_all`` rows: error, status,
    dptrace backtracks, attempts, frames and the final test — everything
    except the CTRLJUST effort counters, which clause learning and
    backjumping are *allowed* (indeed expected) to shrink."""
    return [
        (error, status, dpt, attempts, frames, test)
        for (error, status, _bt, dpt, _cj, _fin, attempts, frames, test)
        in results
    ]


def test_tg_clause_learning_on_off_identical_outcomes_mini(mini):
    """CDCL refutation changes effort only: detected/aborted outcomes and
    the emitted tests are byte-identical with learning on or off."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    accel, on = _generate_all(mini, errors, use_clause_learning=True)
    _, off = _generate_all(mini, errors, use_clause_learning=False)
    assert _outcome_fields(on) == _outcome_fields(off)
    # The machinery engaged: a certificate was learned and then re-hit.
    assert accel.clauses.added > 0
    assert accel.clauses.hits > 0


def test_tg_clause_learning_on_off_identical_outcomes_dlx():
    """DLX spot check: the refuter retires an exhaustion family (fewer
    CTRLJUST backtracks, a clause hit) without moving any outcome."""
    from repro.dlx.machine import build_dlx

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    accel, on = _generate_all(processor, errors, use_clause_learning=True)
    _, off = _generate_all(processor, errors, use_clause_learning=False)
    assert _outcome_fields(on) == _outcome_fields(off)
    # Learning actually saved work on this workload: the second error's
    # unjustifiable window is refuted and later certified instead of
    # being exhausted twice.
    assert accel.clauses.added > 0
    assert sum(r[4] for r in on) < sum(r[4] for r in off)


def test_tg_backjumping_verdict_identity(mini):
    """CBJ skips refuted subtrees only: same decisions, same verdicts,
    same tests — with and without backjumping, on both machines."""
    from repro.dlx.machine import build_dlx

    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    _, on = _generate_all(mini, errors, use_backjumping=True)
    _, off = _generate_all(mini, errors, use_backjumping=False)
    assert _outcome_fields(on) == _outcome_fields(off)

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    _, on = _generate_all(processor, errors, use_backjumping=True)
    _, off = _generate_all(processor, errors, use_backjumping=False)
    assert _outcome_fields(on) == _outcome_fields(off)


def test_tgresult_exposes_last_attempt_justified(mini):
    error = enumerate_bus_ssl(mini.datapath, stages={1})[0]
    generator = TestGenerator(mini, deadline_seconds=10.0)
    result = generator.generate(error)
    assert result.status is TGStatus.DETECTED
    assert result.last_attempt_justified is True
    # The old mutable-attribute protocol is gone.
    assert not hasattr(generator, "_had_justification")
    assert not hasattr(generator, "_last_attempt_justified")


def test_deadline_aborts_promptly(mini):
    """A tiny budget aborts in bounded time even mid-search."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[:6]
    generator = TestGenerator(mini, deadline_seconds=0.02)
    start = time.process_time()
    for error in errors:
        generator.generate(error)
    elapsed = time.process_time() - start
    # 6 errors x 0.02s budget; generous slack for slow CI machines.
    assert elapsed < 3.0


def test_engine_deadline_flags(mini, analyzer):
    """Both engines surface deadline cuts as tainted FAILUREs."""
    past = time.process_time() - 1.0
    site = sorted(mini.datapath.nets)[0]
    trace = DPTrace(analyzer, {}, deadline=past).select_paths(site, 1)
    assert trace.status is TraceStatus.FAILURE
    assert trace.deadline_hit is True

    unrolled = mini.controller.unroll(N_FRAMES)
    ctrl = mini.controller.ctrl_signals[0]
    objectives = [(unrolled.instance(1, ctrl), 1)]
    just = CtrlJust(unrolled, deadline=past).justify(objectives)
    assert just.status is JustStatus.FAILURE
    assert just.deadline_hit is True


def test_tainted_results_never_cached():
    store = LearnedNogoods()
    tainted = JustResult(JustStatus.FAILURE, deadline_hit=True)
    key = justify_key(4, (((1, "op"), 1),), 0, 100)
    assert store.cached_justify(key, lambda: tainted) is tainted
    # The taint passed through uncached: the next call recomputes.
    clean = JustResult(JustStatus.FAILURE)
    assert store.cached_justify(key, lambda: clean) is clean
    assert store.cached_justify(key, lambda: tainted) is clean

    cache = PathCache()
    trace = TraceResult(TraceStatus.FAILURE, deadline_hit=True)
    pkey = PathCache.key(4, "net", 1, {}, set(), 0, 100)
    cache.store(pkey, trace, 0)
    assert cache.lookup(pkey) is None


def test_nogood_records_roundtrip_and_pooling():
    from repro.campaign.serialize import (
        nogood_records_from_wire,
        nogood_records_to_wire,
    )

    items = (((2, "alu_op"), 1), ((3, "wb_sel"), 0))
    key = blame_key(6, items, items, {items[0]}, 1, (2000, 500))
    store = LearnedNogoods()
    assert store.lookup_blame(key) is None  # miss counted
    store.record_blame(key, [items[0]], 1234, cdcl=(7, 3, 2, 1, 1))
    assert store.lookup_blame(key) == ((items[0],), 1234, (7, 3, 2, 1, 1))
    assert store.hits == 1 and store.misses == 1

    wire = nogood_records_to_wire(store.export_records())
    # Exported records drain: nothing left to report.
    assert store.export_records() == []
    decoded = nogood_records_from_wire(wire)
    other = LearnedNogoods()
    assert other.merge_records(decoded) == 1
    assert other.lookup_blame(key) == ((items[0],), 1234, (7, 3, 2, 1, 1))
    # Pre-CDCL rows (three columns) decode with zeroed counters.
    legacy_key = blame_key(6, items, items, set(), 2, (2000, 500))
    legacy = nogood_records_from_wire(
        [[row[0] if i == 0 else row[i] for i in range(3)]
         for row in nogood_records_to_wire(
             [(legacy_key, ((items[1],), 9, (0, 0, 0, 0, 0)))]
         )]
    )
    assert legacy == [(legacy_key, ((items[1],), 9, (0, 0, 0, 0, 0)))]
    # Merged (foreign) records do not re-export.
    assert other.export_records() == []
    # Re-merge is idempotent.
    assert other.merge_records(decoded) == 0


# ---------------------------------------------------------------------------
# Restart-driven search: EVSIDS activity + Luby restarts (PR 9)
# ---------------------------------------------------------------------------
def test_luby_sequence():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]
    with pytest.raises(ValueError):
        luby(0)


def test_tg_restarts_off_is_default_identity_mini(mini):
    """The restarts knob defaults off, and off is byte-identical to the
    pre-knob generator: full result rows including every backtrack
    statistic, with zero restarts recorded anywhere."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    assert len(errors) >= 10
    _, default_rows = _generate_all(mini, errors)
    _, off_rows = _generate_all(mini, errors, use_restarts=False)
    assert default_rows == off_rows


def test_tg_restarts_off_is_default_identity_dlx_spot():
    from repro.dlx.machine import build_dlx

    processor = build_dlx()
    errors = enumerate_bus_ssl(processor.datapath, stages={2})[:2]
    _, default_rows = _generate_all(processor, errors)
    _, off_rows = _generate_all(processor, errors, use_restarts=False)
    assert default_rows == off_rows


def test_tg_restarts_on_monotone_outcomes_mini(mini):
    """Restarts may change *effort*, never flip a detection to an abort:
    the detected set with restarts on contains the knobs-off one (on this
    ample-deadline workload they are equal)."""
    errors = enumerate_bus_ssl(mini.datapath, stages={1, 2})[::8]
    accel, on = _generate_all(mini, errors, use_restarts=True)
    _, off = _generate_all(mini, errors, use_restarts=False)
    detected_on = {
        error for (error, status, *_rest) in on
        if status is TGStatus.DETECTED
    }
    detected_off = {
        error for (error, status, *_rest) in off
        if status is TGStatus.DETECTED
    }
    assert detected_on >= detected_off
    # The activity machinery actually engaged on this workload.
    assert accel.activity.stats()["bumps"] > 0


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_restarts_agree_with_chronological_search(mini, data):
    """SAT/UNSAT agreement: activity-ordered search with (aggressive)
    Luby restarts answers every justification question exactly like the
    chronological search — restarts revisit the same complete space."""
    unrolled = mini.controller.unroll(N_FRAMES)
    ctrls = sorted(mini.controller.ctrl_signals)
    n = data.draw(st.integers(1, 3))
    objectives = []
    seen = set()
    for _ in range(n):
        frame = data.draw(st.integers(1, N_FRAMES - 1))
        ctrl = data.draw(st.sampled_from(ctrls))
        if (frame, ctrl) in seen:
            continue
        seen.add((frame, ctrl))
        value = data.draw(st.integers(0, 1))
        objectives.append((unrolled.instance(frame, ctrl), value))
    chrono = CtrlJust(unrolled).justify(list(objectives))
    # Budget-matched: restart mode normally runs under a reduced total
    # (``restart_backtracks``), so give-up verdicts can differ by
    # design.  With the budgets equal, the aggressive Luby schedule
    # revisits the same complete space and must agree on every verdict.
    restarting = CtrlJust(
        unrolled, restarts=True, restart_unit=1,
        restart_backtracks=1000,
    ).justify(list(objectives))
    assert restarting.status is chrono.status
    assert restarting.deadline_hit is chrono.deadline_hit is False


def test_clause_transfer_cross_window():
    """Cross-window certificate transfer: a core whose literal frames
    all fit below a window refutes there regardless of the window it
    was learned at — and only when ``transfer`` is requested, so the
    knobs-off lookup path is untouched."""
    from repro.core.clauses import ClauseDB

    db = ClauseDB()
    core = (((1, "op"), 1), ((2, "phase"), 0))
    db.add(6, core, lbd=2)
    query = core + (((3, "stall"), 1),)
    # Same window: hits with or without transfer.
    assert db.lookup(6, query) == frozenset(core)
    # Other window, no transfer: the knobs-off miss.
    assert db.lookup(8, query, transfer=False) is None
    # Other window, transfer on: frames {1, 2} fit below 8 — hit.
    assert db.lookup(8, query, transfer=True) == frozenset(core)
    # A window too small for the cert's frames never matches.
    assert db.lookup(2, query, transfer=True) is None
    # Eviction keeps the transfer index consistent.
    small = ClauseDB(max_certs=1)
    small.add(6, core, lbd=2)
    small.add(7, (((1, "op"), 0),), lbd=1)
    assert small.evicted == 1
    assert small.lookup(9, query, transfer=True) is None


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_justifiability_is_window_independent(mini, data):
    """The causality fact behind cross-window transfer: frames below
    the objectives are identical in every unrolling, so a question
    confined to frames < n answers the same at window n and n + 1
    (complete chronological search, ample budget)."""
    ctrls = sorted(mini.controller.ctrl_signals)
    small = mini.controller.unroll(N_FRAMES)
    large = mini.controller.unroll(N_FRAMES + 1)
    n = data.draw(st.integers(1, 3))
    picked = set()
    for _ in range(n):
        frame = data.draw(st.integers(1, N_FRAMES - 1))
        ctrl = data.draw(st.sampled_from(ctrls))
        value = data.draw(st.integers(0, 1))
        picked.add((frame, ctrl, value))
    at_small = CtrlJust(small).justify(
        [(small.instance(f, c), v) for f, c, v in sorted(picked)]
    )
    at_large = CtrlJust(large).justify(
        [(large.instance(f, c), v) for f, c, v in sorted(picked)]
    )
    assert at_small.status is at_large.status


def test_restart_taint_never_commits_activity(mini):
    """The deadline-taint rule covers restart mode: an attempt cut short
    by the CPU deadline surfaces as a tainted FAILURE and leaves the
    shared activity store untouched (no bumps, no phases, no signals)."""
    unrolled = mini.controller.unroll(N_FRAMES)
    store = SearchActivity()
    past = time.process_time() - 1.0
    ctrl = sorted(mini.controller.ctrl_signals)[0]
    objectives = [(unrolled.instance(1, ctrl), 1)]
    just = CtrlJust(
        unrolled, deadline=past, restarts=True, activity=store
    ).justify(objectives)
    assert just.status is JustStatus.FAILURE
    assert just.deadline_hit is True
    assert store.stats() == {"signals": 0, "bumps": 0, "merged": 0}
    assert store.export_records() == []
    # ... and record_blame refuses tainted learning under the same rule.
    nogoods = LearnedNogoods()
    key = justify_key(4, (((1, "op"), 1),), 0, 100)
    nogoods.record_blame(key, [], 5, deadline_hit=True)
    assert len(nogoods) == 0


def test_activity_records_roundtrip_and_pooling():
    from repro.campaign.serialize import (
        activity_records_from_wire,
        activity_records_to_wire,
    )

    store = SearchActivity()
    run = store.begin()
    run.bump("alu_op")
    run.bump("alu_op")
    run.bump("wb_sel")
    run.save_phase("wb_sel", 1)
    store.commit(run)
    assert store.stats()["bumps"] == 3

    wire = activity_records_to_wire(store.export_records())
    # Exported records drain: nothing left to report.
    assert store.export_records() == []
    decoded = activity_records_from_wire(wire)

    other = SearchActivity()
    low = other.begin()
    low.bump("alu_op")
    low.save_phase("wb_sel", 0)
    other.commit(low)
    other.export_records()  # drain the locally-learned rows
    assert other.merge_records(decoded) > 0
    # Scores max-merge (the foreign double bump wins), phases overwrite.
    assert other.scores["alu_op"] == store.scores["alu_op"]
    assert other.phases["wb_sel"] == 1
    # Merged (foreign) records do not re-export.
    assert other.export_records() == []


def test_deadline_bank_invariants():
    from repro.campaign.banking import DeadlineBank

    bank = DeadlineBank()
    # Overruns clamp at zero; tainted outcomes never deposit.
    assert bank.deposit("a", 10.0, 12.0) == 0.0
    assert bank.deposit("b", 10.0, 4.0, tainted=True) == 0.0
    assert bank.balance == 0.0
    # Grants require funds: the balance can never go negative.
    assert not bank.try_grant("c", 5.0)
    assert bank.deposit("d", 10.0, 2.0) == 8.0
    assert not bank.try_grant("c", 9.0)
    assert bank.try_grant("c", 5.0)
    assert bank.balance == pytest.approx(3.0)
    # At most one grant per error, ever.
    assert not bank.try_grant("c", 1.0)
    stats = bank.stats()
    assert stats["deposits"] == 1 and stats["grants"] == 1
    assert stats["balance_seconds"] >= 0.0


def test_bank_jobs1_vs_jobs2_identical_outcomes():
    """Banking is a scheduling policy: serial and sharded runs of the
    same banked campaign end with the same per-error verdicts."""
    from repro.campaign.orchestrator import (
        CampaignOrchestrator,
        OrchestratorConfig,
        build_campaign,
    )

    errors = build_campaign("mini", 10.0).default_errors()[::16]
    reports = []
    for jobs in (1, 2):
        config = OrchestratorConfig(
            target="mini", jobs=jobs, deadline_seconds=10.0,
            deadline_bank=True,
        )
        reports.append(CampaignOrchestrator(config).run(errors))
    verdicts = [
        sorted(
            (o.error, o.detected, o.failure_stage) for o in report.outcomes
        )
        for report in reports
    ]
    assert verdicts[0] == verdicts[1]
    assert all(report.bank is not None for report in reports)
    assert all(
        report.bank["balance_seconds"] >= 0.0 for report in reports
    )
