"""Tests for the Processor glue model and its validation."""

import pytest

from repro.controller import (
    BufNode,
    PipelinedController,
    SignalKind,
    bit_signal,
    field_signal,
)
from repro.datapath import DatapathBuilder
from repro.model.processor import Processor, ProcessorModelError


def tiny_controller(ctrl_domain=(0, 1)):
    ctl = PipelinedController("tc", 1)
    ctl.add_signal(bit_signal("go", SignalKind.CPI, stage=0))
    ctl.add_signal(field_signal("sel", ctrl_domain, SignalKind.CTRL, stage=0))
    ctl.drive("sel", BufNode("go"))
    ctl.validate()
    return ctl


def tiny_datapath(sel_width=1):
    b = DatapathBuilder("td")
    a = b.input("a", 8)
    c = b.input("c", 8)
    sel = b.ctrl("sel", sel_width)
    b.output("o", b.mux("m", sel, a, c))
    return b.build()


def test_valid_processor():
    p = Processor("p", tiny_datapath(), tiny_controller(), 1)
    p.validate()
    stats = p.statistics()
    assert stats["datapath_modules"] == 1
    assert stats["controller_state_bits"] == 0


def test_missing_ctrl_net_rejected():
    ctl = PipelinedController("tc", 1)
    ctl.add_signal(bit_signal("go", SignalKind.CPI))
    ctl.add_signal(bit_signal("unknown_ctrl", SignalKind.CTRL))
    ctl.drive("unknown_ctrl", BufNode("go"))
    ctl.validate()
    p = Processor("p", tiny_datapath(), ctl, 1)
    with pytest.raises(ProcessorModelError):
        p.validate()


def test_ctrl_domain_width_mismatch_rejected():
    # Controller drives values up to 3 into a 1-bit datapath net.
    p = Processor("p", tiny_datapath(sel_width=1),
                  tiny_controller(ctrl_domain=(0, 1, 2, 3)), 1)
    with pytest.raises(ProcessorModelError):
        p.validate()


def test_missing_sts_net_rejected():
    ctl = PipelinedController("tc", 1)
    ctl.add_signal(bit_signal("go", SignalKind.CPI))
    ctl.add_signal(bit_signal("sel", SignalKind.CTRL))
    ctl.add_signal(bit_signal("missing_sts", SignalKind.STS))
    ctl.drive("sel", BufNode("go"))
    ctl.validate()
    p = Processor("p", tiny_datapath(), ctl, 1)
    with pytest.raises(ProcessorModelError):
        p.validate()


def test_bad_cpi_binding_rejected():
    p = Processor(
        "p", tiny_datapath(), tiny_controller(), 1,
        cpi_dpi_bindings={"go": "nonexistent"},
    )
    with pytest.raises(ProcessorModelError):
        p.validate()


def test_bad_stimulus_register_rejected():
    p = Processor(
        "p", tiny_datapath(), tiny_controller(), 1,
        stimulus_registers=frozenset({"nope"}),
    )
    with pytest.raises(ProcessorModelError):
        p.validate()


def test_dlx_statistics_shape():
    """The Section VI model statistics: the pipeframe organization must
    shrink both decision and justification variable counts."""
    from repro.dlx import build_dlx

    stats = build_dlx().statistics()
    assert stats["pipeframe_decision_bits"] < stats["timeframe_decision_bits"]
    assert stats["pipeframe_justify_bits"] < stats["timeframe_justify_bits"]
    # Shape of the paper's DLX: hundreds of datapath state bits, tens of
    # controller state bits, far fewer tertiary bits.
    assert stats["datapath_state_bits"] >= 128
    assert stats["controller_state_bits"] >= 40
    assert stats["controller_tertiary_bits"] <= 10
