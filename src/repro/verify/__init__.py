"""Co-simulation and detection checking."""

from repro.verify.cosim import (
    CosimError,
    CycleTrace,
    GoldenTraceCache,
    ProcessorSimulator,
    Trace,
    stimulus_key,
    traces_diverge,
)
from repro.verify.lanes import LaneProcessorSimulator

__all__ = [
    "CosimError",
    "LaneProcessorSimulator",
    "CycleTrace",
    "GoldenTraceCache",
    "ProcessorSimulator",
    "Trace",
    "stimulus_key",
    "traces_diverge",
]
