"""Co-simulation and detection checking."""

from repro.verify.cosim import (
    CosimError,
    CycleTrace,
    GoldenTraceCache,
    ProcessorSimulator,
    Trace,
    stimulus_key,
    traces_diverge,
)

__all__ = [
    "CosimError",
    "CycleTrace",
    "GoldenTraceCache",
    "ProcessorSimulator",
    "Trace",
    "stimulus_key",
    "traces_diverge",
]
