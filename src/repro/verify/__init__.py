"""Co-simulation and detection checking."""

from repro.verify.cosim import (
    CosimError,
    CycleTrace,
    ProcessorSimulator,
    Trace,
    traces_diverge,
)

__all__ = [
    "CosimError",
    "CycleTrace",
    "ProcessorSimulator",
    "Trace",
    "traces_diverge",
]
