"""Processor co-simulation: joint controller/datapath cycle simulation.

Used both to *apply* generated tests to the (erroneous) implementation and
as the ground truth for detection: a test detects an error iff the erroneous
implementation's observable trace (DPO values, plus architectural state for
ISA-level comparisons) differs from the fault-free one.

Within one cycle the controller and datapath depend on each other in layers
(decode CTRLs -> datapath STS -> squash/PC CTRLs -> datapath PC mux), so the
cycle is resolved by alternating three-valued sweeps until a fixpoint; the
combined logic is acyclic, so the fixpoint is reached in a few iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.datapath.compiled import CompiledDatapathSimulator
from repro.datapath.simulate import (
    DatapathSimulator,
    Injector,
    ModuleOverride,
    no_injection,
)
from repro.model.processor import Processor
from repro.utils.bits import mask


class CosimError(Exception):
    """Raised when a cycle cannot be resolved to concrete values."""


@dataclass
class CycleTrace:
    """All values of one simulated cycle."""

    datapath: dict[str, int | None]
    controller: dict[str, int | None]

    def dpo(self, processor: Processor) -> dict[str, int | None]:
        return {
            net.name: self.datapath[net.name]
            for net in processor.datapath.dpo_nets
        }


@dataclass
class Trace:
    """A multi-cycle simulation trace."""

    cycles: list[CycleTrace] = field(default_factory=list)

    def dpo_stream(self, processor: Processor) -> list[dict[str, int | None]]:
        return [c.dpo(processor) for c in self.cycles]


class ProcessorSimulator:
    """Cycle-accurate co-simulator for a :class:`Processor`."""

    def __init__(
        self,
        processor: Processor,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
        max_fixpoint_iters: int = 8,
        compiled: bool = True,
    ) -> None:
        self.processor = processor
        # The compiled kernels are the production path; ``compiled=False``
        # selects the interpretive simulator, kept as the differential
        # oracle (see tests/test_compiled_differential.py).
        dp_cls = CompiledDatapathSimulator if compiled else DatapathSimulator
        self.dp_sim = dp_cls(
            processor.datapath, injector=injector,
            module_overrides=module_overrides,
        )
        self.ctl_state = processor.controller.reset_state()
        self.max_fixpoint_iters = max_fixpoint_iters

    def reset(self) -> None:
        self.dp_sim.reset()
        self.ctl_state = self.processor.controller.reset_state()

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def resolve(
        self, cpi: Mapping[str, int], dpi: Mapping[str, int | None]
    ) -> tuple[dict[str, int | None], dict[str, int | None]]:
        """Resolve one cycle's values WITHOUT clocking.

        Alternates three-valued controller evaluation with partial datapath
        evaluation until the status feedback settles.  Partial inputs are
        allowed: anything unresolvable stays None.  Used both by ``step``
        and by environment shims that need to *peek* state-derived signals
        (stall, write-back data) before choosing the cycle's stimulus.
        """
        processor = self.processor
        controller = processor.controller

        dpi_full: dict[str, int | None] = {
            net.name: None for net in processor.datapath.nets.values()
            if net.is_external_input
        }
        for name, value in dpi.items():
            dpi_full[name] = value
        for cpi_name, dpi_name in processor.cpi_dpi_bindings.items():
            if cpi_name in cpi and cpi[cpi_name] is not None:
                dpi_full[dpi_name] = cpi[cpi_name]

        sts_known: dict[str, int] = {}
        ctl_values: dict[str, int | None] = {}
        dp_values: dict[str, int | None] = {}
        for _ in range(self.max_fixpoint_iters):
            assignment: dict[str, int | None] = dict(cpi)
            assignment.update(self.ctl_state)
            assignment.update(sts_known)
            ctl_values = controller.network.evaluate(assignment)
            externals = dict(dpi_full)
            for name in controller.ctrl_signals:
                externals[name] = ctl_values[name]
            dp_values = self.dp_sim.evaluate_partial(externals)
            new_sts = {
                name: dp_values[name]
                for name in controller.sts_signals
                if dp_values.get(name) is not None
            }
            if new_sts == sts_known:
                break
            sts_known = new_sts
        else:  # pragma: no cover - defensive
            raise CosimError("controller/datapath fixpoint did not settle")
        self._last_sts = sts_known
        return ctl_values, dp_values

    def step(
        self, cpi: Mapping[str, int], dpi: Mapping[str, int]
    ) -> CycleTrace:
        """Resolve and clock one cycle.

        ``cpi`` are the controller primary inputs (instruction fields etc.);
        ``dpi`` the datapath primary inputs.  CPI fields with a DPI binding
        are copied into the bound datapath input automatically.
        """
        ctl_values, dp_values = self.resolve(cpi, dpi)
        self._check_concrete(ctl_values, dp_values)
        self._clock(ctl_values, dp_values, cpi, self._last_sts)
        return CycleTrace(datapath=dp_values, controller=ctl_values)

    def _check_concrete(self, ctl_values, dp_values) -> None:
        unknown_ctrl = [
            name for name in self.processor.controller.ctrl_signals
            if ctl_values.get(name) is None
        ]
        if unknown_ctrl:
            raise CosimError(
                f"CTRL signals unresolved after fixpoint: {unknown_ctrl}"
            )

    def _clock(self, ctl_values, dp_values, cpi, sts_known) -> None:
        controller = self.processor.controller
        _, next_ctl = controller.simulate_cycle(
            dict(self.ctl_state), {**dict(cpi), **sts_known}
        )
        self.ctl_state = next_ctl
        # Clock the datapath registers using the resolved values.
        next_dp: dict[str, int] = {}
        for reg in self.processor.datapath.registers:
            d_value = dp_values[reg.data_inputs[0].net.name]
            controls = [dp_values[p.net.name] for p in reg.control_inputs]
            if any(c is None for c in controls):
                raise CosimError(
                    f"register {reg.name}: unresolved control at clock edge"
                )
            current = self.dp_sim.state[reg.name]
            if d_value is None:
                # Unknown data only matters if the register would load it.
                if reg.next_state(current, 0, controls) != reg.next_state(
                    current, 1, controls
                ):
                    raise CosimError(
                        f"register {reg.name}: loading an unresolved value"
                    )
                d_value = current
            next_dp[reg.name] = reg.next_state(current, d_value, controls)
        self.dp_sim.state.update(next_dp)

    # ------------------------------------------------------------------
    # Multi-cycle
    # ------------------------------------------------------------------
    def run(
        self,
        cpi_frames: list[Mapping[str, int]],
        dpi_frames: list[Mapping[str, int]],
    ) -> Trace:
        if len(cpi_frames) != len(dpi_frames):
            raise ValueError("cpi and dpi frame counts differ")
        trace = Trace()
        for cpi, dpi in zip(cpi_frames, dpi_frames):
            trace.cycles.append(self.step(cpi, dpi))
        return trace

    def set_stimulus_state(self, values: Mapping[str, int]) -> None:
        """Set initial contents of stimulus registers (part of the test).

        Values are masked to the register width — state must stay in-range
        for the masked emission semantics the kernel backends share.
        """
        for name, value in values.items():
            if name not in self.dp_sim.state:
                raise ValueError(f"no register named {name!r}")
            reg = self.processor.datapath.module(name)
            self.dp_sim.state[name] = value & mask(reg.width)


def stimulus_key(
    stimulus_state: Mapping[str, int],
    cpi_frames: list[Mapping[str, int]],
    dpi_frames: list[Mapping[str, int]],
) -> tuple:
    """A hashable identity for one complete stimulus.

    Two stimuli with the same key drive the fault-free machine through the
    same trace, whatever error is being targeted.
    """
    return (
        tuple(sorted(stimulus_state.items())),
        tuple(tuple(sorted(frame.items())) for frame in cpi_frames),
        tuple(tuple(sorted(frame.items())) for frame in dpi_frames),
    )


class GoldenTraceCache:
    """Bounded memo of fault-free simulation traces, keyed by stimulus
    *and* processor identity.

    The TG exposure loop re-checks many candidate tests whose stimulus is
    identical across unmask seeds and justify variants — and the fault-free
    ("golden") half of every co-simulation depends only on the stimulus,
    never on the error.  Caching it simulates the good machine once per
    distinct candidate stimulus.  Traces are value objects: callers must
    not mutate a cached trace.  Eviction is LRU with a bounded entry count.

    Entries carry the identity of the processor that produced them, so one
    cache may be shared between machines (two TGs, or a TG whose processor
    is swapped) without a stimulus that happens to be well-formed on both
    machines returning the wrong machine's trace.  Cached processors are
    pinned (a strong reference is kept) so a dead object's ``id`` can never
    be reused by a different machine while its entries are alive.
    """

    def __init__(self, max_entries: int = 256, compiled: bool = True) -> None:
        self.max_entries = max_entries
        self.compiled = compiled
        self.hits = 0
        self.misses = 0
        self._traces: dict[tuple, Trace] = {}
        self._pinned: dict[int, Processor] = {}

    def __len__(self) -> int:
        return len(self._traces)

    def stats(self) -> dict[str, int]:
        """Hit/miss/occupancy counters (the campaign service's
        ``/metrics`` reads these; see ``repro.service.cache``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._traces),
        }

    def trace(
        self,
        processor: Processor,
        stimulus_state: Mapping[str, int],
        cpi_frames: list[Mapping[str, int]],
        dpi_frames: list[Mapping[str, int]],
    ) -> Trace:
        """The fault-free trace for this stimulus (simulating on a miss)."""
        self._pinned.setdefault(id(processor), processor)
        key = (
            id(processor),
            stimulus_key(stimulus_state, cpi_frames, dpi_frames),
        )
        cached = self._traces.pop(key, None)
        if cached is not None:
            self.hits += 1
            self._traces[key] = cached  # re-insert: most recently used
            return cached
        self.misses += 1
        simulator = ProcessorSimulator(processor, compiled=self.compiled)
        simulator.set_stimulus_state(stimulus_state)
        trace = simulator.run(cpi_frames, dpi_frames)
        self._traces[key] = trace
        while len(self._traces) > self.max_entries:
            self._traces.pop(next(iter(self._traces)))
        return trace


def traces_diverge(
    processor: Processor, good: Trace, bad: Trace
) -> tuple[int, str] | None:
    """First (cycle, DPO net) where two traces differ, or None.

    Only cycles present in *both* traces are compared (the shorter trace
    bounds the comparison), and a DPO value that is unknown (``None``,
    three-valued X) on either side is never counted as a divergence: an
    unresolved value is compatible with anything.  Divergence on the very
    last shared cycle is reported like any other.
    """
    for cycle_index, (g, b) in enumerate(zip(good.cycles, bad.cycles)):
        for net in processor.datapath.dpo_nets:
            gv = g.datapath.get(net.name)
            bv = b.datapath.get(net.name)
            if gv is not None and bv is not None and gv != bv:
                return cycle_index, net.name
    return None
