"""Lane-batched processor co-simulation over the batched datapath kernels.

:class:`LaneProcessorSimulator` is the batch-axis counterpart of
:class:`repro.verify.cosim.ProcessorSimulator`: it carries ``n_lanes``
independent stimulus streams (one program per lane) through the machine in
lockstep, one batched kernel call per fixpoint sweep instead of one scalar
kernel call per lane.

Equivalence contract (enforced by ``tests/test_batched_differential.py``):
per lane, every resolved value, every clocked state and every failure
message is byte-identical to a scalar :class:`ProcessorSimulator` run of
that lane alone.  Three design points make that hold:

* **Lockstep global fixpoint.**  ``resolve`` iterates the controller/
  datapath sweep until *all* lanes settle.  A lane that settled early is
  re-swept, but re-sweeping a settled lane is idempotent (same assignment
  -> same controller values -> same partial evaluation), so its values
  cannot drift from the scalar run's.
* **Scalar controller, memoized.**  The controller is symbolic (domains,
  not bit-vectors) and cheap; it stays scalar per lane.  Lanes of a batch
  overwhelmingly share controller situations, so evaluations and clock
  transitions are memoized on the exact assignment — the memo returns the
  *same* dict the scalar path would compute.  Memoized dicts are shared
  read-only; callers must not mutate them.
* **Per-lane failure collection.**  Where the scalar co-simulator raises
  :class:`CosimError` (unresolved CTRL at the clock edge, unresolved
  register control, loading an unresolved value), ``step`` instead records
  the lane's failure — message-identical to the scalar exception, in the
  scalar check order — and clocks the lane safely (a failed register holds
  its value).  The environments stop committing for a failed lane; its
  later values are unobserved.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.controller.network import ControlNetworkError
from repro.datapath.batched import BatchedDatapathSimulator, require_numpy
from repro.datapath.simulate import Injector, ModuleOverride, no_injection
from repro.model.processor import Processor
from repro.utils.bits import mask
from repro.verify.cosim import CosimError

try:  # pragma: no cover - exercised by the no-numpy CI tier
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Entry cap for the controller evaluation / clock memos.
_MEMO_CAP = 65536


class LaneProcessorSimulator:
    """Cycle-accurate lane-batched co-simulator for a :class:`Processor`."""

    def __init__(
        self,
        processor: Processor,
        n_lanes: int,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
        max_fixpoint_iters: int = 8,
    ) -> None:
        require_numpy()
        self.processor = processor
        self.n_lanes = n_lanes
        self.dp = BatchedDatapathSimulator(
            processor.datapath, n_lanes, injector=injector,
            module_overrides=module_overrides,
        )
        cd = self.dp.compiled
        self.cd = cd
        controller = processor.controller
        self.ctl_states = [
            dict(controller.reset_state()) for _ in range(n_lanes)
        ]
        self.max_fixpoint_iters = max_fixpoint_iters
        self._last_sts: list[dict] = [{} for _ in range(n_lanes)]
        # Controller memos (assignment -> values / transition), shared by
        # all lanes; see the module docstring for the sharing contract.
        self._eval_memo: dict[tuple, dict] = {}
        self._clock_memo: dict[tuple, dict] = {}
        nm = self.dp.batched.net_mask
        self._ctrl_slots = [
            (name, cd.index[name], nm[cd.index[name]])
            for name in controller.ctrl_signals if name in cd.index
        ]
        self._sts_slots = [
            (name, cd.index[name]) for name in controller.sts_signals
            if name in cd.index
        ]
        self._ext_names = [
            net.name for net in processor.datapath.nets.values()
            if net.is_external_input
        ]
        # Register clock plan: (reg, d_id, ctl_ids, width mask).
        self._reg_plan = [
            (reg, cd.reg_d_ids[j], cd.reg_ctl_ids[j], mask(reg.width))
            for j, reg in enumerate(cd.registers)
        ]

    def reset(self) -> None:
        self.dp.reset()
        controller = self.processor.controller
        self.ctl_states = [
            dict(controller.reset_state()) for _ in range(self.n_lanes)
        ]
        self._last_sts = [{} for _ in range(self.n_lanes)]

    # ------------------------------------------------------------------
    # Controller memos
    # ------------------------------------------------------------------
    def _ctl_eval(self, assignment: dict) -> dict:
        key = tuple(sorted(assignment.items()))
        values = self._eval_memo.get(key)
        if values is None:
            values = self.processor.controller.network.evaluate(assignment)
            if len(self._eval_memo) < _MEMO_CAP:
                self._eval_memo[key] = values
        return values

    def _ctl_clock(self, state: dict, inputs: dict) -> dict:
        key = (
            tuple(sorted(state.items())), tuple(sorted(inputs.items())),
        )
        next_state = self._clock_memo.get(key)
        if next_state is None:
            _, next_state = self.processor.controller.simulate_cycle(
                dict(state), inputs
            )
            if len(self._clock_memo) < _MEMO_CAP:
                self._clock_memo[key] = next_state
        return next_state

    def _poke_ctrl(self, lane: int, ctl_values: Mapping) -> None:
        ext_v, ext_k = self.dp._ext_v, self.dp._ext_k
        for name, i, m in self._ctrl_slots:
            value = ctl_values.get(name)
            if value is None:
                ext_v[i][lane] = 0
                ext_k[i][lane] = False
            else:
                ext_v[i][lane] = value & m
                ext_k[i][lane] = True

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def resolve(
        self,
        cpi_list: Sequence[Mapping],
        dpi_list: Sequence[Mapping],
    ) -> list[dict]:
        """Resolve one cycle's values for every lane WITHOUT clocking.

        Mirrors :meth:`ProcessorSimulator.resolve` per lane; the resolved
        datapath arrays stay staged in ``self.dp`` (read them with
        :meth:`datapath_dict` / :meth:`dense_datapath`).  Returns the
        per-lane controller value dicts (shared memo entries — read-only).
        """
        processor = self.processor
        n = self.n_lanes
        frames = []
        for b in range(n):
            dpi_full: dict = dict.fromkeys(self._ext_names)
            dpi_full.update(dpi_list[b])
            cpi = cpi_list[b]
            for cpi_name, dpi_name in processor.cpi_dpi_bindings.items():
                if cpi_name in cpi and cpi[cpi_name] is not None:
                    dpi_full[dpi_name] = cpi[cpi_name]
            frames.append(dpi_full)
        self.dp.fill_external(frames, None)

        sts_known: list[dict] = [{} for _ in range(n)]
        ctl_values: list[dict] = [{}] * n
        values, known = None, None
        for _ in range(self.max_fixpoint_iters):
            for b in range(n):
                assignment = dict(cpi_list[b])
                assignment.update(self.ctl_states[b])
                assignment.update(sts_known[b])
                ctl_values[b] = self._ctl_eval(assignment)
                self._poke_ctrl(b, ctl_values[b])
            self.dp.run_partial()
            values, known = self.dp.values, self.dp.known
            settled = True
            for b in range(n):
                new_sts = {
                    name: int(values[i][b])
                    for name, i in self._sts_slots if known[i][b]
                }
                if new_sts != sts_known[b]:
                    sts_known[b] = new_sts
                    settled = False
            if settled:
                break
        else:  # pragma: no cover - defensive
            raise CosimError("controller/datapath fixpoint did not settle")
        self._last_sts = sts_known
        return ctl_values

    def preview_shallow(self) -> list[dict]:
        """State-only single-sweep preview (MiniEnv's commit peek).

        Per lane: evaluate the controller on the pipe-register state alone,
        feed only the CTRL values into one partial datapath evaluation —
        exactly ``MiniEnv.run``'s pre-commit preview.  Leaves the preview
        staged in ``self.dp``; returns the per-lane controller dicts.
        """
        ext_v, ext_k = self.dp._ext_v, self.dp._ext_k
        for i, _ in self.cd.ext_pairs:
            ext_v[i][:] = 0
            ext_k[i][:] = False
        ctl_values = []
        for b in range(self.n_lanes):
            preview = self._ctl_eval(dict(self.ctl_states[b]))
            self._poke_ctrl(b, preview)
            ctl_values.append(preview)
        self.dp.run_partial()
        return ctl_values

    def step(
        self,
        cpi_list: Sequence[Mapping],
        dpi_list: Sequence[Mapping],
    ) -> tuple[list[dict], dict[int, str]]:
        """Resolve and clock one cycle on every lane.

        Returns ``(ctl_values, failures)`` where ``failures`` maps a lane
        index to the message of the :class:`CosimError` (or controller
        :class:`ControlNetworkError`) the scalar co-simulator would have
        raised for that lane this cycle — first failure in scalar check
        order.  Failed lanes are clocked safely (holds instead of loading
        unknowns) so the batch keeps running; callers must stop observing
        a lane once it fails.
        """
        ctl_values = self.resolve(cpi_list, dpi_list)
        failures: dict[int, str] = {}
        ctrl_names = self.processor.controller.ctrl_signals

        for b in range(self.n_lanes):
            unknown_ctrl = [
                name for name in ctrl_names
                if ctl_values[b].get(name) is None
            ]
            if unknown_ctrl:
                failures[b] = (
                    f"CTRL signals unresolved after fixpoint: {unknown_ctrl}"
                )

        for b in range(self.n_lanes):
            if b in failures:
                continue  # scalar raised before clocking: freeze the lane
            inputs = {**dict(cpi_list[b]), **self._last_sts[b]}
            try:
                self.ctl_states[b] = self._ctl_clock(
                    self.ctl_states[b], inputs
                )
            except ControlNetworkError as exc:
                failures[b] = str(exc)

        self._clock_datapath(failures)
        return ctl_values, failures

    def _clock_datapath(self, failures: dict[int, str]) -> None:
        """Vectorised register clocking with per-lane failure collection.

        Mirrors ``ProcessorSimulator._clock`` per lane and per register, in
        order: an unresolved control, then an unknown D that would load,
        each become that lane's failure (first only).  Unknown loads hold
        the current value so the lane stays clocked and safe.
        """
        values, known = self.dp.values, self.dp.known
        state = self.dp.state
        new_state = []
        for j, (reg, d_id, ctl_ids, m) in enumerate(self._reg_plan):
            cur = state[j]
            dv = values[d_id]
            kd = known[d_id]
            ctl_known = None
            for c in ctl_ids:
                kc = known[c]
                ctl_known = kc if ctl_known is None else (ctl_known & kc)
            if ctl_known is not None and not ctl_known.all():
                for b in _np.nonzero(~ctl_known)[0]:
                    failures.setdefault(
                        int(b),
                        f"register {reg.name}: unresolved control at "
                        f"clock edge",
                    )
            # Would the register load D?  (Clear wins, then enable; a
            # register with neither always loads.)
            nxt = _np.where(kd, dv, cur) & m
            loads = _np.ones(self.n_lanes, _np.bool_)
            pos = 0
            if reg.has_enable:
                en = values[ctl_ids[pos]] == 1
                nxt = _np.where(en, nxt, cur)
                loads &= en
                pos += 1
            if reg.has_clear:
                clr = values[ctl_ids[pos]] == 1
                nxt = _np.where(clr, _np.uint64(reg.clear_value), nxt)
                loads &= ~clr
            if ctl_known is not None:
                loads &= ctl_known
                nxt = _np.where(ctl_known, nxt, cur)
            bad_load = loads & ~kd
            if bad_load.any():
                for b in _np.nonzero(bad_load)[0]:
                    failures.setdefault(
                        int(b),
                        f"register {reg.name}: loading an unresolved value",
                    )
                nxt = _np.where(bad_load, cur, nxt)
            new_state.append(nxt)
        for j, nxt in enumerate(new_state):
            state[j] = nxt

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def dense_datapath(self, lane: int) -> list:
        """One lane's resolved values as a dense list indexed by net id
        (``None`` where unknown) — the golden-cycle form
        :class:`repro.datapath.faultsim.BatchFaultSimulator` consumes."""
        values, known = self.dp.values, self.dp.known
        return [
            int(values[i][lane]) if known[i][lane] else None
            for i in range(self.cd.n_nets)
        ]

    def datapath_dict(self, lane: int) -> dict:
        """One lane's resolved values as a name -> value dict (the scalar
        ``resolve`` / ``CycleTrace.datapath`` form)."""
        values, known = self.dp.values, self.dp.known
        return {
            name: int(values[i][lane]) if known[i][lane] else None
            for i, name in enumerate(self.cd.names)
        }

    def set_stimulus_state(self, lane: int, state: Mapping[str, int]) -> None:
        """Set stimulus-register contents for one lane (masked)."""
        for name, value in state.items():
            self.dp.set_state(name, lane, value)
