"""Command-line entry points: ``python -m repro <command>``.

Commands:

* ``stats``                     — print the DLX model statistics
* ``table1 [--sample N] [--dropping] [--jobs N] [--checkpoint PATH]
  [--resume] [--json OUT]``     — run the Table-1 campaign (1-in-N sample)
* ``generate NET BIT STUCK``    — generate a test for one bus SSL error
* ``minipipe [--sample N] [--dropping] [--jobs N] [--checkpoint PATH]
  [--resume] [--json OUT]``     — run the MiniPipe campaign
* ``fuzz [--machine M] [--iters N] [--seed S] [--jobs N] [--lanes N]
  [--budget 60s] [--plant SPEC] [--matrix] [--baseline PATH]
  [--report-dir DIR]``
  — differential fuzzing of the spec-vs-implementation oracle and/or the
  error-model conformance matrix (see ``docs/FUZZING.md``)
* ``serve [--host H] [--port P] [--state-dir DIR] ...`` — run the
  persistent campaign service: campaigns/fuzzing over HTTP with warm
  cross-request caches (see ``docs/SERVICE.md``)

Campaign flags (``table1`` and ``minipipe``):

* ``--jobs N``        shard the error list across N worker processes
  (default 1 = the classic serial loop, in-process)
* ``--checkpoint PATH``  append one JSONL record per completed error so a
  killed run can be resumed
* ``--resume``        skip errors already present in ``--checkpoint``
* ``--json OUT``      write a machine-readable run report (config, per-
  error outcomes, structured event stream) — atomically
* ``--dropping``      error simulation / fault dropping (composes with
  ``--jobs``: finished tests drop errors from the undispatched tail)
* ``--profile``       record per-phase TG timings (DPTRACE / CTRLJUST /
  DPRELAX / cosim) as ``error-profile`` events plus one
  ``profile-summary``, visible in the progress feed and the ``--json``
  report
* ``--restarts``      EVSIDS activity ordering + Luby restarts inside
  CTRLJUST (off by default; outcomes may only improve — see
  ``docs/PERFORMANCE.md``)
* ``--deadline-bank`` adaptive deadline banking: easy errors deposit
  unspent CPU budget, deadline-aborted errors are re-queued once with a
  doubled deadline paid from the bank, and dispatch becomes
  hardest-last (off by default)
* ``--remote URL``    submit the campaign to a running ``repro serve``
  instance instead of executing locally; progress streams back live and
  ``--json`` receives the server's (identical) run report

Ctrl-C during a local campaign stops it cooperatively: in-flight errors
finish and are checkpointed, a ``campaign-interrupted`` event is
emitted, and the command exits 130 (resume with ``--resume``).

Live per-error progress is rendered on stderr; stdout carries the Table-1
summary.
"""

from __future__ import annotations

import argparse
import os
import sys


def cmd_stats(_args) -> int:
    from repro.dlx import build_dlx

    stats = build_dlx().statistics()
    width = max(len(k) for k in stats) + 2
    for key, value in stats.items():
        print(f"{key:<{width}}{value}")
    return 0


def _run_campaign_command(args, target: str, title: str | None) -> int:
    import signal

    from repro.campaign.events import EventLog, EventStream, ProgressRenderer
    from repro.campaign.orchestrator import (
        CampaignOrchestrator,
        OrchestratorConfig,
        campaign_run_to_dict,
    )

    if args.remote:
        from repro.service.client import run_remote_campaign

        return run_remote_campaign(args, target, title)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.resume:
        from repro.campaign.checkpoint import CampaignCheckpoint

        try:
            CampaignCheckpoint.load(args.checkpoint)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    config = OrchestratorConfig(
        target=target,
        jobs=args.jobs,
        deadline_seconds=args.deadline,
        error_simulation=args.dropping,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        profile=args.profile,
        restarts=args.restarts,
        deadline_bank=args.deadline_bank,
    )
    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    events.subscribe(ProgressRenderer(sys.stderr))
    orchestrator = CampaignOrchestrator(config, events=events)

    from repro.service.jobs import select_campaign_errors

    errors = select_campaign_errors(
        orchestrator.campaign, target, {"sample": args.sample}
    )
    print(f"Running {len(errors)} bus SSL errors "
          f"(deadline {args.deadline:.0f}s/error, {args.jobs} job(s), "
          f"error simulation {'on' if args.dropping else 'off'}) ...")

    # First Ctrl-C stops cooperatively: in-flight errors finish and are
    # checkpointed, one campaign-interrupted event is emitted, and the
    # command exits 130.  A second Ctrl-C falls back to the previous
    # (default) handler and kills the run the old way.
    def _on_sigint(signum, frame):
        orchestrator.interrupt()
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)

    try:
        previous_handler = signal.signal(signal.SIGINT, _on_sigint)
    except ValueError:  # not the main thread (e.g. under a test runner)
        previous_handler = None
    try:
        report = orchestrator.run(errors)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
    print(report.table1(title) if title else report.table1())
    if args.dropping:
        dropped = sum(1 for o in report.outcomes if o.dropped_by)
        print(f"(fault dropping skipped TG for {dropped} errors)")
    if args.json:
        from repro.campaign.serialize import save_json

        try:
            save_json(
                campaign_run_to_dict(config, report, log.events), args.json
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote JSON run report to {args.json}")
    if report.interrupted:
        resumable = (" — resume with --checkpoint/--resume"
                     if config.checkpoint_path else "")
        print(f"campaign interrupted{resumable}", file=sys.stderr)
        return 130
    return 0


def cmd_table1(args) -> int:
    return _run_campaign_command(args, target="dlx", title=None)


def cmd_minipipe(args) -> int:
    return _run_campaign_command(
        args, target="mini", title="MiniPipe bus SSL campaign"
    )


def cmd_generate(args) -> int:
    from repro.core.tg import TestGenerator, TGStatus
    from repro.dlx import build_dlx, detects
    from repro.dlx.env import dlx_exposure_comparator
    from repro.dlx.realize import RealizationError, realize
    from repro.errors import BusSSLError

    dlx = build_dlx()
    error = BusSSLError(args.net, args.bit, args.stuck)
    generator = TestGenerator(
        dlx, exposure_comparator=dlx_exposure_comparator,
        deadline_seconds=args.deadline,
    )
    result = generator.generate(error)
    print(f"{error.describe()}: {result.status.value} "
          f"({result.attempts} attempts, {result.backtracks} backtracks)")
    if result.status is not TGStatus.DETECTED:
        return 1
    try:
        realized = realize(dlx, result.test)
    except RealizationError as exc:
        print(f"realization failed: {exc}")
        return 1
    for instruction in realized.program:
        print(f"  {instruction}")
    nonzero = {f"r{i}": hex(v) for i, v in enumerate(realized.init_regs) if v}
    if nonzero:
        print(f"initial registers: {nonzero}")
    if realized.init_memory:
        print(f"initial memory: "
              f"{ {hex(a): hex(v) for a, v in realized.init_memory.items()} }")
    ok = detects(dlx, realized.program, error,
                 realized.init_regs, realized.init_memory)
    print("ISA-level detection:", "yes" if ok else "NO")
    return 0 if ok else 1


def cmd_serve(args) -> int:
    from repro.service.server import serve_main

    return serve_main(args)


def _parse_budget(text: str) -> float:
    """Parse a wall-clock budget: '45', '60s', '2m', '1.5h'."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0}
    scale = units.get(text[-1:].lower())
    number = text[:-1] if scale else text
    scale = scale or 1.0
    try:
        seconds = float(number) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad budget {text!r} (want e.g. 45, 60s, 2m, 1.5h)"
        ) from None
    if seconds <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return seconds


def cmd_fuzz(args) -> int:
    import json

    from repro.campaign.events import EventLog, EventStream, ProgressRenderer
    from repro.campaign.serialize import save_json
    from repro.fuzz import (
        FuzzConfig,
        MatrixConfig,
        compare_matrices,
        machine_adapter,
        matrix_artifact,
        run_fuzz,
        run_matrix,
    )

    events = EventStream()
    log = EventLog()
    events.subscribe(log)
    events.subscribe(ProgressRenderer(sys.stderr))
    report_dir = args.report_dir
    os.makedirs(report_dir, exist_ok=True)
    exit_code = 0

    if not args.matrix:
        try:
            config = FuzzConfig(
                machine=args.machine, iters=args.iters, seed=args.seed,
                length=args.length, jobs=args.jobs,
                budget_seconds=args.budget, plant=args.plant,
                max_minimize=args.max_minimize, lanes=args.lanes,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            report = run_fuzz(config, events=events, report_dir=report_dir)
        except ValueError as exc:  # e.g. a bad --plant spec
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report_path = os.path.join(report_dir, "fuzz_report.json")
        save_json(report.to_dict(machine_adapter(args.machine).build()),
                  report_path)
        n = len(report.divergences)
        if args.plant:
            if n == 0:
                print(f"planted {args.plant}: NOT detected in "
                      f"{report.iterations} iterations")
                exit_code = 1
            else:
                smallest = min(
                    (m["n_instructions"] for m in report.minimized),
                    default=None,
                )
                print(f"planted {args.plant}: detected in {n}/"
                      f"{report.iterations} iterations; smallest "
                      f"reproducer {smallest} instruction(s)")
        elif n:
            print(f"FUZZ FAILURE: {n} spec/implementation divergence(s) "
                  f"in {report.iterations} iterations — minimized "
                  f"reproducers in {report_dir}")
            exit_code = 1
        else:
            print(f"fuzz[{args.machine}]: {report.iterations} iterations, "
                  "0 divergences")
        print(f"wrote fuzz report to {report_path}")

    if args.matrix:
        fragments = {}
        for machine in args.matrix_machines.split(","):
            machine = machine.strip()
            config = MatrixConfig(
                machine=machine, programs=args.matrix_programs,
                length=args.length, seed=args.seed,
                sample=args.matrix_sample,
                max_bits_per_net=4 if machine.startswith("dlx") else None,
                lanes=args.lanes,
            )
            fragments[machine] = run_matrix(config, events=events)
        artifact = matrix_artifact(fragments)
        matrix_path = os.path.join(report_dir, "conformance_matrix.json")
        save_json(artifact, matrix_path)
        print(f"wrote conformance matrix to {matrix_path}")
        if args.baseline:
            try:
                with open(args.baseline, encoding="utf-8") as handle:
                    baseline = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline: {exc}",
                      file=sys.stderr)
                return 2
            regressions = compare_matrices(baseline, artifact)
            if regressions:
                print(f"MATRIX REGRESSIONS vs {args.baseline}:")
                for line in regressions:
                    print(f"  {line}")
                exit_code = 1
            else:
                print(f"no detectability regressions vs {args.baseline}")

    if args.json:
        try:
            save_json({"kind": "fuzz-run",
                       "events": log.to_dicts()}, args.json)
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote event log to {args.json}")
    return exit_code


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dropping", action="store_true",
                        help="enable error simulation / fault dropping")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="append per-error JSONL records to PATH")
    parser.add_argument("--resume", action="store_true",
                        help="skip errors already in --checkpoint")
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a machine-readable run report to OUT")
    parser.add_argument("--profile", action="store_true",
                        help="record per-phase TG timings in the event "
                             "stream / --json report")
    parser.add_argument("--restarts", action="store_true",
                        help="EVSIDS activity ordering + Luby restarts in "
                             "CTRLJUST (default off; knobs-off runs are "
                             "byte-identical)")
    parser.add_argument("--deadline-bank", action="store_true",
                        help="bank unspent per-error CPU budget and "
                             "re-queue deadline-aborted errors once with "
                             "a doubled deadline; dispatch becomes "
                             "hardest-last (default off)")
    parser.add_argument("--remote", metavar="URL", default=None,
                        help="submit to a running campaign service "
                             "(repro serve) instead of running locally; "
                             "streams the same live progress")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="print DLX model statistics")

    p_table1 = sub.add_parser("table1", help="run the Table-1 campaign")
    p_table1.add_argument("--sample", type=int, default=6,
                          help="run every Nth error (default 6; 1 = all)")
    p_table1.add_argument("--deadline", type=float, default=20.0)
    _add_campaign_flags(p_table1)

    p_gen = sub.add_parser("generate", help="target one bus SSL error")
    p_gen.add_argument("net", help="datapath net name, e.g. alu_add.y")
    p_gen.add_argument("bit", type=int)
    p_gen.add_argument("stuck", type=int, choices=(0, 1))
    p_gen.add_argument("--deadline", type=float, default=30.0)

    p_mini = sub.add_parser("minipipe", help="run the MiniPipe campaign")
    p_mini.add_argument("--sample", type=int, default=1,
                        help="run every Nth error (default 1 = all)")
    p_mini.add_argument("--deadline", type=float, default=10.0)
    _add_campaign_flags(p_mini)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing / conformance matrix for the oracle",
    )
    p_fuzz.add_argument("--machine", default="mini",
                        choices=("mini", "dlx", "dlx_bp"),
                        help="machine to fuzz (default mini)")
    p_fuzz.add_argument("--iters", type=int, default=200,
                        help="fuzz iterations (default 200)")
    p_fuzz.add_argument("--seed", type=int, default=1)
    p_fuzz.add_argument("--length", type=int, default=12,
                        help="instructions per random program (default 12)")
    p_fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = in-process)")
    p_fuzz.add_argument("--budget", type=_parse_budget, default=None,
                        metavar="TIME",
                        help="wall-clock budget, e.g. 60s / 2m "
                             "(default: run all iterations)")
    p_fuzz.add_argument("--plant", metavar="SPEC", default=None,
                        help="plant an error model, e.g. "
                             "bus-ssl:alu_add.y:0:1, mse:alu_add, "
                             "boe:opa_mux — divergences become expected "
                             "detections")
    p_fuzz.add_argument("--lanes", type=int, default=None, metavar="N",
                        help="batched-kernel lane width: omit for auto "
                             "(batched when numpy is available), 0 for the "
                             "scalar kernels, N>=1 to batch N programs per "
                             "kernel call (reports are byte-identical at "
                             "any width)")
    p_fuzz.add_argument("--max-minimize", type=int, default=5,
                        help="minimize at most N diverging cases "
                             "(default 5)")
    p_fuzz.add_argument("--report-dir", metavar="DIR", default="fuzz-report",
                        help="directory for the JSON report and minimized "
                             "reproducers (default fuzz-report)")
    p_fuzz.add_argument("--matrix", action="store_true",
                        help="run the error-model conformance matrix "
                             "instead of the differential fuzzer")
    p_fuzz.add_argument("--matrix-machines", default="mini",
                        metavar="M[,M...]",
                        help="comma-separated machines for --matrix "
                             "(default mini)")
    p_fuzz.add_argument("--matrix-programs", type=int, default=16,
                        help="random programs per error — the detection "
                             "budget (default 16)")
    p_fuzz.add_argument("--matrix-sample", type=int, default=1,
                        help="keep every Nth enumerated error "
                             "(default 1 = all)")
    p_fuzz.add_argument("--baseline", metavar="PATH", default=None,
                        help="compare the matrix against a baseline "
                             "artifact; exit 1 on detectability "
                             "regressions")
    p_fuzz.add_argument("--json", metavar="OUT", default=None,
                        help="also write the structured event log to OUT")

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent campaign service (HTTP/JSON; see "
             "docs/SERVICE.md)",
    )
    from repro.service.server import add_serve_arguments

    add_serve_arguments(p_serve)

    args = parser.parse_args(argv)
    handler = {
        "stats": cmd_stats,
        "table1": cmd_table1,
        "generate": cmd_generate,
        "minipipe": cmd_minipipe,
        "fuzz": cmd_fuzz,
        "serve": cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
