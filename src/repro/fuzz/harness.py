"""Differential fuzzing of the specification-vs-implementation oracle.

The paper's detection criterion (Section II) compares an ISA-level
specification simulator against the co-simulated pipelined implementation.
Every Table-1 number rests on that oracle, so this harness stresses it
systematically: thousands of seeded biased-random programs (the Section-I
baseline generator) are executed on both sides and the architectural state
at retirement — the register write/event stream, the final register file
and (for DLX) the memory image — is asserted equal.

* On the **fault-free** build any divergence is an oracle bug: the case is
  delta-debugged to a locally-minimal reproducer and emitted as a
  ready-to-paste pytest file.
* With a **planted** error model (``FuzzConfig.plant``) a divergence is
  the expected detection; the same minimizer then produces the smallest
  instruction sequence that still detects the planted error.

Iterations are independent (iteration *i* is seeded ``seed + i``), so the
run shards across worker processes; the merged report is byte-identical
for any ``jobs`` value.  Alongside the verdicts the harness reports
hazard/bypass/squash coverage: controller states and transitions visited,
tertiary/CTRL value coverage (``repro.analysis.coverage``), and per-signal
activity counts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.analysis.coverage import ControllerCoverage, CoverageCollector
from repro.baselines.random_gen import (
    RandomDlxGenerator,
    RandomMiniGenerator,
    RandomProgramConfig,
)
from repro.datapath.batched import (
    counters_delta,
    counters_snapshot,
    effective_lanes,
    merge_counters,
)
from repro.fuzz.minimize import (
    emit_pytest_case,
    minimize_case,
    parse_error_spec,
)

MACHINES = ("mini", "dlx", "dlx_bp")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one differential-fuzz run."""

    machine: str = "mini"
    iters: int = 200
    seed: int = 1
    length: int = 12
    register_pool: int = 4
    jobs: int = 1
    #: Optional wall-clock budget; iteration loops stop once exceeded
    #: (budget-limited runs are *not* byte-deterministic across jobs).
    budget_seconds: float | None = None
    #: Optional planted error model (``repro.fuzz.minimize`` spec string);
    #: divergences are then expected detections rather than oracle bugs.
    plant: str | None = None
    #: Minimize at most this many diverging cases (lowest indices first).
    max_minimize: int = 5
    #: Optional mnemonic -> weight opcode mix for the generator.
    opcode_weights: dict | None = None
    #: Simulate on the compiled datapath kernels (default); ``False`` runs
    #: the interpretive oracle.  Execution strategy, not a result knob —
    #: reports are byte-identical either way and exclude it.
    compiled: bool = True
    #: Lane width for the batched numpy kernels: ``None`` = auto (batched
    #: when numpy is importable, scalar otherwise), 0 = scalar, N >= 1 =
    #: batch N seeded programs per kernel call.  Execution strategy like
    #: ``compiled`` — reports are byte-identical at any width and the
    #: artifact excludes it (see tests/test_fuzz_determinism.py).
    lanes: int | None = None

    def __post_init__(self) -> None:
        if self.machine not in MACHINES:
            raise ValueError(f"unknown machine {self.machine!r} "
                             f"(choose from {', '.join(MACHINES)})")
        if self.iters < 0:
            raise ValueError("iters must be >= 0")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.lanes is not None and self.lanes < 0:
            raise ValueError("lanes must be >= 0")


# ---------------------------------------------------------------------------
# Machine adapters: one uniform differential interface per machine
# ---------------------------------------------------------------------------
class _MiniAdapter:
    name = "mini"
    family = "mini"

    def build(self):
        from repro.mini import build_minipipe

        return build_minipipe()

    def generator(self, config: FuzzConfig):
        return RandomMiniGenerator(RandomProgramConfig(
            length=config.length, register_pool=config.register_pool,
            seed=config.seed, opcode_weights=config.opcode_weights,
        ))

    def spec_outcome(self, program, init_regs) -> dict:
        from repro.mini.spec import MiniSpec

        result = MiniSpec().run(program, init_regs)
        return {
            "writes": [list(w) for w in result.writes],
            "registers": list(result.registers),
        }

    def impl_outcome(self, processor, program, init_regs, error=None,
                     compiled=True):
        from repro.mini.spec import MiniEnv

        if error is None:
            env = MiniEnv(processor, compiled=compiled)
        else:
            bad = error.attach(processor.datapath)
            env = MiniEnv(processor, injector=bad.injector,
                          module_overrides=bad.module_overrides,
                          compiled=compiled)
        result = env.run(program, init_regs)
        outcome = {
            "writes": [list(w) for w in result.writes],
            "registers": list(result.registers),
        }
        return outcome, env.trace

    def impl_outcome_batch(self, processor, programs, init_regs_list,
                           error=None):
        """Lane-batched ``impl_outcome`` over a chunk of iterations."""
        from repro.mini.lanes import BatchMiniEnv

        env = _batch_env(BatchMiniEnv, processor, len(programs), error)
        results = []
        for run in env.run(programs, init_regs_list):
            _raise_lane_failure(run)
            results.append((
                {
                    "writes": [list(w) for w in run.result.writes],
                    "registers": list(run.result.registers),
                },
                run.trace,
            ))
        return results


def _batch_env(env_cls, processor, n_lanes, error):
    if error is None:
        return env_cls(processor, n_lanes)
    bad = error.attach(processor.datapath)
    return env_cls(processor, n_lanes, injector=bad.injector,
                   module_overrides=bad.module_overrides)


def _raise_lane_failure(run) -> None:
    """Mirror the scalar path: a lane whose scalar run would raise
    ``CosimError`` raises here too (the batch is not silently partial)."""
    if run.failure is not None:
        from repro.verify.cosim import CosimError

        raise CosimError(run.failure)


class _DlxAdapter:
    name = "dlx"
    family = "dlx"
    branch_prediction = False

    def build(self):
        from repro.dlx import build_dlx

        return build_dlx(branch_prediction=self.branch_prediction)

    def generator(self, config: FuzzConfig):
        return RandomDlxGenerator(RandomProgramConfig(
            length=config.length, register_pool=config.register_pool,
            seed=config.seed, opcode_weights=config.opcode_weights,
        ))

    def spec_outcome(self, program, init_regs) -> dict:
        from repro.dlx.spec import DlxSpec

        result = DlxSpec().run(program, init_regs)
        return self._canonical(result)

    def impl_outcome(self, processor, program, init_regs, error=None,
                     compiled=True):
        from repro.dlx.env import DlxEnv

        if error is None:
            env = DlxEnv(processor, compiled=compiled)
        else:
            bad = error.attach(processor.datapath)
            env = DlxEnv(processor, injector=bad.injector,
                         module_overrides=bad.module_overrides,
                         compiled=compiled)
        result = env.run(program, init_regs)
        return self._canonical(result), env.trace

    def impl_outcome_batch(self, processor, programs, init_regs_list,
                           error=None):
        """Lane-batched ``impl_outcome`` over a chunk of iterations."""
        from repro.dlx.lanes import BatchDlxEnv

        env = _batch_env(BatchDlxEnv, processor, len(programs), error)
        results = []
        for run in env.run(programs, init_regs_list):
            _raise_lane_failure(run)
            results.append((self._canonical(run.result), run.trace))
        return results

    @staticmethod
    def _canonical(result) -> dict:
        return {
            "events": [list(event) for event in result.events],
            "registers": list(result.registers),
            "memory": sorted(
                (addr, word) for addr, word in result.memory.words.items()
            ),
        }


class _DlxBpAdapter(_DlxAdapter):
    name = "dlx_bp"
    branch_prediction = True


_ADAPTERS = {
    "mini": _MiniAdapter,
    "dlx": _DlxAdapter,
    "dlx_bp": _DlxBpAdapter,
}


def machine_adapter(name: str):
    """The differential adapter for a machine name."""
    try:
        return _ADAPTERS[name]()
    except KeyError:
        raise ValueError(f"unknown machine {name!r}") from None


def first_mismatch(spec_outcome: dict, impl_outcome: dict) -> str | None:
    """Human-readable description of the first architectural mismatch."""
    for key in spec_outcome:
        spec_value = spec_outcome[key]
        impl_value = impl_outcome.get(key)
        if spec_value == impl_value:
            continue
        if isinstance(spec_value, list) and isinstance(impl_value, list):
            for i, (s, b) in enumerate(zip(spec_value, impl_value)):
                if s != b:
                    return f"{key}[{i}]: spec {s!r} impl {b!r}"
            return (f"{key}: length {len(spec_value)} (spec) vs "
                    f"{len(impl_value)} (impl)")
        return f"{key}: spec {spec_value!r} impl {impl_value!r}"
    return None


# ---------------------------------------------------------------------------
# Worker: one shard of iteration indices
# ---------------------------------------------------------------------------
def _signal_activity(processor, trace) -> dict[str, int]:
    """Cycles in which each tertiary (hazard/bypass/squash) signal fired."""
    counts = {name: 0 for name in processor.controller.cti_signals}
    for cycle in trace.cycles:
        for name in counts:
            if cycle.controller.get(name):
                counts[name] += 1
    return counts


def _run_shard(payload: tuple) -> dict:
    """Run one contiguous shard of iterations (multiprocessing target)."""
    config_kwargs, indices, deadline_seconds = payload
    config = FuzzConfig(**config_kwargs)
    adapter = machine_adapter(config.machine)
    processor = adapter.build()
    error = (parse_error_spec(config.plant, processor.datapath)
             if config.plant else None)
    generator = adapter.generator(config)
    collector = CoverageCollector(processor)
    activity: dict[str, int] = {}
    divergences = []
    completed = 0
    budget_exhausted = False
    started = time.monotonic()
    n_lanes = effective_lanes(config.lanes)
    counters_before = counters_snapshot()

    def observe(index, program, init_regs, spec_outcome, impl_outcome,
                trace) -> None:
        nonlocal completed
        collector.observe_trace(trace)
        for name, count in _signal_activity(processor, trace).items():
            activity[name] = activity.get(name, 0) + count
        mismatch = first_mismatch(spec_outcome, impl_outcome)
        if mismatch is not None:
            divergences.append({
                "index": index,
                "mismatch": mismatch,
                "program": [str(i) for i in program],
                "init_regs": list(init_regs),
            })
        completed += 1

    if n_lanes:
        # Lane-batched path: a chunk of seeded iterations per kernel call.
        # Per-index observation stays in index order, so the report is
        # byte-identical to the scalar path at any lane width.
        for start in range(0, len(indices), n_lanes):
            if (deadline_seconds is not None
                    and time.monotonic() - started > deadline_seconds):
                budget_exhausted = True
                break
            chunk = indices[start:start + n_lanes]
            programs = [generator.program(i) for i in chunk]
            init_regs_list = [generator.initial_registers(i) for i in chunk]
            outcomes = adapter.impl_outcome_batch(
                processor, programs, init_regs_list, error
            )
            for i, index in enumerate(chunk):
                spec_outcome = adapter.spec_outcome(
                    programs[i], init_regs_list[i]
                )
                impl_outcome, trace = outcomes[i]
                observe(index, programs[i], init_regs_list[i],
                        spec_outcome, impl_outcome, trace)
    else:
        for index in indices:
            if (deadline_seconds is not None
                    and time.monotonic() - started > deadline_seconds):
                budget_exhausted = True
                break
            program = generator.program(index)
            init_regs = generator.initial_registers(index)
            spec_outcome = adapter.spec_outcome(program, init_regs)
            impl_outcome, trace = adapter.impl_outcome(
                processor, program, init_regs, error,
                compiled=config.compiled
            )
            observe(index, program, init_regs, spec_outcome, impl_outcome,
                    trace)
    return {
        "divergences": divergences,
        "coverage": collector.coverage,
        "activity": activity,
        "completed": completed,
        "budget_exhausted": budget_exhausted,
        "batch_counters": counters_delta(counters_before),
    }


def _shards(iters: int, jobs: int) -> list[list[int]]:
    """Contiguous index shards; deterministic for any job count."""
    jobs = max(1, min(jobs, iters)) if iters else 1
    bounds = [round(i * iters / jobs) for i in range(jobs + 1)]
    return [list(range(bounds[i], bounds[i + 1])) for i in range(jobs)]


# ---------------------------------------------------------------------------
# The run
# ---------------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Outcome of one fuzz run (see ``to_dict`` for the artifact form)."""

    config: FuzzConfig
    iterations: int = 0
    divergences: list[dict] = field(default_factory=list)
    minimized: list[dict] = field(default_factory=list)
    coverage: ControllerCoverage = field(
        default_factory=ControllerCoverage
    )
    activity: dict[str, int] = field(default_factory=dict)
    budget_exhausted: bool = False
    wall_seconds: float = 0.0

    def to_dict(self, processor) -> dict:
        """The deterministic report artifact.

        Byte-identical for identical ``(machine, iters, seed, length,
        plant, weights)`` whatever the job count — wall-clock and worker
        layout are deliberately excluded.
        """
        config = self.config
        return {
            "kind": "fuzz-report",
            "schema": 1,
            "config": {
                "machine": config.machine,
                "iters": config.iters,
                "seed": config.seed,
                "length": config.length,
                "register_pool": config.register_pool,
                "plant": config.plant,
                "opcode_weights": config.opcode_weights,
            },
            "iterations": self.iterations,
            "n_divergences": len(self.divergences),
            "divergences": self.divergences,
            "minimized": self.minimized,
            "coverage": {
                "states": self.coverage.n_states(),
                "transitions": self.coverage.n_transitions(),
                "tertiary_value_coverage":
                    self.coverage.tertiary_value_coverage(processor),
                "ctrl_value_coverage":
                    self.coverage.ctrl_value_coverage(processor),
                "tertiary_activity": {
                    name: self.activity.get(name, 0)
                    for name in sorted(processor.controller.cti_signals)
                },
            },
        }


def run_fuzz(
    config: FuzzConfig,
    events=None,
    report_dir: str | None = None,
) -> FuzzReport:
    """Run the differential fuzzer; optionally persist reproducers.

    ``events`` is a :class:`repro.campaign.events.EventStream` (or None);
    ``report_dir`` receives one ``reproducer_NNNN.py`` pytest file per
    minimized divergence.
    """
    started = time.monotonic()
    counters_before = counters_snapshot()
    adapter = machine_adapter(config.machine)
    processor = adapter.build()
    error = (parse_error_spec(config.plant, processor.datapath)
             if config.plant else None)
    if events:
        events.emit(
            "fuzz-started", machine=config.machine, iters=config.iters,
            seed=config.seed, jobs=config.jobs,
            planted=error.describe() if error else None,
        )

    config_kwargs = {
        "machine": config.machine, "iters": config.iters,
        "seed": config.seed, "length": config.length,
        "register_pool": config.register_pool, "jobs": 1,
        "budget_seconds": config.budget_seconds, "plant": config.plant,
        "max_minimize": config.max_minimize,
        "opcode_weights": config.opcode_weights,
        "compiled": config.compiled,
        "lanes": config.lanes,
    }
    shards = _shards(config.iters, config.jobs)
    payloads = [
        (config_kwargs, shard, config.budget_seconds) for shard in shards
    ]
    if len(payloads) <= 1:
        shard_results = [_run_shard(payload) for payload in payloads]
    else:
        import multiprocessing

        with multiprocessing.Pool(len(payloads)) as pool:
            shard_results = pool.map(_run_shard, payloads)
        # Worker-process batched-kernel counters only exist in the worker;
        # fold their deltas into this process's profile counters.
        for result in shard_results:
            merge_counters(result.get("batch_counters", {}))

    report = FuzzReport(config=config)
    for result in shard_results:
        report.iterations += result["completed"]
        report.coverage.merge(result["coverage"])
        for name, count in result["activity"].items():
            report.activity[name] = report.activity.get(name, 0) + count
        report.divergences.extend(result["divergences"])
        report.budget_exhausted |= result["budget_exhausted"]
    report.divergences.sort(key=lambda d: d["index"])
    if events:
        for divergence in report.divergences:
            events.emit(
                "fuzz-divergence", index=divergence["index"],
                mismatch=divergence["mismatch"],
                planted=error.describe() if error else None,
            )

    _minimize_divergences(
        config, adapter, error, report, events, report_dir
    )
    report.wall_seconds = time.monotonic() - started
    if events:
        delta = counters_delta(counters_before)
        lane_cycles = delta["lane_cycles"]
        events.emit(
            "fuzz-finished", machine=config.machine,
            iterations=report.iterations,
            divergences=len(report.divergences),
            wall_seconds=report.wall_seconds,
            budget_exhausted=report.budget_exhausted,
            lanes=effective_lanes(config.lanes),
            batch_calls=delta["batch_calls"],
            fill_rate=(
                round(delta["active_lane_cycles"] / lane_cycles, 4)
                if lane_cycles else 1.0
            ),
        )
    return report


def _minimize_divergences(
    config, adapter, error, report, events, report_dir
) -> None:
    """Shrink the first ``max_minimize`` diverging cases and persist them."""
    if not report.divergences or config.max_minimize <= 0:
        return
    generator = adapter.generator(config)
    processor = adapter.build()

    def diverges(program: list, init_regs: list[int]) -> bool:
        if not program:
            return False
        spec_outcome = adapter.spec_outcome(program, init_regs)
        impl_outcome, _ = adapter.impl_outcome(
            processor, program, init_regs, error, compiled=config.compiled
        )
        return first_mismatch(spec_outcome, impl_outcome) is not None

    if report_dir:
        os.makedirs(report_dir, exist_ok=True)
    for divergence in report.divergences[: config.max_minimize]:
        index = divergence["index"]
        program = generator.program(index)
        init_regs = generator.initial_registers(index)
        minimized = minimize_case(program, init_regs, diverges)
        provenance = (f"machine {config.machine}, seed {config.seed}, "
                      f"iteration {index}")
        case_text = emit_pytest_case(
            config.machine, minimized.program, minimized.init_regs,
            error=error, provenance=provenance,
        )
        path = None
        if report_dir:
            path = os.path.join(report_dir, f"reproducer_{index:04d}.py")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(case_text)
        report.minimized.append({
            "index": index,
            "n_instructions": len(minimized.program),
            "program": [str(i) for i in minimized.program],
            "init_regs": minimized.init_regs,
            "predicate_calls": minimized.predicate_calls,
            "reproducer_file": (
                os.path.basename(path) if path else None
            ),
            "pytest_case": case_text,
        })
        if events:
            events.emit(
                "fuzz-minimized", index=index,
                original_length=minimized.original_length,
                minimized_length=len(minimized.program),
                path=path,
            )
