"""Automatic failing-sequence minimization (delta debugging).

A diverging fuzz case is rarely a good bug report: the biased-random
generator produces 10-30 instruction programs of which usually one or two
matter.  This module shrinks any diverging ``(program, init_regs)`` pair to
a locally-minimal reproducer with the classic two-phase recipe:

1. **ddmin over instructions** — Zeller/Hildebrandt delta debugging on the
   instruction list: try ever-finer subsets and complements, keeping any
   reduction that still satisfies the divergence predicate, until removing
   any single remaining instruction loses the divergence (1-minimality).
2. **operand-field reduction** — for every surviving instruction, try to
   zero each operand field (register specifiers, immediate) one at a time;
   then try to zero each bound initial register.  Every candidate change is
   re-validated against the predicate, so the result is always a genuine
   reproducer.

The predicate is an arbitrary callable ``predicate(program) -> bool`` that
must hold on the input program; the minimizer never assumes monotonicity —
a non-monotone predicate merely means the result is locally rather than
globally minimal (the delta-debugging guarantee).

The final reproducer can be rendered as a ready-to-paste pytest case with
:func:`emit_pytest_case`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import BusOrderError, BusSSLError, ModuleSubstitutionError

#: Operand fields the field-reduction phase tries to zero, in order.
_OPERAND_FIELDS = ("rs", "rt", "rd", "rs1", "rs2", "imm")


def ddmin(items: Sequence, predicate: Callable[[list], bool]) -> list:
    """Minimize ``items`` to a 1-minimal sublist still satisfying
    ``predicate`` (classic ddmin).

    ``predicate(list(items))`` must be true; the returned list is a
    subsequence of ``items`` on which the predicate holds and from which no
    single element can be removed without losing it.
    """
    items = list(items)
    if not predicate(items):
        raise ValueError("predicate does not hold on the full input")
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        subsets = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        # Try each subset alone, then each complement.
        for i, subset in enumerate(subsets):
            if predicate(subset):
                items = subset
                n = 2
                reduced = True
                break
            complement = [
                item for j, s in enumerate(subsets) if j != i for item in s
            ]
            if complement and predicate(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(n * 2, len(items))
    return items


def reduce_operand_fields(
    program: Sequence, predicate: Callable[[list], bool]
) -> list:
    """Zero every operand field that is not needed to keep the predicate.

    Works on any frozen-dataclass instruction type (MiniPipe and DLX both
    qualify): each of the fields in ``_OPERAND_FIELDS`` that the type
    defines is tried at 0, one instruction at a time, keeping changes that
    preserve the predicate.
    """
    program = list(program)
    for index in range(len(program)):
        for name in _OPERAND_FIELDS:
            instruction = program[index]
            if not hasattr(instruction, name):
                continue
            if getattr(instruction, name) == 0:
                continue
            candidate = list(program)
            try:
                candidate[index] = dataclasses.replace(
                    instruction, **{name: 0}
                )
            except ValueError:  # field constraints (should not happen at 0)
                continue
            if predicate(candidate):
                program = candidate
    return program


def reduce_init_regs(
    init_regs: Sequence[int],
    predicate: Callable[[list], bool],
) -> list[int]:
    """Zero every initial register value the predicate does not need.

    ``predicate`` here takes the *register list* (the program is fixed by
    the caller's closure).
    """
    regs = list(init_regs)
    for index in range(len(regs)):
        if regs[index] == 0:
            continue
        candidate = list(regs)
        candidate[index] = 0
        if predicate(candidate):
            regs = candidate
    return regs


@dataclass
class MinimizedCase:
    """A locally-minimal reproducer."""

    program: list
    init_regs: list[int]
    original_length: int
    predicate_calls: int


def minimize_case(
    program: Sequence,
    init_regs: Sequence[int],
    diverges: Callable[[list, list[int]], bool],
) -> MinimizedCase:
    """Run the full two-phase minimization.

    ``diverges(program, init_regs)`` is the divergence oracle; it must hold
    on the input pair.
    """
    calls = 0

    def counted(prog: list, regs: list[int]) -> bool:
        nonlocal calls
        calls += 1
        return diverges(prog, regs)

    regs = list(init_regs)
    reduced = ddmin(list(program), lambda p: counted(p, regs))
    reduced = reduce_operand_fields(reduced, lambda p: counted(p, regs))
    regs = reduce_init_regs(regs, lambda r: counted(reduced, r))
    return MinimizedCase(
        program=reduced,
        init_regs=regs,
        original_length=len(program),
        predicate_calls=calls,
    )


# ---------------------------------------------------------------------------
# Error specs: a stable one-line form for CLI flags and reports
# ---------------------------------------------------------------------------
def error_to_spec(error) -> str:
    """Serialize an error model as a ``class:...`` spec string."""
    if isinstance(error, BusSSLError):
        return f"bus-ssl:{error.net}:{error.bit}:{error.stuck}"
    if isinstance(error, ModuleSubstitutionError):
        return f"mse:{error.module}:{error.module_type}"
    if isinstance(error, BusOrderError):
        return f"boe:{error.module}"
    raise ValueError(f"unsupported error type {type(error).__name__}")


def parse_error_spec(spec: str, netlist=None):
    """Parse a ``class:...`` spec string back into an error model.

    ``mse:MODULE`` (without an explicit type) needs ``netlist`` to resolve
    the module's type name.
    """
    parts = spec.split(":")
    kind = parts[0]
    if kind == "bus-ssl":
        if len(parts) != 4:
            raise ValueError(f"bad bus-ssl spec {spec!r} "
                             "(want bus-ssl:NET:BIT:STUCK)")
        return BusSSLError(parts[1], int(parts[2]), int(parts[3]))
    if kind == "mse":
        if len(parts) == 3:
            return ModuleSubstitutionError(parts[1], parts[2])
        if len(parts) == 2:
            if netlist is None:
                raise ValueError("mse:MODULE needs a netlist to infer the "
                                 "module type (or use mse:MODULE:TYPE)")
            module = netlist.module(parts[1])
            return ModuleSubstitutionError(parts[1], type(module).__name__)
        raise ValueError(f"bad mse spec {spec!r} (want mse:MODULE[:TYPE])")
    if kind == "boe":
        if len(parts) != 2:
            raise ValueError(f"bad boe spec {spec!r} (want boe:MODULE)")
        return BusOrderError(parts[1])
    raise ValueError(f"unknown error class {kind!r} in {spec!r}")


def _error_constructor_source(error) -> str:
    if isinstance(error, BusSSLError):
        return f"BusSSLError({error.net!r}, {error.bit}, {error.stuck})"
    if isinstance(error, ModuleSubstitutionError):
        return (f"ModuleSubstitutionError({error.module!r}, "
                f"{error.module_type!r})")
    if isinstance(error, BusOrderError):
        return f"BusOrderError({error.module!r})"
    raise ValueError(f"unsupported error type {type(error).__name__}")


def _machine_imports(family: str, with_error: bool) -> str:
    if family == "mini":
        spec_names = "detects" if with_error else "MiniEnv, MiniSpec"
        return (
            "from repro.mini import build_minipipe\n"
            "from repro.mini.isa import Instruction\n"
            f"from repro.mini.spec import {spec_names}"
        )
    env_names = "detects" if with_error else "DlxEnv"
    lines = [
        "from repro.dlx import build_dlx",
        f"from repro.dlx.env import {env_names}",
        "from repro.dlx.isa import Instruction",
    ]
    if not with_error:
        lines.append("from repro.dlx.spec import DlxSpec")
    return "\n".join(lines)

_MACHINE_BUILDERS = {
    "mini": "build_minipipe()",
    "dlx": "build_dlx()",
    "dlx_bp": "build_dlx(branch_prediction=True)",
}


def _instruction_source(instruction) -> str:
    args = [repr(instruction.op)]
    for name in _OPERAND_FIELDS:
        if hasattr(instruction, name) and getattr(instruction, name) != 0:
            args.append(f"{name}={getattr(instruction, name)}")
    return f"Instruction({', '.join(args)})"


def emit_pytest_case(
    machine: str,
    program: Sequence,
    init_regs: Sequence[int],
    error=None,
    provenance: str = "",
) -> str:
    """Render a minimized case as a standalone, ready-to-paste pytest file.

    With ``error`` the test asserts the planted error is *detected* (a
    conformance regression test); without it the test asserts spec ==
    implementation (a fault-free oracle bug reproducer — the assertion
    documents the expected behaviour and fails while the bug exists).
    """
    if machine not in _MACHINE_BUILDERS:
        raise ValueError(f"unknown machine {machine!r}")
    family = "mini" if machine == "mini" else "dlx"
    build = _MACHINE_BUILDERS[machine]
    lines = [
        '"""Auto-generated by repro.fuzz — minimized failing sequence.',
        "",
        f"machine: {machine}",
    ]
    if error is not None:
        lines.append(f"error:   {error.describe()} "
                     f"(spec {error_to_spec(error)})")
    if provenance:
        lines.append(f"origin:  {provenance}")
    lines += ['"""', ""]
    lines.append(_machine_imports(family, error is not None))
    if error is not None:
        lines.append(
            f"from repro.errors import {type(error).__name__}"
        )
    lines += ["", ""]
    lines.append("def test_fuzz_reproducer():")
    lines.append("    program = [")
    for instruction in program:
        lines.append(f"        {_instruction_source(instruction)},")
    lines.append("    ]")
    lines.append(f"    init_regs = {list(init_regs)!r}")
    if error is not None:
        lines.append(f"    error = {_error_constructor_source(error)}")
        lines.append(f"    assert detects({build}, program, error, "
                     "init_regs)")
    elif family == "mini":
        lines.append("    spec = MiniSpec().run(program, init_regs)")
        lines.append(f"    impl = MiniEnv({build}).run(program, init_regs)")
        lines.append("    assert impl.writes == spec.writes")
        lines.append("    assert impl.registers == spec.registers")
    else:
        lines.append("    spec = DlxSpec().run(program, init_regs)")
        lines.append(f"    impl = DlxEnv({build}).run(program, init_regs)")
        lines.append("    assert impl.events == spec.events")
        lines.append("    assert impl.registers == spec.registers")
    return "\n".join(lines) + "\n"
