"""Error-model conformance matrix: per-error detectability classification.

Mixed-level fault-redundancy studies separate a demo from a trustworthy
verification system by classifying *every* modelled fault, not just the
ones a campaign happened to exercise.  This runner injects every enumerated
error model (bus SSL, module substitution, bus order — ``repro.errors``)
into a machine and classifies each instance:

``proven_benign``
    The error site cannot structurally influence any observable net: no
    path from the site, through module data/control inputs and register
    D→Q crossings, reaches a data primary output (DPO) or a status (STS)
    net feeding the controller.  No test can ever detect it — proved, not
    sampled.
``detected``
    Some biased-random program within the budget distinguishes the
    erroneous implementation from the ISA specification (the Table-1
    criterion, via the machine's ``detects``).
``undetected_by_budget``
    Neither of the above: the budget (a fixed, seeded program list — so
    the classification is deterministic and diffable) ran out first.

The resulting matrix is a JSON artifact with a stable schema, meant to be
committed/uploaded and diffed across PRs: :func:`compare_matrices` flags
every error that regressed from ``detected``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.random_gen import (
    RandomDlxGenerator,
    RandomMiniGenerator,
    RandomProgramConfig,
)
from repro.datapath.batched import (
    counters_delta,
    counters_snapshot,
    effective_lanes,
)
from repro.errors import enumerate_boe, enumerate_bus_ssl, enumerate_mse
from repro.fuzz.minimize import error_to_spec

#: Error classes in enumeration order.
ERROR_CLASSES = ("bus-ssl", "mse", "boe")


@dataclass(frozen=True)
class MatrixConfig:
    """Knobs for one machine's conformance-matrix run."""

    machine: str = "mini"
    #: Detection budget: number of seeded random programs per error.
    programs: int = 16
    length: int = 12
    seed: int = 1
    #: Keep every Nth enumerated error (1 = all).
    sample: int = 1
    classes: tuple = ERROR_CLASSES
    #: Cap on bits enumerated per bus for SSL (None = every bit); the DLX
    #: campaign default is 4 to keep wide-bus counts manageable.
    max_bits_per_net: int | None = None
    #: Classify via the cone-forking batch fault simulator (one golden run
    #: per program, all surviving errors forked against it).  ``False``
    #: runs one full co-simulation per (error, program) pair; the
    #: classifications are identical either way (execution strategy, not a
    #: result knob — deliberately absent from the artifact's config).
    batch: bool = True
    #: Lane width for producing the golden runs on the batched numpy
    #: kernels (``None`` = auto, 0 = scalar).  Execution strategy like
    #: ``batch`` — the artifact is byte-identical at any width and its
    #: config excludes it.
    lanes: int | None = None


def reaches_observable(netlist, site_net: str) -> bool:
    """True unless ``site_net`` provably cannot influence any DPO/STS net.

    Structural forward reachability: a net influences every module it
    feeds (through data *or* control inputs) and registers forward values
    across cycles.  STS nets count as observable because they feed the
    controller, whose decisions reach the datapath — only a site with no
    path to either kind of net is provably benign.
    """
    from repro.datapath.net import NetRole

    seen: set[str] = set()
    stack = [site_net]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        net = netlist.nets[name]
        if net.role in (NetRole.DPO, NetRole.STS):
            return True
        for port in net.sinks:
            for out in port.module.outputs:
                if out.net is not None and out.net.name not in seen:
                    stack.append(out.net.name)
    return False


def _enumerate(processor, config: MatrixConfig) -> list[tuple[str, object]]:
    netlist = processor.datapath
    errors: list[tuple[str, object]] = []
    if "bus-ssl" in config.classes:
        errors += [
            ("bus-ssl", e)
            for e in enumerate_bus_ssl(
                netlist, max_bits_per_net=config.max_bits_per_net
            )
        ]
    if "mse" in config.classes:
        errors += [("mse", e) for e in enumerate_mse(netlist)]
    if "boe" in config.classes:
        errors += [("boe", e) for e in enumerate_boe(netlist)]
    if config.sample > 1:
        errors = errors[:: config.sample]
    return errors


def _machine_harness(config: MatrixConfig):
    """(processor, detects_fn, batch_detects_fn, generator) for the machine."""
    generator_config = RandomProgramConfig(
        length=config.length, seed=config.seed
    )
    if config.machine == "mini":
        from repro.mini import build_minipipe, detects
        from repro.mini.spec import batch_detects

        return (build_minipipe(), detects, batch_detects,
                RandomMiniGenerator(generator_config))
    if config.machine in ("dlx", "dlx_bp"):
        from repro.dlx import build_dlx, detects
        from repro.dlx.env import batch_detects

        return (build_dlx(branch_prediction=config.machine == "dlx_bp"),
                detects, batch_detects, RandomDlxGenerator(generator_config))
    raise ValueError(f"unknown machine {config.machine!r}")


def _batch_env_cls(machine: str):
    if machine == "mini":
        from repro.mini.lanes import BatchMiniEnv

        return BatchMiniEnv
    from repro.dlx.lanes import BatchDlxEnv

    return BatchDlxEnv


def _site_net(error, netlist) -> str:
    try:
        return error.site_net
    except AttributeError:
        return error.site_net_in(netlist)


def run_matrix(config: MatrixConfig, events=None) -> dict:
    """Classify every enumerated error on one machine.

    Returns the per-machine matrix fragment (see module docstring); the
    CLI merges fragments from several machines into one artifact.
    """
    started = time.monotonic()
    counters_before = counters_snapshot()
    processor, detects, batch_detects, generator = _machine_harness(config)
    errors = _enumerate(processor, config)
    if events:
        events.emit(
            "matrix-started", machine=config.machine,
            n_errors=len(errors), programs=config.programs,
        )
    # The program list is shared across errors (and is the budget).
    programs = [
        (generator.program(i), generator.initial_registers(i))
        for i in range(config.programs)
    ]
    rows = []
    pending: list[tuple[int, object]] = []  # (row index, error) to simulate
    for class_name, error in errors:
        row = {
            "error": error.describe(),
            "spec": error_to_spec(error),
            "class": class_name,
        }
        if not reaches_observable(
            processor.datapath, _site_net(error, processor.datapath)
        ):
            row["classification"] = "proven_benign"
            row["programs_run"] = 0
            row["detected_by_program"] = None
        else:
            # Provisional: overwritten when some program detects it.
            row["classification"] = "undetected_by_budget"
            row["programs_run"] = len(programs)
            row["detected_by_program"] = None
            pending.append((len(rows), error))
        rows.append(row)
    if config.batch:
        # Programs outer, surviving errors batched per program: one golden
        # environment run per program, every pending error cone-forked
        # against it.  Same classifications, ``programs_run`` and
        # ``detected_by_program`` as the serial nesting (an error's budget
        # consumption never depends on the other errors).
        #
        # With lanes, the golden runs themselves are produced on the
        # batched numpy kernels, a lane-sized chunk of programs at a time —
        # lazily, so early detection of every pending error still skips
        # the untouched tail of the budget entirely.
        n_lanes = effective_lanes(config.lanes)
        goldens: dict[int, tuple] = {}

        def golden_for(i: int) -> tuple:
            if i not in goldens:
                chunk = range(i, min(i + n_lanes, len(programs)))
                env = _batch_env_cls(config.machine)(processor, len(chunk))
                runs = env.run(
                    [programs[j][0] for j in chunk],
                    [programs[j][1] for j in chunk],
                    record="dense",
                )
                for j, run in zip(chunk, runs):
                    if run.failure is not None:
                        from repro.verify.cosim import CosimError

                        raise CosimError(run.failure)
                    goldens[j] = (run.result, run.trace, run.dense_cycles)
            return goldens.pop(i)

        for i, (program, init_regs) in enumerate(programs):
            if not pending:
                break
            verdicts = batch_detects(
                processor, program, [e for _, e in pending], init_regs,
                golden=golden_for(i) if n_lanes else None,
            )
            survivors = []
            for (index, error), hit in zip(pending, verdicts):
                if hit:
                    rows[index]["classification"] = "detected"
                    rows[index]["programs_run"] = i + 1
                    rows[index]["detected_by_program"] = i
                else:
                    survivors.append((index, error))
            pending = survivors
    else:
        for index, error in pending:
            for i, (program, init_regs) in enumerate(programs):
                if detects(processor, program, error, init_regs):
                    rows[index]["classification"] = "detected"
                    rows[index]["programs_run"] = i + 1
                    rows[index]["detected_by_program"] = i
                    break
    counts: dict[str, dict[str, int]] = {}
    for row in rows:
        summary = counts.setdefault(
            row["class"],
            {"total": 0, "detected": 0, "undetected_by_budget": 0,
             "proven_benign": 0},
        )
        summary["total"] += 1
        summary[row["classification"]] += 1
        if events:
            events.emit(
                "matrix-classified", machine=config.machine,
                error=row["error"],
                classification=row["classification"],
                programs_run=row["programs_run"],
            )
    totals = {
        key: sum(c[key] for c in counts.values())
        for key in ("detected", "undetected_by_budget", "proven_benign")
    }
    if events:
        delta = counters_delta(counters_before)
        lane_cycles = delta["lane_cycles"]
        events.emit(
            "matrix-finished", machine=config.machine,
            wall_seconds=time.monotonic() - started,
            lanes=effective_lanes(config.lanes),
            batch_calls=delta["batch_calls"],
            fill_rate=(
                round(delta["active_lane_cycles"] / lane_cycles, 4)
                if lane_cycles else 1.0
            ),
            **totals,
        )
    return {
        "config": {
            "programs": config.programs,
            "length": config.length,
            "seed": config.seed,
            "sample": config.sample,
            "classes": list(config.classes),
            "max_bits_per_net": config.max_bits_per_net,
        },
        "summary": {name: counts[name] for name in sorted(counts)},
        "errors": rows,
    }


def matrix_artifact(fragments: dict[str, dict]) -> dict:
    """Wrap per-machine fragments into the versioned artifact."""
    return {
        "kind": "conformance-matrix",
        "schema": 1,
        "machines": {name: fragments[name] for name in sorted(fragments)},
    }


def compare_matrices(baseline: dict, current: dict) -> list[str]:
    """Regressions from a baseline artifact: every error that was
    ``detected`` before and is not any more (or disappeared).

    Improvements (newly detected errors, new error instances) are not
    flagged — the gate is one-directional by design, so enumerating more
    errors can never fail the check.
    """
    regressions: list[str] = []
    for machine, fragment in baseline.get("machines", {}).items():
        current_fragment = current.get("machines", {}).get(machine)
        if current_fragment is None:
            regressions.append(f"{machine}: machine missing from current "
                               "matrix")
            continue
        current_rows = {
            row["spec"]: row for row in current_fragment["errors"]
        }
        for row in fragment["errors"]:
            if row["classification"] != "detected":
                continue
            now = current_rows.get(row["spec"])
            if now is None:
                regressions.append(
                    f"{machine}: {row['error']} no longer enumerated"
                )
            elif now["classification"] != "detected":
                regressions.append(
                    f"{machine}: {row['error']} regressed detected -> "
                    f"{now['classification']}"
                )
    return regressions
