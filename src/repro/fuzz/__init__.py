"""Differential fuzzing & conformance harness for the cosim oracle.

Three adversaries for the specification-vs-implementation oracle the whole
reproduction rests on:

* :mod:`repro.fuzz.harness` — seeded differential fuzzing of spec vs
  pipelined implementation on MiniPipe and DLX, with coverage counters;
* :mod:`repro.fuzz.conformance` — a per-error detectability matrix
  (detected / undetected-by-budget / proven-benign), diffable across PRs;
* :mod:`repro.fuzz.minimize` — ddmin-based shrinking of any failing
  sequence to a locally-minimal pytest reproducer.

See ``docs/FUZZING.md`` and ``python -m repro fuzz --help``.
"""

from repro.fuzz.conformance import (
    ERROR_CLASSES,
    MatrixConfig,
    compare_matrices,
    matrix_artifact,
    reaches_observable,
    run_matrix,
)
from repro.fuzz.harness import (
    MACHINES,
    FuzzConfig,
    FuzzReport,
    first_mismatch,
    machine_adapter,
    run_fuzz,
)
from repro.fuzz.minimize import (
    MinimizedCase,
    ddmin,
    emit_pytest_case,
    error_to_spec,
    minimize_case,
    parse_error_spec,
    reduce_init_regs,
    reduce_operand_fields,
)

__all__ = [
    "ERROR_CLASSES",
    "FuzzConfig",
    "FuzzReport",
    "MACHINES",
    "MatrixConfig",
    "MinimizedCase",
    "compare_matrices",
    "ddmin",
    "emit_pytest_case",
    "error_to_spec",
    "first_mismatch",
    "machine_adapter",
    "matrix_artifact",
    "minimize_case",
    "parse_error_spec",
    "reaches_observable",
    "reduce_init_regs",
    "reduce_operand_fields",
    "run_fuzz",
    "run_matrix",
]
