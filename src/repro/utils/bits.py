"""Bit- and word-level arithmetic helpers.

All datapath values in this library are plain Python integers interpreted as
unsigned words of a given bit-width.  These helpers centralize the masking and
two's-complement conversions so the module library stays readable.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return the all-ones mask for ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


def to_unsigned(value: int, width: int) -> int:
    """Reduce ``value`` (any int) to its unsigned ``width``-bit representation."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value = to_unsigned(value, width)
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend a ``from_width``-bit value to ``to_width`` bits (unsigned repr)."""
    if to_width < from_width:
        raise ValueError(f"cannot sign-extend {from_width} bits to {to_width}")
    return to_unsigned(to_signed(value, from_width), to_width)


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (LSB = 0) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits_of(value: int, width: int) -> list[int]:
    """Return the ``width`` bits of ``value``, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: list[int]) -> int:
    """Assemble an integer from bits given LSB first."""
    out = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit {i} is {b!r}, expected 0 or 1")
        out |= b << i
    return out


def add_overflows(a: int, b: int, width: int) -> bool:
    """True when signed ``width``-bit addition of a and b overflows."""
    sa = to_signed(a, width)
    sb = to_signed(b, width)
    total = sa + sb
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return total < lo or total > hi


def sub_overflows(a: int, b: int, width: int) -> bool:
    """True when signed ``width``-bit subtraction a - b overflows."""
    sa = to_signed(a, width)
    sb = to_signed(b, width)
    total = sa - sb
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return total < lo or total > hi


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount expects a non-negative integer")
    return bin(value).count("1")
