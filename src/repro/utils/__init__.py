"""Low-level utilities shared by the datapath and controller substrates."""

from repro.utils.bits import (
    mask,
    to_signed,
    to_unsigned,
    sign_extend,
    bit,
    bits_of,
    from_bits,
    add_overflows,
    sub_overflows,
    popcount,
)

__all__ = [
    "mask",
    "to_signed",
    "to_unsigned",
    "sign_extend",
    "bit",
    "bits_of",
    "from_bits",
    "add_overflows",
    "sub_overflows",
    "popcount",
]
