"""Synthetic design-error models (Section VI; error classes from [28]).

The primary model — the one Table 1 evaluates — is the **bus single-stuck-
line (bus SSL)** error [7]: one bit of one word-level bus permanently stuck
at 0 or 1.  It defines a number of error instances linear in circuit size.

As extensions we implement two more classes from the error-model study the
paper builds on (Van Campenhout et al. [28]):

* **module substitution error (MSE)** — a module computes a related but
  wrong function (e.g. an adder built as a subtractor);
* **bus order error (BOE)** — the two data inputs of a module are swapped.

Every error knows how to plant itself in a :class:`DatapathSimulator`
(injector or module override) and where its effect originates (``site_net``),
which is what DPTRACE needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dprelax import ActivationConstraint
from repro.datapath.module import ModuleClass
from repro.datapath.netlist import Netlist
from repro.datapath.simulate import DatapathSimulator


class DesignError:
    """Base interface for a synthetic design error."""

    @property
    def site_net(self) -> str:
        """The net on which the erroneous value first appears."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def attach(self, netlist: Netlist) -> DatapathSimulator:
        """A simulator of ``netlist`` with this error planted."""
        raise NotImplementedError

    def activation_constraint(self, frame: int) -> ActivationConstraint | None:
        """Bit constraint on the fault-free site value that activates the
        error, or ``None`` when activation is value-shape dependent."""
        return None


@dataclass(frozen=True)
class BusSSLError(DesignError):
    """Bit ``bit`` of net ``net`` stuck at ``stuck`` (0 or 1)."""

    net: str
    bit: int
    stuck: int

    def __post_init__(self) -> None:
        if self.stuck not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.stuck}")
        if self.bit < 0:
            raise ValueError(f"negative bit index {self.bit}")

    @property
    def site_net(self) -> str:
        return self.net

    def describe(self) -> str:
        return f"bus-ssl {self.net}[{self.bit}] stuck-at-{self.stuck}"

    def corrupt(self, value: int) -> int:
        if self.stuck == 1:
            return value | (1 << self.bit)
        return value & ~(1 << self.bit)

    def injector(self):
        def inject(net_name: str, value: int) -> int:
            if net_name == self.net:
                return self.corrupt(value)
            return value

        # Site annotation: compiled kernels hook only these nets instead of
        # wrapping every net emission (repro.datapath.compiled).
        inject.sites = (self.net,)
        return inject

    def attach(self, netlist: Netlist) -> DatapathSimulator:
        if self.net not in netlist.nets:
            raise ValueError(f"error net {self.net!r} not in netlist")
        if self.bit >= netlist.net(self.net).width:
            raise ValueError(
                f"bit {self.bit} outside width of net {self.net!r}"
            )
        return DatapathSimulator(netlist, injector=self.injector())

    def activation_constraint(self, frame: int) -> ActivationConstraint:
        # The fault-free value must carry the opposite bit.
        mask = 1 << self.bit
        value = 0 if self.stuck == 1 else mask
        return ActivationConstraint(frame, self.net, mask, value)


#: MSE substitution table: module type name -> wrong evaluate lambda factory.
_MSE_SUBSTITUTIONS = {
    "AddModule": lambda m: lambda ins, ctl: (ins[0] - ins[1]) & ((1 << m.width) - 1),
    "SubModule": lambda m: lambda ins, ctl: (ins[0] + ins[1]) & ((1 << m.width) - 1),
    "AndModule": lambda m: lambda ins, ctl: ins[0] | ins[1],
    "OrModule": lambda m: lambda ins, ctl: ins[0] & ins[1],
    "XorModule": lambda m: lambda ins, ctl: (~(ins[0] ^ ins[1])) & ((1 << m.width) - 1),
    "XnorModule": lambda m: lambda ins, ctl: (ins[0] ^ ins[1]) & ((1 << m.width) - 1),
}


@dataclass(frozen=True)
class ModuleSubstitutionError(DesignError):
    """Module ``module`` computes its substituted (wrong) function."""

    module: str
    module_type: str

    @property
    def site_net(self) -> str:
        # Filled by enumerate_mse; attach() resolves it from the netlist.
        raise AttributeError("use site_net_in(netlist)")

    def site_net_in(self, netlist: Netlist) -> str:
        return netlist.module(self.module).output.net.name

    def describe(self) -> str:
        return f"mse {self.module} ({self.module_type} substituted)"

    def attach(self, netlist: Netlist) -> DatapathSimulator:
        module = netlist.module(self.module)
        factory = _MSE_SUBSTITUTIONS.get(self.module_type)
        if factory is None:
            raise ValueError(f"no substitution for {self.module_type}")
        return DatapathSimulator(
            netlist, module_overrides={self.module: factory(module)}
        )


@dataclass(frozen=True)
class BusOrderError(DesignError):
    """The first two data inputs of ``module`` are swapped."""

    module: str

    def site_net_in(self, netlist: Netlist) -> str:
        return netlist.module(self.module).output.net.name

    @property
    def site_net(self) -> str:
        raise AttributeError("use site_net_in(netlist)")

    def describe(self) -> str:
        return f"boe {self.module} (inputs swapped)"

    def attach(self, netlist: Netlist) -> DatapathSimulator:
        module = netlist.module(self.module)
        if len(module.data_inputs) < 2:
            raise ValueError(f"{self.module} has fewer than two data inputs")

        def swapped(ins, ctl):
            reordered = [ins[1], ins[0], *ins[2:]]
            return module.evaluate(reordered, ctl)

        return DatapathSimulator(netlist, module_overrides={self.module: swapped})


# ---------------------------------------------------------------------------
# Enumeration
# ---------------------------------------------------------------------------
def enumerate_bus_ssl(
    netlist: Netlist,
    stages: set[int] | None = None,
    max_bits_per_net: int | None = None,
) -> list[BusSSLError]:
    """All bus SSL errors on module-driven nets, optionally stage-filtered.

    ``max_bits_per_net`` caps the bits considered per net (lowest bits plus
    the MSB), keeping campaign sizes manageable on wide buses while still
    covering both boundary bits; ``None`` enumerates every bit, exactly as
    the model defines.
    """
    errors: list[BusSSLError] = []
    for net in netlist.nets.values():
        if net.driver is None:
            continue  # external inputs are stimulus, not design structure
        if net.driver.module.module_class is ModuleClass.SOURCE:
            continue  # a stuck constant is not a wiring error
        if stages is not None and net.stage not in stages:
            continue
        bits = range(net.width)
        if max_bits_per_net is not None and net.width > max_bits_per_net:
            low = list(range(max_bits_per_net - 1))
            bits = low + [net.width - 1]
        for bit in bits:
            errors.append(BusSSLError(net.name, bit, 0))
            errors.append(BusSSLError(net.name, bit, 1))
    return errors


def enumerate_mse(
    netlist: Netlist, stages: set[int] | None = None
) -> list[ModuleSubstitutionError]:
    """All module substitution errors supported by the substitution table."""
    errors = []
    for module in netlist.combinational_modules:
        type_name = type(module).__name__
        if type_name not in _MSE_SUBSTITUTIONS:
            continue
        if stages is not None and module.stage not in stages:
            continue
        errors.append(ModuleSubstitutionError(module.name, type_name))
    return errors


def enumerate_boe(
    netlist: Netlist, stages: set[int] | None = None
) -> list[BusOrderError]:
    """Bus order errors on modules where input order matters."""
    errors = []
    symmetric = {"AddModule", "AndModule", "OrModule", "XorModule",
                 "XnorModule", "NandModule", "NorModule", "EqModule",
                 "NeModule"}
    for module in netlist.combinational_modules:
        if len(module.data_inputs) < 2:
            continue
        if type(module).__name__ in symmetric:
            continue  # swapping is unobservable on symmetric functions
        if stages is not None and module.stage not in stages:
            continue
        errors.append(BusOrderError(module.name))
    return errors


def enumerate_ctrl_ssl(
    netlist: Netlist, stages: set[int] | None = None
) -> list[BusSSLError]:
    """Bus SSL errors on the CONTROL nets entering the datapath.

    These model wiring defects on the controller-to-datapath interface
    (a stuck mux select, a stuck write-enable).  They are outside the
    paper's datapath-error scope — DPTRACE treats CTRL values as given —
    but fully simulatable: the co-simulators inject on CTRL nets like on
    any other, so random/regression campaigns can measure them (see
    ``benchmarks/test_bench_control_errors.py``).
    """
    from repro.datapath.net import NetRole

    errors: list[BusSSLError] = []
    for net in netlist.nets.values():
        if net.role is not NetRole.CTRL:
            continue
        if stages is not None and net.stage not in stages:
            continue
        for bit in range(net.width):
            errors.append(BusSSLError(net.name, bit, 0))
            errors.append(BusSSLError(net.name, bit, 1))
    return errors
