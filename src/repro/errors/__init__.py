"""Synthetic design-error models and enumeration (Section VI / [28])."""

from repro.errors.models import (
    BusOrderError,
    BusSSLError,
    DesignError,
    ModuleSubstitutionError,
    enumerate_boe,
    enumerate_bus_ssl,
    enumerate_ctrl_ssl,
    enumerate_mse,
)

__all__ = [
    "BusOrderError",
    "BusSSLError",
    "DesignError",
    "ModuleSubstitutionError",
    "enumerate_boe",
    "enumerate_bus_ssl",
    "enumerate_ctrl_ssl",
    "enumerate_mse",
]
