"""Realize a TG test case as a MiniPipe instruction program.

TG produces stimulus at the model boundary: per-cycle CPI fields (opcode and
register specifiers), per-cycle DPI values (raw register-file read data and
immediates), and the set of CPI fields the search actually decided.  A
*program* must reproduce that stimulus through the architecture, which has
pipeline timing:

* the raw RF read of instruction t sees writes from instructions <= t-2
  (write-through register file, committed in write-back);
* a write by instruction t-1 reaches instruction t through the bypass, so
  when the previous instruction writes the register being read, the raw read
  value is a don't-care (the pipeline discards it).

Register specifiers not in ``TestCase.decided_cpi`` are free: the realizer
allocates them so that every *used* raw read delivers the value relaxation
chose, binding initial register contents along the way.  When no consistent
allocation exists, realization raises and the error is counted as aborted —
the kind of incompleteness behind the paper's 85% detection rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tg import TestCase
from repro.mini.isa import (
    IMM_OPS,
    MNEMONICS,
    N_REGS,
    WIDTH,
    Instruction,
)
from repro.utils.bits import to_unsigned


@dataclass
class RealizedTest:
    """An instruction program plus initial register contents."""

    program: list[Instruction]
    init_regs: list[int]


class RealizationError(Exception):
    """The stimulus cannot be produced through the architecture."""


@dataclass
class _RegFile:
    """Symbolic register file with pipeline-accurate read timing."""

    writes: dict[int, list[tuple[int, int]]] = field(
        default_factory=lambda: {r: [] for r in range(N_REGS)}
    )
    init: dict[int, int] = field(default_factory=dict)

    def _latest_write(self, reg: int, before: int) -> int | None:
        """Value of the last write to ``reg`` by an instruction < before."""
        candidates = [v for f, v in self.writes[reg] if f < before]
        return candidates[-1] if candidates else None

    def raw_value(self, reg: int, frame: int) -> int | None:
        """What the RF read port delivers to instruction ``frame``.

        None means 'unbound initial value' (still free to choose).
        """
        committed = self._latest_write(reg, frame - 1)  # writers <= frame-2
        if committed is not None:
            return committed
        return self.init.get(reg)

    def bypassed_by_previous(self, reg: int, frame: int) -> int | None:
        """Value instruction frame-1 wrote to ``reg``, if any."""
        for write_frame, value in self.writes[reg]:
            if write_frame == frame - 1:
                return value
        return None

    def seen_value(self, reg: int, frame: int, want_raw: int, where: str) -> int:
        """Bind the read and return the value the pipeline actually uses."""
        bypass = self.bypassed_by_previous(reg, frame)
        if bypass is not None:
            return bypass  # raw read is discarded; no constraint
        raw = self.raw_value(reg, frame)
        if raw is None:
            self.init[reg] = want_raw
            return want_raw
        if raw != want_raw:
            raise RealizationError(
                f"{where}: r{reg} reads {raw}, needs {want_raw}"
            )
        return raw

    def can_deliver(self, reg: int, frame: int, want: int) -> bool:
        if self.bypassed_by_previous(reg, frame) is not None:
            return self.bypassed_by_previous(reg, frame) == want
        raw = self.raw_value(reg, frame)
        return raw is None or raw == want

    def pick_read(self, frame: int, want: int, fixed: int | None,
                  where: str) -> tuple[int, int]:
        """Choose (and bind) a register delivering ``want``; returns
        (register, value actually seen by the pipeline)."""
        if fixed is not None:
            return fixed, self.seen_value(fixed, frame, want, where)
        # Prefer an exact match, then an unbound register.
        for reg in range(N_REGS):
            raw = self.raw_value(reg, frame)
            if raw == want and self.bypassed_by_previous(reg, frame) is None:
                return reg, self.seen_value(reg, frame, want, where)
        for reg in range(N_REGS):
            if self.can_deliver(reg, frame, want):
                return reg, self.seen_value(reg, frame, want, where)
        raise RealizationError(f"{where}: no register can deliver {want}")

    def pick_dest(self, frame: int, fixed: int | None, value: int) -> int:
        if fixed is not None:
            self.writes[fixed].append((frame, value))
            return fixed
        # Sacrifice a register with no bound initial value if possible.
        for reg in range(N_REGS - 1, -1, -1):
            if reg not in self.init and not self.writes[reg]:
                self.writes[reg].append((frame, value))
                return reg
        reg = N_REGS - 1
        self.writes[reg].append((frame, value))
        return reg

    def init_values(self) -> list[int]:
        return [self.init.get(reg, 0) for reg in range(N_REGS)]


def realize(test: TestCase) -> RealizedTest:
    """Turn a TG test case into a program + initial register file."""
    regs = _RegFile()
    program: list[Instruction] = []
    skip = False
    for frame in range(test.n_frames):
        cpi = test.cpi_frames[frame]
        dpi = test.dpi_frames[frame]
        op = cpi.get("op", 0)
        mnemonic = MNEMONICS[op]
        imm = to_unsigned(dpi.get("imm", 0), WIDTH)
        where = f"frame {frame}"

        if skip or op == 0:
            # Squashed instructions and NOPs have don't-care operands; keep
            # the fields TG chose so the CPI stream is reproduced exactly.
            program.append(
                Instruction(
                    mnemonic,
                    rs1=cpi.get("rs1", 0),
                    rs2=cpi.get("rs2", 0),
                    rd=cpi.get("rd", 0),
                    imm=imm,
                )
            )
            skip = False
            continue

        def fixed(field_name: str) -> int | None:
            if (frame, field_name) in test.decided_cpi:
                return cpi.get(field_name)
            return None

        want_a = to_unsigned(dpi.get("rf_a", 0), WIDTH)
        rs1, seen_a = regs.pick_read(frame, want_a, fixed("rs1"), where)
        if op in IMM_OPS:
            rs2 = cpi.get("rs2", 0)
            operand = imm
        else:
            want_b = to_unsigned(dpi.get("rf_b", 0), WIDTH)
            rs2, operand = regs.pick_read(frame, want_b, fixed("rs2"), where)

        if op == 6:  # BEQ: the pipeline compares the bypassed values
            program.append(Instruction("BEQ", rs1=rs1, rs2=rs2, imm=imm))
            if seen_a == operand:
                skip = True
            continue

        if op in (1, 5):
            value = to_unsigned(seen_a + operand, WIDTH)
        elif op in (2, 7):
            value = to_unsigned(seen_a - operand, WIDTH)
        elif op == 3:
            value = seen_a & operand
        else:
            value = seen_a ^ operand
        rd = regs.pick_dest(frame, fixed("rd"), value)
        program.append(
            Instruction(mnemonic, rs1=rs1, rs2=rs2, rd=rd, imm=imm)
        )
    return RealizedTest(program=program, init_regs=regs.init_values())
