"""Lane-batched MiniPipe environment: many programs per kernel call.

:class:`BatchMiniEnv` runs a *batch* of programs on the pipelined MiniPipe
implementation in lockstep over :class:`repro.verify.lanes.
LaneProcessorSimulator`, reproducing :class:`repro.mini.spec.MiniEnv` lane
by lane: same preview, same commit rule, same stimulus, same trace — the
differential battery in ``tests/test_batched_differential.py`` holds every
lane byte-identical to a scalar run of that program alone.

Programs may have ragged lengths: a lane whose stream is exhausted keeps
stepping on NOPs (safe, unobserved) until the longest lane finishes, and
the simulator's ``active_lanes`` is lowered so the batch fill-rate counters
stay honest.  A lane whose scalar run would raise ``CosimError`` records
the failure message instead and goes dead (no further commits or trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.datapath.simulate import Injector, ModuleOverride, no_injection
from repro.mini.isa import N_REGS, NOP, WIDTH, Instruction, to_cpi
from repro.mini.spec import SpecResult
from repro.model.processor import Processor
from repro.utils.bits import to_unsigned
from repro.verify.cosim import CycleTrace, Trace
from repro.verify.lanes import LaneProcessorSimulator


@dataclass
class LaneRun:
    """Per-lane outcome of one batched run."""

    #: ISA-visible outcome; None when the lane failed mid-run.
    result: SpecResult | None
    #: Co-simulation trace of the lane (format per the ``record`` mode).
    trace: Trace
    #: Scalar ``CosimError`` message, or None for a clean run.
    failure: str | None
    #: Dense per-cycle net-value lists (``record="dense"`` only) — the
    #: golden-cycle form ``BatchFaultSimulator`` consumes.
    dense_cycles: list | None


class BatchMiniEnv:
    """Runs a batch of programs on the pipelined implementation."""

    def __init__(
        self,
        processor: Processor,
        n_lanes: int,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
    ) -> None:
        self.processor = processor
        self.sim = LaneProcessorSimulator(
            processor, n_lanes, injector=injector,
            module_overrides=module_overrides,
        )
        self.n_lanes = n_lanes
        self._out_id = self.sim.cd.index["out"]

    def run(
        self,
        programs: Sequence[Sequence[Instruction]],
        init_regs: Sequence[Sequence[int] | None] | None = None,
        drain: int = 4,
        record: str = "controller",
    ) -> list[LaneRun]:
        """Run one program per lane (lockstep); returns per-lane outcomes.

        ``record`` selects the trace format: ``"controller"`` keeps only
        controller values per cycle (what the fuzz coverage collector
        reads), ``"dense"`` additionally collects dense datapath value
        lists (golden cycles for the conformance fault simulator), and
        ``"full"`` materializes the scalar ``CycleTrace`` datapath dicts.
        """
        if len(programs) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} programs, got {len(programs)}"
            )
        if record not in ("controller", "dense", "full"):
            raise ValueError(f"unknown record mode {record!r}")
        sim = self.sim
        n = self.n_lanes
        regs = []
        for b in range(n):
            lane_init = init_regs[b] if init_regs is not None else None
            lane_regs = list(lane_init) if lane_init is not None else (
                [0] * N_REGS
            )
            regs.append([to_unsigned(r, WIDTH) for r in lane_regs])
        writes: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        traces = [Trace() for _ in range(n)]
        dense: list[list | None] = [
            [] if record == "dense" else None for _ in range(n)
        ]
        failure: list[str | None] = [None] * n
        streams = [list(p) + [NOP] * drain for p in programs]
        length = max(len(s) for s in streams) if streams else 0

        for cycle in range(length):
            active = [
                b for b in range(n)
                if cycle < len(streams[b]) and failure[b] is None
            ]
            if not active:
                break
            sim.dp.active_lanes = len(active)

            # Commit this cycle's write-back before the reads (the write
            # value depends only on pipeline state, not on today's reads).
            previews = sim.preview_shallow()
            values, known = sim.dp.values, sim.dp.known
            for b in active:
                wb_en = previews[b].get("wb_en")
                rd_wb = previews[b].get("rd_wb")
                if wb_en == 1 and rd_wb is not None and known[self._out_id][b]:
                    out = int(values[self._out_id][b])
                    regs[b][rd_wb] = out
                    writes[b].append((rd_wb, out))

            cpi_list = []
            dpi_list = []
            for b in range(n):
                instruction = (
                    streams[b][cycle] if cycle < len(streams[b]) else NOP
                )
                cpi_list.append(to_cpi(instruction))
                dpi_list.append({
                    "rf_a": regs[b][instruction.rs1],
                    "rf_b": regs[b][instruction.rs2],
                    "imm": instruction.imm,
                })
            ctl_values, failures = sim.step(cpi_list, dpi_list)
            for b in active:
                if b in failures:
                    # The scalar run raises here: no trace for this cycle,
                    # and nothing of this lane is observed from now on.
                    failure[b] = failures[b]
                    continue
                if record == "full":
                    datapath = sim.datapath_dict(b)
                else:
                    datapath = {}
                    if record == "dense":
                        dense[b].append(sim.dense_datapath(b))
                traces[b].cycles.append(
                    CycleTrace(datapath=datapath, controller=ctl_values[b])
                )
        sim.dp.active_lanes = self.n_lanes

        return [
            LaneRun(
                result=(
                    None if failure[b] is not None
                    else SpecResult(writes=writes[b], registers=regs[b])
                ),
                trace=traces[b],
                failure=failure[b],
                dense_cycles=dense[b],
            )
            for b in range(n)
        ]
