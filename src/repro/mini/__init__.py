"""MiniPipe: a small 3-stage pipelined processor (second test vehicle)."""

from repro.mini.isa import (
    ALU_OP,
    IMM_OPS,
    MNEMONICS,
    N_REGS,
    NOP,
    OPCODES,
    WIDTH,
    WRITING_OPS,
    Instruction,
    from_cpi,
    to_cpi,
)
from repro.mini.machine import (
    build_minipipe,
    build_minipipe_controller,
    build_minipipe_datapath,
)
from repro.mini.spec import MiniEnv, MiniSpec, SpecResult, detects

__all__ = [
    "ALU_OP",
    "IMM_OPS",
    "Instruction",
    "MNEMONICS",
    "MiniEnv",
    "MiniSpec",
    "N_REGS",
    "NOP",
    "OPCODES",
    "SpecResult",
    "WIDTH",
    "WRITING_OPS",
    "build_minipipe",
    "build_minipipe_controller",
    "build_minipipe_datapath",
    "detects",
    "from_cpi",
    "to_cpi",
]
