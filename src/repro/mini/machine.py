"""The MiniPipe implementation: 3-stage pipelined datapath + controller.

Pipeline structure (predict-not-taken, branch resolved in execute):

* **Stage 0 — operand fetch**: register-file read data (modelled as data
  primary inputs, i.e. test stimulus) and the immediate are captured into
  the stage-1 pipe registers.  A squash clears them.
* **Stage 1 — execute**: per-operand bypass muxes (tertiary data paths from
  write-back), ALU-src mux, the four ALU function units with a result mux,
  and the branch comparator producing the ``eq`` status bit.
* **Stage 2 — write-back**: the result register drives the bypass bus and
  the observable ``out`` port, gated by ``wb_en``.

The controller mirrors the three stages; its tertiary signals are ``squash``
(taken branch kills the following instruction) and the two bypass selects
``fwd_a`` / ``fwd_b``.
"""

from __future__ import annotations

from repro.controller import (
    AndNode,
    BufNode,
    EqConstNode,
    EqNode,
    InSetNode,
    PipelinedController,
    PipeRegister,
    SignalKind,
    TableNode,
    bit_signal,
    field_signal,
)
from repro.datapath import DatapathBuilder
from repro.mini.isa import ALU_OP, IMM_OPS, N_REGS, WIDTH, WRITING_OPS
from repro.model.processor import Processor

OP_DOMAIN = tuple(range(8))
REG_DOMAIN = tuple(range(N_REGS))
ALU_DOMAIN = (0, 1, 2, 3)


def build_minipipe_datapath():
    """The word-level datapath netlist of MiniPipe."""
    b = DatapathBuilder("minipipe_dp")
    b.set_stage(0)
    rf_a = b.input("rf_a", WIDTH)
    rf_b = b.input("rf_b", WIDTH)
    imm = b.input("imm", WIDTH)
    squash_ctl = b.ctrl("squash_ctl", 1)
    ex_a = b.register("ex_a", rf_a, clear=squash_ctl)
    ex_b = b.register("ex_b", rf_b, clear=squash_ctl)
    ex_imm = b.register("ex_imm", imm, clear=squash_ctl)

    b.set_stage(1)
    fwd_a = b.ctrl("fwd_a_ctl", 1)
    fwd_b = b.ctrl("fwd_b_ctl", 1)
    alusrc = b.ctrl("alusrc", 1)
    alu_op = b.ctrl("alu_op", 2)
    b.set_stage(2)
    wb_result = b.placeholder_register("wb_res", WIDTH)
    b.set_stage(1)
    opa = b.mux("opa_mux", fwd_a, ex_a, wb_result)
    opb_fwd = b.mux("opb_fwd_mux", fwd_b, ex_b, wb_result)
    opb = b.mux("opb_mux", alusrc, opb_fwd, ex_imm)
    add_r = b.add("alu_add", opa, opb)
    sub_r = b.sub("alu_sub", opa, opb)
    and_r = b.and_("alu_and", opa, opb)
    xor_r = b.xor("alu_xor", opa, opb)
    alu_out = b.mux("alu_mux", alu_op, add_r, sub_r, and_r, xor_r)
    b.status("eq", b.eq("cmp", opa, opb))

    b.set_stage(2)
    b.connect_register("wb_res", alu_out)
    wb_en = b.ctrl("wb_en", 1)
    zero = b.const("zero", WIDTH, 0)
    out = b.mux("out_mux", wb_en, zero, wb_result)
    b.output("out", out)
    return b.build()


def build_minipipe_controller() -> PipelinedController:
    """The bit-level controller of MiniPipe."""
    ctl = PipelinedController("minipipe_ctl", n_stages=3)
    add = ctl.add_signal

    # Stage 0: instruction fields and decode.
    add(field_signal("op", OP_DOMAIN, SignalKind.CPI, stage=0))
    add(field_signal("rs1", REG_DOMAIN, SignalKind.CPI, stage=0))
    add(field_signal("rs2", REG_DOMAIN, SignalKind.CPI, stage=0))
    add(field_signal("rd", REG_DOMAIN, SignalKind.CPI, stage=0))
    add(bit_signal("writes", stage=0))
    add(bit_signal("uses_imm", stage=0))
    add(bit_signal("is_beq", stage=0))
    add(field_signal("aluop_dec", ALU_DOMAIN, stage=0))
    ctl.drive("writes", InSetNode("op", WRITING_OPS))
    ctl.drive("uses_imm", InSetNode("op", IMM_OPS))
    ctl.drive("is_beq", EqConstNode("op", 6))
    ctl.drive(
        "aluop_dec",
        TableNode(["op"], lambda op: ALU_OP[op], [OP_DOMAIN]),
    )

    # Stage 1 pipe registers (cleared by squash).
    stage1 = [
        ("writes_ex", "writes", (0, 1)),
        ("uses_imm_ex", "uses_imm", (0, 1)),
        ("is_beq_ex", "is_beq", (0, 1)),
        ("aluop_ex", "aluop_dec", ALU_DOMAIN),
        ("rs1_ex", "rs1", REG_DOMAIN),
        ("rs2_ex", "rs2", REG_DOMAIN),
        ("rd_ex", "rd", REG_DOMAIN),
    ]
    for q, d, domain in stage1:
        add(field_signal(q, domain, SignalKind.CSI, stage=1))
    # Stage 2 pipe registers.
    add(bit_signal("writes_wb", SignalKind.CSI, stage=2))
    add(field_signal("rd_wb", REG_DOMAIN, SignalKind.CSI, stage=2))

    # Status from the datapath (branch comparison).
    add(bit_signal("eq", SignalKind.STS, stage=1))

    # Tertiary signals: the essential instruction interaction.
    add(bit_signal("squash", SignalKind.CTI, stage=1))
    add(bit_signal("fwd_a", SignalKind.CTI, stage=1))
    add(bit_signal("fwd_b", SignalKind.CTI, stage=1))
    add(bit_signal("fwd_a_raw", stage=1))
    add(bit_signal("fwd_b_raw", stage=1))
    add(bit_signal("eq_rs1", stage=1))
    add(bit_signal("eq_rs2", stage=1))
    ctl.drive("squash", AndNode(["is_beq_ex", "eq"]))
    ctl.drive("eq_rs1", EqNode("rd_wb", "rs1_ex"))
    ctl.drive("eq_rs2", EqNode("rd_wb", "rs2_ex"))
    ctl.drive("fwd_a_raw", AndNode(["writes_wb", "eq_rs1"]))
    ctl.drive("fwd_b_raw", AndNode(["writes_wb", "eq_rs2"]))
    ctl.drive("fwd_a", BufNode("fwd_a_raw"))
    ctl.drive("fwd_b", BufNode("fwd_b_raw"))

    # Control outputs to the datapath.
    add(bit_signal("alusrc", SignalKind.CTRL, stage=1))
    add(field_signal("alu_op", ALU_DOMAIN, SignalKind.CTRL, stage=1))
    add(bit_signal("wb_en", SignalKind.CTRL, stage=2))
    add(bit_signal("fwd_a_ctl", SignalKind.CTRL, stage=1))
    add(bit_signal("fwd_b_ctl", SignalKind.CTRL, stage=1))
    add(bit_signal("squash_ctl", SignalKind.CTRL, stage=0))
    ctl.drive("alusrc", BufNode("uses_imm_ex"))
    ctl.drive("alu_op", BufNode("aluop_ex"))
    ctl.drive("wb_en", BufNode("writes_wb"))
    ctl.drive("fwd_a_ctl", BufNode("fwd_a"))
    ctl.drive("fwd_b_ctl", BufNode("fwd_b"))
    ctl.drive("squash_ctl", BufNode("squash"))

    # CPRs: stage 0 -> 1 (squashable), stage 1 -> 2.
    for q, d, _ in stage1:
        ctl.add_cpr(PipeRegister(q=q, d=d, stage=1, clear="squash"))
    ctl.add_cpr(PipeRegister(q="writes_wb", d="writes_ex", stage=2))
    ctl.add_cpr(PipeRegister(q="rd_wb", d="rd_ex", stage=2))
    ctl.validate()
    return ctl


def build_minipipe() -> Processor:
    """The complete MiniPipe processor model."""
    processor = Processor(
        name="minipipe",
        datapath=build_minipipe_datapath(),
        controller=build_minipipe_controller(),
        n_stages=3,
        stimulus_registers=frozenset(),
        cpi_defaults={"op": 0, "rs1": 0, "rs2": 0, "rd": 0},
        cpi_dpi_bindings={},
    )
    processor.validate()
    return processor
