"""MiniPipe ISA-level specification simulator and the implementation shim.

The specification executes instructions architecturally: four registers,
sequential semantics, a taken BEQ skips the next instruction.  Its output is
the ordered list of register writes ``(rd, value)`` — the ISA-visible trace.

``MiniEnv`` runs the same program on the pipelined *implementation* (the
:class:`Processor` co-simulator): it plays the role of the environment,
supplying register-file read data (MiniPipe models RF reads as data primary
inputs) and committing write-backs, and extracts the same ISA-visible trace.
Comparing the two traces is the detection criterion for design errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.datapath.simulate import Injector, ModuleOverride, no_injection
from repro.mini.isa import IMM_OPS, N_REGS, WIDTH, Instruction, to_cpi
from repro.model.processor import Processor
from repro.utils.bits import to_unsigned
from repro.verify.cosim import ProcessorSimulator, Trace


@dataclass
class SpecResult:
    """ISA-visible outcome of a program run."""

    writes: list[tuple[int, int]] = field(default_factory=list)
    registers: list[int] = field(default_factory=list)


class MiniSpec:
    """Architectural (sequential) simulator for the MiniPipe ISA."""

    def run(
        self, program: Sequence[Instruction], init_regs: Sequence[int] | None = None
    ) -> SpecResult:
        regs = list(init_regs) if init_regs is not None else [0] * N_REGS
        if len(regs) != N_REGS:
            raise ValueError(f"expected {N_REGS} registers")
        regs = [to_unsigned(r, WIDTH) for r in regs]
        writes: list[tuple[int, int]] = []
        skip = False
        for instruction in program:
            if skip:
                skip = False
                continue
            op = instruction.opcode
            a = regs[instruction.rs1]
            b = regs[instruction.rs2]
            imm = instruction.imm
            if op == 0:  # NOP
                continue
            if op == 6:  # BEQ: skip next when equal
                if a == b:
                    skip = True
                continue
            operand = imm if op in IMM_OPS else b
            if op in (1, 5):  # ADD / ADDI
                value = to_unsigned(a + operand, WIDTH)
            elif op in (2, 7):  # SUB / SUBI
                value = to_unsigned(a - operand, WIDTH)
            elif op == 3:  # AND
                value = a & operand
            else:  # XOR
                value = a ^ operand
            regs[instruction.rd] = value
            writes.append((instruction.rd, value))
        return SpecResult(writes=writes, registers=regs)


class MiniEnv:
    """Runs a program on the pipelined implementation and extracts the
    ISA-visible write trace."""

    def __init__(
        self,
        processor: Processor,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
        compiled: bool = True,
    ) -> None:
        self.processor = processor
        self.sim = ProcessorSimulator(
            processor, injector=injector, module_overrides=module_overrides,
            compiled=compiled,
        )
        #: Cycle-accurate co-simulation trace of the most recent ``run``
        #: (consumed by the coverage collector in ``repro.fuzz``).
        self.trace = Trace()

    def run(
        self,
        program: Sequence[Instruction],
        init_regs: Sequence[int] | None = None,
        drain: int = 4,
    ) -> SpecResult:
        """Feed the program followed by ``drain`` NOP cycles.

        Register-file reads are supplied from the architectural register
        array, which is committed *before* each cycle's reads (write-through
        register file); the single-cycle gap in between is covered by the
        pipeline's bypass paths.
        """
        regs = list(init_regs) if init_regs is not None else [0] * N_REGS
        regs = [to_unsigned(r, WIDTH) for r in regs]
        writes: list[tuple[int, int]] = []
        self.trace = Trace()
        from repro.mini.isa import NOP

        stream = list(program) + [NOP] * drain
        for instruction in stream:
            # Commit this cycle's write-back before the reads (the write
            # value depends only on pipeline state, not on today's reads).
            ctl_preview = self.processor.controller.network.evaluate(
                dict(self.sim.ctl_state)
            )
            externals: dict[str, int | None] = {
                name: None for name in self._external_names()
            }
            for name in self.processor.controller.ctrl_signals:
                externals[name] = ctl_preview.get(name)
            preview = self.sim.dp_sim.evaluate_partial(externals)
            wb_en = ctl_preview.get("wb_en")
            rd_wb = ctl_preview.get("rd_wb")
            out = preview.get("out")
            if wb_en == 1 and rd_wb is not None and out is not None:
                regs[rd_wb] = out
                writes.append((rd_wb, out))
            cpi = to_cpi(instruction)
            dpi = {
                "rf_a": regs[instruction.rs1],
                "rf_b": regs[instruction.rs2],
                "imm": instruction.imm,
            }
            self.trace.cycles.append(self.sim.step(cpi, dpi))
        return SpecResult(writes=writes, registers=regs)

    def _external_names(self):
        return [
            net.name
            for net in self.processor.datapath.nets.values()
            if net.is_external_input
        ]


def detects(
    processor: Processor,
    program: Sequence[Instruction],
    error,
    init_regs: Sequence[int] | None = None,
) -> bool:
    """True iff the program distinguishes the erroneous implementation from
    the ISA specification (the Table-1 detection criterion)."""
    spec = MiniSpec().run(program, init_regs)
    bad_sim = error.attach(processor.datapath)
    env = MiniEnv(
        processor,
        injector=bad_sim.injector,
        module_overrides=bad_sim.module_overrides,
    )
    impl = env.run(program, init_regs)
    return impl.writes != spec.writes


def batch_detects(
    processor: Processor,
    program: Sequence[Instruction],
    errors: Sequence,
    init_regs: Sequence[int] | None = None,
    stats: list | None = None,
    golden: tuple | None = None,
) -> list[bool]:
    """``[detects(processor, program, e, init_regs) for e in errors]`` via
    one golden run plus cone forks (:mod:`repro.datapath.faultsim`).

    The fault-free environment run is simulated once; each error is forked
    against its trace.  A fork that never touches an observable net behaves
    identically to the golden machine, so it inherits the golden verdict.
    A fork whose first observable touch is a DPO divergence in a committing
    cycle (``wb_en == 1``) changes that cycle's write-back value, so the
    write list differs from the specification's — detected directly.  (The
    gating matters: an error planted on ``out`` itself diverges even with
    ``wb_en == 0``, where nothing commits.)  Everything else — status-net
    divergence, which feeds back into control, or a non-committing DPO
    touch — is confirmed with a full serial run.

    ``golden`` optionally supplies a precomputed fault-free run as
    ``(result, trace, dense_cycles)`` — e.g. one lane of a batched
    :class:`repro.mini.lanes.BatchMiniEnv` run — so lane-batched callers
    pay for the golden simulation once per batch, not once per error set.
    """
    from repro.datapath.faultsim import BatchFaultSimulator

    spec = MiniSpec().run(program, init_regs)
    if golden is not None:
        golden_result, golden_trace, dense_cycles = golden
    else:
        env = MiniEnv(processor)
        golden_result = env.run(program, init_regs)
        golden_trace, dense_cycles = env.trace, None
    golden_detects = golden_result.writes != spec.writes
    sim = BatchFaultSimulator(
        processor, golden_trace, dense_cycles=dense_cycles
    )
    results = []
    for error in errors:
        fork = sim.fork(error, stop_at_first_observed=True)
        if fork.kind == "clean":
            results.append(golden_detects)
        elif (
            fork.kind == "dpo"
            and not golden_detects
            and golden_trace.cycles[fork.cycle].controller.get("wb_en") == 1
            and golden_trace.cycles[fork.cycle].controller.get("rd_wb")
            is not None
        ):
            results.append(True)
        else:
            results.append(detects(processor, program, error, init_regs))
    if stats is not None:
        stats.append(sim.stats)
    return results
