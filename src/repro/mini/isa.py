"""The MiniPipe instruction set.

MiniPipe is a deliberately small 3-stage pipelined processor (operand fetch /
execute / write-back) used throughout the test suite and examples as a
second, fully-understood test vehicle next to the DLX.  It has four
architectural registers, an 8-bit datapath, one bypass path per operand,
and predict-not-taken branches resolved in execute (a taken branch squashes
the following instruction).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Mnemonic -> opcode encoding.
OPCODES = {
    "NOP": 0,
    "ADD": 1,  # rd <- r[rs1] + r[rs2]
    "SUB": 2,  # rd <- r[rs1] - r[rs2]
    "AND": 3,  # rd <- r[rs1] & r[rs2]
    "XOR": 4,  # rd <- r[rs1] ^ r[rs2]
    "ADDI": 5,  # rd <- r[rs1] + imm
    "BEQ": 6,  # if r[rs1] == r[rs2]: skip next instruction
    "SUBI": 7,  # rd <- r[rs1] - imm
}
MNEMONICS = {v: k for k, v in OPCODES.items()}

#: Opcodes that write a destination register.
WRITING_OPS = frozenset({1, 2, 3, 4, 5, 7})
#: Opcodes whose second ALU operand is the immediate.
IMM_OPS = frozenset({5, 7})
#: ALU operation select per opcode (0 add, 1 sub, 2 and, 3 xor).
ALU_OP = {0: 0, 1: 0, 2: 1, 3: 2, 4: 3, 5: 0, 6: 1, 7: 1}

N_REGS = 4
WIDTH = 8


@dataclass(frozen=True)
class Instruction:
    """One MiniPipe instruction."""

    op: str
    rs1: int = 0
    rs2: int = 0
    rd: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown mnemonic {self.op!r}")
        for reg in (self.rs1, self.rs2, self.rd):
            if not 0 <= reg < N_REGS:
                raise ValueError(f"register {reg} out of range")
        if not 0 <= self.imm < (1 << WIDTH):
            raise ValueError(f"immediate {self.imm} out of range")

    @property
    def opcode(self) -> int:
        return OPCODES[self.op]

    @property
    def writes(self) -> bool:
        return self.opcode in WRITING_OPS

    def __str__(self) -> str:
        if self.op == "NOP":
            return "NOP"
        if self.op == "BEQ":
            return f"BEQ r{self.rs1}, r{self.rs2}"
        if self.opcode in IMM_OPS:
            return f"{self.op} r{self.rd}, r{self.rs1}, #{self.imm}"
        return f"{self.op} r{self.rd}, r{self.rs1}, r{self.rs2}"


NOP = Instruction("NOP")


def to_cpi(instruction: Instruction) -> dict[str, int]:
    """Controller primary inputs encoding one instruction."""
    return {
        "op": instruction.opcode,
        "rs1": instruction.rs1,
        "rs2": instruction.rs2,
        "rd": instruction.rd,
    }


def from_cpi(cpi: dict[str, int], imm: int = 0) -> Instruction:
    """Decode a CPI assignment (plus immediate) back to an instruction."""
    return Instruction(
        MNEMONICS[cpi.get("op", 0)],
        rs1=cpi.get("rs1", 0),
        rs2=cpi.get("rs2", 0),
        rd=cpi.get("rd", 0),
        imm=imm,
    )
