"""Parallel campaign orchestration: sharded worker pool + checkpoint/resume.

Error-targeted test generation is embarrassingly parallel per error, so the
orchestrator shards an error list across a ``multiprocessing`` worker pool:
each worker process rebuilds the processor model once (pool initializer),
then runs the full TG → realize → ISA-check pipeline per error and returns
the :class:`ErrorOutcome` plus the serialized realized test.  The
coordinator merges results as they complete, emits structured events
(:mod:`repro.campaign.events`), appends each completed error to a JSONL
checkpoint (:mod:`repro.campaign.checkpoint`), and — when error simulation
is enabled — simulates every finished test against the **not-yet-dispatched
tail** of the work list, so fault dropping composes with sharding instead
of being silently disabled.

``jobs=1`` takes the exact serial loop of ``DlxCampaign.run`` (shared via
:func:`repro.campaign.runner.run_serial_campaign`), so single-job
orchestration is byte-identical to the classic driver.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Any, Sequence

from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.events import CampaignEvent, EventStream
from repro.campaign.runner import (
    CampaignBase,
    CampaignReport,
    DlxCampaign,
    ErrorOutcome,
    MiniCampaign,
    run_serial_campaign,
)
from repro.errors.models import DesignError

CAMPAIGN_TARGETS = ("dlx", "mini")


def build_campaign(target: str, deadline_seconds: float) -> CampaignBase:
    """The campaign driver for a named test vehicle."""
    if target == "dlx":
        return DlxCampaign(deadline_seconds=deadline_seconds)
    if target == "mini":
        return MiniCampaign(deadline_seconds=deadline_seconds)
    raise ValueError(
        f"unknown campaign target {target!r} (expected one of "
        f"{', '.join(CAMPAIGN_TARGETS)})"
    )


@dataclass(frozen=True)
class OrchestratorConfig:
    """Everything a campaign run needs, picklable and JSON-friendly."""

    target: str = "dlx"
    jobs: int = 1
    deadline_seconds: float = 20.0
    error_simulation: bool = False
    checkpoint_path: str | None = None
    resume: bool = False
    #: Emit per-error ``error-profile`` events (TG phase timings) and one
    #: aggregated ``profile-summary`` into the event stream / JSON report.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.target not in CAMPAIGN_TARGETS:
            raise ValueError(f"unknown campaign target {self.target!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.resume and not self.checkpoint_path:
            raise ValueError("resume requires a checkpoint path")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


# Per-worker-process campaign, built once by the pool initializer.  The
# processor model is deliberately NOT pickled across the process boundary;
# every worker rebuilds it from scratch.
_WORKER_CAMPAIGN: CampaignBase | None = None


def _worker_init(target: str, deadline_seconds: float) -> None:
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = build_campaign(target, deadline_seconds)


def _worker_run(item: tuple[int, DesignError, list, list]):
    """Run one error in the worker; pool learned no-goods and refutation
    certificates both ways.

    The coordinator ships every record it knows with the task; the worker
    merges them (idempotent) before searching, and returns only what it
    learned locally since its last report (``export_records`` drains the
    fresh list; merged foreign records never re-export).
    """
    from repro.campaign.serialize import (
        clause_records_from_wire,
        clause_records_to_wire,
        nogood_records_from_wire,
        nogood_records_to_wire,
    )

    index, error, records, clause_records = item
    nogoods = _WORKER_CAMPAIGN.generator.nogoods
    clauses = _WORKER_CAMPAIGN.generator.clauses
    if records:
        nogoods.merge_records(nogood_records_from_wire(records))
    if clause_records:
        clauses.merge_records(clause_records_from_wire(clause_records))
    outcome, realized = _WORKER_CAMPAIGN._run_error_with_test(error)
    test = None
    if realized is not None:
        test = _WORKER_CAMPAIGN.serialize_realized(realized)
    learned = nogood_records_to_wire(nogoods.export_records())
    learned_clauses = clause_records_to_wire(clauses.export_records())
    return index, vars(outcome).copy(), test, learned, learned_clauses


def campaign_run_to_dict(
    config: OrchestratorConfig,
    report: CampaignReport,
    events: Sequence[CampaignEvent] = (),
) -> dict[str, Any]:
    """Machine-readable record of a whole run (the CLI ``--json`` report)."""
    from repro.campaign.serialize import report_to_dict

    return {
        "kind": "campaign-run",
        "config": config.to_dict(),
        "report": report_to_dict(report),
        "events": [event.to_dict() for event in events],
    }


class CampaignOrchestrator:
    """Run a campaign over an error list, serial or sharded.

    Parameters
    ----------
    config:
        The run configuration (target, jobs, checkpointing, ...).
    events:
        Optional :class:`EventStream`; subscribe renderers/loggers before
        calling :meth:`run`.  A fresh private stream is created otherwise.
    campaign:
        Optional pre-built campaign driver for the coordinator process
        (error enumeration + coordinator-side fault dropping); built from
        ``config`` when omitted.
    """

    def __init__(
        self,
        config: OrchestratorConfig,
        events: EventStream | None = None,
        campaign: CampaignBase | None = None,
    ) -> None:
        self.config = config
        self.events = events if events is not None else EventStream()
        self.campaign = campaign or build_campaign(
            config.target, config.deadline_seconds
        )
        self._stop = threading.Event()

    def default_errors(self, **kwargs) -> list[DesignError]:
        return self.campaign.default_errors(**kwargs)

    def interrupt(self) -> None:
        """Request a cooperative stop (thread- and signal-safe).

        The run finishes the error(s) currently in flight, checkpoints
        them as usual, emits one ``campaign-interrupted`` event, and
        returns a report with ``interrupted=True`` covering the completed
        prefix — nothing the workers finished is lost, and a checkpointed
        run resumes with ``--resume``.
        """
        self._stop.set()

    @property
    def interrupt_requested(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, errors: Sequence[DesignError]) -> CampaignReport:
        config = self.config
        start = time.monotonic()
        report = CampaignReport()
        completed = self._load_resumed(errors, report)
        pending = [
            (index, error)
            for index, error in enumerate(errors)
            if error.describe() not in completed
        ]
        self.events.emit(
            "campaign-started",
            target=config.target,
            n_errors=len(errors),
            jobs=config.jobs,
            error_simulation=config.error_simulation,
            resumed=len(errors) - len(pending),
        )
        checkpoint = None
        if config.checkpoint_path:
            checkpoint = CampaignCheckpoint(config.checkpoint_path)
        unattempted = 0
        try:
            if pending:
                if config.jobs == 1:
                    unattempted = self._run_serial(
                        pending, report, checkpoint
                    )
                else:
                    unattempted = self._run_pool(pending, report, checkpoint)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        report.total_seconds = time.monotonic() - start
        if self._stop.is_set():
            report.interrupted = True
            self.events.emit(
                "campaign-interrupted",
                completed=len(report.outcomes),
                remaining=unattempted,
                resumable=checkpoint is not None,
            )
        if config.profile:
            self._emit_profile_summary(report)
        self.events.emit(
            "campaign-finished",
            n_errors=report.n_errors,
            n_detected=report.n_detected,
            n_aborted=report.n_aborted,
            backtracks=report.backtracks_total,
            wall_seconds=report.total_seconds,
        )
        return report

    def _load_resumed(
        self, errors: Sequence[DesignError], report: CampaignReport
    ) -> set[str]:
        """Seed ``report`` with checkpointed outcomes; return their keys."""
        if not self.config.resume:
            return set()
        wanted = {error.describe() for error in errors}
        completed: set[str] = set()
        for record in CampaignCheckpoint.load(self.config.checkpoint_path):
            name = record.outcome.error
            if name in wanted and name not in completed:
                report.outcomes.append(record.outcome)
                completed.add(name)
        return completed

    # ------------------------------------------------------------------
    # Serial path (jobs=1): the classic loop plus events + checkpointing
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: list[tuple[int, DesignError]],
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> int:
        index_of = {error.describe(): index for index, error in pending}

        def on_started(error: DesignError) -> None:
            self.events.emit(
                "error-started",
                error=error.describe(),
                index=index_of[error.describe()],
            )

        def on_finished(outcome: ErrorOutcome, realized) -> None:
            self._emit_finished(outcome, index_of.get(outcome.error, -1))
            test = None
            if realized is not None and checkpoint is not None:
                test = self.campaign.serialize_realized(realized)
            self._write_checkpoint(checkpoint, outcome, test)

        def on_dropped(outcome, dropped, seconds) -> None:
            self.events.emit(
                "test-dropped-others",
                error=outcome.error,
                dropped=[record.error for record in dropped],
                seconds=seconds,
            )
            for record in dropped:
                self._write_checkpoint(checkpoint, record, None)

        remaining = [error for _, error in pending]
        run_serial_campaign(
            self.campaign,
            remaining,
            report,
            error_simulation=self.config.error_simulation,
            on_started=on_started,
            on_finished=on_finished,
            on_dropped=on_dropped,
            should_stop=self._stop.is_set,
        )
        return len(remaining)

    # ------------------------------------------------------------------
    # Parallel path (jobs>1): sharded pool with coordinator-side dropping
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        pending: list[tuple[int, DesignError]],
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> int:
        from repro.campaign.serialize import (
            clause_records_from_wire,
            clause_records_to_wire,
            nogood_records_from_wire,
            nogood_records_to_wire,
        )

        config = self.config
        queue: deque[tuple[int, DesignError]] = deque(pending)
        #: The coordinator's pooled no-good and certificate stores:
        #: everything any worker has reported so far, fanned back out
        #: with each dispatch.  They ride on the coordinator campaign's
        #: own generator so a later in-process run (or serial fallback)
        #: keeps the learning.
        pooled = self.campaign.generator.nogoods
        pooled_clauses = self.campaign.generator.clauses
        with ProcessPoolExecutor(
            max_workers=config.jobs,
            initializer=_worker_init,
            initargs=(config.target, config.deadline_seconds),
        ) as pool:
            in_flight: dict = {}

            def dispatch() -> None:
                if self._stop.is_set():
                    return
                while queue and len(in_flight) < config.jobs:
                    index, error = queue.popleft()
                    self.events.emit(
                        "error-started", error=error.describe(), index=index
                    )
                    known = nogood_records_to_wire(pooled.all_records())
                    known_clauses = clause_records_to_wire(
                        pooled_clauses.all_records()
                    )
                    future = pool.submit(
                        _worker_run, (index, error, known, known_clauses)
                    )
                    in_flight[future] = (index, error)

            dispatch()
            while in_flight:
                done, _ = wait(
                    list(in_flight), return_when=FIRST_COMPLETED
                )
                # Process completions in submission order for determinism.
                for future in sorted(done, key=lambda f: in_flight[f][0]):
                    index, error = in_flight.pop(future)
                    try:
                        (
                            _, outcome_dict, test, learned, fresh_clauses,
                        ) = future.result()
                        outcome = ErrorOutcome(**outcome_dict)
                        if learned:
                            pooled.merge_records(
                                nogood_records_from_wire(learned)
                            )
                        if fresh_clauses:
                            pooled_clauses.merge_records(
                                clause_records_from_wire(fresh_clauses)
                            )
                    except Exception:
                        # A lost worker aborts the error, not the campaign.
                        outcome, test = ErrorOutcome(
                            error=error.describe(),
                            detected=False,
                            failure_stage="worker",
                        ), None
                    report.outcomes.append(outcome)
                    self._emit_finished(outcome, index)
                    self._write_checkpoint(checkpoint, outcome, test)
                    if (
                        config.error_simulation
                        and test is not None
                        and queue
                    ):
                        self._drop_from_queue(
                            outcome, test, queue, report, checkpoint
                        )
                dispatch()
            # An interrupt stops dispatching; in-flight errors above ran
            # to completion and were checkpointed, the queued tail is
            # reported as never attempted.
            return len(queue)

    def _drop_from_queue(
        self,
        outcome: ErrorOutcome,
        test: dict[str, Any],
        queue: deque,
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> None:
        """Error-simulate a finished test against the undispatched tail."""
        drop_start = time.monotonic()
        realized = self.campaign.deserialize_realized(test)
        survivors: list[tuple[int, DesignError]] = []
        dropped: list[ErrorOutcome] = []
        verdicts = self.campaign.detects_realized_batch(
            realized, [other for _, other in queue]
        )
        for (index, other), hit in zip(queue, verdicts):
            if hit:
                record = self.campaign.dropped_outcome(
                    other, realized, outcome.error
                )
                report.outcomes.append(record)
                dropped.append(record)
                self._write_checkpoint(checkpoint, record, None)
            else:
                survivors.append((index, other))
        queue.clear()
        queue.extend(survivors)
        if dropped:
            self.events.emit(
                "test-dropped-others",
                error=outcome.error,
                dropped=[record.error for record in dropped],
                seconds=time.monotonic() - drop_start,
            )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _emit_finished(self, outcome: ErrorOutcome, index: int) -> None:
        self.events.emit(
            "error-finished",
            error=outcome.error,
            index=index,
            detected=outcome.detected,
            failure_stage=outcome.failure_stage,
            test_length=outcome.test_length,
            backtracks=outcome.backtracks,
            final_backtracks=outcome.final_backtracks,
            attempts=outcome.attempts,
            seconds=outcome.seconds,
        )
        if self.config.profile:
            self.events.emit(
                "error-profile",
                error=outcome.error,
                index=index,
                phase_seconds=dict(outcome.phase_seconds),
                golden_hits=outcome.golden_hits,
                golden_misses=outcome.golden_misses,
                exposure_forks=outcome.exposure_forks,
                exposure_fork_decided=outcome.exposure_fork_decided,
                backtracks=outcome.backtracks,
                nogood_hits=outcome.nogood_hits,
                nogood_misses=outcome.nogood_misses,
                justify_cache_hits=outcome.justify_cache_hits,
                path_cache_hits=outcome.path_cache_hits,
                path_cache_misses=outcome.path_cache_misses,
                dptrace_sweeps_avoided=outcome.dptrace_sweeps_avoided,
                conflicts=outcome.conflicts,
                learned_clauses=outcome.learned_clauses,
                backjumps=outcome.backjumps,
                clause_hits=outcome.clause_hits,
                refuted_unjustifiable=outcome.refuted_unjustifiable,
            )

    def _emit_profile_summary(self, report: CampaignReport) -> None:
        phase_seconds: dict[str, float] = {}
        for outcome in report.outcomes:
            for phase, seconds in outcome.phase_seconds.items():
                phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        outcomes = report.outcomes
        self.events.emit(
            "profile-summary",
            phase_seconds=phase_seconds,
            golden_hits=sum(o.golden_hits for o in outcomes),
            golden_misses=sum(o.golden_misses for o in outcomes),
            exposure_forks=sum(o.exposure_forks for o in outcomes),
            exposure_fork_decided=sum(
                o.exposure_fork_decided for o in outcomes
            ),
            backtracks=report.backtracks_total,
            nogood_hits=sum(o.nogood_hits for o in outcomes),
            nogood_misses=sum(o.nogood_misses for o in outcomes),
            justify_cache_hits=sum(o.justify_cache_hits for o in outcomes),
            path_cache_hits=sum(o.path_cache_hits for o in outcomes),
            path_cache_misses=sum(o.path_cache_misses for o in outcomes),
            dptrace_sweeps_avoided=sum(
                o.dptrace_sweeps_avoided for o in outcomes
            ),
            conflicts=sum(o.conflicts for o in outcomes),
            learned_clauses=sum(o.learned_clauses for o in outcomes),
            backjumps=sum(o.backjumps for o in outcomes),
            clause_hits=sum(o.clause_hits for o in outcomes),
            refuted_unjustifiable=sum(
                o.refuted_unjustifiable for o in outcomes
            ),
        )

    def _write_checkpoint(
        self,
        checkpoint: CampaignCheckpoint | None,
        outcome: ErrorOutcome,
        test: dict[str, Any] | None,
    ) -> None:
        if checkpoint is None:
            return
        checkpoint.append(outcome, test)
        self.events.emit(
            "checkpoint-written",
            path=checkpoint.path,
            records=checkpoint.n_written,
            error=outcome.error,
        )
