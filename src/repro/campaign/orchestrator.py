"""Parallel campaign orchestration: sharded worker pool + checkpoint/resume.

Error-targeted test generation is embarrassingly parallel per error, so the
orchestrator shards an error list across a ``multiprocessing`` worker pool:
each worker process rebuilds the processor model once (pool initializer),
then runs the full TG → realize → ISA-check pipeline per error and returns
the :class:`ErrorOutcome` plus the serialized realized test.  The
coordinator merges results as they complete, emits structured events
(:mod:`repro.campaign.events`), appends each completed error to a JSONL
checkpoint (:mod:`repro.campaign.checkpoint`), and — when error simulation
is enabled — simulates every finished test against the **not-yet-dispatched
tail** of the work list, so fault dropping composes with sharding instead
of being silently disabled.

``jobs=1`` takes the exact serial loop of ``DlxCampaign.run`` (shared via
:func:`repro.campaign.runner.run_serial_campaign`), so single-job
orchestration is byte-identical to the classic driver.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Any, Sequence

from repro.campaign.banking import DeadlineBank, EffortPredictor
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.events import CampaignEvent, EventStream
from repro.campaign.runner import (
    CampaignBase,
    CampaignReport,
    DlxCampaign,
    ErrorOutcome,
    MiniCampaign,
    run_serial_campaign,
)
from repro.errors.models import DesignError

CAMPAIGN_TARGETS = ("dlx", "mini")


def build_campaign(
    target: str, deadline_seconds: float, restarts: bool = False
) -> CampaignBase:
    """The campaign driver for a named test vehicle."""
    if target == "dlx":
        campaign = DlxCampaign(deadline_seconds=deadline_seconds)
    elif target == "mini":
        campaign = MiniCampaign(deadline_seconds=deadline_seconds)
    else:
        raise ValueError(
            f"unknown campaign target {target!r} (expected one of "
            f"{', '.join(CAMPAIGN_TARGETS)})"
        )
    campaign.generator.use_restarts = restarts
    return campaign


@dataclass(frozen=True)
class OrchestratorConfig:
    """Everything a campaign run needs, picklable and JSON-friendly."""

    target: str = "dlx"
    jobs: int = 1
    deadline_seconds: float = 20.0
    error_simulation: bool = False
    checkpoint_path: str | None = None
    resume: bool = False
    #: Emit per-error ``error-profile`` events (TG phase timings) and one
    #: aggregated ``profile-summary`` into the event stream / JSON report.
    profile: bool = False
    #: Restart-capable CTRLJUST (EVSIDS activity ordering, phase saving,
    #: Luby restarts — see ``repro.core.ctrljust``); activity snapshots
    #: pool across workers like no-goods.  Off by default: may only
    #: improve outcomes on deadline-capped errors.
    restarts: bool = False
    #: Adaptive deadline banking (see ``repro.campaign.banking``):
    #: easy errors deposit unspent CPU budget, deadline-aborted errors
    #: are re-queued once with one extra base deadline, and dispatch is
    #: easiest-first via the effort predictor.  Off by default.
    deadline_bank: bool = False

    def __post_init__(self) -> None:
        if self.target not in CAMPAIGN_TARGETS:
            raise ValueError(f"unknown campaign target {self.target!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.resume and not self.checkpoint_path:
            raise ValueError("resume requires a checkpoint path")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


# Per-worker-process campaign, built once by the pool initializer.  The
# processor model is deliberately NOT pickled across the process boundary;
# every worker rebuilds it from scratch.
_WORKER_CAMPAIGN: CampaignBase | None = None


def _worker_init(
    target: str, deadline_seconds: float, restarts: bool = False
) -> None:
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = build_campaign(target, deadline_seconds, restarts)


def _worker_run(item: tuple[int, DesignError, list, list, list, float]):
    """Run one error in the worker; pool learned no-goods, refutation
    certificates and activity snapshots both ways.

    The coordinator ships every record it knows with the task; the worker
    merges them (idempotent) before searching, and returns only what it
    learned locally since its last report (``export_records`` drains the
    fresh list; merged foreign records never re-export).  ``grant`` is a
    non-zero total CPU deadline for banked-retry tasks: the worker runs
    just this error under the raised budget and then restores its base
    deadline.
    """
    from repro.campaign.serialize import (
        activity_records_from_wire,
        activity_records_to_wire,
        clause_records_from_wire,
        clause_records_to_wire,
        nogood_records_from_wire,
        nogood_records_to_wire,
    )

    index, error, records, clause_records, activity_records, grant = item
    generator = _WORKER_CAMPAIGN.generator
    nogoods = generator.nogoods
    clauses = generator.clauses
    if records:
        nogoods.merge_records(nogood_records_from_wire(records))
    if clause_records:
        clauses.merge_records(clause_records_from_wire(clause_records))
    if activity_records:
        generator.activity.merge_records(
            activity_records_from_wire(activity_records)
        )
    saved_deadline = generator.deadline_seconds
    if grant:
        generator.deadline_seconds = grant
    try:
        outcome, realized = _WORKER_CAMPAIGN._run_error_with_test(error)
    finally:
        generator.deadline_seconds = saved_deadline
    test = None
    if realized is not None:
        test = _WORKER_CAMPAIGN.serialize_realized(realized)
    learned = nogood_records_to_wire(nogoods.export_records())
    learned_clauses = clause_records_to_wire(clauses.export_records())
    learned_activity = activity_records_to_wire(
        generator.activity.export_records()
    )
    return (index, vars(outcome).copy(), test, learned, learned_clauses,
            learned_activity)


def campaign_run_to_dict(
    config: OrchestratorConfig,
    report: CampaignReport,
    events: Sequence[CampaignEvent] = (),
) -> dict[str, Any]:
    """Machine-readable record of a whole run (the CLI ``--json`` report)."""
    from repro.campaign.serialize import report_to_dict

    return {
        "kind": "campaign-run",
        "config": config.to_dict(),
        "report": report_to_dict(report),
        "events": [event.to_dict() for event in events],
    }


class CampaignOrchestrator:
    """Run a campaign over an error list, serial or sharded.

    Parameters
    ----------
    config:
        The run configuration (target, jobs, checkpointing, ...).
    events:
        Optional :class:`EventStream`; subscribe renderers/loggers before
        calling :meth:`run`.  A fresh private stream is created otherwise.
    campaign:
        Optional pre-built campaign driver for the coordinator process
        (error enumeration + coordinator-side fault dropping); built from
        ``config`` when omitted.
    """

    def __init__(
        self,
        config: OrchestratorConfig,
        events: EventStream | None = None,
        campaign: CampaignBase | None = None,
    ) -> None:
        self.config = config
        self.events = events if events is not None else EventStream()
        if campaign is None:
            campaign = build_campaign(
                config.target, config.deadline_seconds, config.restarts
            )
        else:
            # A pre-built (e.g. warm service) campaign follows this run's
            # restart knob, exactly like its deadline is re-armed per
            # request by the cache registry.
            campaign.generator.use_restarts = config.restarts
        self.campaign = campaign
        self._stop = threading.Event()
        self._bank: DeadlineBank | None = None
        self._predictor: EffortPredictor | None = None

    def default_errors(self, **kwargs) -> list[DesignError]:
        return self.campaign.default_errors(**kwargs)

    def interrupt(self) -> None:
        """Request a cooperative stop (thread- and signal-safe).

        The run finishes the error(s) currently in flight, checkpoints
        them as usual, emits one ``campaign-interrupted`` event, and
        returns a report with ``interrupted=True`` covering the completed
        prefix — nothing the workers finished is lost, and a checkpointed
        run resumes with ``--resume``.
        """
        self._stop.set()

    @property
    def interrupt_requested(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, errors: Sequence[DesignError]) -> CampaignReport:
        config = self.config
        start = time.monotonic()
        report = CampaignReport()
        completed = self._load_resumed(errors, report)
        pending = [
            (index, error)
            for index, error in enumerate(errors)
            if error.describe() not in completed
        ]
        if config.deadline_bank:
            self._bank = DeadlineBank()
            self._predictor = EffortPredictor(self.campaign)
            # Easiest-first dispatch (hardest-last completion): cheap
            # detections run — and, with dropping, retire siblings —
            # before the deadline-pinned stragglers get their turn.
            pending.sort(
                key=lambda ie: (self._predictor.predict(ie[1]), ie[0])
            )
        self.events.emit(
            "campaign-started",
            target=config.target,
            n_errors=len(errors),
            jobs=config.jobs,
            error_simulation=config.error_simulation,
            resumed=len(errors) - len(pending),
        )
        checkpoint = None
        if config.checkpoint_path:
            checkpoint = CampaignCheckpoint(config.checkpoint_path)
        unattempted = 0
        try:
            if pending:
                if config.jobs == 1:
                    unattempted = self._run_serial(
                        pending, report, checkpoint
                    )
                else:
                    unattempted = self._run_pool(pending, report, checkpoint)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        report.total_seconds = time.monotonic() - start
        if self._bank is not None:
            report.bank = self._bank.stats()
        if self._stop.is_set():
            report.interrupted = True
            self.events.emit(
                "campaign-interrupted",
                completed=len(report.outcomes),
                remaining=unattempted,
                resumable=checkpoint is not None,
            )
        if config.profile:
            self._emit_profile_summary(report)
        self.events.emit(
            "campaign-finished",
            n_errors=report.n_errors,
            n_detected=report.n_detected,
            n_aborted=report.n_aborted,
            backtracks=report.backtracks_total,
            wall_seconds=report.total_seconds,
        )
        return report

    def _load_resumed(
        self, errors: Sequence[DesignError], report: CampaignReport
    ) -> set[str]:
        """Seed ``report`` with checkpointed outcomes; return their keys.

        Last record wins per error: a banked retry appends a *second*
        record for its error (append-then-replace semantics), and the
        retry outcome is the final one.  Ordinary runs write one record
        per error, for which last-wins equals the historical first-wins.
        """
        if not self.config.resume:
            return set()
        wanted = {error.describe() for error in errors}
        positions: dict[str, int] = {}
        for record in CampaignCheckpoint.load(self.config.checkpoint_path):
            name = record.outcome.error
            if name not in wanted:
                continue
            if name in positions:
                report.outcomes[positions[name]] = record.outcome
            else:
                report.outcomes.append(record.outcome)
                positions[name] = len(report.outcomes) - 1
        return set(positions)

    # ------------------------------------------------------------------
    # Serial path (jobs=1): the classic loop plus events + checkpointing
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: list[tuple[int, DesignError]],
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> int:
        index_of = {error.describe(): index for index, error in pending}
        error_of = {error.describe(): error for _, error in pending}
        #: (index, error, outcome) triples eligible for a banked retry,
        #: processed in original-index order after the queue drains.
        retry_candidates: list = []

        def on_started(error: DesignError) -> None:
            self.events.emit(
                "error-started",
                error=error.describe(),
                index=index_of[error.describe()],
            )

        def on_finished(outcome: ErrorOutcome, realized) -> None:
            self._emit_finished(outcome, index_of.get(outcome.error, -1))
            test = None
            if realized is not None and checkpoint is not None:
                test = self.campaign.serialize_realized(realized)
            self._write_checkpoint(checkpoint, outcome, test)
            if self._bank is not None:
                error = error_of[outcome.error]
                self._bank_account(
                    outcome, error, index_of[outcome.error],
                    retry_candidates,
                )
                if len(remaining) > 1:
                    # Refresh hardest-last ordering with what this
                    # completion taught the predictor.
                    remaining.sort(
                        key=lambda e: (self._predictor.predict(e),
                                       index_of[e.describe()])
                    )

        def on_dropped(outcome, dropped, seconds) -> None:
            self.events.emit(
                "test-dropped-others",
                error=outcome.error,
                dropped=[record.error for record in dropped],
                seconds=seconds,
            )
            for record in dropped:
                self._write_checkpoint(checkpoint, record, None)

        remaining = [error for _, error in pending]
        run_serial_campaign(
            self.campaign,
            remaining,
            report,
            error_simulation=self.config.error_simulation,
            on_started=on_started,
            on_finished=on_finished,
            on_dropped=on_dropped,
            should_stop=self._stop.is_set,
        )
        if (
            self._bank is not None
            and retry_candidates
            and not self._stop.is_set()
        ):
            self._retry_serial(retry_candidates, report, checkpoint)
        return len(remaining)

    def _retry_serial(
        self,
        candidates: list,
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> None:
        """Re-run deadline-aborted errors once with banked time (jobs=1).

        The retry outcome *replaces* the original in the report (and is
        appended to the checkpoint, where last-record-wins on resume).
        Grants are conservative: nothing a retry leaves unspent is
        re-deposited, so the bank can never mint budget.
        """
        base = self.config.deadline_seconds
        generator = self.campaign.generator
        for index, error, outcome in sorted(candidates, key=lambda c: c[0]):
            if self._stop.is_set():
                return
            if not self._bank.try_grant(outcome.error, base):
                continue
            total = base * 2
            self.events.emit(
                "error-requeued",
                error=outcome.error,
                index=index,
                grant_seconds=base,
                total_deadline=total,
                balance_seconds=self._bank.balance,
            )
            saved = generator.deadline_seconds
            generator.deadline_seconds = total
            try:
                retry, realized = self.campaign._run_error_with_test(error)
            finally:
                generator.deadline_seconds = saved
            position = next(
                i for i, o in enumerate(report.outcomes) if o is outcome
            )
            report.outcomes[position] = retry
            self._emit_finished(retry, index)
            test = None
            if realized is not None and checkpoint is not None:
                test = self.campaign.serialize_realized(realized)
            self._write_checkpoint(checkpoint, retry, test)

    # ------------------------------------------------------------------
    # Parallel path (jobs>1): sharded pool with coordinator-side dropping
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        pending: list[tuple[int, DesignError]],
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> int:
        from repro.campaign.serialize import (
            activity_records_from_wire,
            activity_records_to_wire,
            clause_records_from_wire,
            clause_records_to_wire,
            nogood_records_from_wire,
            nogood_records_to_wire,
        )

        config = self.config
        queue: deque[tuple[int, DesignError]] = deque(pending)
        #: The coordinator's pooled no-good, certificate and activity
        #: stores: everything any worker has reported so far, fanned back
        #: out with each dispatch.  They ride on the coordinator
        #: campaign's own generator so a later in-process run (or serial
        #: fallback) keeps the learning.
        pooled = self.campaign.generator.nogoods
        pooled_clauses = self.campaign.generator.clauses
        pooled_activity = self.campaign.generator.activity
        #: (index, error, outcome, position-in-report) eligible for a
        #: banked retry once the normal queue drains.
        retry_candidates: list = []
        with ProcessPoolExecutor(
            max_workers=config.jobs,
            initializer=_worker_init,
            initargs=(config.target, config.deadline_seconds,
                      config.restarts),
        ) as pool:
            in_flight: dict = {}

            def shipped_records() -> tuple[list, list, list]:
                known = nogood_records_to_wire(pooled.all_records())
                known_clauses = clause_records_to_wire(
                    pooled_clauses.all_records()
                )
                known_activity = (
                    activity_records_to_wire(pooled_activity.all_records())
                    if config.restarts else []
                )
                return known, known_clauses, known_activity

            def dispatch() -> None:
                if self._stop.is_set():
                    return
                while queue and len(in_flight) < config.jobs:
                    index, error = queue.popleft()
                    self.events.emit(
                        "error-started", error=error.describe(), index=index
                    )
                    known, known_clauses, known_activity = shipped_records()
                    future = pool.submit(
                        _worker_run,
                        (index, error, known, known_clauses,
                         known_activity, 0.0),
                    )
                    in_flight[future] = (index, error)

            def merge_learned(learned, fresh_clauses, fresh_activity) -> None:
                if learned:
                    pooled.merge_records(nogood_records_from_wire(learned))
                if fresh_clauses:
                    pooled_clauses.merge_records(
                        clause_records_from_wire(fresh_clauses)
                    )
                if fresh_activity:
                    pooled_activity.merge_records(
                        activity_records_from_wire(fresh_activity)
                    )

            dispatch()
            while in_flight:
                done, _ = wait(
                    list(in_flight), return_when=FIRST_COMPLETED
                )
                # Process completions in submission order for determinism.
                for future in sorted(done, key=lambda f: in_flight[f][0]):
                    index, error = in_flight.pop(future)
                    try:
                        (
                            _, outcome_dict, test, learned, fresh_clauses,
                            fresh_activity,
                        ) = future.result()
                        outcome = ErrorOutcome(**outcome_dict)
                        merge_learned(learned, fresh_clauses, fresh_activity)
                    except Exception:
                        # A lost worker aborts the error, not the campaign.
                        outcome, test = ErrorOutcome(
                            error=error.describe(),
                            detected=False,
                            failure_stage="worker",
                        ), None
                    report.outcomes.append(outcome)
                    self._emit_finished(outcome, index)
                    self._write_checkpoint(checkpoint, outcome, test)
                    if self._bank is not None:
                        position = len(report.outcomes) - 1
                        before = len(retry_candidates)
                        self._bank_account(
                            outcome, error, index, retry_candidates
                        )
                        if len(retry_candidates) > before:
                            retry_candidates[-1] = (
                                index, error, outcome, position
                            )
                        if len(queue) > 1:
                            # Refresh hardest-last ordering of the
                            # undispatched tail.
                            ordered = sorted(
                                queue,
                                key=lambda ie: (
                                    self._predictor.predict(ie[1]), ie[0]
                                ),
                            )
                            queue.clear()
                            queue.extend(ordered)
                    if (
                        config.error_simulation
                        and test is not None
                        and queue
                    ):
                        self._drop_from_queue(
                            outcome, test, queue, report, checkpoint
                        )
                dispatch()
            if (
                self._bank is not None
                and retry_candidates
                and not self._stop.is_set()
            ):
                # Banked retries, dispatched through the still-open pool
                # one at a time (they are rare) in original-index order.
                # The retry outcome replaces the original record; the
                # checkpoint gets a second record (last-wins on resume).
                base = config.deadline_seconds
                for index, error, outcome, position in sorted(
                    retry_candidates, key=lambda c: c[0]
                ):
                    if self._stop.is_set():
                        break
                    if not self._bank.try_grant(outcome.error, base):
                        continue
                    self.events.emit(
                        "error-requeued",
                        error=outcome.error,
                        index=index,
                        grant_seconds=base,
                        total_deadline=base * 2,
                        balance_seconds=self._bank.balance,
                    )
                    known, known_clauses, known_activity = shipped_records()
                    future = pool.submit(
                        _worker_run,
                        (index, error, known, known_clauses,
                         known_activity, base * 2),
                    )
                    try:
                        (
                            _, outcome_dict, test, learned, fresh_clauses,
                            fresh_activity,
                        ) = future.result()
                        retry = ErrorOutcome(**outcome_dict)
                        merge_learned(learned, fresh_clauses, fresh_activity)
                    except Exception:
                        continue  # keep the original aborted outcome
                    report.outcomes[position] = retry
                    self._emit_finished(retry, index)
                    self._write_checkpoint(checkpoint, retry, test)
            # An interrupt stops dispatching; in-flight errors above ran
            # to completion and were checkpointed, the queued tail is
            # reported as never attempted.
            return len(queue)

    def _drop_from_queue(
        self,
        outcome: ErrorOutcome,
        test: dict[str, Any],
        queue: deque,
        report: CampaignReport,
        checkpoint: CampaignCheckpoint | None,
    ) -> None:
        """Error-simulate a finished test against the undispatched tail."""
        drop_start = time.monotonic()
        realized = self.campaign.deserialize_realized(test)
        survivors: list[tuple[int, DesignError]] = []
        dropped: list[ErrorOutcome] = []
        verdicts = self.campaign.detects_realized_batch(
            realized, [other for _, other in queue]
        )
        for (index, other), hit in zip(queue, verdicts):
            if hit:
                record = self.campaign.dropped_outcome(
                    other, realized, outcome.error
                )
                report.outcomes.append(record)
                dropped.append(record)
                self._write_checkpoint(checkpoint, record, None)
            else:
                survivors.append((index, other))
        queue.clear()
        queue.extend(survivors)
        if dropped:
            self.events.emit(
                "test-dropped-others",
                error=outcome.error,
                dropped=[record.error for record in dropped],
                seconds=time.monotonic() - drop_start,
            )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _bank_account(
        self,
        outcome: ErrorOutcome,
        error: DesignError,
        index: int,
        retry_candidates: list,
    ) -> None:
        """Deadline-bank bookkeeping for one finished (non-dropped) error.

        Deadline-aborted TG outcomes become retry candidates; everything
        else deposits its unspent CPU budget.  Worker-crash outcomes do
        neither (their CPU usage is unknown), and the taint rule holds:
        a ``deadline_hit`` outcome never deposits.
        """
        if outcome.failure_stage == "worker":
            return
        self._predictor.observe(error, outcome.backtracks)
        if (
            not outcome.detected
            and outcome.failure_stage == "tg"
            and outcome.deadline_hit
        ):
            retry_candidates.append((index, error, outcome))
        else:
            self._bank.deposit(
                outcome.error,
                outcome.deadline_grant,
                outcome.cpu_seconds,
                tainted=outcome.deadline_hit,
            )

    def _emit_finished(self, outcome: ErrorOutcome, index: int) -> None:
        self.events.emit(
            "error-finished",
            error=outcome.error,
            index=index,
            detected=outcome.detected,
            failure_stage=outcome.failure_stage,
            test_length=outcome.test_length,
            backtracks=outcome.backtracks,
            final_backtracks=outcome.final_backtracks,
            attempts=outcome.attempts,
            seconds=outcome.seconds,
            cpu_seconds=outcome.cpu_seconds,
            deadline_grant=outcome.deadline_grant,
        )
        if self.config.profile:
            self.events.emit(
                "error-profile",
                error=outcome.error,
                index=index,
                phase_seconds=dict(outcome.phase_seconds),
                golden_hits=outcome.golden_hits,
                golden_misses=outcome.golden_misses,
                exposure_forks=outcome.exposure_forks,
                exposure_fork_decided=outcome.exposure_fork_decided,
                backtracks=outcome.backtracks,
                nogood_hits=outcome.nogood_hits,
                nogood_misses=outcome.nogood_misses,
                justify_cache_hits=outcome.justify_cache_hits,
                path_cache_hits=outcome.path_cache_hits,
                path_cache_misses=outcome.path_cache_misses,
                dptrace_sweeps_avoided=outcome.dptrace_sweeps_avoided,
                conflicts=outcome.conflicts,
                learned_clauses=outcome.learned_clauses,
                backjumps=outcome.backjumps,
                clause_hits=outcome.clause_hits,
                refuted_unjustifiable=outcome.refuted_unjustifiable,
                restarts=outcome.restarts,
                deadline_hit=outcome.deadline_hit,
            )

    def _emit_profile_summary(self, report: CampaignReport) -> None:
        phase_seconds: dict[str, float] = {}
        for outcome in report.outcomes:
            for phase, seconds in outcome.phase_seconds.items():
                phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        outcomes = report.outcomes
        self.events.emit(
            "profile-summary",
            phase_seconds=phase_seconds,
            golden_hits=sum(o.golden_hits for o in outcomes),
            golden_misses=sum(o.golden_misses for o in outcomes),
            exposure_forks=sum(o.exposure_forks for o in outcomes),
            exposure_fork_decided=sum(
                o.exposure_fork_decided for o in outcomes
            ),
            backtracks=report.backtracks_total,
            nogood_hits=sum(o.nogood_hits for o in outcomes),
            nogood_misses=sum(o.nogood_misses for o in outcomes),
            justify_cache_hits=sum(o.justify_cache_hits for o in outcomes),
            path_cache_hits=sum(o.path_cache_hits for o in outcomes),
            path_cache_misses=sum(o.path_cache_misses for o in outcomes),
            dptrace_sweeps_avoided=sum(
                o.dptrace_sweeps_avoided for o in outcomes
            ),
            conflicts=sum(o.conflicts for o in outcomes),
            learned_clauses=sum(o.learned_clauses for o in outcomes),
            backjumps=sum(o.backjumps for o in outcomes),
            clause_hits=sum(o.clause_hits for o in outcomes),
            refuted_unjustifiable=sum(
                o.refuted_unjustifiable for o in outcomes
            ),
            restarts=sum(o.restarts for o in outcomes),
        )

    def _write_checkpoint(
        self,
        checkpoint: CampaignCheckpoint | None,
        outcome: ErrorOutcome,
        test: dict[str, Any] | None,
    ) -> None:
        if checkpoint is None:
            return
        checkpoint.append(outcome, test)
        self.events.emit(
            "checkpoint-written",
            path=checkpoint.path,
            records=checkpoint.n_written,
            error=outcome.error,
        )
