"""Campaign driver: run TG over an error list and report Table-1 statistics.

An error counts as **detected** only when the whole chain succeeds: TG finds
a test, the test realizes as an instruction program, and the program
distinguishes the erroneous implementation from the ISA specification by
co-simulation.  Everything else is **aborted** — the same accounting as the
paper's Table 1.

The drivers here are single-process; :mod:`repro.campaign.orchestrator`
shards the same campaigns across a worker pool.  Both paths funnel through
:func:`run_serial_campaign`, so ``jobs=1`` orchestration is the very loop
``DlxCampaign.run`` has always executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.tg import TestGenerator, TGStatus
from repro.errors.models import DesignError
from repro.model.processor import Processor


@dataclass
class ErrorOutcome:
    """Per-error campaign record."""

    error: str
    detected: bool
    test_length: int = 0
    nontrivial_instructions: int = 0
    backtracks: int = 0
    final_backtracks: int = 0
    attempts: int = 0
    seconds: float = 0.0
    failure_stage: str = ""  # "", "tg", "realize", "isa-check", "worker"
    #: Set when error simulation (fault dropping) detected this error with
    #: a test generated for another error, skipping TG entirely.
    dropped_by: str = ""
    #: CPU seconds per TG engine phase (dptrace/ctrljust/dprelax/cosim).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Golden-trace cache traffic during this error's exposure checks.
    golden_hits: int = 0
    golden_misses: int = 0
    #: Exposure checks screened by a cone fork / decided without a full
    #: bad-machine co-simulation (see ``repro.datapath.faultsim``).
    exposure_forks: int = 0
    exposure_fork_decided: int = 0
    #: Search-accelerator traffic (see ``repro.core.nogoods``): learned
    #: no-good and path-set cache hits/misses, memoized justification
    #: answers, and full C/O sweeps the incremental DPTRACE avoided.
    nogood_hits: int = 0
    nogood_misses: int = 0
    justify_cache_hits: int = 0
    path_cache_hits: int = 0
    path_cache_misses: int = 0
    dptrace_sweeps_avoided: int = 0
    #: CDCL refuter activity (see ``repro.core.clauses``): conflicts
    #: analyzed, 1-UIP clauses learned, non-chronological backjumps,
    #: certificate hits from the clause DB, and windows proven
    #: unjustifiable (refuted instead of search-exhausted).
    conflicts: int = 0
    learned_clauses: int = 0
    backjumps: int = 0
    clause_hits: int = 0
    refuted_unjustifiable: int = 0
    #: Luby restarts taken by restart-capable CTRLJUST searches (always 0
    #: with the ``restarts`` knob off).
    restarts: int = 0
    #: CPU seconds this error actually consumed (``time.process_time``
    #: delta around TG + realization + ISA check), next to the wall-clock
    #: ``seconds`` — what the deadline bank's deposits are computed from.
    cpu_seconds: float = 0.0
    #: The CPU deadline this error ran under (base deadline, or base +
    #: banked grant on a re-queued attempt) — makes banking decisions
    #: auditable from the ``--json`` run report.
    deadline_grant: float = 0.0
    #: The TG abort was forced by the CPU deadline: the outcome is
    #: time-bound (taint) — never deposits to the deadline bank, and is
    #: the re-queue trigger when banking is on.
    deadline_hit: bool = False


@dataclass
class CampaignReport:
    """Aggregate campaign statistics in the shape of Table 1."""

    outcomes: list[ErrorOutcome] = field(default_factory=list)
    total_seconds: float = 0.0
    #: Set when the run was stopped cooperatively (SIGINT, service drain)
    #: before the error list was exhausted; the outcomes cover only the
    #: completed prefix.
    interrupted: bool = False
    #: Deadline-bank accounting (see ``repro.campaign.banking``); present
    #: only when the orchestrator ran with ``deadline_bank=True``, so
    #: knobs-off report dictionaries keep their exact historical shape.
    bank: dict | None = None

    @property
    def n_errors(self) -> int:
        return len(self.outcomes)

    @property
    def n_detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def n_aborted(self) -> int:
        return self.n_errors - self.n_detected

    @property
    def detection_rate(self) -> float:
        return self.n_detected / self.n_errors if self.n_errors else 0.0

    @property
    def avg_test_length(self) -> float:
        lengths = [o.test_length for o in self.outcomes if o.detected]
        return sum(lengths) / len(lengths) if lengths else 0.0

    @property
    def backtracks_detected(self) -> int:
        """Backtracks of the successful searches only, summed over the
        detected errors — the paper's Table 1 accounting (their 50)."""
        return sum(o.final_backtracks for o in self.outcomes if o.detected)

    @property
    def backtracks_total(self) -> int:
        """All backtracks spent, including failed exploration rounds."""
        return sum(o.backtracks for o in self.outcomes)

    @property
    def cpu_minutes(self) -> float:
        return self.total_seconds / 60.0

    def table1(self, title: str = "Test generation for bus SSL errors") -> str:
        """Render the campaign in the paper's Table 1 format."""
        rows = [
            ("No. of errors", f"{self.n_errors}"),
            ("No. of errors detected", f"{self.n_detected}"),
            ("No. of errors aborted", f"{self.n_aborted}"),
            ("Average test sequence length", f"{self.avg_test_length:.1f}"),
            (
                "No. of backtracks (detected errors only)",
                f"{self.backtracks_detected}",
            ),
            ("CPU time [minutes]", f"{self.cpu_minutes:.1f}"),
        ]
        width = max(len(r[0]) for r in rows) + 2
        lines = [title, "-" * (width + 8)]
        lines += [f"{name:<{width}}{value:>6}" for name, value in rows]
        return "\n".join(lines)


def _outcome_from_result(error: DesignError, result) -> ErrorOutcome:
    """The (not-yet-detected) outcome skeleton carrying TG's statistics."""
    return ErrorOutcome(
        error=error.describe(),
        detected=False,
        backtracks=result.backtracks,
        final_backtracks=result.final_backtracks,
        attempts=result.attempts,
        phase_seconds=dict(result.phase_seconds),
        golden_hits=result.golden_hits,
        golden_misses=result.golden_misses,
        exposure_forks=result.exposure_forks,
        exposure_fork_decided=result.exposure_fork_decided,
        nogood_hits=result.nogood_hits,
        nogood_misses=result.nogood_misses,
        justify_cache_hits=result.justify_cache_hits,
        path_cache_hits=result.path_cache_hits,
        path_cache_misses=result.path_cache_misses,
        dptrace_sweeps_avoided=result.dptrace_sweeps_avoided,
        conflicts=result.conflicts,
        learned_clauses=result.learned_clauses,
        backjumps=result.backjumps,
        clause_hits=result.clause_hits,
        refuted_unjustifiable=result.refuted_unjustifiable,
        restarts=result.restarts,
        deadline_hit=result.deadline_hit,
    )


class CampaignBase:
    """Shared campaign machinery over a concrete test vehicle.

    Subclasses provide the per-error pipeline (:meth:`_run_error_with_test`)
    plus the handful of vehicle-specific hooks the shared loop and the
    orchestrator need: re-checking a realized test against another error
    (fault dropping) and (de)serializing realized tests so they can cross a
    process boundary or land in a checkpoint.
    """

    processor: Processor
    generator: TestGenerator

    def default_errors(self, **kwargs) -> list[DesignError]:
        raise NotImplementedError

    def _run_error_with_test(self, error: DesignError):
        """Run TG + realization + ISA check; return ``(outcome, realized)``
        where ``realized`` is the realized test when detected, else None."""
        raise NotImplementedError

    def detects_realized(self, realized, error: DesignError) -> bool:
        """Does an already-realized test also detect ``error``?"""
        raise NotImplementedError

    def detects_realized_batch(
        self, realized, errors: Sequence[DesignError]
    ) -> list[bool]:
        """``[self.detects_realized(realized, e) for e in errors]``.

        Vehicles with a batch fault simulator override this to run the
        fault-free trace once and cone-fork all errors against it; the
        base implementation just loops.
        """
        return [self.detects_realized(realized, e) for e in errors]

    def nontrivial_count(self, program) -> int:
        """Instructions in ``program`` other than NOP."""
        raise NotImplementedError

    def serialize_realized(self, realized) -> dict[str, Any]:
        raise NotImplementedError

    def deserialize_realized(self, data: dict[str, Any]):
        raise NotImplementedError

    def run_error(self, error: DesignError) -> ErrorOutcome:
        outcome, _ = self._run_error_with_test(error)
        return outcome

    def dropped_outcome(self, other: DesignError, realized,
                        dropper: str) -> ErrorOutcome:
        """The record for an error detected by another error's test."""
        return ErrorOutcome(
            error=other.describe(),
            detected=True,
            test_length=len(realized.program),
            nontrivial_instructions=self.nontrivial_count(realized.program),
            dropped_by=dropper,
        )

    def run(
        self,
        errors: Sequence[DesignError],
        error_simulation: bool = False,
    ) -> CampaignReport:
        """Run the campaign.

        With ``error_simulation`` enabled (the paper's stated future
        improvement: "no error simulation was used in this preliminary
        implementation"), every test that detects its target error is also
        simulated against the remaining errors, and the ones it detects are
        dropped from the TG work list.
        """
        report = CampaignReport()
        start = time.monotonic()
        run_serial_campaign(
            self, list(errors), report, error_simulation=error_simulation
        )
        report.total_seconds = time.monotonic() - start
        return report


def run_serial_campaign(
    campaign: CampaignBase,
    remaining: list[DesignError],
    report: CampaignReport,
    error_simulation: bool = False,
    on_started: Callable[[DesignError], None] | None = None,
    on_finished: Callable[[ErrorOutcome, Any], None] | None = None,
    on_dropped: Callable[[ErrorOutcome, list[ErrorOutcome], float], None]
    | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> None:
    """The serial campaign loop, appending outcomes to ``report``.

    ``remaining`` is consumed in place (fault dropping removes errors that
    an earlier test already detects).  The optional callbacks let the
    orchestrator attach event emission and checkpointing without forking
    the control flow: ``on_finished(outcome, realized)`` fires once the
    outcome is final (dropping time folded in), ``on_dropped(outcome,
    dropped, seconds)`` after a test removed errors from the work list.
    ``should_stop`` is polled between errors: when it returns True the
    loop returns early, leaving the unattempted tail in ``remaining`` —
    the cooperative-interrupt hook (the in-flight error always finishes,
    so every appended outcome is complete and checkpointable).
    """
    while remaining:
        if should_stop is not None and should_stop():
            return
        error = remaining.pop(0)
        if on_started is not None:
            on_started(error)
        outcome, realized = campaign._run_error_with_test(error)
        report.outcomes.append(outcome)
        dropped: list[ErrorOutcome] = []
        drop_seconds = 0.0
        if error_simulation and realized is not None:
            drop_start = time.monotonic()
            survivors = []
            verdicts = campaign.detects_realized_batch(realized, remaining)
            for other, hit in zip(remaining, verdicts):
                if hit:
                    record = campaign.dropped_outcome(
                        other, realized, outcome.error
                    )
                    report.outcomes.append(record)
                    dropped.append(record)
                else:
                    survivors.append(other)
            remaining[:] = survivors
            drop_seconds = time.monotonic() - drop_start
            outcome.seconds += drop_seconds
        if on_finished is not None:
            on_finished(outcome, realized)
        if dropped and on_dropped is not None:
            on_dropped(outcome, dropped, drop_seconds)


class DlxCampaign(CampaignBase):
    """Table-1 campaign on the DLX (bus SSL errors in EX/MEM/WB)."""

    def __init__(
        self,
        processor: Processor | None = None,
        deadline_seconds: float = 20.0,
    ) -> None:
        from repro.dlx import build_dlx
        from repro.dlx.env import dlx_exposure_comparator

        self.processor = processor or build_dlx()
        self.generator = TestGenerator(
            self.processor,
            deadline_seconds=deadline_seconds,
            exposure_comparator=dlx_exposure_comparator,
        )

    def default_errors(
        self, max_bits_per_net: int | None = 4
    ) -> list[DesignError]:
        """Bus SSL errors in the execute, memory and write-back stages.

        With the default bit sampling (3 low bits + MSB per net, both
        polarities) the campaign size lands near the paper's 298 errors;
        ``max_bits_per_net=None`` enumerates every bit.
        """
        from repro.dlx.datapath import STAGE_EX, STAGE_MEM, STAGE_WB
        from repro.errors.models import enumerate_bus_ssl

        return enumerate_bus_ssl(
            self.processor.datapath,
            stages={STAGE_EX, STAGE_MEM, STAGE_WB},
            max_bits_per_net=max_bits_per_net,
        )

    def _run_error_with_test(self, error: DesignError):
        from repro.dlx import detects
        from repro.dlx.realize import RealizationError, realize

        start = time.monotonic()
        cpu_start = time.process_time()
        result = self.generator.generate(error)
        outcome = _outcome_from_result(error, result)
        outcome.deadline_grant = self.generator.deadline_seconds or 0.0
        realized = None
        if result.status is not TGStatus.DETECTED:
            outcome.failure_stage = "tg"
        else:
            try:
                realized = realize(self.processor, result.test)
            except RealizationError:
                outcome.failure_stage = "realize"
            else:
                if detects(
                    self.processor, realized.program, error,
                    realized.init_regs, realized.init_memory,
                ):
                    outcome.detected = True
                    outcome.test_length = len(realized.program)
                    outcome.nontrivial_instructions = self.nontrivial_count(
                        realized.program
                    )
                else:
                    outcome.failure_stage = "isa-check"
                    realized = None
        outcome.cpu_seconds = time.process_time() - cpu_start
        outcome.seconds = time.monotonic() - start
        return outcome, realized

    def detects_realized(self, realized, error: DesignError) -> bool:
        from repro.dlx import detects

        return detects(
            self.processor, realized.program, error,
            realized.init_regs, realized.init_memory,
        )

    def detects_realized_batch(
        self, realized, errors: Sequence[DesignError]
    ) -> list[bool]:
        from repro.dlx.env import batch_detects

        return batch_detects(
            self.processor, realized.program, errors,
            realized.init_regs, realized.init_memory,
        )

    def nontrivial_count(self, program) -> int:
        from repro.dlx.isa import NOP

        return sum(1 for i in program if i != NOP)

    def serialize_realized(self, realized) -> dict[str, Any]:
        from repro.campaign.serialize import realized_dlx_to_dict

        return realized_dlx_to_dict(realized)

    def deserialize_realized(self, data: dict[str, Any]):
        from repro.campaign.serialize import realized_dlx_from_dict

        return realized_dlx_from_dict(data)


class MiniCampaign(CampaignBase):
    """The same campaign on MiniPipe (execute/write-back stages)."""

    def __init__(
        self,
        processor: Processor | None = None,
        deadline_seconds: float = 10.0,
    ) -> None:
        from repro.mini import build_minipipe

        self.processor = processor or build_minipipe()
        self.generator = TestGenerator(
            self.processor, deadline_seconds=deadline_seconds
        )

    def default_errors(
        self, max_bits_per_net: int | None = None
    ) -> list[DesignError]:
        from repro.errors.models import enumerate_bus_ssl

        return enumerate_bus_ssl(
            self.processor.datapath,
            stages={1, 2},
            max_bits_per_net=max_bits_per_net,
        )

    def _run_error_with_test(self, error: DesignError):
        from repro.mini import detects
        from repro.mini.realize import RealizationError, realize

        start = time.monotonic()
        cpu_start = time.process_time()
        result = self.generator.generate(error)
        outcome = _outcome_from_result(error, result)
        outcome.deadline_grant = self.generator.deadline_seconds or 0.0
        realized = None
        if result.status is not TGStatus.DETECTED:
            outcome.failure_stage = "tg"
        else:
            try:
                realized = realize(result.test)
            except RealizationError:
                outcome.failure_stage = "realize"
            else:
                if detects(
                    self.processor, realized.program, error,
                    realized.init_regs,
                ):
                    outcome.detected = True
                    outcome.test_length = len(realized.program)
                    outcome.nontrivial_instructions = self.nontrivial_count(
                        realized.program
                    )
                else:
                    outcome.failure_stage = "isa-check"
                    realized = None
        outcome.cpu_seconds = time.process_time() - cpu_start
        outcome.seconds = time.monotonic() - start
        return outcome, realized

    def detects_realized(self, realized, error: DesignError) -> bool:
        from repro.mini import detects

        return detects(
            self.processor, realized.program, error, realized.init_regs
        )

    def detects_realized_batch(
        self, realized, errors: Sequence[DesignError]
    ) -> list[bool]:
        from repro.mini.spec import batch_detects

        return batch_detects(
            self.processor, realized.program, errors, realized.init_regs
        )

    def nontrivial_count(self, program) -> int:
        from repro.mini.isa import NOP

        return sum(1 for i in program if i != NOP)

    def serialize_realized(self, realized) -> dict[str, Any]:
        from repro.campaign.serialize import realized_mini_to_dict

        return realized_mini_to_dict(realized)

    def deserialize_realized(self, data: dict[str, Any]):
        from repro.campaign.serialize import realized_mini_from_dict

        return realized_mini_from_dict(data)
