"""Campaign driver: run TG over an error list and report Table-1 statistics.

An error counts as **detected** only when the whole chain succeeds: TG finds
a test, the test realizes as an instruction program, and the program
distinguishes the erroneous implementation from the ISA specification by
co-simulation.  Everything else is **aborted** — the same accounting as the
paper's Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.tg import TestGenerator, TGStatus
from repro.errors.models import DesignError
from repro.model.processor import Processor


@dataclass
class ErrorOutcome:
    """Per-error campaign record."""

    error: str
    detected: bool
    test_length: int = 0
    nontrivial_instructions: int = 0
    backtracks: int = 0
    final_backtracks: int = 0
    attempts: int = 0
    seconds: float = 0.0
    failure_stage: str = ""  # "", "tg", "realize", "isa-check"
    #: Set when error simulation (fault dropping) detected this error with
    #: a test generated for another error, skipping TG entirely.
    dropped_by: str = ""


@dataclass
class CampaignReport:
    """Aggregate campaign statistics in the shape of Table 1."""

    outcomes: list[ErrorOutcome] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def n_errors(self) -> int:
        return len(self.outcomes)

    @property
    def n_detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def n_aborted(self) -> int:
        return self.n_errors - self.n_detected

    @property
    def detection_rate(self) -> float:
        return self.n_detected / self.n_errors if self.n_errors else 0.0

    @property
    def avg_test_length(self) -> float:
        lengths = [o.test_length for o in self.outcomes if o.detected]
        return sum(lengths) / len(lengths) if lengths else 0.0

    @property
    def backtracks_detected(self) -> int:
        """Backtracks of the successful searches only, summed over the
        detected errors — the paper's Table 1 accounting (their 50)."""
        return sum(o.final_backtracks for o in self.outcomes if o.detected)

    @property
    def backtracks_total(self) -> int:
        """All backtracks spent, including failed exploration rounds."""
        return sum(o.backtracks for o in self.outcomes)

    @property
    def cpu_minutes(self) -> float:
        return self.total_seconds / 60.0

    def table1(self, title: str = "Test generation for bus SSL errors") -> str:
        """Render the campaign in the paper's Table 1 format."""
        rows = [
            ("No. of errors", f"{self.n_errors}"),
            ("No. of errors detected", f"{self.n_detected}"),
            ("No. of errors aborted", f"{self.n_aborted}"),
            ("Average test sequence length", f"{self.avg_test_length:.1f}"),
            (
                "No. of backtracks (detected errors only)",
                f"{self.backtracks_detected}",
            ),
            ("CPU time [minutes]", f"{self.cpu_minutes:.1f}"),
        ]
        width = max(len(r[0]) for r in rows) + 2
        lines = [title, "-" * (width + 8)]
        lines += [f"{name:<{width}}{value:>6}" for name, value in rows]
        return "\n".join(lines)


class DlxCampaign:
    """Table-1 campaign on the DLX (bus SSL errors in EX/MEM/WB)."""

    def __init__(
        self,
        processor: Processor | None = None,
        deadline_seconds: float = 20.0,
    ) -> None:
        from repro.dlx import build_dlx
        from repro.dlx.env import dlx_exposure_comparator

        self.processor = processor or build_dlx()
        self.generator = TestGenerator(
            self.processor,
            deadline_seconds=deadline_seconds,
            exposure_comparator=dlx_exposure_comparator,
        )

    def default_errors(
        self, max_bits_per_net: int | None = 4
    ) -> list[DesignError]:
        """Bus SSL errors in the execute, memory and write-back stages.

        With the default bit sampling (3 low bits + MSB per net, both
        polarities) the campaign size lands near the paper's 298 errors;
        ``max_bits_per_net=None`` enumerates every bit.
        """
        from repro.dlx.datapath import STAGE_EX, STAGE_MEM, STAGE_WB
        from repro.errors.models import enumerate_bus_ssl

        return enumerate_bus_ssl(
            self.processor.datapath,
            stages={STAGE_EX, STAGE_MEM, STAGE_WB},
            max_bits_per_net=max_bits_per_net,
        )

    def run_error(self, error: DesignError) -> ErrorOutcome:
        outcome, _ = self._run_error_with_test(error)
        return outcome

    def _run_error_with_test(self, error: DesignError):
        from repro.dlx import detects
        from repro.dlx.isa import NOP
        from repro.dlx.realize import RealizationError, realize

        start = time.monotonic()
        result = self.generator.generate(error)
        outcome = ErrorOutcome(
            error=error.describe(),
            detected=False,
            backtracks=result.backtracks,
            final_backtracks=result.final_backtracks,
            attempts=result.attempts,
        )
        realized = None
        if result.status is not TGStatus.DETECTED:
            outcome.failure_stage = "tg"
        else:
            try:
                realized = realize(self.processor, result.test)
            except RealizationError:
                outcome.failure_stage = "realize"
            else:
                if detects(
                    self.processor, realized.program, error,
                    realized.init_regs, realized.init_memory,
                ):
                    outcome.detected = True
                    outcome.test_length = len(realized.program)
                    outcome.nontrivial_instructions = sum(
                        1 for i in realized.program if i != NOP
                    )
                else:
                    outcome.failure_stage = "isa-check"
                    realized = None
        outcome.seconds = time.monotonic() - start
        return outcome, realized

    def run(
        self,
        errors: Sequence[DesignError],
        error_simulation: bool = False,
    ) -> CampaignReport:
        """Run the campaign.

        With ``error_simulation`` enabled (the paper's stated future
        improvement: "no error simulation was used in this preliminary
        implementation"), every test that detects its target error is also
        simulated against the remaining errors, and the ones it detects are
        dropped from the TG work list.
        """
        from repro.dlx import detects
        from repro.dlx.isa import NOP

        report = CampaignReport()
        start = time.monotonic()
        remaining = list(errors)
        while remaining:
            error = remaining.pop(0)
            outcome, realized = self._run_error_with_test(error)
            report.outcomes.append(outcome)
            if not error_simulation or realized is None:
                continue
            drop_start = time.monotonic()
            survivors = []
            for other in remaining:
                if detects(
                    self.processor, realized.program, other,
                    realized.init_regs, realized.init_memory,
                ):
                    dropped = ErrorOutcome(
                        error=other.describe(),
                        detected=True,
                        test_length=len(realized.program),
                        nontrivial_instructions=sum(
                            1 for i in realized.program if i != NOP
                        ),
                        dropped_by=outcome.error,
                    )
                    dropped.seconds = 0.0
                    report.outcomes.append(dropped)
                else:
                    survivors.append(other)
            remaining = survivors
            outcome.seconds += time.monotonic() - drop_start
        report.total_seconds = time.monotonic() - start
        return report


class MiniCampaign:
    """The same campaign on MiniPipe (execute/write-back stages)."""

    def __init__(
        self,
        processor: Processor | None = None,
        deadline_seconds: float = 10.0,
    ) -> None:
        from repro.mini import build_minipipe

        self.processor = processor or build_minipipe()
        self.generator = TestGenerator(
            self.processor, deadline_seconds=deadline_seconds
        )

    def default_errors(
        self, max_bits_per_net: int | None = None
    ) -> list[DesignError]:
        from repro.errors.models import enumerate_bus_ssl

        return enumerate_bus_ssl(
            self.processor.datapath,
            stages={1, 2},
            max_bits_per_net=max_bits_per_net,
        )

    def run_error(self, error: DesignError) -> ErrorOutcome:
        from repro.mini import detects
        from repro.mini.isa import NOP
        from repro.mini.realize import RealizationError, realize

        start = time.monotonic()
        result = self.generator.generate(error)
        outcome = ErrorOutcome(
            error=error.describe(),
            detected=False,
            backtracks=result.backtracks,
            final_backtracks=result.final_backtracks,
            attempts=result.attempts,
        )
        if result.status is not TGStatus.DETECTED:
            outcome.failure_stage = "tg"
        else:
            try:
                realized = realize(result.test)
            except RealizationError:
                outcome.failure_stage = "realize"
            else:
                if detects(
                    self.processor, realized.program, error,
                    realized.init_regs,
                ):
                    outcome.detected = True
                    outcome.test_length = len(realized.program)
                    outcome.nontrivial_instructions = sum(
                        1 for i in realized.program if i != NOP
                    )
                else:
                    outcome.failure_stage = "isa-check"
        outcome.seconds = time.monotonic() - start
        return outcome

    def run(self, errors: Sequence[DesignError]) -> CampaignReport:
        report = CampaignReport()
        start = time.monotonic()
        for error in errors:
            report.outcomes.append(self.run_error(error))
        report.total_seconds = time.monotonic() - start
        return report
