"""Campaign checkpointing: append-only JSONL with crash-safe resume.

A long campaign appends one JSON record per completed error to a checkpoint
file.  Each record holds the full :class:`ErrorOutcome` plus, when the
error was detected, the serialized realized test — so the checkpoint
doubles as the generated verification suite.  Records are written as single
``write()`` calls and flushed + fsynced, so a killed run loses at most the
record being written; :meth:`CampaignCheckpoint.load` tolerates a torn
final line and the orchestrator's ``resume`` path skips every error the
file already covers.

Record schema (one per line)::

    {"kind": "campaign-checkpoint",
     "outcome": {... ErrorOutcome fields ...},
     "test": {...serialized realized test...} | null}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

from repro.campaign.runner import ErrorOutcome

RECORD_KIND = "campaign-checkpoint"


@dataclass
class CheckpointRecord:
    """One completed error: its outcome and (optionally) its test."""

    outcome: ErrorOutcome
    test: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": RECORD_KIND,
            "outcome": vars(self.outcome).copy(),
            "test": self.test,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "CheckpointRecord":
        if data.get("kind") != RECORD_KIND:
            raise ValueError("not a campaign checkpoint record")
        return CheckpointRecord(
            outcome=ErrorOutcome(**data["outcome"]),
            test=data.get("test"),
        )


class CampaignCheckpoint:
    """Append-only JSONL writer for campaign checkpoint records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.n_written = 0
        self._handle = None

    def append(self, outcome: ErrorOutcome,
               test: dict[str, Any] | None = None) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        record = CheckpointRecord(outcome=outcome, test=test)
        self._handle.write(
            json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.n_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def load(path: str) -> list[CheckpointRecord]:
        """Records from ``path``; [] when the file does not exist.

        A torn final line (the run was killed mid-write) is skipped;
        corruption anywhere else raises ``ValueError``.
        """
        if not os.path.exists(path):
            return []
        with open(path) as handle:
            lines = handle.read().splitlines()
        records: list[CheckpointRecord] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    break
                raise ValueError(
                    f"corrupt checkpoint record at {path}:{number}"
                ) from None
            records.append(CheckpointRecord.from_dict(data))
        return records

    @staticmethod
    def completed_errors(path: str) -> set[str]:
        """Descriptions of every error the checkpoint already covers."""
        return {
            record.outcome.error for record in CampaignCheckpoint.load(path)
        }
