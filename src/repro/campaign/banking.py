"""Adaptive deadline banking: reinvest unspent per-error CPU budget.

Campaign wall clock is deadline-dominated: most errors finish in
milliseconds, a handful pin their full CPU deadline and abort.  With
``deadline_bank=True`` the orchestrator runs each campaign with

* a :class:`DeadlineBank` — every error that finishes *under* its CPU
  deadline (and was not deadline-tainted) deposits the unspent budget;
  errors whose TG aborted *because of* the deadline are re-queued once,
  after the normal queue drains, with one extra base deadline withdrawn
  from the bank (total = 2x base).  The taint rule from
  ``nogoods.record_blame`` applies on the deposit side too: a
  ``deadline_hit`` outcome never deposits.
* an :class:`EffortPredictor` — dispatch order becomes easiest-first
  (hardest-last completion), so with ``--jobs N`` the expensive
  stragglers are interleaved with cheap work instead of serializing the
  tail, and with fault dropping the cheap detections run (and drop
  siblings) before the deadline-pinned errors get their turn.

Both are campaign-layer policies: they never change what a single TG run
computes, only *when* it runs and with how much budget.  Knobs-off
behavior is byte-identical because neither object is even constructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeadlineBank:
    """Per-campaign account of unspent CPU deadline seconds.

    Invariants (pinned by unit tests): the balance is never negative —
    deposits clamp at zero and grants require sufficient funds — and
    every error is granted at most once, so a re-queued error that pins
    its doubled deadline cannot loop.
    """

    balance: float = 0.0
    deposited: float = 0.0
    granted: float = 0.0
    deposits: int = 0
    grants: int = 0
    _granted_names: set = field(default_factory=set)

    def deposit(self, name: str, deadline: float, cpu_seconds: float,
                tainted: bool = False) -> float:
        """Bank ``deadline - cpu_seconds`` for one finished error.

        Returns the amount banked (0.0 for tainted outcomes — a
        deadline-hit run has no unspent budget worth trusting — and for
        overruns, which clamp at zero instead of going negative).
        """
        if tainted:
            return 0.0
        amount = max(0.0, deadline - cpu_seconds)
        if amount > 0.0:
            self.balance += amount
            self.deposited += amount
            self.deposits += 1
        return amount

    def try_grant(self, name: str, amount: float) -> bool:
        """Withdraw ``amount`` for a re-queued error; at most once per
        error, and only when the balance covers the full amount."""
        if amount <= 0.0 or name in self._granted_names:
            return False
        if self.balance < amount:
            return False
        self.balance -= amount
        self.granted += amount
        self.grants += 1
        self._granted_names.add(name)
        return True

    def stats(self) -> dict:
        """Auditable account summary for run reports and ``/metrics``."""
        return {
            "balance_seconds": self.balance,
            "deposited_seconds": self.deposited,
            "granted_seconds": self.granted,
            "deposits": self.deposits,
            "grants": self.grants,
        }


class EffortPredictor:
    """Cheap per-error effort estimate for hardest-last dispatch.

    The static proxy is ``window count x objective-site size`` — how many
    pipeframe windows TG may sweep times how wide the error site's net is
    (a stand-in for the objective count each window generates).  It is
    refined online: :meth:`observe` keeps the *maximum* backtrack count
    seen for each site net (max, not last, so the refinement is
    independent of completion order — jobs=1 and jobs=N campaigns sort
    identically), and observed effort dominates the static guess.

    Predictions only reorder dispatch; they never change any error's
    budget or outcome, so a bad prediction costs wall clock, not
    correctness.
    """

    def __init__(self, campaign) -> None:
        generator = getattr(campaign, "generator", None)
        lo = getattr(generator, "min_frames", None) or 0
        hi = getattr(generator, "max_frames", None) or 0
        self._windows = max(1, hi - lo + 1)
        self._datapath = getattr(
            getattr(campaign, "processor", None), "datapath", None
        )
        self._observed: dict[str, int] = {}

    def _site_net(self, error) -> str:
        try:
            return error.site_net
        except AttributeError:
            try:
                return error.site_net_in(self._datapath)
            except Exception:
                return error.describe()

    def _static(self, error) -> int:
        width = 1
        if self._datapath is not None:
            try:
                width = max(1, self._datapath.net(self._site_net(error)).width)
            except Exception:
                width = 1
        return self._windows * width

    def observe(self, error, backtracks: int) -> None:
        """Refine with a finished error's backtrack count (max-merged per
        site net, so order of observation does not matter)."""
        net = self._site_net(error)
        if backtracks > self._observed.get(net, 0):
            self._observed[net] = backtracks

    def predict(self, error) -> tuple:
        """Sort key: ascending = easiest-first dispatch.  Observed
        backtracks on the same site net outrank the static proxy."""
        return (self._observed.get(self._site_net(error), 0),
                self._static(error))
