"""Campaign drivers, parallel orchestration, Table-1 reporting and suite
serialization."""

from repro.campaign.checkpoint import CampaignCheckpoint, CheckpointRecord
from repro.campaign.events import (
    EVENT_KINDS,
    CampaignEvent,
    EventLog,
    EventStream,
    ProgressRenderer,
)
from repro.campaign.orchestrator import (
    CampaignOrchestrator,
    OrchestratorConfig,
    build_campaign,
    campaign_run_to_dict,
)
from repro.campaign.runner import (
    CampaignBase,
    CampaignReport,
    DlxCampaign,
    ErrorOutcome,
    MiniCampaign,
    run_serial_campaign,
)
from repro.campaign.serialize import (
    load_json,
    realized_dlx_from_dict,
    realized_dlx_to_dict,
    realized_mini_from_dict,
    realized_mini_to_dict,
    report_from_dict,
    report_to_dict,
    save_json,
    testcase_from_dict,
    testcase_to_dict,
)

__all__ = [
    "EVENT_KINDS",
    "CampaignBase",
    "CampaignCheckpoint",
    "CampaignEvent",
    "CampaignOrchestrator",
    "CampaignReport",
    "CheckpointRecord",
    "DlxCampaign",
    "ErrorOutcome",
    "EventLog",
    "EventStream",
    "MiniCampaign",
    "OrchestratorConfig",
    "ProgressRenderer",
    "build_campaign",
    "campaign_run_to_dict",
    "load_json",
    "realized_dlx_from_dict",
    "realized_dlx_to_dict",
    "realized_mini_from_dict",
    "realized_mini_to_dict",
    "report_from_dict",
    "report_to_dict",
    "run_serial_campaign",
    "save_json",
    "testcase_from_dict",
    "testcase_to_dict",
]
