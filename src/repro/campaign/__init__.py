"""Campaign drivers, Table-1 reporting and suite serialization."""

from repro.campaign.runner import (
    CampaignReport,
    DlxCampaign,
    ErrorOutcome,
    MiniCampaign,
)
from repro.campaign.serialize import (
    load_json,
    realized_dlx_from_dict,
    realized_dlx_to_dict,
    report_from_dict,
    report_to_dict,
    save_json,
    testcase_from_dict,
    testcase_to_dict,
)

__all__ = [
    "CampaignReport",
    "DlxCampaign",
    "ErrorOutcome",
    "MiniCampaign",
    "load_json",
    "realized_dlx_from_dict",
    "realized_dlx_to_dict",
    "report_from_dict",
    "report_to_dict",
    "save_json",
    "testcase_from_dict",
    "testcase_to_dict",
]
