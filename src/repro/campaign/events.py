"""Structured campaign event stream.

A long campaign run is observable through a stream of typed events rather
than ad-hoc prints: the orchestrator emits one event per lifecycle step and
any number of subscribers consume them — a live progress renderer for
humans, an :class:`EventLog` for the machine-readable ``--json`` report,
test assertions, or anything else.

Event kinds and their payload fields (all payloads also carry the emission
wall-clock time):

``campaign-started``
    ``target``, ``n_errors``, ``jobs``, ``error_simulation``, ``resumed``
    (errors skipped because a resumed checkpoint already holds them).
``error-started``
    ``error``, ``index`` (position in the submitted error list).
``error-finished``
    ``error``, ``index``, ``detected``, ``failure_stage``, ``test_length``,
    ``backtracks``, ``final_backtracks``, ``attempts``, ``seconds``.
``error-profile``
    ``error``, ``index``, ``phase_seconds`` (CPU seconds per TG phase:
    dptrace / ctrljust / dprelax / cosim), ``golden_hits``,
    ``golden_misses``, ``exposure_forks``, ``exposure_fork_decided``,
    ``backtracks``, plus the search-accelerator counters
    ``nogood_hits`` / ``nogood_misses`` (learned no-good lookups),
    ``justify_cache_hits`` (memoized CTRLJUST answers),
    ``path_cache_hits`` / ``path_cache_misses`` (DPTRACE selections) and
    ``dptrace_sweeps_avoided`` (full C/O recomputes the incremental
    session replaced).  Emitted only when profiling is enabled
    (``--profile``).
``profile-summary``
    The same fields as ``error-profile`` (minus ``error``/``index``),
    summed over every error.  One per profiled campaign, before
    ``campaign-finished``.
``test-dropped-others``
    ``error`` (whose test was simulated), ``dropped`` (list of error
    descriptions removed from the work list), ``seconds``.
``checkpoint-written``
    ``path``, ``records`` (total records in the file), ``error``.
``campaign-finished``
    ``n_errors``, ``n_detected``, ``n_aborted``, ``backtracks``,
    ``wall_seconds``.

The differential fuzzer and conformance-matrix runner (``repro.fuzz``)
emit their own kinds into the same stream:

``fuzz-started``
    ``machine``, ``iters``, ``seed``, ``jobs``, ``planted`` (error
    description or ``None``).
``fuzz-divergence``
    ``index`` (iteration), ``mismatch`` (first differing architectural
    item), ``planted``.
``fuzz-minimized``
    ``index``, ``original_length``, ``minimized_length``, ``path``
    (emitted reproducer file, or ``None`` when not persisted).
``fuzz-finished``
    ``machine``, ``iterations``, ``divergences``, ``wall_seconds``,
    ``budget_exhausted``.
``matrix-started``
    ``machine``, ``n_errors``, ``programs``.
``matrix-classified``
    ``machine``, ``error``, ``classification``, ``programs_run``.
``matrix-finished``
    ``machine``, ``detected``, ``undetected_by_budget``,
    ``proven_benign``, ``wall_seconds``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

EVENT_KINDS = frozenset({
    "campaign-started",
    "error-started",
    "error-finished",
    "error-profile",
    "profile-summary",
    "test-dropped-others",
    "checkpoint-written",
    "campaign-finished",
    "fuzz-started",
    "fuzz-divergence",
    "fuzz-minimized",
    "fuzz-finished",
    "matrix-started",
    "matrix-classified",
    "matrix-finished",
})


@dataclass(frozen=True)
class CampaignEvent:
    """One structured event: a kind, a wall-clock stamp, and a payload."""

    kind: str
    wall_time: float
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "wall_time": self.wall_time,
            "data": dict(self.data),
        }


class EventStream:
    """Fan-out of campaign events to registered subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[CampaignEvent], None]] = []

    def subscribe(
        self, subscriber: Callable[[CampaignEvent], None]
    ) -> Callable[[CampaignEvent], None]:
        self._subscribers.append(subscriber)
        return subscriber

    def emit(self, kind: str, **data: Any) -> CampaignEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = CampaignEvent(kind=kind, wall_time=time.time(), data=data)
        for subscriber in self._subscribers:
            subscriber(event)
        return event


class EventLog:
    """Subscriber that records every event (for the ``--json`` report)."""

    def __init__(self) -> None:
        self.events: list[CampaignEvent] = []

    def __call__(self, event: CampaignEvent) -> None:
        self.events.append(event)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    def of_kind(self, kind: str) -> list[CampaignEvent]:
        return [event for event in self.events if event.kind == kind]


class ProgressRenderer:
    """Subscriber that renders a live one-line-per-error progress feed."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def _line(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def __call__(self, event: CampaignEvent) -> None:
        data = event.data
        if event.kind == "campaign-started":
            self._total = data["n_errors"]
            self._done = data.get("resumed", 0)
            bits = [f"{self._total} errors", f"{data['jobs']} worker(s)"]
            if data.get("error_simulation"):
                bits.append("error simulation on")
            if self._done:
                bits.append(f"{self._done} resumed from checkpoint")
            self._line(f"campaign[{data['target']}] started: "
                       + ", ".join(bits))
        elif event.kind == "error-finished":
            self._done += 1
            if data["detected"]:
                status = (f"detected (len {data['test_length']}, "
                          f"{data['final_backtracks']} backtracks)")
            else:
                status = f"aborted ({data['failure_stage']})"
            self._line(f"[{self._done:>4}/{self._total}] {data['error']}: "
                       f"{status} in {data['seconds']:.1f}s")
        elif event.kind == "test-dropped-others":
            dropped = data["dropped"]
            self._done += len(dropped)
            self._line(f"[{self._done:>4}/{self._total}] dropped "
                       f"{len(dropped)} error(s) with the test for "
                       f"{data['error']}")
        elif event.kind == "profile-summary":
            phases = ", ".join(
                f"{name} {seconds:.1f}s"
                for name, seconds in sorted(data["phase_seconds"].items())
            )
            self._line(f"profile: {phases or 'no phase samples'}; "
                       f"golden cache {data['golden_hits']} hit(s), "
                       f"{data['golden_misses']} fault-free sim(s)")
            if "nogood_hits" in data:
                self._line(
                    f"profile: search accel: "
                    f"{data['nogood_hits']} nogood hit(s) "
                    f"({data['nogood_misses']} miss(es)), "
                    f"{data['justify_cache_hits']} memoized "
                    f"justification(s), "
                    f"{data['path_cache_hits']} path-cache hit(s), "
                    f"{data['dptrace_sweeps_avoided']} co-state "
                    f"sweep(s) avoided")
        elif event.kind == "campaign-finished":
            self._line(f"campaign finished: {data['n_detected']} detected, "
                       f"{data['n_aborted']} aborted "
                       f"in {data['wall_seconds']:.1f}s wall clock")
        elif event.kind == "fuzz-started":
            planted = (f", planted {data['planted']}"
                       if data.get("planted") else "")
            self._line(f"fuzz[{data['machine']}] started: "
                       f"{data['iters']} iterations, seed {data['seed']}, "
                       f"{data['jobs']} worker(s){planted}")
        elif event.kind == "fuzz-divergence":
            self._line(f"fuzz: iteration {data['index']} DIVERGED "
                       f"({data['mismatch']})")
        elif event.kind == "fuzz-minimized":
            where = f" -> {data['path']}" if data.get("path") else ""
            self._line(f"fuzz: minimized iteration {data['index']} from "
                       f"{data['original_length']} to "
                       f"{data['minimized_length']} instruction(s){where}")
        elif event.kind == "fuzz-finished":
            budget = " (budget exhausted)" if data.get(
                "budget_exhausted") else ""
            self._line(f"fuzz[{data['machine']}] finished: "
                       f"{data['iterations']} iterations, "
                       f"{data['divergences']} divergence(s) "
                       f"in {data['wall_seconds']:.1f}s{budget}")
        elif event.kind == "matrix-started":
            self._line(f"matrix[{data['machine']}] started: "
                       f"{data['n_errors']} errors, "
                       f"{data['programs']} program(s) each")
        elif event.kind == "matrix-finished":
            self._line(f"matrix[{data['machine']}] finished: "
                       f"{data['detected']} detected, "
                       f"{data['undetected_by_budget']} undetected, "
                       f"{data['proven_benign']} proven benign "
                       f"in {data['wall_seconds']:.1f}s")
