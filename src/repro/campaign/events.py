"""Structured campaign event stream.

A long campaign run is observable through a stream of typed events rather
than ad-hoc prints: the orchestrator emits one event per lifecycle step and
any number of subscribers consume them — a live progress renderer for
humans, an :class:`EventLog` for the machine-readable ``--json`` report,
test assertions, or anything else.

Every event serializes with a ``schema_version`` (the wire format of the
stream, bumped on breaking payload changes) and a ``seq`` number that is
monotonic per :class:`EventStream` — clients of the campaign service
resume a live stream from the last ``seq`` they saw.  Readers tolerate
records written before these fields existed (:func:`event_from_dict`).

Event kinds and their payload fields (all payloads also carry the emission
wall-clock time):

``campaign-started``
    ``target``, ``n_errors``, ``jobs``, ``error_simulation``, ``resumed``
    (errors skipped because a resumed checkpoint already holds them).
``error-started``
    ``error``, ``index`` (position in the submitted error list).
``error-finished``
    ``error``, ``index``, ``detected``, ``failure_stage``, ``test_length``,
    ``backtracks``, ``final_backtracks``, ``attempts``, ``seconds``,
    ``cpu_seconds`` (process CPU time the attempt consumed) and
    ``deadline_grant`` (the CPU deadline the attempt ran under — the
    base deadline, or the doubled grant on a banked retry).
``error-requeued``
    ``error``, ``index``, ``grant_seconds`` (extra budget withdrawn from
    the deadline bank), ``total_deadline`` (base + grant the retry runs
    under) and ``balance_seconds`` (bank balance after the withdrawal).
    Emitted only with ``--deadline-bank``, between the main queue
    draining and the retry's second ``error-finished`` (which replaces
    the aborted outcome in the report).
``error-profile``
    ``error``, ``index``, ``phase_seconds`` (CPU seconds per TG phase:
    dptrace / ctrljust / dprelax / cosim), ``golden_hits``,
    ``golden_misses``, ``exposure_forks``, ``exposure_fork_decided``,
    ``backtracks``, plus the search-accelerator counters
    ``nogood_hits`` / ``nogood_misses`` (learned no-good lookups),
    ``justify_cache_hits`` (memoized CTRLJUST answers),
    ``path_cache_hits`` / ``path_cache_misses`` (DPTRACE selections) and
    ``dptrace_sweeps_avoided`` (full C/O recomputes the incremental
    session replaced), and the CDCL refuter counters ``conflicts``,
    ``learned_clauses``, ``backjumps``, ``clause_hits`` and
    ``refuted_unjustifiable`` (windows proven unjustifiable instead of
    search-exhausted; see ``repro.core.clauses``), plus ``restarts``
    (Luby restarts the error's searches performed, 0 with restart mode
    off) and ``deadline_hit`` (the attempt was cut short by its CPU
    deadline and is taint-excluded from learning and banking).  Emitted
    only when profiling is enabled (``--profile``).
``profile-summary``
    The same fields as ``error-profile`` (minus ``error``/``index``),
    summed over every error.  One per profiled campaign, before
    ``campaign-finished``.
``test-dropped-others``
    ``error`` (whose test was simulated), ``dropped`` (list of error
    descriptions removed from the work list), ``seconds``.
``checkpoint-written``
    ``path``, ``records`` (total records in the file), ``error``.
``campaign-interrupted``
    ``completed`` (errors finished before the stop), ``remaining``
    (errors never attempted), ``resumable`` (a checkpoint holds every
    completed error, so ``--resume`` can pick the run back up).  Emitted
    when a run is stopped cooperatively — SIGINT on the CLI, drain on
    the campaign service — before ``campaign-finished``.
``campaign-finished``
    ``n_errors``, ``n_detected``, ``n_aborted``, ``backtracks``,
    ``wall_seconds``.

The differential fuzzer and conformance-matrix runner (``repro.fuzz``)
emit their own kinds into the same stream:

``fuzz-started``
    ``machine``, ``iters``, ``seed``, ``jobs``, ``planted`` (error
    description or ``None``).
``fuzz-divergence``
    ``index`` (iteration), ``mismatch`` (first differing architectural
    item), ``planted``.
``fuzz-minimized``
    ``index``, ``original_length``, ``minimized_length``, ``path``
    (emitted reproducer file, or ``None`` when not persisted).
``fuzz-finished``
    ``machine``, ``iterations``, ``divergences``, ``wall_seconds``,
    ``budget_exhausted``.
``matrix-started``
    ``machine``, ``n_errors``, ``programs``.
``matrix-classified``
    ``machine``, ``error``, ``classification``, ``programs_run``.
``matrix-finished``
    ``machine``, ``detected``, ``undetected_by_budget``,
    ``proven_benign``, ``wall_seconds``.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

#: Version of the serialized event wire format.  Bump on breaking payload
#: changes; additive fields do not require a bump.
EVENT_SCHEMA_VERSION = 1

EVENT_KINDS = frozenset({
    "campaign-started",
    "error-started",
    "error-finished",
    "error-requeued",
    "error-profile",
    "profile-summary",
    "test-dropped-others",
    "checkpoint-written",
    "campaign-interrupted",
    "campaign-finished",
    "fuzz-started",
    "fuzz-divergence",
    "fuzz-minimized",
    "fuzz-finished",
    "matrix-started",
    "matrix-classified",
    "matrix-finished",
})


@dataclass(frozen=True)
class CampaignEvent:
    """One structured event: a kind, a wall-clock stamp, and a payload."""

    kind: str
    wall_time: float
    data: dict[str, Any] = field(default_factory=dict)
    #: Monotonic position in the emitting stream (0-based).  Events built
    #: by hand (or read from pre-versioned logs) default to 0.
    seq: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "wall_time": self.wall_time,
            "data": dict(self.data),
        }


def event_from_dict(data: dict[str, Any]) -> CampaignEvent:
    """Rebuild an event from its serialized form.

    Tolerates records written before ``schema_version``/``seq`` existed
    (old checkpoints and ``--json`` logs): both default rather than
    raise.  Unknown *kinds* are preserved verbatim so a newer server can
    stream event kinds an older client has never heard of.
    """
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError("not a serialized campaign event")
    return CampaignEvent(
        kind=data["kind"],
        wall_time=data.get("wall_time", 0.0),
        data=dict(data.get("data", {})),
        seq=int(data.get("seq", 0)),
    )


class EventStream:
    """Fan-out of campaign events to registered subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[CampaignEvent], None]] = []
        self._next_seq = 0

    def subscribe(
        self, subscriber: Callable[[CampaignEvent], None]
    ) -> Callable[[CampaignEvent], None]:
        self._subscribers.append(subscriber)
        return subscriber

    def emit(self, kind: str, **data: Any) -> CampaignEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = CampaignEvent(
            kind=kind, wall_time=time.time(), data=data, seq=self._next_seq
        )
        self._next_seq += 1
        for subscriber in self._subscribers:
            subscriber(event)
        return event


class EventLog:
    """Subscriber that records events (for the ``--json`` report).

    ``max_events`` bounds the buffer: a long-lived consumer (the campaign
    service holds one log per job) keeps only the most recent N events, so
    server memory does not grow with campaign length.  The default
    (``None``) records everything — the CLI behaviour.  ``dropped``
    counts evicted events; each event's ``seq`` survives eviction, so
    readers can detect the gap.

    Thread-safe: the campaign service appends from its worker thread
    while ``/events`` streamers read from the asyncio thread, so every
    buffer access snapshots under a lock (a bare deque raises
    ``deque mutated during iteration`` under that interleaving).
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 (or None)")
        self.max_events = max_events
        self._events: deque[CampaignEvent] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self.seen = 0

    @property
    def events(self) -> list[CampaignEvent]:
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self.seen - len(self._events)

    def __call__(self, event: CampaignEvent) -> None:
        with self._lock:
            self._events.append(event)
            self.seen += 1

    def clear(self) -> None:
        """Release the buffer; ``seen`` (and so ``dropped``) survive."""
        with self._lock:
            self._events.clear()

    def to_dicts(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    def of_kind(self, kind: str) -> list[CampaignEvent]:
        return [event for event in self.events if event.kind == kind]

    def since(self, seq: int) -> list[CampaignEvent]:
        """Buffered events with ``seq`` strictly greater than ``seq``."""
        return [event for event in self.events if event.seq > seq]


class ProgressRenderer:
    """Subscriber that renders a live one-line-per-error progress feed."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def _line(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def __call__(self, event: CampaignEvent) -> None:
        data = event.data
        if event.kind == "campaign-started":
            self._total = data["n_errors"]
            self._done = data.get("resumed", 0)
            bits = [f"{self._total} errors", f"{data['jobs']} worker(s)"]
            if data.get("error_simulation"):
                bits.append("error simulation on")
            if self._done:
                bits.append(f"{self._done} resumed from checkpoint")
            self._line(f"campaign[{data['target']}] started: "
                       + ", ".join(bits))
        elif event.kind == "error-finished":
            self._done += 1
            if data["detected"]:
                status = (f"detected (len {data['test_length']}, "
                          f"{data['final_backtracks']} backtracks)")
            else:
                status = f"aborted ({data['failure_stage']})"
            self._line(f"[{self._done:>4}/{self._total}] {data['error']}: "
                       f"{status} in {data['seconds']:.1f}s")
        elif event.kind == "error-requeued":
            # The retry's error-finished replaces the aborted outcome,
            # so back the counter off one to keep [done/total] honest.
            self._done = max(0, self._done - 1)
            self._line(f"[{self._done:>4}/{self._total}] {data['error']}: "
                       f"re-queued with {data['grant_seconds']:.1f}s banked "
                       f"budget ({data['total_deadline']:.1f}s total, "
                       f"{data['balance_seconds']:.1f}s left in bank)")
        elif event.kind == "test-dropped-others":
            dropped = data["dropped"]
            self._done += len(dropped)
            self._line(f"[{self._done:>4}/{self._total}] dropped "
                       f"{len(dropped)} error(s) with the test for "
                       f"{data['error']}")
        elif event.kind == "profile-summary":
            phases = ", ".join(
                f"{name} {seconds:.1f}s"
                for name, seconds in sorted(data["phase_seconds"].items())
            )
            self._line(f"profile: {phases or 'no phase samples'}; "
                       f"golden cache {data['golden_hits']} hit(s), "
                       f"{data['golden_misses']} fault-free sim(s)")
            if "nogood_hits" in data:
                self._line(
                    f"profile: search accel: "
                    f"{data['nogood_hits']} nogood hit(s) "
                    f"({data['nogood_misses']} miss(es)), "
                    f"{data['justify_cache_hits']} memoized "
                    f"justification(s), "
                    f"{data['path_cache_hits']} path-cache hit(s), "
                    f"{data['dptrace_sweeps_avoided']} co-state "
                    f"sweep(s) avoided")
            if "conflicts" in data:
                self._line(
                    f"profile: cdcl: "
                    f"{data['refuted_unjustifiable']} window(s) refuted, "
                    f"{data['conflicts']} conflict(s), "
                    f"{data['learned_clauses']} clause(s) learned, "
                    f"{data['backjumps']} backjump(s), "
                    f"{data['clause_hits']} certificate hit(s)")
            if data.get("restarts"):
                self._line(f"profile: restarts: {data['restarts']} "
                           f"Luby restart(s)")
        elif event.kind == "campaign-interrupted":
            resume = (" (resumable via --resume)"
                      if data.get("resumable") else "")
            self._line(f"campaign INTERRUPTED: {data['completed']} "
                       f"completed, {data['remaining']} never "
                       f"attempted{resume}")
        elif event.kind == "campaign-finished":
            self._line(f"campaign finished: {data['n_detected']} detected, "
                       f"{data['n_aborted']} aborted "
                       f"in {data['wall_seconds']:.1f}s wall clock")
        elif event.kind == "fuzz-started":
            planted = (f", planted {data['planted']}"
                       if data.get("planted") else "")
            self._line(f"fuzz[{data['machine']}] started: "
                       f"{data['iters']} iterations, seed {data['seed']}, "
                       f"{data['jobs']} worker(s){planted}")
        elif event.kind == "fuzz-divergence":
            self._line(f"fuzz: iteration {data['index']} DIVERGED "
                       f"({data['mismatch']})")
        elif event.kind == "fuzz-minimized":
            where = f" -> {data['path']}" if data.get("path") else ""
            self._line(f"fuzz: minimized iteration {data['index']} from "
                       f"{data['original_length']} to "
                       f"{data['minimized_length']} instruction(s){where}")
        elif event.kind == "fuzz-finished":
            budget = " (budget exhausted)" if data.get(
                "budget_exhausted") else ""
            self._line(f"fuzz[{data['machine']}] finished: "
                       f"{data['iterations']} iterations, "
                       f"{data['divergences']} divergence(s) "
                       f"in {data['wall_seconds']:.1f}s{budget}")
        elif event.kind == "matrix-started":
            self._line(f"matrix[{data['machine']}] started: "
                       f"{data['n_errors']} errors, "
                       f"{data['programs']} program(s) each")
        elif event.kind == "matrix-finished":
            self._line(f"matrix[{data['machine']}] finished: "
                       f"{data['detected']} detected, "
                       f"{data['undetected_by_budget']} undetected, "
                       f"{data['proven_benign']} proven benign "
                       f"in {data['wall_seconds']:.1f}s")
