"""Serialize generated verification tests and campaign reports to JSON.

A verification team keeps its generated suites; these helpers give the
artifacts a stable on-disk form:

* a realized DLX test serializes as assembly text plus the initial
  register/memory state it needs,
* a raw TG :class:`TestCase` serializes field-by-field (cycle-indexed
  stimulus), and
* a campaign report serializes as its outcome table.

Everything round-trips: ``load_*`` reconstructs an object that behaves
identically (checked by the test suite via co-simulation).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.campaign.runner import CampaignReport, ErrorOutcome
from repro.core.tg import TestCase


def testcase_to_dict(test: TestCase) -> dict[str, Any]:
    return {
        "kind": "testcase",
        "n_frames": test.n_frames,
        "cpi_frames": test.cpi_frames,
        "dpi_frames": test.dpi_frames,
        "stimulus_state": test.stimulus_state,
        "error": test.error,
        "activation_frame": test.activation_frame,
        "observation": list(test.observation) if test.observation else None,
        "decided_cpi": sorted(
            [frame, field] for frame, field in test.decided_cpi
        ),
    }


def testcase_from_dict(data: dict[str, Any]) -> TestCase:
    if data.get("kind") != "testcase":
        raise ValueError("not a serialized TestCase")
    observation = data.get("observation")
    return TestCase(
        n_frames=data["n_frames"],
        cpi_frames=[dict(f) for f in data["cpi_frames"]],
        dpi_frames=[dict(f) for f in data["dpi_frames"]],
        stimulus_state=dict(data["stimulus_state"]),
        error=data["error"],
        activation_frame=data["activation_frame"],
        observation=tuple(observation) if observation else None,
        decided_cpi=frozenset(
            (frame, field) for frame, field in data["decided_cpi"]
        ),
    )


def realized_dlx_to_dict(realized) -> dict[str, Any]:
    from repro.dlx.asm import disassemble

    return {
        "kind": "dlx-test",
        "assembly": disassemble(realized.program),
        "init_regs": list(realized.init_regs),
        "init_memory": {
            str(addr): value for addr, value in realized.init_memory.items()
        },
    }


def realized_dlx_from_dict(data: dict[str, Any]):
    from repro.dlx.asm import assemble
    from repro.dlx.realize import RealizedDlxTest

    if data.get("kind") != "dlx-test":
        raise ValueError("not a serialized DLX test")
    return RealizedDlxTest(
        program=assemble(data["assembly"]),
        init_regs=list(data["init_regs"]),
        init_memory={
            int(addr): value for addr, value in data["init_memory"].items()
        },
    )


def realized_mini_to_dict(realized) -> dict[str, Any]:
    return {
        "kind": "mini-test",
        "program": [
            {"op": i.op, "rs1": i.rs1, "rs2": i.rs2, "rd": i.rd, "imm": i.imm}
            for i in realized.program
        ],
        "init_regs": list(realized.init_regs),
    }


def realized_mini_from_dict(data: dict[str, Any]):
    from repro.mini.isa import Instruction
    from repro.mini.realize import RealizedTest

    if data.get("kind") != "mini-test":
        raise ValueError("not a serialized MiniPipe test")
    return RealizedTest(
        program=[Instruction(**fields) for fields in data["program"]],
        init_regs=list(data["init_regs"]),
    )


def _nogood_encode(value):
    """Lower a no-good key/entry element to a JSON-able tagged form.

    Keys mix nested tuples and frozensets of scalars; frozensets are
    sorted so the wire form is canonical (equal keys encode equally).
    """
    if isinstance(value, tuple):
        return ["t", *[_nogood_encode(v) for v in value]]
    if isinstance(value, frozenset):
        return ["f", *sorted(_nogood_encode(v) for v in value)]
    return value


def _nogood_decode(value):
    if isinstance(value, list):
        tag, items = value[0], value[1:]
        if tag == "f":
            return frozenset(_nogood_decode(v) for v in items)
        return tuple(_nogood_decode(v) for v in items)
    return value


def nogood_records_to_wire(records) -> list:
    """Learned no-good records as JSON-able lists (the orchestrator's
    worker <-> coordinator transport; see ``repro.core.nogoods``).

    Each row is ``[key, blamed, backtracks, [conflicts, learned,
    backjumps, clause_hits, refuted, restarts]]`` — the CDCL column
    replays the refuter's effort counters on a foreign hit (the trailing
    ``restarts`` column is absent in rows recorded with restart mode
    off; readers treat it as 0).
    """
    return [
        [_nogood_encode(key), _nogood_encode(blamed), backtracks,
         list(cdcl)]
        for key, (blamed, backtracks, cdcl) in records
    ]


def nogood_records_from_wire(data) -> list:
    """Inverse of :func:`nogood_records_to_wire`.

    Rows written before the CDCL column existed decode with zeroed
    counters.
    """
    records = []
    for row in data:
        key, blamed, backtracks = row[0], row[1], row[2]
        cdcl = tuple(row[3]) if len(row) > 3 else (0, 0, 0, 0, 0)
        records.append(
            (_nogood_decode(key), (_nogood_decode(blamed), backtracks, cdcl))
        )
    return records


def clause_records_to_wire(records) -> list:
    """Refutation certificates as JSON-able lists (same transport as the
    no-goods; see :class:`repro.core.clauses.ClauseDB`).

    A record is ``(n_frames, cert_items, lbd)`` with absolute
    ``((frame, name), value)`` literals; the wire form normalizes frames
    to the certificate's minimum frame and carries the offset, mirroring
    the no-good keys: ``[n_frames, offset, [[frame - offset, name,
    value], ...], lbd]``.
    """
    wire = []
    for n_frames, items, lbd in records:
        offset = min((frame for (frame, _), _ in items), default=0)
        wire.append([
            n_frames, offset,
            [[frame - offset, name, value]
             for (frame, name), value in items],
            lbd,
        ])
    return wire


def clause_records_from_wire(data) -> list:
    """Inverse of :func:`clause_records_to_wire`."""
    return [
        (
            n_frames,
            tuple(
                ((frame + offset, name), value)
                for frame, name, value in items
            ),
            lbd,
        )
        for n_frames, offset, items, lbd in data
    ]


def activity_records_to_wire(records) -> list:
    """EVSIDS activity snapshots as JSON-able lists (same transport as
    the no-goods; see :class:`repro.core.clauses.SearchActivity`).

    A record is ``(base_signal_name, score, phase_or_None)`` — already
    frame-collapsed, so unlike the no-good and clause rows there is no
    frame offset to normalize.
    """
    return [[name, score, phase] for name, score, phase in records]


def activity_records_from_wire(data) -> list:
    """Inverse of :func:`activity_records_to_wire`."""
    return [(name, score, phase) for name, score, phase in data]


def report_to_dict(report: CampaignReport) -> dict[str, Any]:
    out = {
        "kind": "campaign-report",
        "total_seconds": report.total_seconds,
        "interrupted": report.interrupted,
        "outcomes": [vars(o).copy() for o in report.outcomes],
    }
    # Only banked runs carry the account summary, so knobs-off report
    # dictionaries keep their exact historical shape.
    if report.bank is not None:
        out["bank"] = dict(report.bank)
    return out


def report_from_dict(data: dict[str, Any]) -> CampaignReport:
    if data.get("kind") != "campaign-report":
        raise ValueError("not a serialized campaign report")
    return CampaignReport(
        outcomes=[ErrorOutcome(**o) for o in data["outcomes"]],
        total_seconds=data["total_seconds"],
        # Absent in reports written before interruption existed.
        interrupted=data.get("interrupted", False),
        bank=data.get("bank"),
    )


#: Wall-clock / CPU-time fields of a campaign-run dict.  They vary run to
#: run even when the runs are semantically identical, so the canonical
#: form drops them wherever they appear in the tree.
TIMING_KEYS = frozenset({
    "wall_time", "seconds", "total_seconds", "wall_seconds",
    "phase_seconds", "phase_cpu_seconds", "cpu_seconds",
    # The deadline-bank account is CPU-time-derived through and through
    # (balances are sums of measured unspent seconds).
    "bank", "balance_seconds",
})

#: Cache-traffic counters.  Outcomes are cache-transparent (hits replay
#: recorded effort), but the hit/miss split itself depends on what was
#: already warm — a second request against a warm campaign service turns
#: first-touch misses into hits.  ``canonical_campaign_run(...,
#: include_cache_traffic=False)`` drops these too, leaving exactly the
#: fields that warm caches must never change.
CACHE_TRAFFIC_KEYS = frozenset({
    "golden_hits", "golden_misses",
    "nogood_hits", "nogood_misses", "justify_cache_hits",
    "path_cache_hits", "path_cache_misses", "dptrace_sweeps_avoided",
    # CDCL refuter traffic: a warm clause DB turns a fresh refutation
    # (conflicts > 0) into a certificate hit (clause_hits = 1), and a
    # certificate can refute a window a cold run would merely give up
    # on — shifting `backtracks` while leaving outcomes and
    # `final_backtracks` (the successful attempt's effort) untouched.
    "conflicts", "learned_clauses", "backjumps", "clause_hits",
    "refuted_unjustifiable", "backtracks",
    # Restart counts follow the same logic: a warm certificate refutes a
    # window a cold restart-capable search would restart through.
    "restarts",
})


def _strip_keys(value, keys: frozenset):
    if isinstance(value, dict):
        return {
            k: _strip_keys(v, keys)
            for k, v in value.items()
            if k not in keys
        }
    if isinstance(value, list):
        return [_strip_keys(v, keys) for v in value]
    return value


def canonical_campaign_run(
    run: dict[str, Any], include_cache_traffic: bool = True
) -> dict[str, Any]:
    """The run-to-run-stable form of a ``campaign-run`` dict.

    Strips timing everywhere (and, when ``include_cache_traffic`` is
    False, the cache hit/miss counters as well); everything left —
    config, outcomes, serialized tests, the event sequence — must be
    byte-identical between a campaign run via the CLI and the same
    campaign run through the service, warm or cold
    (``json.dumps(..., sort_keys=True)`` the result to compare bytes).
    """
    keys = TIMING_KEYS
    if not include_cache_traffic:
        keys = keys | CACHE_TRAFFIC_KEYS
    return _strip_keys(run, keys)


def save_json(obj: dict[str, Any], path: str) -> None:
    """Write atomically (temp file in the same directory + ``os.replace``)
    so a killed campaign never leaves a truncated artifact on disk."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(obj, handle, indent=1)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_json(path: str) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
