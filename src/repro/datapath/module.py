"""Base class and classification for word-level datapath modules.

Section V.A of the paper classifies combinational datapath modules into three
categories that determine how controllability and observability propagate:

* **ADD class** — one data output; the output can be justified to an
  arbitrary value by controlling a *single* input (the others may float), and
  an observable output makes *every* input observable.  Members: adder,
  subtractor, X(N)OR word gates, and the predicate modules (=, !=, <, <=, >,
  >=, ADDOVF, SUBOVF).
* **AND class** — one data output; justifying the output requires controlling
  *all* inputs, and observing an input requires an observable output plus
  controlled side inputs.  Members: (N)AND, (N)OR word gates, shifters.
* **MUX class** — data inputs, control inputs, one data output; the control
  inputs select which data input is connected.  Members: multiplexers,
  tri-state buffers.

State elements (pipe registers) and sources (constants) get their own
structural classes; they delimit pipeframes rather than participate in the
combinational propagation tables.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.datapath.net import Net, Port, PortDirection, PortKind


class ModuleClass(enum.Enum):
    """Path-selection class of a module (Section V.A)."""

    ADD = "add"
    AND = "and"
    MUX = "mux"
    STATE = "state"  # pipe registers: stage boundaries, not combinational
    SOURCE = "source"  # constants: always controlled


class Module:
    """A word-level datapath module.

    Concrete modules implement :meth:`evaluate` (forward function) and
    :meth:`solve_input` (partial inverse used by discrete relaxation).
    """

    module_class: ModuleClass = ModuleClass.ADD

    def __init__(self, name: str) -> None:
        self.name = name
        self.data_inputs: list[Port] = []
        self.control_inputs: list[Port] = []
        self.outputs: list[Port] = []
        self.stage: int | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def add_data_input(self, name: str, width: int) -> Port:
        port = Port(self, name, PortDirection.IN, width, PortKind.DATA)
        self.data_inputs.append(port)
        return port

    def add_control_input(self, name: str, width: int) -> Port:
        port = Port(self, name, PortDirection.IN, width, PortKind.CONTROL)
        self.control_inputs.append(port)
        return port

    def add_output(self, name: str, width: int) -> Port:
        port = Port(self, name, PortDirection.OUT, width, PortKind.DATA)
        self.outputs.append(port)
        return port

    @property
    def output(self) -> Port:
        """The single data output (all library modules have exactly one)."""
        if len(self.outputs) != 1:
            raise ValueError(f"{self.name} has {len(self.outputs)} outputs")
        return self.outputs[0]

    @property
    def all_inputs(self) -> list[Port]:
        return self.data_inputs + self.control_inputs

    @property
    def input_nets(self) -> list[Net]:
        return [p.net for p in self.all_inputs if p.net is not None]

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        """Forward function: output word given data input and control words."""
        raise NotImplementedError

    def needed_inputs(self, controls: Sequence[int]) -> list[int]:
        """Indices of data inputs that influence the output.

        MUX-class modules override this: with the select known, only the
        selected input matters, so value solvers need not wait for (or
        constrain) the deselected inputs.
        """
        return list(range(len(self.data_inputs)))

    def solve_input(
        self,
        index: int,
        target: int,
        inputs: Sequence[int | None],
        controls: Sequence[int],
    ) -> int | None:
        """Partial inverse used by DPRELAX.

        Return a value for data input ``index`` such that
        ``evaluate(...) == target`` with the remaining inputs held at the
        given values, or ``None`` when no such value exists (or the module
        does not support back-solving through that input).  Entries of
        ``inputs`` other than ``index`` must be concrete.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"
