"""Word-level netlist container and structural queries."""

from __future__ import annotations

from repro.datapath.module import Module, ModuleClass
from repro.datapath.modules import ConstantModule, RegisterModule
from repro.datapath.net import Net, NetRole, Port, PortDirection


class NetlistError(Exception):
    """Raised for structural problems in a netlist."""


class Netlist:
    """A word-level datapath netlist.

    Holds modules and nets, enforces structural invariants (unique names,
    width agreement, single driver per net) and provides the queries the
    test-generation engines need: topological order of the combinational
    modules, fanout stems, external-input / output / control / status nets,
    and per-stage filtering.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.modules: dict[str, Module] = {}
        self.nets: dict[str, Net] = {}
        self._topo_cache: list[Module] | None = None
        self._compiled_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise NetlistError(f"duplicate module name {module.name!r}")
        self.modules[module.name] = module
        self._topo_cache = None
        self._compiled_cache = None
        return module

    def add_net(
        self,
        name: str,
        width: int,
        role: NetRole = NetRole.INTERNAL,
        stage: int | None = None,
    ) -> Net:
        if name in self.nets:
            raise NetlistError(f"duplicate net name {name!r}")
        net = Net(name, width, role=role, stage=stage)
        self.nets[name] = net
        self._topo_cache = None
        self._compiled_cache = None
        return net

    def connect(self, net: Net, port: Port) -> None:
        """Attach ``port`` to ``net`` (as driver for outputs, sink for inputs)."""
        if port.width != net.width:
            raise NetlistError(
                f"width mismatch: net {net.name} is {net.width} bits, "
                f"port {port.full_name} is {port.width} bits"
            )
        if port.direction is PortDirection.OUT:
            if net.driver is not None:
                raise NetlistError(
                    f"net {net.name} already driven by {net.driver.full_name}"
                )
            net.driver = port
        else:
            net.sinks.append(port)
        port.net = net
        self._topo_cache = None
        self._compiled_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def module(self, name: str) -> Module:
        try:
            return self.modules[name]
        except KeyError:
            raise NetlistError(f"no module named {name!r}") from None

    def nets_with_role(self, role: NetRole) -> list[Net]:
        return [n for n in self.nets.values() if n.role is role]

    @property
    def dpi_nets(self) -> list[Net]:
        return self.nets_with_role(NetRole.DPI)

    @property
    def dpo_nets(self) -> list[Net]:
        return self.nets_with_role(NetRole.DPO)

    @property
    def dti_nets(self) -> list[Net]:
        return self.nets_with_role(NetRole.DTI)

    @property
    def dto_nets(self) -> list[Net]:
        return self.nets_with_role(NetRole.DTO)

    @property
    def ctrl_nets(self) -> list[Net]:
        return self.nets_with_role(NetRole.CTRL)

    @property
    def sts_nets(self) -> list[Net]:
        return self.nets_with_role(NetRole.STS)

    @property
    def registers(self) -> list[RegisterModule]:
        return [m for m in self.modules.values() if isinstance(m, RegisterModule)]

    @property
    def constants(self) -> list[ConstantModule]:
        return [m for m in self.modules.values() if isinstance(m, ConstantModule)]

    @property
    def combinational_modules(self) -> list[Module]:
        return [
            m
            for m in self.modules.values()
            if m.module_class not in (ModuleClass.STATE, ModuleClass.SOURCE)
        ]

    def fanout_stems(self) -> list[Net]:
        """Nets with more than one sink (candidates for FO decision variables)."""
        return [n for n in self.nets.values() if n.has_fanout]

    def nets_in_stages(self, stages: set[int]) -> list[Net]:
        return [n for n in self.nets.values() if n.stage in stages]

    def state_bits(self) -> int:
        """Total bits of pipe-register state (the paper's 'datapath state bits')."""
        return sum(r.width for r in self.registers)

    # ------------------------------------------------------------------
    # Validation and ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise NetlistError on violation."""
        for net in self.nets.values():
            if net.driver is None and net.role in (
                NetRole.INTERNAL,
                NetRole.DPO,
                NetRole.DSO,
                NetRole.DTO,
                NetRole.STS,
            ):
                raise NetlistError(f"net {net.name} ({net.role.value}) has no driver")
            if net.driver is not None and net.role in (NetRole.DPI, NetRole.CTRL):
                raise NetlistError(
                    f"net {net.name} is {net.role.value} but driven by "
                    f"{net.driver.full_name}"
                )
        for module in self.modules.values():
            for port in module.all_inputs + module.outputs:
                if port.net is None:
                    raise NetlistError(f"unconnected port {port.full_name}")
        self.topological_order()  # raises on combinational cycles

    def topological_order(self) -> list[Module]:
        """Combinational modules in evaluation order (Kahn's algorithm).

        Register outputs, constants and external input nets are sources.
        Raises NetlistError if the combinational logic contains a cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        combinational = self.combinational_modules
        pending: dict[str, int] = {}
        consumers: dict[str, list[Module]] = {}
        for module in combinational:
            count = 0
            for port in module.all_inputs:
                net = port.net
                if net is None:
                    continue
                driver = net.driver
                if driver is not None and driver.module.module_class not in (
                    ModuleClass.STATE,
                    ModuleClass.SOURCE,
                ):
                    count += 1
                    consumers.setdefault(net.name, []).append(module)
            pending[module.name] = count
        ready = sorted(
            (m for m in combinational if pending[m.name] == 0), key=lambda m: m.name
        )
        order: list[Module] = []
        while ready:
            module = ready.pop(0)
            order.append(module)
            for out in module.outputs:
                if out.net is None:
                    continue
                for consumer in consumers.get(out.net.name, []):
                    pending[consumer.name] -= 1
                    if pending[consumer.name] == 0:
                        ready.append(consumer)
        if len(order) != len(combinational):
            stuck = sorted(name for name, n in pending.items() if n > 0)
            raise NetlistError(f"combinational cycle through modules: {stuck}")
        self._topo_cache = order
        return order

    def compiled(self):
        """The codegen'd kernel form of this netlist (cached; see
        :mod:`repro.datapath.compiled`).  Invalidated, like the topological
        order, by any structural edit."""
        if self._compiled_cache is None:
            from repro.datapath.compiled import CompiledDatapath

            self._compiled_cache = CompiledDatapath(self)
        return self._compiled_cache

    def batched(self):
        """The lane-vectorised numpy kernel form of this netlist (see
        :mod:`repro.datapath.batched`).  Cached on the compiled form, so it
        shares the structural-edit invalidation of :meth:`compiled`.  Raises
        a clean ImportError when the optional numpy dependency is absent."""
        from repro.datapath.batched import batched_datapath

        return batched_datapath(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name}, {len(self.modules)} modules, "
            f"{len(self.nets)} nets)"
        )
