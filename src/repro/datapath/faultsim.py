"""Cone-forked multi-error fault simulation over a shared golden trace.

Concurrent-fault-simulation style: the fault-free ("golden") trace of a
stimulus is simulated once; each planted error is then *forked* against it.
Per cycle, a fork materializes only the net values inside the error site's
activated fanout cone (a sparse overlay keyed by net id, plus a sparse
forked-register diff across cycles); a forked value that re-equalizes with
the golden trace drops out of the overlay, so a masked error converges back
to sharing the golden trace at zero marginal cost.

Soundness contract (why consumers can trust the outcome kinds):

``"sts"``
    A status net diverged.  STS values feed the controller *within* the
    cycle (the co-simulation fixpoint), so every forked value of that cycle
    onward is suspect — the caller must fall back to a full per-error
    co-simulation.  Checked before everything else each cycle.
``"dpo"``
    First (cycle, net) where a data primary output differs with both sides
    concrete — exactly :func:`repro.verify.cosim.traces_diverge` — and no
    STS net diverged at or before that cycle.  In ``stop_at_first_observed``
    mode the fork stops here; otherwise it keeps simulating so a later
    ``"sts"``/``"abort"`` can veto the verdict (a real bad-machine run that
    raises ``CosimError`` after the divergence still reports *undetected*).
``"abort"``
    The forked machine would clock an unresolved control or load an
    unresolved value — the same conditions under which the co-simulator
    raises ``CosimError``.  With no prior STS divergence this is exact: the
    real bad-machine run raises, so the exposure check returns None.
``"observed"``
    (stop mode only) A watched net — DPO, STS or a caller-supplied extra
    such as an environment-read internal net — diverged in a way not
    covered above (e.g. a known/unknown mismatch).  Treat as "touched":
    confirm with a real serial run.
``"clean"``
    The fork never touched a watched net: the erroneous machine's observable
    behaviour is identical to golden for this stimulus.
``"unsupported"``
    The error's injector carries no site annotation; no fork was attempted.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.datapath.simulate import no_injection


@dataclass
class ForkOutcome:
    """Result of forking one error against the golden trace."""

    kind: str
    cycle: int | None = None
    net: str | None = None
    #: Cycles in which the fork actually held diverging values.
    forked_cycles: int = 0
    #: Module evaluations performed inside cones (cost metric).
    evals: int = 0


@dataclass
class ForkStats:
    """Aggregate counters across the forks of one batch."""

    forks: int = 0
    clean: int = 0
    dpo: int = 0
    sts: int = 0
    observed: int = 0
    abort: int = 0
    unsupported: int = 0
    evals: int = 0

    def note(self, outcome: ForkOutcome) -> None:
        self.forks += 1
        setattr(self, outcome.kind, getattr(self, outcome.kind) + 1)
        self.evals += outcome.evals


class BatchFaultSimulator:
    """Fork many errors against one golden :class:`~repro.verify.cosim.Trace`.

    The golden trace is densified once (per-cycle lists indexed by net id);
    every fork shares those arrays.  ``observed_extra`` names additional
    nets the environment reads back (e.g. DLX's ``mem_alu.y``) so the
    screening mode counts them as observable.
    """

    def __init__(self, processor, golden_trace=None, observed_extra=(),
                 dense_cycles=None) -> None:
        self.processor = processor
        self.cd = processor.datapath.compiled()
        cd = self.cd
        if dense_cycles is not None:
            # Pre-densified golden cycles (e.g. from the batched lane
            # environments, which produce dense per-lane arrays directly).
            self.cycles = dense_cycles
        else:
            self.cycles = [
                [cycle.datapath.get(name) for name in cd.names]
                for cycle in golden_trace.cycles
            ]
        self.sts_set = frozenset(cd.sts_ids)
        self.dpo_set = frozenset(cd.dpo_ids)
        self.observed_set = frozenset(
            cd.dpo_ids + cd.sts_ids
            + [cd.index[n] for n in observed_extra if n in cd.index]
        )
        self.stats = ForkStats()

    # ------------------------------------------------------------------
    def hooks_for(self, error):
        """(inj_map, ovr_map) for an error, or None when unsupported."""
        cd = self.cd
        bad = error.attach(self.processor.datapath)
        inj = {}
        if bad.injector is not no_injection:
            if getattr(bad.injector, "sites", None) is None:
                return None  # no site annotation: cone unknown
            inj = cd.injector_map(bad.injector)
        ovr = cd.override_map(bad.module_overrides)
        return inj, ovr

    def fork_all(self, errors, stop_at_first_observed=False):
        return [
            self.fork(error, stop_at_first_observed=stop_at_first_observed)
            for error in errors
        ]

    def fork(self, error, stop_at_first_observed=False) -> ForkOutcome:
        hooks = self.hooks_for(error)
        if hooks is None:
            outcome = ForkOutcome("unsupported")
        else:
            outcome = self._fork(*hooks, stop_at_first_observed)
        self.stats.note(outcome)
        return outcome

    # ------------------------------------------------------------------
    def _fork(self, inj, ovr, stop_at_first_observed) -> ForkOutcome:
        cd = self.cd
        names = cd.names
        sched_modules = cd.sched_modules
        sched_out, sched_in, sched_ctl = (
            cd.sched_out, cd.sched_in, cd.sched_ctl,
        )
        fanout = cd.fanout_sched
        n_regs = len(cd.registers)
        net_mask = cd.net_mask

        # Permanent per-cycle seeds: overridden / injected combinational
        # modules re-evaluate every cycle; injected source nets re-emit.
        forced = set(ovr)
        inj_src: list[tuple[int, object]] = []
        inj_q: dict[int, object] = {}  # reg position -> corrupter
        q_pos = {q: j for j, q in enumerate(cd.reg_q_ids)}
        for i, fn in inj.items():
            if i in q_pos:
                inj_q[q_pos[i]] = fn
            else:
                driver = self.processor.datapath.nets[names[i]].driver
                if driver is not None and driver.module.name in cd.sched_pos:
                    forced.add(cd.sched_pos[driver.module.name])
                else:
                    inj_src.append((i, fn))  # external or constant
        forced = sorted(forced)

        state_diff: dict[int, int] = {}
        first_dpo: tuple[int, str] | None = None
        forked_cycles = 0
        evals = 0

        for t, golden in enumerate(self.cycles):
            overlay: dict = {}

            def read(i):
                return overlay[i] if i in overlay else golden[i]

            # -- seed the cycle's cone ---------------------------------
            heap = list(forced)
            heapq.heapify(heap)
            queued = set(forced)

            def touch(i):
                value_changed_for = fanout[i]
                for k in value_changed_for:
                    if k not in queued:
                        queued.add(k)
                        heapq.heappush(heap, k)

            for j in set(state_diff) | set(inj_q):
                q_id = cd.reg_q_ids[j]
                raw = state_diff.get(j, golden[q_id])
                fn = inj_q.get(j)
                value = (
                    fn(raw) & net_mask[q_id]
                    if fn is not None and raw is not None else raw
                )
                if value != golden[q_id]:
                    overlay[q_id] = value
                    touch(q_id)
            for i, fn in inj_src:
                base = golden[i]
                if base is None:
                    continue  # partial sources skip injection on unknowns
                value = fn(base) & net_mask[i]
                if value != golden[i]:
                    overlay[i] = value
                    touch(i)

            # -- propagate through the cone in topological order -------
            while heap:
                k = heapq.heappop(heap)
                module = sched_modules[k]
                value = None
                controls = [read(c) for c in sched_ctl[k]]
                if None not in controls:
                    inputs = [read(i) for i in sched_in[k]]
                    known = True
                    for i in module.needed_inputs(controls):
                        if inputs[i] is None:
                            known = False
                            break
                    if known:
                        inputs = [0 if v is None else v for v in inputs]
                        fn = ovr.get(k)
                        if fn is not None:
                            value = fn(inputs, controls) & net_mask[sched_out[k]]
                        else:
                            value = module.evaluate(inputs, controls)
                        evals += 1
                out = sched_out[k]
                fn = inj.get(out)
                if fn is not None and value is not None:
                    value = fn(value) & net_mask[out]
                if value != golden[out]:
                    overlay[out] = value
                    touch(out)
                elif out in overlay:  # converged back to golden
                    del overlay[out]

            if overlay or state_diff:
                forked_cycles += 1

            # -- per-cycle observability checks (STS strictly first) ---
            sts_hit = None
            for i in cd.sts_ids:
                if i in overlay:
                    sts_hit = i
                    break
            if sts_hit is not None:
                return ForkOutcome("sts", t, names[sts_hit],
                                   forked_cycles, evals)
            for i in cd.dpo_ids:
                if (i in overlay and overlay[i] is not None
                        and golden[i] is not None):
                    if stop_at_first_observed:
                        return ForkOutcome("dpo", t, names[i],
                                           forked_cycles, evals)
                    if first_dpo is None:
                        first_dpo = (t, names[i])
                    break
            if stop_at_first_observed:
                for i in overlay:
                    if i in self.observed_set:
                        return ForkOutcome("observed", t, names[i],
                                           forked_cycles, evals)

            # -- clock the forked registers ----------------------------
            next_golden = (
                self.cycles[t + 1] if t + 1 < len(self.cycles) else None
            )
            new_diff: dict[int, int] = {}
            for j in range(n_regs):
                d_id = cd.reg_d_ids[j]
                ctl_ids = cd.reg_ctl_ids[j]
                affected = j in state_diff or d_id in overlay
                if not affected:
                    for c in ctl_ids:
                        if c in overlay:
                            affected = True
                            break
                if not affected:
                    continue
                reg = cd.registers[j]
                controls = [read(c) for c in ctl_ids]
                if None in controls:
                    return ForkOutcome("abort", t, reg.name,
                                       forked_cycles, evals)
                current = state_diff.get(j, golden[cd.reg_q_ids[j]])
                d_value = read(d_id)
                if d_value is None:
                    if reg.next_state(current, 0, controls) != reg.next_state(
                        current, 1, controls
                    ):
                        return ForkOutcome("abort", t, reg.name,
                                           forked_cycles, evals)
                    d_value = current
                if next_golden is None:
                    continue
                forked = reg.next_state(current, d_value, controls)
                if forked != next_golden[cd.reg_q_ids[j]]:
                    new_diff[j] = forked
            state_diff = new_diff

        if first_dpo is not None:
            return ForkOutcome("dpo", first_dpo[0], first_dpo[1],
                               forked_cycles, evals)
        return ForkOutcome("clean", None, None, forked_cycles, evals)
