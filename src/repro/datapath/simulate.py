"""Concrete (two's-complement integer) simulation of datapath netlists.

The simulator evaluates the combinational logic of a netlist for given
external inputs and register state, and clocks the pipe registers.  An
optional *injector* transforms net values as they are produced, which is how
design errors (e.g. bus single-stuck-line errors) are planted into the
implementation without modifying the netlist itself.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.datapath.module import ModuleClass
from repro.datapath.modules import ConstantModule
from repro.datapath.net import Net
from repro.datapath.netlist import Netlist

#: An injector maps (net name, fault-free value) -> possibly corrupted value.
Injector = Callable[[str, int], int]

#: A module override replaces a module's evaluate function (for module
#: substitution / bus order errors): (inputs, controls) -> output.
ModuleOverride = Callable[[Sequence[int], Sequence[int]], int]


def no_injection(net_name: str, value: int) -> int:
    """The identity injector (fault-free simulation)."""
    return value


class DatapathSimulator:
    """Cycle-accurate simulator for a :class:`Netlist`.

    ``state`` maps register module names to their current contents.  External
    input nets (DPI / DTI / CTRL and register control nets) must be supplied
    each cycle via ``external``; missing externals default to 0, matching a
    quiescent environment.
    """

    def __init__(
        self,
        netlist: Netlist,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
    ) -> None:
        self.netlist = netlist
        self.injector = injector
        self.module_overrides = dict(module_overrides or {})
        self.state: dict[str, int] = {
            reg.name: reg.reset_value for reg in netlist.registers
        }
        self._order = netlist.topological_order()

    def reset(self) -> None:
        """Return all registers to their reset values."""
        for reg in self.netlist.registers:
            self.state[reg.name] = reg.reset_value

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, external: Mapping[str, int]) -> dict[str, int]:
        """Evaluate all net values for the current state and externals."""
        values: dict[str, int] = {}

        def emit(net: Net, value: int) -> None:
            values[net.name] = self.injector(net.name, value)

        # Sources: external inputs, constants, register outputs.
        for net in self.netlist.nets.values():
            if net.is_external_input:
                emit(net, external.get(net.name, 0))
        for module in self.netlist.modules.values():
            if isinstance(module, ConstantModule):
                emit(module.output.net, module.value)
            elif module.module_class is ModuleClass.STATE:
                emit(module.output.net, self.state[module.name])

        # Combinational modules in topological order.
        for module in self._order:
            inputs = [values[p.net.name] for p in module.data_inputs]
            controls = [values[p.net.name] for p in module.control_inputs]
            override = self.module_overrides.get(module.name)
            if override is not None:
                result = override(inputs, controls)
            else:
                result = module.evaluate(inputs, controls)
            emit(module.output.net, result)
        return values

    def evaluate_partial(
        self, external: Mapping[str, int | None]
    ) -> dict[str, int | None]:
        """Three-valued evaluation: unknown (None) externals propagate X.

        A module produces a value when its controls and *needed* data inputs
        are known (a mux with a known select only needs the selected input).
        Used by the processor co-simulator to resolve the layered
        controller/datapath dependency within one cycle.
        """
        values: dict[str, int | None] = {}

        def emit(net: Net, value: int | None) -> None:
            if value is None:
                values[net.name] = None
            else:
                values[net.name] = self.injector(net.name, value)

        for net in self.netlist.nets.values():
            if net.is_external_input:
                emit(net, external.get(net.name))
        for module in self.netlist.modules.values():
            if isinstance(module, ConstantModule):
                emit(module.output.net, module.value)
            elif module.module_class is ModuleClass.STATE:
                emit(module.output.net, self.state[module.name])
        for module in self._order:
            inputs = [values[p.net.name] for p in module.data_inputs]
            controls = [values[p.net.name] for p in module.control_inputs]
            if any(c is None for c in controls):
                emit(module.output.net, None)
                continue
            needed = module.needed_inputs(controls)
            if any(inputs[i] is None for i in needed):
                emit(module.output.net, None)
                continue
            eval_inputs = [v if v is not None else 0 for v in inputs]
            override = self.module_overrides.get(module.name)
            if override is not None:
                result = override(eval_inputs, controls)
            else:
                result = module.evaluate(eval_inputs, controls)
            emit(module.output.net, result)
        return values

    def step(self, external: Mapping[str, int]) -> dict[str, int]:
        """Evaluate one cycle and clock the registers; returns net values."""
        values = self.evaluate(external)
        next_state: dict[str, int] = {}
        for reg in self.netlist.registers:
            d_value = values[reg.data_inputs[0].net.name]
            controls = [values[p.net.name] for p in reg.control_inputs]
            next_state[reg.name] = reg.next_state(
                self.state[reg.name], d_value, controls
            )
        self.state.update(next_state)
        return values

    def run(
        self, externals: list[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        """Run a sequence of cycles; returns per-cycle net values."""
        return [self.step(cycle) for cycle in externals]
