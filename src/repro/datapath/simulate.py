"""Concrete (two's-complement integer) simulation of datapath netlists.

The simulator evaluates the combinational logic of a netlist for given
external inputs and register state, and clocks the pipe registers.  An
optional *injector* transforms net values as they are produced, which is how
design errors (e.g. bus single-stuck-line errors) are planted into the
implementation without modifying the netlist itself.

This interpretive simulator is the semantic reference; the codegen'd
kernels in :mod:`repro.datapath.compiled` are differentially tested against
it.  To stay usable as the oracle on large campaigns it precomputes its
iteration plan once (port-name tuples, reusable operand buffers) instead of
rebuilding per-module port lists every cycle.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.datapath.module import ModuleClass
from repro.datapath.modules import ConstantModule
from repro.datapath.netlist import Netlist
from repro.utils.bits import mask

#: An injector maps (net name, fault-free value) -> possibly corrupted value.
Injector = Callable[[str, int], int]

#: A module override replaces a module's evaluate function (for module
#: substitution / bus order errors): (inputs, controls) -> output.
ModuleOverride = Callable[[Sequence[int], Sequence[int]], int]


def no_injection(net_name: str, value: int) -> int:
    """The identity injector (fault-free simulation)."""
    return value


class DatapathSimulator:
    """Cycle-accurate simulator for a :class:`Netlist`.

    ``state`` maps register module names to their current contents.  External
    input nets (DPI / DTI / CTRL and register control nets) must be supplied
    each cycle via ``external``; missing externals default to 0, matching a
    quiescent environment.
    """

    def __init__(
        self,
        netlist: Netlist,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
    ) -> None:
        self.netlist = netlist
        self.injector = injector
        self.module_overrides = dict(module_overrides or {})
        self.state: dict[str, int] = {
            reg.name: reg.reset_value for reg in netlist.registers
        }
        self._order = netlist.topological_order()
        # Precomputed iteration plan: name tuples and reusable operand
        # buffers, built once so the per-cycle loops allocate nothing but
        # the returned value dict.
        self._ext_names = [
            net.name for net in netlist.nets.values() if net.is_external_input
        ]
        # Externals are masked to the net width at emission (before
        # injection), and injector/override results are masked to the output
        # net width — the semantics shared with the compiled and batched
        # kernel backends.
        self._ext_masks = [
            (net.name, mask(net.width))
            for net in netlist.nets.values() if net.is_external_input
        ]
        self._sources: list[tuple[str, int | None, str | None, int]] = []
        for module in netlist.modules.values():
            if isinstance(module, ConstantModule):
                self._sources.append(
                    (module.output.net.name, module.value, None,
                     mask(module.output.net.width))
                )
            elif module.module_class is ModuleClass.STATE:
                self._sources.append(
                    (module.output.net.name, None, module.name,
                     mask(module.output.net.width))
                )
        self._plan = []
        for module in self._order:
            in_names = tuple(p.net.name for p in module.data_inputs)
            ctl_names = tuple(p.net.name for p in module.control_inputs)
            self._plan.append((
                module, module.output.net.name, in_names, ctl_names,
                [0] * len(in_names), [0] * len(ctl_names),
                self.module_overrides.get(module.name),
                mask(module.output.net.width),
            ))
        self._reg_plan = [
            (reg, reg.name, reg.data_inputs[0].net.name,
             tuple(p.net.name for p in reg.control_inputs),
             [0] * len(reg.control_inputs))
            for reg in netlist.registers
        ]

    def reset(self) -> None:
        """Return all registers to their reset values."""
        for reg in self.netlist.registers:
            self.state[reg.name] = reg.reset_value

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, external: Mapping[str, int]) -> dict[str, int]:
        """Evaluate all net values for the current state and externals."""
        values: dict[str, int] = {}
        injector = self.injector
        fault_free = injector is no_injection
        get = external.get
        state = self.state

        if fault_free:
            for name, m in self._ext_masks:
                values[name] = get(name, 0) & m
            for name, const, reg, _ in self._sources:
                values[name] = const if reg is None else state[reg]
        else:
            for name, m in self._ext_masks:
                values[name] = injector(name, get(name, 0) & m) & m
            for name, const, reg, m in self._sources:
                values[name] = injector(
                    name, const if reg is None else state[reg]
                ) & m

        for (module, out, in_names, ctl_names, in_buf, ctl_buf,
             override, out_mask) in self._plan:
            for i, n in enumerate(in_names):
                in_buf[i] = values[n]
            for i, n in enumerate(ctl_names):
                ctl_buf[i] = values[n]
            if override is not None:
                result = override(in_buf, ctl_buf) & out_mask
            else:
                result = module.evaluate(in_buf, ctl_buf)
            values[out] = (
                result if fault_free else injector(out, result) & out_mask
            )
        return values

    def evaluate_partial(
        self, external: Mapping[str, int | None]
    ) -> dict[str, int | None]:
        """Three-valued evaluation: unknown (None) externals propagate X.

        A module produces a value when its controls and *needed* data inputs
        are known (a mux with a known select only needs the selected input).
        Used by the processor co-simulator to resolve the layered
        controller/datapath dependency within one cycle.
        """
        values: dict[str, int | None] = {}
        injector = self.injector
        fault_free = injector is no_injection
        get = external.get
        state = self.state

        for name, m in self._ext_masks:
            value = get(name)
            if value is not None:
                value = value & m
            if value is None or fault_free:
                values[name] = value
            else:
                values[name] = injector(name, value) & m
        for name, const, reg, m in self._sources:
            value = const if reg is None else state[reg]
            values[name] = value if fault_free else injector(name, value) & m

        for (module, out, in_names, ctl_names, in_buf, ctl_buf,
             override, out_mask) in self._plan:
            unknown = False
            for i, n in enumerate(ctl_names):
                value = values[n]
                if value is None:
                    unknown = True
                    break
                ctl_buf[i] = value
            if not unknown:
                for i, n in enumerate(in_names):
                    in_buf[i] = values[n]
                for i in module.needed_inputs(ctl_buf):
                    if in_buf[i] is None:
                        unknown = True
                        break
            if unknown:
                values[out] = None
                continue
            for i, value in enumerate(in_buf):
                if value is None:
                    in_buf[i] = 0
            if override is not None:
                result = override(in_buf, ctl_buf) & out_mask
            else:
                result = module.evaluate(in_buf, ctl_buf)
            values[out] = (
                result if fault_free else injector(out, result) & out_mask
            )
        return values

    def step(self, external: Mapping[str, int]) -> dict[str, int]:
        """Evaluate one cycle and clock the registers; returns net values."""
        values = self.evaluate(external)
        state = self.state
        # In-place update is safe: register D and control operands come from
        # ``values`` (this cycle's combinational outputs), never from the
        # state of another register; only the hold case reads its own entry.
        for reg, name, d_name, ctl_names, ctl_buf in self._reg_plan:
            for i, n in enumerate(ctl_names):
                ctl_buf[i] = values[n]
            state[name] = reg.next_state(state[name], values[d_name], ctl_buf)
        return values

    def run(
        self, externals: list[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        """Run a sequence of cycles; returns per-cycle net values."""
        return [self.step(cycle) for cycle in externals]
