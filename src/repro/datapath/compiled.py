"""Compiled datapath kernels: per-netlist Python code generation.

The interpretive :class:`~repro.datapath.simulate.DatapathSimulator` pays a
dict rebuild plus a per-module dynamic dispatch for every cycle.  This module
compiles a :class:`~repro.datapath.netlist.Netlist` once into specialized
``step``/``evaluate`` kernels:

* net and register names are interned to dense integer ids;
* the topological schedule is flattened into a straight-line Python function
  (one generated statement per module, arithmetic inlined for the common
  module types) compiled with ``exec``;
* values live in a reusable list indexed by net id — the fault-free fast
  path allocates nothing per cycle;
* injector and module-override support is compiled into *separate* hooked
  kernels, so fault-free simulation never tests for them.

The compiled form is cached on the netlist (``Netlist.compiled()``), exactly
like ``ControlNetwork.compiled()``, and invalidated by structural edits.
Generated sources can be dumped for debugging by setting the
``REPRO_KERNEL_DUMP`` environment variable to a directory (dumps land in
``<dir>/kernel_<netlist>.py`` and are gitignored).

Semantics are bit-identical to the interpretive simulator (enforced by
differential tests): externals are masked to the net width at emission
(*before* injection), injector and override results are masked to the net
width, constants and register outputs pass through the injector like every
other net, mux out-of-range selects choose input 0, tri-states pull to 0,
and register clocking follows ``RegisterModule.next_state`` (clear wins,
then hold on not-enable).  The emission masks keep every stored value inside
its net's width even for out-of-range environment inputs — the invariant the
batched numpy backend (:mod:`repro.datapath.batched`) relies on, since
uint64 lane arrays cannot hold unbounded Python ints.
"""

from __future__ import annotations

import os
from functools import partial as _bind
from typing import Mapping, Sequence

from repro.datapath.modules import ConstantModule
from repro.datapath.simulate import no_injection
from repro.utils.bits import mask


def _sx(v, sign, mo, mi):
    """Sign-extend helper used by generated code."""
    v &= mi
    return v | (mo ^ mi) if v & sign else v


def _ts(v, sign, modulus):
    """Two's-complement reinterpretation helper used by generated code."""
    return v - modulus if v & sign else v


def _pp(module, in_ids, ctl_ids, values, override, m):
    """Generic three-valued module evaluation (partial-kernel fallback).

    Results are masked to the output net's width (``m``) so overrides with
    out-of-range results share the masked semantics of every backend.
    """
    controls = [values[i] for i in ctl_ids]
    for c in controls:
        if c is None:
            return None
    inputs = [values[i] for i in in_ids]
    for i in module.needed_inputs(controls):
        if inputs[i] is None:
            return None
    inputs = [0 if v is None else v for v in inputs]
    if override is not None:
        return override(inputs, controls) & m
    return module.evaluate(inputs, controls) & m


def _inline_expr(module, a: list[str]) -> str | None:
    """Inline Python expression for a module, or None for the generic call.

    ``a`` holds the operand expressions (data inputs, in port order); the
    expression must equal ``module.evaluate`` bit-for-bit for every valid
    operand combination.
    """
    t = type(module).__name__
    w = getattr(module, "width", None)
    if t == "AddModule":
        return f"(({a[0]} + {a[1]}) & {mask(w)})"
    if t == "SubModule":
        return f"(({a[0]} - {a[1]}) & {mask(w)})"
    if t == "XorModule":
        return f"(({a[0]} ^ {a[1]}) & {mask(w)})"
    if t == "XnorModule":
        return f"(~({a[0]} ^ {a[1]}) & {mask(w)})"
    if t == "NotModule":
        return f"(~{a[0]} & {mask(w)})"
    if t == "AndModule":
        return f"({a[0]} & {a[1]})"
    if t == "OrModule":
        return f"({a[0]} | {a[1]})"
    if t == "NandModule":
        return f"(~({a[0]} & {a[1]}) & {mask(w)})"
    if t == "NorModule":
        return f"(~({a[0]} | {a[1]}) & {mask(w)})"
    if t == "ZeroExtendModule":
        return f"({a[0]} & {mask(module.in_width)})"
    if t == "SliceModule":
        return f"(({a[0]} >> {module.lo}) & {mask(module.out_width)})"
    if t == "SignExtendModule":
        return (f"_sx({a[0]}, {1 << (module.in_width - 1)}, "
                f"{mask(module.out_width)}, {mask(module.in_width)})")
    if t == "ConcatModule":
        return (f"(({a[1]} << {module.low_width}) | "
                f"({a[0]} & {mask(module.low_width)}))")
    if t == "EqModule":
        return f"(1 if {a[0]} == {a[1]} else 0)"
    if t == "NeModule":
        return f"(1 if {a[0]} != {a[1]} else 0)"
    if t == "LtuModule":
        return f"(1 if {a[0]} < {a[1]} else 0)"
    if t == "LeuModule":
        return f"(1 if {a[0]} <= {a[1]} else 0)"
    if t == "GtuModule":
        return f"(1 if {a[0]} > {a[1]} else 0)"
    if t == "GeuModule":
        return f"(1 if {a[0]} >= {a[1]} else 0)"
    if t in ("LtModule", "LeModule", "GtModule", "GeModule"):
        op = {"LtModule": "<", "LeModule": "<=",
              "GtModule": ">", "GeModule": ">="}[t]
        s, m = 1 << (w - 1), 1 << w
        return (f"(1 if _ts({a[0]}, {s}, {m}) {op} "
                f"_ts({a[1]}, {s}, {m}) else 0)")
    if t == "ShlModule":
        return (f"(0 if {a[1]} >= {w} else "
                f"(({a[0]} << {a[1]}) & {mask(w)}))")
    if t == "ShrModule":
        return (f"(0 if {a[1]} >= {w} else "
                f"(({a[0]} & {mask(w)}) >> {a[1]}))")
    return None


class CompiledDatapath:
    """Interned, flattened, codegen'd form of one netlist.

    Exposes the dense structural arrays (consumed by the cone-forking batch
    fault simulator) and six generated kernels::

        eval_plain(values, state, external)
        step_plain(values, state, external)
        partial_plain(values, state, external)
        eval_hooked(values, state, external, ovr, inj)
        step_hooked(values, state, external, ovr, inj)
        partial_hooked(values, state, external, ovr, inj)

    ``values`` and ``external`` are lists indexed by net id; ``state`` is a
    list indexed by register position (see :attr:`reg_names`).  ``inj`` maps
    net id -> unary corrupter; ``ovr`` maps schedule position -> override.
    """

    def __init__(self, netlist) -> None:
        self.netlist = netlist
        self.names: tuple[str, ...] = tuple(netlist.nets)
        self.index: dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.n_nets = len(self.names)
        self.net_width = [netlist.nets[n].width for n in self.names]
        self.net_mask = [mask(w) for w in self.net_width]
        idx = self.index

        self.ext_pairs: list[tuple[int, str]] = [
            (idx[net.name], net.name)
            for net in netlist.nets.values() if net.is_external_input
        ]
        self.ext_ids = [i for i, _ in self.ext_pairs]
        self.const_slots: list[tuple[int, int]] = []
        self.registers = list(netlist.registers)
        self.reg_names = tuple(r.name for r in self.registers)
        self.reg_pos = {name: j for j, name in enumerate(self.reg_names)}
        self.reg_q_ids: list[int] = []
        self.reg_d_ids: list[int] = []
        self.reg_ctl_ids: list[list[int]] = []
        for module in netlist.modules.values():
            if isinstance(module, ConstantModule):
                self.const_slots.append((idx[module.output.net.name],
                                         module.value))
        for reg in self.registers:
            self.reg_q_ids.append(idx[reg.output.net.name])
            self.reg_d_ids.append(idx[reg.data_inputs[0].net.name])
            self.reg_ctl_ids.append(
                [idx[p.net.name] for p in reg.control_inputs]
            )

        order = netlist.topological_order()
        self.sched_modules = list(order)
        self.sched_pos = {m.name: k for k, m in enumerate(order)}
        self.sched_out: list[int] = []
        self.sched_in: list[tuple[int, ...]] = []
        self.sched_ctl: list[tuple[int, ...]] = []
        for module in order:
            self.sched_out.append(idx[module.output.net.name])
            self.sched_in.append(
                tuple(idx[p.net.name] for p in module.data_inputs)
            )
            self.sched_ctl.append(
                tuple(idx[p.net.name] for p in module.control_inputs)
            )

        self.dpo_ids = [idx[n.name] for n in netlist.dpo_nets]
        self.sts_ids = [idx[n.name] for n in netlist.sts_nets]
        self.role = [netlist.nets[n].role for n in self.names]

        # Fanout: net id -> schedule positions reading it (data or control),
        # and net id -> register positions reading it (D or control).
        self.fanout_sched: list[list[int]] = [[] for _ in range(self.n_nets)]
        self.fanout_regs: list[list[int]] = [[] for _ in range(self.n_nets)]
        for k in range(len(order)):
            for i in self.sched_in[k] + self.sched_ctl[k]:
                self.fanout_sched[i].append(k)
        for j in range(len(self.registers)):
            for i in [self.reg_d_ids[j]] + self.reg_ctl_ids[j]:
                self.fanout_regs[i].append(j)
        for lst in self.fanout_sched:
            lst.sort()

        self.source = self._generate_source()
        env = self._exec_env()
        exec(compile(self.source, f"<kernel:{netlist.name}>", "exec"), env)
        self.eval_plain = env["eval_plain"]
        self.step_plain = env["step_plain"]
        self.partial_plain = env["partial_plain"]
        self.eval_hooked = env["eval_hooked"]
        self.step_hooked = env["step_hooked"]
        self.partial_hooked = env["partial_hooked"]
        self._maybe_dump()

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------
    def _exec_env(self) -> dict:
        env = {"_sx": _sx, "_ts": _ts, "_pp": _pp}
        for k, module in enumerate(self.sched_modules):
            env[f"_m{k}"] = module
            env[f"_e{k}"] = module.evaluate
            env[f"_ti{k}"] = self.sched_in[k]
            env[f"_tc{k}"] = self.sched_ctl[k]
            if type(module).__name__ == "MuxModule":
                env[f"_dt{k}"] = self.sched_in[k]
        return env

    def _source_lines(self, k: int, hooked: bool, partial: bool) -> list[str]:
        """Generated statements computing schedule position ``k``."""
        module = self.sched_modules[k]
        out = self.sched_out[k]
        ins = self.sched_in[k]
        ctls = self.sched_ctl[k]
        t = type(module).__name__
        body: list[str] = []
        if t == "MuxModule":
            n = module.n_inputs
            body.append(f"_s = values[{ctls[0]}]")
            pick = f"values[_dt{k}[_s] if _s < {n} else {ins[0]}]"
            if partial:
                body.append(f"_v = None if _s is None else {pick}")
            else:
                body.append(f"_v = {pick}")
        elif t == "TristateModule":
            body.append(f"_s = values[{ctls[0]}]")
            pick = f"(values[{ins[0]}] if _s == 1 else 0)"
            if partial:
                body.append(f"_v = None if _s is None else {pick}")
            else:
                body.append(f"_v = {pick}")
        else:
            expr = _inline_expr(module, [f"values[{i}]" for i in ins])
            if expr is None or ctls:
                if partial:
                    body.append(
                        f"_v = _pp(_m{k}, _ti{k}, _tc{k}, values, None, "
                        f"{self.net_mask[out]})"
                    )
                else:
                    args_in = ", ".join(f"values[{i}]" for i in ins)
                    args_ctl = ", ".join(f"values[{i}]" for i in ctls)
                    comma_in = "," if len(ins) == 1 else ""
                    comma_ctl = "," if len(ctls) == 1 else ""
                    body.append(f"_v = _e{k}(({args_in}{comma_in}), "
                                f"({args_ctl}{comma_ctl}))")
            elif partial:
                operands = [f"values[{i}]" for i in ins]
                guard = " or ".join(f"{o} is None" for o in operands)
                body.append(f"_v = None if {guard} else {expr}")
            else:
                body.append(f"_v = {expr}")
        if hooked:
            m = self.net_mask[out]
            lines = [f"if {k} in ovr:",
                     f"    _v = _pp(_m{k}, _ti{k}, _tc{k}, values, "
                     f"ovr[{k}], {m})",
                     "else:"]
            lines += ["    " + line for line in body]
            if partial:
                lines.append(f"if {out} in inj and _v is not None:")
            else:
                lines.append(f"if {out} in inj:")
            lines.append(f"    _v = inj[{out}](_v) & {m}")
            lines.append(f"values[{out}] = _v")
            return lines
        # Plain: collapse the temp into a direct store when possible.
        if len(body) == 1 and body[0].startswith("_v = "):
            return [f"values[{out}] = {body[0][5:]}"]
        return body + [f"values[{out}] = _v"]

    def _source_sources(self, hooked: bool, partial: bool) -> list[str]:
        lines: list[str] = []
        emits: list[tuple[int, str, bool]] = []
        # Externals are masked to the net width at emission, before
        # injection; constants and register state are in-range by invariant
        # (masked at construction / clocking / set_stimulus_state).
        for i, _ in self.ext_pairs:
            m = self.net_mask[i]
            if partial:
                expr = (f"None if external[{i}] is None "
                        f"else external[{i}] & {m}")
            else:
                expr = f"external[{i}] & {m}"
            emits.append((i, expr, True))
        for i, value in self.const_slots:
            emits.append((i, str(value), False))
        for j, i in enumerate(self.reg_q_ids):
            emits.append((i, f"state[{j}]", False))
        for i, expr, paren in emits:
            if not hooked:
                lines.append(f"values[{i}] = {expr}")
                continue
            lines.append(f"_v = ({expr})" if paren else f"_v = {expr}")
            if partial:
                lines.append(f"if {i} in inj and _v is not None:")
            else:
                lines.append(f"if {i} in inj:")
            lines.append(f"    _v = inj[{i}](_v) & {self.net_mask[i]}")
            lines.append(f"values[{i}] = _v")
        return lines

    def _clock_lines(self) -> list[str]:
        """Concrete register-clocking statements (next_state semantics)."""
        lines: list[str] = []
        for j, reg in enumerate(self.registers):
            d = self.reg_d_ids[j]
            ctl = self.reg_ctl_ids[j]
            load = f"(values[{d}] & {mask(reg.width)})"
            pos = 0
            hold = None
            if reg.has_enable:
                hold = f"state[{j}] if values[{ctl[pos]}] != 1 else {load}"
                pos += 1
            else:
                hold = load
            if reg.has_clear:
                lines.append(
                    f"state[{j}] = {reg.clear_value} "
                    f"if values[{ctl[pos]}] == 1 else ({hold})"
                )
            else:
                lines.append(f"state[{j}] = {hold}")
        return lines

    def _generate_source(self) -> str:
        def fn(name: str, hooked: bool, partial: bool,
               clock: bool) -> list[str]:
            sig = "values, state, external"
            if hooked:
                sig += ", ovr, inj"
            lines = [f"def {name}({sig}):"]
            body = self._source_sources(hooked, partial)
            for k in range(len(self.sched_modules)):
                body += self._source_lines(k, hooked, partial)
            if clock:
                body += self._clock_lines()
            if not body:
                body = ["pass"]
            lines += ["    " + line for line in body]
            return lines

        chunks: list[str] = []
        chunks += fn("eval_plain", False, False, False)
        chunks += fn("step_plain", False, False, True)
        chunks += fn("partial_plain", False, True, False)
        chunks += fn("eval_hooked", True, False, False)
        chunks += fn("step_hooked", True, False, True)
        chunks += fn("partial_hooked", True, True, False)
        return "\n".join(chunks) + "\n"

    def _maybe_dump(self) -> None:
        directory = os.environ.get("REPRO_KERNEL_DUMP")
        if not directory:
            return
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"kernel_{self.netlist.name}.py")
        with open(path, "w") as handle:
            handle.write(self.source)

    # ------------------------------------------------------------------
    # Hook-map construction
    # ------------------------------------------------------------------
    def injector_map(self, injector) -> dict:
        """Net id -> unary corrupter map for a name-based injector.

        Injectors carrying a ``sites`` attribute (an iterable of net names,
        as produced by :meth:`BusSSLError.injector`) hook only those nets;
        a generic injector hooks every net, matching the interpretive
        simulator's per-emission call.
        """
        if injector is no_injection:
            return {}
        sites = getattr(injector, "sites", None)
        names = self.names if sites is None else sites
        return {
            self.index[name]: _bind(injector, name)
            for name in names if name in self.index
        }

    def override_map(self, module_overrides: Mapping | None) -> dict:
        """Schedule position -> override map."""
        if not module_overrides:
            return {}
        out = {}
        for name, fn in module_overrides.items():
            if name in self.sched_pos:
                out[self.sched_pos[name]] = fn
        return out


class CompiledDatapathSimulator:
    """Drop-in counterpart of :class:`DatapathSimulator` over the kernels.

    The dict-based API (``evaluate`` / ``evaluate_partial`` / ``step`` /
    ``run``) is bit-compatible with the interpretive simulator; the dense
    API (``step_dense`` / ``run_dense``) skips name translation entirely
    for hot loops.
    """

    def __init__(
        self,
        netlist,
        injector=no_injection,
        module_overrides: Mapping | None = None,
    ) -> None:
        self.netlist = netlist
        self.compiled = netlist.compiled()
        self.injector = injector
        self.module_overrides = dict(module_overrides or {})
        self.state: dict[str, int] = {
            reg.name: reg.reset_value for reg in netlist.registers
        }
        cd = self.compiled
        self._values: list = [None] * cd.n_nets
        self._ext: list = [None] * cd.n_nets
        self._inj = cd.injector_map(injector)
        self._ovr = cd.override_map(self.module_overrides)
        self.hooked = bool(self._inj) or bool(self._ovr)

    def reset(self) -> None:
        for reg in self.netlist.registers:
            self.state[reg.name] = reg.reset_value

    # -- dense <-> named glue ------------------------------------------
    def _dense_state(self) -> list:
        return [self.state[name] for name in self.compiled.reg_names]

    def _store_state(self, dense: Sequence) -> None:
        for name, value in zip(self.compiled.reg_names, dense):
            self.state[name] = value

    def _fill_ext(self, external: Mapping, default) -> list:
        ext = self._ext
        get = external.get
        for i, name in self.compiled.ext_pairs:
            ext[i] = get(name, default)
        return ext

    def _as_dict(self) -> dict:
        return dict(zip(self.compiled.names, self._values))

    # -- dict-compatible API -------------------------------------------
    def evaluate(self, external: Mapping[str, int]) -> dict[str, int]:
        cd = self.compiled
        ext = self._fill_ext(external, 0)
        state = self._dense_state()
        if self.hooked:
            cd.eval_hooked(self._values, state, ext, self._ovr, self._inj)
        else:
            cd.eval_plain(self._values, state, ext)
        return self._as_dict()

    def evaluate_partial(
        self, external: Mapping[str, int | None]
    ) -> dict[str, int | None]:
        cd = self.compiled
        ext = self._fill_ext(external, None)
        state = self._dense_state()
        if self.hooked:
            cd.partial_hooked(self._values, state, ext, self._ovr, self._inj)
        else:
            cd.partial_plain(self._values, state, ext)
        return self._as_dict()

    def step(self, external: Mapping[str, int]) -> dict[str, int]:
        cd = self.compiled
        ext = self._fill_ext(external, 0)
        state = self._dense_state()
        if self.hooked:
            cd.step_hooked(self._values, state, ext, self._ovr, self._inj)
        else:
            cd.step_plain(self._values, state, ext)
        self._store_state(state)
        return self._as_dict()

    def run(
        self, externals: list[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        return [self.step(cycle) for cycle in externals]

    # -- dense API ------------------------------------------------------
    def run_dense(self, ext_frames: list[Sequence]) -> list:
        """Run dense external frames through the step kernel.

        Returns the final dense register state; ``self.state`` is updated.
        All buffers are reused — nothing is allocated per cycle on the
        fault-free path.
        """
        cd = self.compiled
        values = self._values
        state = self._dense_state()
        if self.hooked:
            step, ovr, inj = cd.step_hooked, self._ovr, self._inj
            for ext in ext_frames:
                step(values, state, ext, ovr, inj)
        else:
            step = cd.step_plain
            for ext in ext_frames:
                step(values, state, ext)
        self._store_state(state)
        return state

    def dense_external(self, external: Mapping[str, int],
                       default=0) -> list:
        """Translate a named external frame into a fresh dense frame."""
        frame = [default] * self.compiled.n_nets
        get = external.get
        for i, name in self.compiled.ext_pairs:
            frame[i] = get(name, default)
        return frame
