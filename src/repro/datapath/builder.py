"""Fluent construction API for word-level datapath netlists.

The paper's prototype reads structural Verilog; this builder plays the role
of that front-end (see DESIGN.md, substitutions).  Each helper instantiates a
library module, wires its inputs to existing nets and returns the output net,
so a datapath reads like straight-line RTL:

    b = DatapathBuilder("alu")
    a = b.input("a", 32)
    c = b.input("b", 32)
    s = b.ctrl("alusrc", 1)
    y = b.mux("opb", s, c, b.const("four", 32, 4))
    b.output("sum", b.add("sum_add", a, y))
"""

from __future__ import annotations

from repro.datapath.module import Module
from repro.datapath.modules import (
    AddModule,
    AddOvfModule,
    AndModule,
    ConcatModule,
    ConstantModule,
    EqModule,
    GeModule,
    GeuModule,
    GtModule,
    GtuModule,
    LeModule,
    LeuModule,
    LtModule,
    LtuModule,
    MuxModule,
    NandModule,
    NeModule,
    NorModule,
    NotModule,
    OrModule,
    RegisterModule,
    ShlModule,
    ShrModule,
    SignExtendModule,
    SliceModule,
    SraModule,
    SubModule,
    SubOvfModule,
    TristateModule,
    XnorModule,
    XorModule,
    ZeroExtendModule,
)
from repro.datapath.net import Net, NetRole
from repro.datapath.netlist import Netlist


class DatapathBuilder:
    """Builds a :class:`Netlist` with automatically named output nets."""

    def __init__(self, name: str) -> None:
        self.netlist = Netlist(name)
        self._stage: int | None = None

    # ------------------------------------------------------------------
    # Stage context
    # ------------------------------------------------------------------
    def set_stage(self, stage: int | None) -> None:
        """Subsequent modules/nets are tagged with this pipeline stage."""
        self._stage = stage

    # ------------------------------------------------------------------
    # External nets
    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> Net:
        """A data primary input (DPI) net."""
        return self.netlist.add_net(name, width, NetRole.DPI, stage=self._stage)

    def tertiary_input(self, name: str, width: int) -> Net:
        """A data tertiary input (DTI) net, e.g. the far end of a bypass."""
        return self.netlist.add_net(name, width, NetRole.DTI, stage=self._stage)

    def ctrl(self, name: str, width: int) -> Net:
        """A control (CTRL) net driven by the controller."""
        return self.netlist.add_net(name, width, NetRole.CTRL, stage=self._stage)

    def output(self, name: str, source: Net) -> Net:
        """Mark ``source`` as a data primary output and rename it."""
        return self._mark(source, NetRole.DPO, name)

    def tertiary_output(self, name: str, source: Net) -> Net:
        return self._mark(source, NetRole.DTO, name)

    def status(self, name: str, source: Net) -> Net:
        """Mark ``source`` as a status (STS) net feeding the controller."""
        return self._mark(source, NetRole.STS, name)

    def rename(self, net: Net, name: str) -> Net:
        """Give ``net`` a meaningful name (replacing the auto-generated one)."""
        if name != net.name:
            if name in self.netlist.nets:
                raise ValueError(f"net name {name!r} already in use")
            del self.netlist.nets[net.name]
            net.name = name
            self.netlist.nets[name] = net
        return net

    def _mark(self, net: Net, role: NetRole, name: str) -> Net:
        if net.role is not NetRole.INTERNAL:
            raise ValueError(
                f"net {net.name} already classified as {net.role.value}"
            )
        net.role = role
        return self.rename(net, name)

    # ------------------------------------------------------------------
    # Module instantiation core
    # ------------------------------------------------------------------
    def _wire(self, module: Module, data: list[Net], controls: list[Net]) -> Net:
        self.netlist.add_module(module)
        module.stage = self._stage
        if len(data) != len(module.data_inputs):
            raise ValueError(
                f"{module.name}: expected {len(module.data_inputs)} data inputs, "
                f"got {len(data)}"
            )
        if len(controls) != len(module.control_inputs):
            raise ValueError(
                f"{module.name}: expected {len(module.control_inputs)} control "
                f"inputs, got {len(controls)}"
            )
        for net, port in zip(data, module.data_inputs):
            self.netlist.connect(net, port)
        for net, port in zip(controls, module.control_inputs):
            self.netlist.connect(net, port)
        out = self.netlist.add_net(
            f"{module.name}.y", module.output.width, stage=self._stage
        )
        self.netlist.connect(out, module.output)
        return out

    # ------------------------------------------------------------------
    # ADD-class modules
    # ------------------------------------------------------------------
    def add(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(AddModule(name, a.width), [a, b], [])

    def sub(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(SubModule(name, a.width), [a, b], [])

    def xor(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(XorModule(name, a.width), [a, b], [])

    def xnor(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(XnorModule(name, a.width), [a, b], [])

    def not_(self, name: str, a: Net) -> Net:
        return self._wire(NotModule(name, a.width), [a], [])

    def sign_extend(self, name: str, a: Net, out_width: int) -> Net:
        return self._wire(SignExtendModule(name, a.width, out_width), [a], [])

    def zero_extend(self, name: str, a: Net, out_width: int) -> Net:
        return self._wire(ZeroExtendModule(name, a.width, out_width), [a], [])

    def slice(self, name: str, a: Net, lo: int, width: int) -> Net:
        return self._wire(SliceModule(name, a.width, lo, width), [a], [])

    def eq(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(EqModule(name, a.width), [a, b], [])

    def ne(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(NeModule(name, a.width), [a, b], [])

    def lt(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(LtModule(name, a.width), [a, b], [])

    def le(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(LeModule(name, a.width), [a, b], [])

    def gt(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(GtModule(name, a.width), [a, b], [])

    def ge(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(GeModule(name, a.width), [a, b], [])

    def ltu(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(LtuModule(name, a.width), [a, b], [])

    def leu(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(LeuModule(name, a.width), [a, b], [])

    def gtu(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(GtuModule(name, a.width), [a, b], [])

    def geu(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(GeuModule(name, a.width), [a, b], [])

    def add_ovf(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(AddOvfModule(name, a.width), [a, b], [])

    def sub_ovf(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(SubOvfModule(name, a.width), [a, b], [])

    # ------------------------------------------------------------------
    # AND-class modules
    # ------------------------------------------------------------------
    def and_(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(AndModule(name, a.width), [a, b], [])

    def or_(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(OrModule(name, a.width), [a, b], [])

    def nand(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(NandModule(name, a.width), [a, b], [])

    def nor(self, name: str, a: Net, b: Net) -> Net:
        return self._wire(NorModule(name, a.width), [a, b], [])

    def concat(self, name: str, low: Net, high: Net) -> Net:
        return self._wire(ConcatModule(name, low.width, high.width), [low, high], [])

    def mult(self, name: str, a: Net, b: Net) -> Net:
        from repro.datapath.modules import MultModule

        return self._wire(MultModule(name, a.width), [a, b], [])

    def min_(self, name: str, a: Net, b: Net) -> Net:
        from repro.datapath.modules import MinModule

        return self._wire(MinModule(name, a.width), [a, b], [])

    def max_(self, name: str, a: Net, b: Net) -> Net:
        from repro.datapath.modules import MaxModule

        return self._wire(MaxModule(name, a.width), [a, b], [])

    def abs_(self, name: str, a: Net) -> Net:
        from repro.datapath.modules import AbsModule

        return self._wire(AbsModule(name, a.width), [a], [])

    def rotl(self, name: str, a: Net, amount: Net) -> Net:
        from repro.datapath.modules import RotlModule

        return self._wire(RotlModule(name, a.width, amount.width), [a, amount], [])

    def rotr(self, name: str, a: Net, amount: Net) -> Net:
        from repro.datapath.modules import RotrModule

        return self._wire(RotrModule(name, a.width, amount.width), [a, amount], [])

    def shl(self, name: str, a: Net, amount: Net) -> Net:
        return self._wire(ShlModule(name, a.width, amount.width), [a, amount], [])

    def shr(self, name: str, a: Net, amount: Net) -> Net:
        return self._wire(ShrModule(name, a.width, amount.width), [a, amount], [])

    def sra(self, name: str, a: Net, amount: Net) -> Net:
        return self._wire(SraModule(name, a.width, amount.width), [a, amount], [])

    # ------------------------------------------------------------------
    # MUX-class modules
    # ------------------------------------------------------------------
    def mux(self, name: str, select: Net, *data: Net) -> Net:
        module = MuxModule(name, data[0].width, len(data))
        return self._wire(module, list(data), [select])

    def tristate(self, name: str, enable: Net, a: Net) -> Net:
        return self._wire(TristateModule(name, a.width), [a], [enable])

    # ------------------------------------------------------------------
    # Structural modules
    # ------------------------------------------------------------------
    def const(self, name: str, width: int, value: int) -> Net:
        return self._wire(ConstantModule(name, width, value), [], [])

    def register(
        self,
        name: str,
        d: Net,
        reset_value: int = 0,
        enable: Net | None = None,
        clear: Net | None = None,
        clear_value: int = 0,
    ) -> Net:
        """Instantiate a pipe register; returns its Q output net."""
        module = RegisterModule(
            name,
            d.width,
            reset_value=reset_value,
            has_enable=enable is not None,
            has_clear=clear is not None,
            clear_value=clear_value,
        )
        controls = [n for n in (enable, clear) if n is not None]
        return self._wire(module, [d], controls)

    def placeholder_register(
        self,
        name: str,
        width: int,
        reset_value: int = 0,
        enable: Net | None = None,
        clear: Net | None = None,
        clear_value: int = 0,
    ) -> Net:
        """Create a register whose D input is wired later.

        Needed for feedback structures (bypass buses, the PC loop) where the
        register's output is consumed by logic that ultimately produces its
        input.  Returns the Q net; call :meth:`connect_register` with the D
        net once it exists.
        """
        module = RegisterModule(
            name,
            width,
            reset_value=reset_value,
            has_enable=enable is not None,
            has_clear=clear is not None,
            clear_value=clear_value,
        )
        self.netlist.add_module(module)
        module.stage = self._stage
        for net, port in zip(
            [n for n in (enable, clear) if n is not None],
            module.control_inputs,
        ):
            self.netlist.connect(net, port)
        out = self.netlist.add_net(f"{name}.y", width, stage=self._stage)
        self.netlist.connect(out, module.output)
        return out

    def connect_register(self, name: str, d: Net) -> None:
        """Wire the D input of a placeholder register."""
        module = self.netlist.module(name)
        if not isinstance(module, RegisterModule):
            raise ValueError(f"{name!r} is not a register")
        port = module.data_inputs[0]
        if port.net is not None:
            raise ValueError(f"register {name!r} already connected")
        self.netlist.connect(d, port)

    def build(self) -> Netlist:
        """Validate and return the netlist."""
        self.netlist.validate()
        return self.netlist
