"""Export a word-level netlist as structural Verilog-style text.

The paper's DLX is "1552 lines of structural Verilog code, excluding the
models for library modules such as adders and register-files"; their
prototype parses that text into the datapath model.  We construct netlists
programmatically instead (see DESIGN.md), and this module closes the loop
in the other direction: any :class:`Netlist` renders as a structural
module-instantiation listing, which

* gives a size comparison against the paper's front-end input, and
* serves as a human-readable dump of a generated or hand-built datapath.

The output is *structural-Verilog-shaped* (module header, wire
declarations, one instantiation per module, signal-role comments); it is
not meant to be fed to a synthesis tool — the library-module behaviours
live in Python, exactly as the paper's library modules lived outside the
1552 lines.
"""

from __future__ import annotations

from repro.datapath.modules import ConstantModule, RegisterModule
from repro.datapath.net import NetRole
from repro.datapath.netlist import Netlist

_ROLE_COMMENT = {
    NetRole.DPI: "data primary input",
    NetRole.DPO: "data primary output",
    NetRole.DTI: "data tertiary input",
    NetRole.DTO: "data tertiary output",
    NetRole.CTRL: "control from controller",
    NetRole.STS: "status to controller",
}


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _type_name(module) -> str:
    name = type(module).__name__
    return name[: -len("Module")].lower() if name.endswith("Module") else name


def export_verilog(netlist: Netlist) -> str:
    """Render ``netlist`` as structural Verilog-style text."""
    lines: list[str] = []
    emit = lines.append

    inputs = [n for n in netlist.nets.values()
              if n.role in (NetRole.DPI, NetRole.DTI, NetRole.CTRL)]
    outputs = [n for n in netlist.nets.values()
               if n.role in (NetRole.DPO, NetRole.DTO, NetRole.STS)]
    ports = ["clock"] + [n.name for n in inputs] + [n.name for n in outputs]

    emit(f"// generated from netlist {netlist.name!r} by repro")
    emit(f"module {netlist.name} (")
    emit("    " + ",\n    ".join(ports))
    emit(");")
    emit("  input clock;")
    for net in inputs:
        emit(f"  input {_range(net.width)}{net.name};"
             f"  // {_ROLE_COMMENT[net.role]}")
    for net in outputs:
        emit(f"  output {_range(net.width)}{net.name};"
             f"  // {_ROLE_COMMENT[net.role]}")
    emit("")
    for net in netlist.nets.values():
        if net.role is NetRole.INTERNAL:
            stage = f"  // stage {net.stage}" if net.stage is not None else ""
            emit(f"  wire {_range(net.width)}{_escape(net.name)};{stage}")
    emit("")

    for module in netlist.modules.values():
        connections = []
        for port in module.data_inputs + module.control_inputs:
            connections.append(f".{port.name}({_escape(port.net.name)})")
        for port in module.outputs:
            connections.append(f".{port.name}({_escape(port.net.name)})")
        if isinstance(module, RegisterModule):
            connections.insert(0, ".clock(clock)")
            params = [f"#(.WIDTH({module.width})",
                      f".RESET({module.reset_value})"]
            if module.has_clear:
                params.append(f".CLEAR_VALUE({module.clear_value})")
            header = f"  {_type_name(module)} {', '.join(params)})"
        elif isinstance(module, ConstantModule):
            header = (f"  {_type_name(module)} "
                      f"#(.WIDTH({module.width}), .VALUE({module.value}))")
        else:
            width = getattr(module, "width", None)
            header = f"  {_type_name(module)}"
            if width is not None:
                header += f" #(.WIDTH({width}))"
        emit(f"{header} {module.name} ({', '.join(connections)});")
    emit("endmodule")
    return "\n".join(lines) + "\n"


def _escape(name: str) -> str:
    """Verilog identifiers cannot contain dots; escape auto-named nets."""
    return name.replace(".", "_")


def structural_line_count(netlist: Netlist) -> int:
    """Lines of the structural export — comparable to the paper's '1552
    lines of structural Verilog, excluding library modules'."""
    return export_verilog(netlist).count("\n")
