"""Word-level datapath substrate (Section III / V.A of the paper).

Public surface: the net/module structures, the module library, the fluent
:class:`DatapathBuilder`, and the concrete :class:`DatapathSimulator`.
"""

from repro.datapath.batched import (
    HAS_NUMPY,
    BatchedDatapath,
    BatchedDatapathSimulator,
    batched_datapath,
    effective_lanes,
)
from repro.datapath.builder import DatapathBuilder
from repro.datapath.compiled import CompiledDatapath, CompiledDatapathSimulator
from repro.datapath.faultsim import BatchFaultSimulator, ForkOutcome
from repro.datapath.module import Module, ModuleClass
from repro.datapath.net import Net, NetRole, Port, PortDirection, PortKind
from repro.datapath.netlist import Netlist, NetlistError
from repro.datapath.simulate import DatapathSimulator, Injector, no_injection

__all__ = [
    "BatchFaultSimulator",
    "BatchedDatapath",
    "BatchedDatapathSimulator",
    "CompiledDatapath",
    "CompiledDatapathSimulator",
    "HAS_NUMPY",
    "batched_datapath",
    "effective_lanes",
    "DatapathBuilder",
    "ForkOutcome",
    "DatapathSimulator",
    "Injector",
    "Module",
    "ModuleClass",
    "Net",
    "NetRole",
    "Netlist",
    "NetlistError",
    "Port",
    "PortDirection",
    "PortKind",
    "no_injection",
]
