"""The word-level datapath module library.

Every combinational module falls into one of the three path-selection classes
of Section V.A (ADD / AND / MUX).  Each module implements:

* ``evaluate(inputs, controls)`` — the forward word function, and
* ``solve_input(index, target, inputs, controls)`` — a partial inverse used
  by the discrete-relaxation value solver (DPRELAX).  ``None`` means "no
  value of that input produces the target output" (or the inverse is not
  supported); relaxation then tries a different net.

Widths are checked at construction; values are unsigned Python ints masked to
the port width.
"""

from __future__ import annotations

from typing import Sequence

from repro.datapath.module import Module, ModuleClass
from repro.utils.bits import (
    add_overflows,
    mask,
    sign_extend,
    sub_overflows,
    to_signed,
    to_unsigned,
)


def _solve_by_candidates(
    module: Module,
    index: int,
    target: int,
    inputs: Sequence[int | None],
    controls: Sequence[int],
    candidates: Sequence[int],
) -> int | None:
    """Try candidate values for input ``index``; return the first that works."""
    trial = list(inputs)
    width = module.data_inputs[index].width
    seen: set[int] = set()
    for candidate in candidates:
        value = to_unsigned(candidate, width)
        if value in seen:
            continue
        seen.add(value)
        trial[index] = value
        if module.evaluate(trial, controls) == target:
            return value
    return None


# ---------------------------------------------------------------------------
# ADD class: invertible-through-one-input modules
# ---------------------------------------------------------------------------
class AddModule(Module):
    """Word adder: y = (a + b) mod 2^w."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return to_unsigned(inputs[0] + inputs[1], self.width)

    def solve_input(self, index, target, inputs, controls):
        other = inputs[1 - index]
        return to_unsigned(target - other, self.width)


class SubModule(Module):
    """Word subtractor: y = (a - b) mod 2^w."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return to_unsigned(inputs[0] - inputs[1], self.width)

    def solve_input(self, index, target, inputs, controls):
        if index == 0:
            return to_unsigned(target + inputs[1], self.width)
        return to_unsigned(inputs[0] - target, self.width)


class XorModule(Module):
    """XOR word gate: y = a ^ b (ADD class: invertible through either input)."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (inputs[0] ^ inputs[1]) & mask(self.width)

    def solve_input(self, index, target, inputs, controls):
        return (target ^ inputs[1 - index]) & mask(self.width)


class XnorModule(Module):
    """XNOR word gate: y = ~(a ^ b)."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (~(inputs[0] ^ inputs[1])) & mask(self.width)

    def solve_input(self, index, target, inputs, controls):
        return (~(target ^ inputs[1 - index])) & mask(self.width)


class NotModule(Module):
    """NOT word gate: y = ~a (single input, fully invertible)."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (~inputs[0]) & mask(self.width)

    def solve_input(self, index, target, inputs, controls):
        return (~target) & mask(self.width)


class SignExtendModule(Module):
    """Sign extension from in_width to out_width bits."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, in_width: int, out_width: int) -> None:
        super().__init__(name)
        self.in_width = in_width
        self.out_width = out_width
        self.add_data_input("a", in_width)
        self.add_output("y", out_width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return sign_extend(inputs[0], self.in_width, self.out_width)

    def solve_input(self, index, target, inputs, controls):
        candidate = target & mask(self.in_width)
        if sign_extend(candidate, self.in_width, self.out_width) == target:
            return candidate
        return None


class ZeroExtendModule(Module):
    """Zero extension from in_width to out_width bits."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, in_width: int, out_width: int) -> None:
        super().__init__(name)
        self.in_width = in_width
        self.out_width = out_width
        self.add_data_input("a", in_width)
        self.add_output("y", out_width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return inputs[0] & mask(self.in_width)

    def solve_input(self, index, target, inputs, controls):
        if target <= mask(self.in_width):
            return target
        return None


class SliceModule(Module):
    """Bit-field extraction: y = a[lo + out_width - 1 : lo]."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, in_width: int, lo: int, out_width: int) -> None:
        super().__init__(name)
        if lo + out_width > in_width:
            raise ValueError(f"slice [{lo}+{out_width}] exceeds width {in_width}")
        self.in_width = in_width
        self.lo = lo
        self.out_width = out_width
        self.add_data_input("a", in_width)
        self.add_output("y", out_width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (inputs[0] >> self.lo) & mask(self.out_width)

    def solve_input(self, index, target, inputs, controls):
        # Free bits outside the slice are set to zero.
        return (target & mask(self.out_width)) << self.lo


class _PredicateModule(Module):
    """Base for single-bit predicate modules y = a <op> b (ADD class)."""

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", 1)

    def _predicate(self, a: int, b: int) -> bool:
        raise NotImplementedError

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return int(self._predicate(inputs[0], inputs[1]))

    def solve_input(self, index, target, inputs, controls):
        other = inputs[1 - index]
        w = self.width
        min_signed = 1 << (w - 1)  # unsigned repr of most negative value
        max_signed = mask(w - 1) if w > 1 else 0
        candidates = [other, other + 1, other - 1, 0, 1, mask(w), min_signed, max_signed]
        return _solve_by_candidates(self, index, target, inputs, controls, candidates)


class EqModule(_PredicateModule):
    """Equality predicate: y = (a == b)."""

    def _predicate(self, a: int, b: int) -> bool:
        return a == b


class NeModule(_PredicateModule):
    """Inequality predicate: y = (a != b)."""

    def _predicate(self, a: int, b: int) -> bool:
        return a != b


class LtModule(_PredicateModule):
    """Signed less-than predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return to_signed(a, self.width) < to_signed(b, self.width)


class LeModule(_PredicateModule):
    """Signed less-or-equal predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return to_signed(a, self.width) <= to_signed(b, self.width)


class GtModule(_PredicateModule):
    """Signed greater-than predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return to_signed(a, self.width) > to_signed(b, self.width)


class GeModule(_PredicateModule):
    """Signed greater-or-equal predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return to_signed(a, self.width) >= to_signed(b, self.width)


class LtuModule(_PredicateModule):
    """Unsigned less-than predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return a < b


class LeuModule(_PredicateModule):
    """Unsigned less-or-equal predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return a <= b


class GtuModule(_PredicateModule):
    """Unsigned greater-than predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return a > b


class GeuModule(_PredicateModule):
    """Unsigned greater-or-equal predicate."""

    def _predicate(self, a: int, b: int) -> bool:
        return a >= b


class AddOvfModule(_PredicateModule):
    """Signed addition overflow predicate (ADDOVF in the paper)."""

    def _predicate(self, a: int, b: int) -> bool:
        return add_overflows(a, b, self.width)


class SubOvfModule(_PredicateModule):
    """Signed subtraction overflow predicate (SUBOVF in the paper)."""

    def _predicate(self, a: int, b: int) -> bool:
        return sub_overflows(a, b, self.width)


# ---------------------------------------------------------------------------
# AND class: all inputs must be controlled to justify the output
# ---------------------------------------------------------------------------
class AndModule(Module):
    """AND word gate: y = a & b."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return inputs[0] & inputs[1]

    def solve_input(self, index, target, inputs, controls):
        other = inputs[1 - index]
        if target & ~other & mask(self.width):
            return None  # target asks for 1-bits the other input masks to 0
        return target | (~other & mask(self.width))


class OrModule(Module):
    """OR word gate: y = a | b."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return inputs[0] | inputs[1]

    def solve_input(self, index, target, inputs, controls):
        other = inputs[1 - index]
        if other & ~target & mask(self.width):
            return None  # the other input forces 1-bits where target wants 0
        return target & ~other & mask(self.width)


class NandModule(Module):
    """NAND word gate: y = ~(a & b)."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (~(inputs[0] & inputs[1])) & mask(self.width)

    def solve_input(self, index, target, inputs, controls):
        inverted = (~target) & mask(self.width)
        other = inputs[1 - index]
        if inverted & ~other & mask(self.width):
            return None
        return inverted | (~other & mask(self.width))


class NorModule(Module):
    """NOR word gate: y = ~(a | b)."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (~(inputs[0] | inputs[1])) & mask(self.width)

    def solve_input(self, index, target, inputs, controls):
        inverted = (~target) & mask(self.width)
        other = inputs[1 - index]
        if other & ~inverted & mask(self.width):
            return None
        return inverted & ~other & mask(self.width)


class ConcatModule(Module):
    """Concatenation: y = {b, a} with a in the low bits.

    AND class: every input must be controlled to justify the output.  (The
    observation rule of the AND class is conservative for concat — side
    inputs do not actually mask each other — which is safe for path
    selection.)
    """

    module_class = ModuleClass.AND

    def __init__(self, name: str, low_width: int, high_width: int) -> None:
        super().__init__(name)
        self.low_width = low_width
        self.high_width = high_width
        self.add_data_input("a", low_width)
        self.add_data_input("b", high_width)
        self.add_output("y", low_width + high_width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return (inputs[1] << self.low_width) | (inputs[0] & mask(self.low_width))

    def solve_input(self, index, target, inputs, controls):
        if index == 0:
            value = target & mask(self.low_width)
            trial = [value, inputs[1]]
        else:
            value = target >> self.low_width
            trial = [inputs[0], value]
        if self.evaluate(trial, controls) == target:
            return value
        return None


class _ShiftModule(Module):
    """Base for shifters: y = shift(a, amount).  AND class per the paper."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int, amount_width: int) -> None:
        super().__init__(name)
        self.width = width
        self.amount_width = amount_width
        self.add_data_input("a", width)
        self.add_data_input("amount", amount_width)
        self.add_output("y", width)

    def _shift(self, a: int, amount: int) -> int:
        raise NotImplementedError

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return self._shift(inputs[0], inputs[1])

    def solve_input(self, index, target, inputs, controls):
        if index == 1:
            candidates = range(min(self.width, mask(self.amount_width)) + 1)
            return _solve_by_candidates(self, 1, target, inputs, controls, list(candidates))
        amount = inputs[1]
        candidates = [target, target << amount, target >> amount]
        return _solve_by_candidates(self, 0, target, inputs, controls, candidates)


class ShlModule(_ShiftModule):
    """Logical left shift."""

    def _shift(self, a: int, amount: int) -> int:
        if amount >= self.width:
            return 0
        return (a << amount) & mask(self.width)


class ShrModule(_ShiftModule):
    """Logical right shift."""

    def _shift(self, a: int, amount: int) -> int:
        if amount >= self.width:
            return 0
        return (a & mask(self.width)) >> amount


class SraModule(_ShiftModule):
    """Arithmetic right shift."""

    def _shift(self, a: int, amount: int) -> int:
        signed = to_signed(a, self.width)
        if amount >= self.width:
            amount = self.width - 1
        return to_unsigned(signed >> amount, self.width)


# ---------------------------------------------------------------------------
# MUX class: control inputs select a data input
# ---------------------------------------------------------------------------
class MuxModule(Module):
    """n-way multiplexer: y = data[sel]; out-of-range selects yield input 0."""

    module_class = ModuleClass.MUX

    def __init__(self, name: str, width: int, n_inputs: int) -> None:
        super().__init__(name)
        if n_inputs < 2:
            raise ValueError("mux needs at least two data inputs")
        self.width = width
        self.n_inputs = n_inputs
        for i in range(n_inputs):
            self.add_data_input(f"d{i}", width)
        select_width = max(1, (n_inputs - 1).bit_length())
        self.add_control_input("sel", select_width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        sel = controls[0]
        if sel >= self.n_inputs:
            sel = 0
        return inputs[sel]

    def needed_inputs(self, controls):
        sel = controls[0]
        if sel >= self.n_inputs:
            sel = 0
        return [sel]

    def solve_input(self, index, target, inputs, controls):
        sel = controls[0]
        if sel >= self.n_inputs:
            sel = 0
        if sel != index:
            return None  # a deselected input cannot influence the output
        return target


class TristateModule(Module):
    """Tri-state buffer: y = a when enabled, else the bus pull value (0).

    The high-impedance state is modelled as a pull-down to 0, which is how a
    released bus reads in the word-level simulator.
    """

    module_class = ModuleClass.MUX

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_control_input("en", 1)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return inputs[0] if controls[0] == 1 else 0

    def needed_inputs(self, controls):
        return [0] if controls[0] == 1 else []

    def solve_input(self, index, target, inputs, controls):
        if controls[0] != 1:
            return None
        return target


# ---------------------------------------------------------------------------
# Structural modules
# ---------------------------------------------------------------------------
class ConstantModule(Module):
    """Constant source (always controlled; SOURCE class)."""

    module_class = ModuleClass.SOURCE

    def __init__(self, name: str, width: int, value: int) -> None:
        super().__init__(name)
        self.width = width
        self.value = to_unsigned(value, width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return self.value


class RegisterModule(Module):
    """A data pipe register (DPR): q <= d on every clock, with optional
    enable (stall) and clear (squash) control inputs.

    STATE class — registers delimit pipeline stages; the combinational
    propagation tables never traverse them.  When ``has_enable`` the register
    holds its value while enable is 0; when ``has_clear`` an asserted clear
    forces ``clear_value``.
    """

    module_class = ModuleClass.STATE

    def __init__(
        self,
        name: str,
        width: int,
        reset_value: int = 0,
        has_enable: bool = False,
        has_clear: bool = False,
        clear_value: int = 0,
    ) -> None:
        super().__init__(name)
        self.width = width
        self.reset_value = to_unsigned(reset_value, width)
        self.clear_value = to_unsigned(clear_value, width)
        self.has_enable = has_enable
        self.has_clear = has_clear
        self.add_data_input("d", width)
        if has_enable:
            self.add_control_input("en", 1)
        if has_clear:
            self.add_control_input("clr", 1)
        self.add_output("q", width)

    def next_state(self, current: int, d: int, controls: Sequence[int]) -> int:
        """Clock-edge semantics given current state, D input and controls."""
        idx = 0
        enabled = True
        if self.has_enable:
            enabled = controls[idx] == 1
            idx += 1
        cleared = False
        if self.has_clear:
            cleared = controls[idx] == 1
        if cleared:
            return self.clear_value
        if not enabled:
            return current
        return to_unsigned(d, self.width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        raise RuntimeError("registers are clocked; use next_state, not evaluate")


class MultModule(Module):
    """Word multiplier: y = (a * b) mod 2^w.

    AND class: justifying an arbitrary output requires steering *all*
    inputs (through an odd operand the output is invertible, but an even
    operand pins the low bits), and observation of one input needs the
    other controlled to a non-zero-divisor — the conservative AND-class
    rules cover both.
    """

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        return to_unsigned(inputs[0] * inputs[1], self.width)

    def solve_input(self, index, target, inputs, controls):
        other = inputs[1 - index]
        if other % 2 == 1:
            # Odd factors are invertible modulo 2^w.
            inverse = pow(other, -1, 1 << self.width)
            return to_unsigned(target * inverse, self.width)
        candidates = [target, 0, 1, other]
        return _solve_by_candidates(self, index, target, inputs, controls,
                                    candidates)


class MinModule(Module):
    """Word minimum (signed): y = min(a, b).  AND class (both inputs gate
    which value appears)."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        a, b = inputs
        return a if to_signed(a, self.width) <= to_signed(b, self.width) else b

    def solve_input(self, index, target, inputs, controls):
        candidates = [target, inputs[1 - index]]
        return _solve_by_candidates(self, index, target, inputs, controls,
                                    candidates)


class MaxModule(Module):
    """Word maximum (signed): y = max(a, b)."""

    module_class = ModuleClass.AND

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_data_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        a, b = inputs
        return a if to_signed(a, self.width) >= to_signed(b, self.width) else b

    def solve_input(self, index, target, inputs, controls):
        candidates = [target, inputs[1 - index]]
        return _solve_by_candidates(self, index, target, inputs, controls,
                                    candidates)


class AbsModule(Module):
    """Signed absolute value: y = |a| (two's complement; |min| wraps).

    ADD class: single input; partially invertible (target or -target).
    """

    module_class = ModuleClass.ADD

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_data_input("a", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Sequence[int], controls: Sequence[int]) -> int:
        signed = to_signed(inputs[0], self.width)
        return to_unsigned(abs(signed), self.width)

    def solve_input(self, index, target, inputs, controls):
        candidates = [target, -target]
        return _solve_by_candidates(self, 0, target, inputs, controls,
                                    candidates)


class RotlModule(_ShiftModule):
    """Rotate left by a (masked) amount.  AND class like the shifters."""

    def _shift(self, a: int, amount: int) -> int:
        amount %= self.width
        value = a & mask(self.width)
        return ((value << amount) | (value >> (self.width - amount))) & mask(
            self.width
        ) if amount else value


class RotrModule(_ShiftModule):
    """Rotate right by a (masked) amount."""

    def _shift(self, a: int, amount: int) -> int:
        amount %= self.width
        value = a & mask(self.width)
        return ((value >> amount) | (value << (self.width - amount))) & mask(
            self.width
        ) if amount else value
