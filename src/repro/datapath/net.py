"""Nets and ports of the word-level datapath netlist.

The datapath is represented at the word level (Section III of the paper): a
net carries a multi-bit word, modules are high-level operators.  Every port
is a terminal of exactly one net.  Nets with several sinks are *fanout stems*;
each (net, sink) pair is a *fanout branch*.  Path selection (DPTRACE) makes
decisions on which branch may use the stem for justification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.datapath.module import Module


class PortDirection(enum.Enum):
    """Direction of a module port."""

    IN = "in"
    OUT = "out"


class PortKind(enum.Enum):
    """Functional kind of a module port.

    DATA ports carry datapath words; CONTROL ports are the select/enable
    inputs of MUX-class modules and are driven by CTRL nets from the
    controller.
    """

    DATA = "data"
    CONTROL = "control"


class NetRole(enum.Enum):
    """Classification of a net per the processor model of Figure 1.

    The letters follow the paper: D = datapath, P = primary, S = secondary,
    T = tertiary, I = input, O = output.  CTRL nets are control signals
    entering the datapath from the controller; STS nets are status signals
    produced by the datapath for the controller.
    """

    INTERNAL = "internal"
    DPI = "dpi"  # data primary input (from environment)
    DPO = "dpo"  # data primary output (to environment)
    DSI = "dsi"  # data secondary input (from this stage's pipe register)
    DSO = "dso"  # data secondary output (to this stage's pipe register)
    DTI = "dti"  # data tertiary input (from another pipe stage, e.g. bypass)
    DTO = "dto"  # data tertiary output (to another pipe stage)
    CTRL = "ctrl"  # control signal from the controller
    STS = "sts"  # status signal to the controller


@dataclass(eq=False)
class Port:
    """A terminal of a module, attached to exactly one net."""

    module: "Module"
    name: str
    direction: PortDirection
    width: int
    kind: PortKind = PortKind.DATA
    net: "Net | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.module.name}.{self.name}, {self.direction.value}, w={self.width})"

    @property
    def full_name(self) -> str:
        return f"{self.module.name}.{self.name}"


@dataclass(eq=False)
class Net:
    """A named word-level net.

    ``driver`` is the module output port that drives the net, or ``None`` for
    external input nets (DPI / DTI / CTRL).  ``sinks`` are the module input
    ports fed by the net.  ``stage`` is the pipeline stage the net belongs to
    (``None`` when the netlist is not pipelined).
    """

    name: str
    width: int
    role: NetRole = NetRole.INTERNAL
    driver: Port | None = None
    sinks: list[Port] = field(default_factory=list)
    stage: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, w={self.width}, {self.role.value})"

    @property
    def is_external_input(self) -> bool:
        """True when the net is driven by the environment, not by a module."""
        return self.driver is None

    @property
    def fanout(self) -> int:
        """Number of sink ports (fanout branches)."""
        return len(self.sinks)

    @property
    def has_fanout(self) -> bool:
        return len(self.sinks) > 1
