"""Batched (lane-vectorised) datapath kernels over numpy.

The compiled kernels in :mod:`repro.datapath.compiled` evaluate one stimulus
at a time; a 10k-program fuzz sweep is 10k kernel calls.  This module emits
the *batch-axis* counterpart: every net value becomes a ``uint64`` array of
shape ``(B,)`` — one slot per **lane** — and one generated kernel call
carries all ``B`` stimuli through the netlist at once.  Word-level module
semantics map onto vectorised array arithmetic with explicit masking to each
net's width; per-lane divergence (mux selects, tri-state enables, three-
valued unknowns) is handled by masked select (``np.where``) rather than
branching.

Lane layout and masking rules
-----------------------------

* ``values[i]`` / ``known[i]`` are ``(B,)`` arrays indexed by net id;
  ``state[j]`` by register position — the same dense ids as the scalar
  compiled kernels.
* All arithmetic runs in ``uint64``; net widths above 64 are rejected at
  construction.  ``(a + b) & m``, ``(a - b) & m`` and ``(a * b) & m`` are
  exact mod ``2**w`` for ``w <= 64`` because uint64 wraparound preserves the
  low 64 bits.  Signed comparisons bias both operands by the sign bit and
  compare unsigned.  Shift amounts are clamped *before* shifting (numpy
  shifts by >= 64 are undefined, and ``np.where`` evaluates both branches).
* Externals are masked to the net width in Python **before** array fill —
  numpy 2 refuses negative ints in uint64 arrays — matching the scalar
  backends, which mask externals at emission.
* Three-valued (partial) kernels keep the **stored-0 invariant**: a lane
  whose net is unknown stores value 0 (``np.where(known, expr, 0)``), which
  mirrors the scalar partial kernels' 0-substitution and keeps downstream
  vectorised arithmetic well-defined.
* Injectors and module overrides are scalar Python callables; the hooked
  kernels apply them elementwise at the few hooked sites only, so fault-free
  lanes pay nothing.  Injected values are masked to the net width, the
  semantics all backends share.

The scalar compiled kernels remain the differential oracle (see
``tests/test_batched_differential.py``) and the fallback when numpy is
absent: numpy is an *optional* dependency, and every entry point raises a
clean ``ImportError`` (via :func:`require_numpy`) when it is missing.
"""

from __future__ import annotations

import os
import threading
from typing import Mapping, Sequence

from repro.datapath.simulate import no_injection
from repro.utils.bits import mask

try:  # pragma: no cover - exercised by the no-numpy CI tier
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAS_NUMPY = _np is not None

#: Default lane width used when a ``lanes`` knob is left on auto (``None``).
DEFAULT_LANES = 64


def require_numpy() -> None:
    """Raise a clean ImportError when the optional numpy dependency is absent."""
    if _np is None:
        raise ImportError(
            "the batched datapath backend requires numpy, which is an "
            "optional dependency; install numpy or use lanes=0 (the scalar "
            "compiled kernels) instead"
        )


def effective_lanes(lanes: int | None) -> int:
    """Resolve a ``lanes`` knob to a concrete lane width.

    ``None`` means auto: :data:`DEFAULT_LANES` when numpy is importable,
    else 0 (scalar).  0 always means scalar.  An explicit ``lanes >= 1``
    requires numpy and raises the clean ImportError when it is missing.
    """
    if lanes is None:
        return DEFAULT_LANES if HAS_NUMPY else 0
    if lanes < 0:
        raise ValueError(f"lanes must be >= 0, got {lanes}")
    if lanes:
        require_numpy()
    return lanes


# ---------------------------------------------------------------------------
# Process-global profiling counters (reported on --profile events and the
# service /metrics endpoint; multiprocessing shards return their deltas).
# ---------------------------------------------------------------------------
_COUNTER_KEYS = ("batch_calls", "lane_cycles", "active_lane_cycles")
_counters_lock = threading.Lock()
_counters = {key: 0 for key in _COUNTER_KEYS}


def _note_call(lanes: int, active: int) -> None:
    with _counters_lock:
        _counters["batch_calls"] += 1
        _counters["lane_cycles"] += lanes
        _counters["active_lane_cycles"] += active


def counters_snapshot() -> dict:
    """Current batched-kernel counters plus the derived batch fill rate."""
    with _counters_lock:
        snap = dict(_counters)
    lane_cycles = snap["lane_cycles"]
    snap["fill_rate"] = (
        round(snap["active_lane_cycles"] / lane_cycles, 4) if lane_cycles else 1.0
    )
    return snap


def merge_counters(delta: Mapping[str, int]) -> None:
    """Fold a shard's counter delta (from a worker process) into this one."""
    with _counters_lock:
        for key in _COUNTER_KEYS:
            _counters[key] += int(delta.get(key, 0))


def counters_delta(before: Mapping[str, int]) -> dict:
    """Difference of the current counters against a prior snapshot."""
    now = counters_snapshot()
    return {key: now[key] - before.get(key, 0) for key in _COUNTER_KEYS}


def reset_counters() -> None:
    with _counters_lock:
        for key in _COUNTER_KEYS:
            _counters[key] = 0


# ---------------------------------------------------------------------------
# Elementwise fallbacks for hooked sites and module types without a
# vectorised expression.  These mirror compiled._pp / module.evaluate lane
# by lane and are deliberately slow — they only run at hooked positions.
# ---------------------------------------------------------------------------
def _el(module, in_ids, ctl_ids, values, n, override, m):
    """Elementwise concrete evaluation (eval/step kernels)."""
    out = _np.zeros(n, _np.uint64)
    fn = module.evaluate if override is None else override
    for b in range(n):
        inputs = [int(values[i][b]) for i in in_ids]
        controls = [int(values[i][b]) for i in ctl_ids]
        out[b] = fn(inputs, controls) & m
    return out


def _pl(module, in_ids, ctl_ids, values, known, n, override, m):
    """Elementwise three-valued evaluation (partial kernels).

    Mirrors ``compiled._pp``: all controls known -> needed data inputs
    known -> 0-substitute unneeded unknowns -> evaluate (or override).
    Unknown lanes store 0 (the stored-0 invariant).
    """
    out = _np.zeros(n, _np.uint64)
    out_known = _np.zeros(n, _np.bool_)
    fn = module.evaluate if override is None else override
    for b in range(n):
        controls = []
        ok = True
        for i in ctl_ids:
            if not known[i][b]:
                ok = False
                break
            controls.append(int(values[i][b]))
        if not ok:
            continue
        inputs = [int(values[i][b]) if known[i][b] else None for i in in_ids]
        for idx in module.needed_inputs(controls):
            if inputs[idx] is None:
                ok = False
                break
        if not ok:
            continue
        inputs = [0 if v is None else v for v in inputs]
        out[b] = fn(inputs, controls) & m
        out_known[b] = True
    return out, out_known


def _ie(fn, vals, m):
    """Apply a scalar injector to every lane (concrete kernels)."""
    out = _np.empty(len(vals), _np.uint64)
    for b, v in enumerate(vals):
        out[b] = fn(int(v)) & m
    return out


def _ipk(fn, vals, kn, m):
    """Apply a scalar injector to the known lanes only (partial kernels)."""
    out = vals.copy()
    for b in range(len(vals)):
        if kn[b]:
            out[b] = fn(int(vals[b])) & m
    return out


# ---------------------------------------------------------------------------
# Vectorised helpers for the module types whose scalar semantics need more
# than one masked-select (kept as named functions so the generated source
# stays readable).
# ---------------------------------------------------------------------------
def _sra(v, amt, w, m):
    """Arithmetic right shift: clamp the amount to w-1, then fill the sign."""
    ac = _np.minimum(amt, w - 1)
    lo = v >> ac
    fill = m ^ (m >> ac)
    return _np.where((v & (1 << (w - 1))) != 0, lo | fill, lo)


def _rotl(v, amt, w, m):
    ac = amt % w
    acs = _np.where(ac == 0, 1, ac)  # dodge shift-by-w (UB at w=64)
    rot = ((v << acs) | (v >> (w - acs))) & m
    return _np.where(ac == 0, v, rot)


def _rotr(v, amt, w, m):
    ac = amt % w
    acs = _np.where(ac == 0, 1, ac)
    rot = ((v >> acs) | (v << (w - acs))) & m
    return _np.where(ac == 0, v, rot)


def _np_expr(module, a: list[str]) -> str | None:
    """Vectorised numpy expression for a module, or None for elementwise.

    ``a`` holds operand expressions (uint64 arrays, every lane masked to the
    operand net's width).  The expression must equal ``module.evaluate``
    bit-for-bit on every lane.
    """
    t = type(module).__name__
    w = getattr(module, "width", None)
    m = mask(w) if w else None
    if t == "AddModule":
        return f"(({a[0]} + {a[1]}) & {m})"
    if t == "SubModule":
        return f"(({a[0]} - {a[1]}) & {m})"
    if t == "MultModule":
        return f"(({a[0]} * {a[1]}) & {m})"
    if t == "XorModule":
        return f"({a[0]} ^ {a[1]})"
    if t == "XnorModule":
        return f"(~({a[0]} ^ {a[1]}) & {m})"
    if t == "NotModule":
        return f"(~{a[0]} & {m})"
    if t == "AndModule":
        return f"({a[0]} & {a[1]})"
    if t == "OrModule":
        return f"({a[0]} | {a[1]})"
    if t == "NandModule":
        return f"(~({a[0]} & {a[1]}) & {m})"
    if t == "NorModule":
        return f"(~({a[0]} | {a[1]}) & {m})"
    if t == "ZeroExtendModule":
        return f"({a[0]} & {mask(module.in_width)})"
    if t == "SliceModule":
        return f"(({a[0]} >> {module.lo}) & {mask(module.out_width)})"
    if t == "SignExtendModule":
        sign = 1 << (module.in_width - 1)
        ext = mask(module.out_width) ^ mask(module.in_width)
        return f"_w(({a[0]} & {sign}) != 0, {a[0]} | {ext}, {a[0]})"
    if t == "ConcatModule":
        return (f"(({a[1]} << {module.low_width}) | "
                f"({a[0]} & {mask(module.low_width)}))")
    if t in ("EqModule", "NeModule", "LtuModule", "LeuModule",
             "GtuModule", "GeuModule"):
        op = {"EqModule": "==", "NeModule": "!=", "LtuModule": "<",
              "LeuModule": "<=", "GtuModule": ">", "GeuModule": ">="}[t]
        return f"(({a[0]} {op} {a[1]}).astype(_dt))"
    if t in ("LtModule", "LeModule", "GtModule", "GeModule"):
        op = {"LtModule": "<", "LeModule": "<=",
              "GtModule": ">", "GeModule": ">="}[t]
        s = 1 << (w - 1)
        return f"((({a[0]} ^ {s}) {op} ({a[1]} ^ {s})).astype(_dt))"
    if t == "AddOvfModule":
        s = w - 1
        return (f"(((~({a[0]} ^ {a[1]}) & "
                f"({a[0]} ^ (({a[0]} + {a[1]}) & {m}))) >> {s}) & 1)")
    if t == "SubOvfModule":
        s = w - 1
        return (f"(((({a[0]} ^ {a[1]}) & "
                f"({a[0]} ^ (({a[0]} - {a[1]}) & {m}))) >> {s}) & 1)")
    if t == "ShlModule":
        return (f"_w({a[1]} >= {w}, 0, "
                f"({a[0]} << _w({a[1]} >= {w}, 0, {a[1]})) & {m})")
    if t == "ShrModule":
        return (f"_w({a[1]} >= {w}, 0, "
                f"{a[0]} >> _w({a[1]} >= {w}, 0, {a[1]}))")
    if t == "SraModule":
        return f"_sra({a[0]}, {a[1]}, {w}, {m})"
    if t == "RotlModule":
        return f"_rotl({a[0]}, {a[1]}, {w}, {m})"
    if t == "RotrModule":
        return f"_rotr({a[0]}, {a[1]}, {w}, {m})"
    if t == "MinModule":
        s = 1 << (w - 1)
        return f"_w(({a[0]} ^ {s}) <= ({a[1]} ^ {s}), {a[0]}, {a[1]})"
    if t == "MaxModule":
        s = 1 << (w - 1)
        return f"_w(({a[0]} ^ {s}) >= ({a[1]} ^ {s}), {a[0]}, {a[1]})"
    if t == "AbsModule":
        s = 1 << (w - 1)
        return f"_w(({a[0]} & {s}) != 0, (0 - {a[0]}) & {m}, {a[0]})"
    return None


class BatchedDatapath:
    """Lane-vectorised codegen'd form of one netlist.

    Reuses the dense ids, schedule and hook maps of the scalar
    :class:`~repro.datapath.compiled.CompiledDatapath` and generates six
    batch kernels::

        eval_plain(n, values, state, ext_v)
        step_plain(n, values, state, ext_v)
        partial_plain(n, values, known, state, ext_v, ext_k)
        eval_hooked(n, values, state, ext_v, ovr, inj)
        step_hooked(n, values, state, ext_v, ovr, inj)
        partial_hooked(n, values, known, state, ext_v, ext_k, ovr, inj)

    ``values`` / ``known`` / ``ext_v`` / ``ext_k`` are lists of ``(n,)``
    arrays indexed by net id; ``state`` is a list of ``(n,)`` arrays indexed
    by register position.  ``ext_v`` entries must already be masked to the
    net width with unknown lanes stored as 0.
    """

    def __init__(self, netlist) -> None:
        require_numpy()
        self.netlist = netlist
        self.cd = netlist.compiled()
        cd = self.cd
        self.net_width = [netlist.nets[name].width for name in cd.names]
        too_wide = [name for name, w in zip(cd.names, self.net_width) if w > 64]
        if too_wide:
            raise ValueError(
                f"batched backend supports net widths <= 64; too wide: "
                f"{too_wide[:4]}"
            )
        self.net_mask = [mask(w) for w in self.net_width]
        self.source = self._generate_source()
        env = self._exec_env()
        exec(compile(self.source, f"<batched:{netlist.name}>", "exec"), env)
        self.eval_plain = env["eval_plain"]
        self.step_plain = env["step_plain"]
        self.partial_plain = env["partial_plain"]
        self.eval_hooked = env["eval_hooked"]
        self.step_hooked = env["step_hooked"]
        self.partial_hooked = env["partial_hooked"]
        self._maybe_dump()

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------
    def _exec_env(self) -> dict:
        env = {
            "_np": _np, "_dt": _np.uint64, "_b": _np.bool_, "_w": _np.where,
            "_sra": _sra, "_rotl": _rotl, "_rotr": _rotr,
            "_el": _el, "_pl": _pl, "_ie": _ie, "_ipk": _ipk,
        }
        cd = self.cd
        for k, module in enumerate(cd.sched_modules):
            env[f"_m{k}"] = module
            env[f"_ti{k}"] = cd.sched_in[k]
            env[f"_tc{k}"] = cd.sched_ctl[k]
        return env

    def _module_lines(self, k: int, hooked: bool, partial: bool) -> list[str]:
        cd = self.cd
        module = cd.sched_modules[k]
        out = cd.sched_out[k]
        ins = cd.sched_in[k]
        ctls = cd.sched_ctl[k]
        t = type(module).__name__
        m = self.net_mask[out]
        body: list[str] = []
        if t == "MuxModule":
            body.append(f"_s = values[{ctls[0]}]")
            body.append(f"_v = values[{ins[0]}]")
            if partial:
                body.append(f"_kv = known[{ins[0]}]")
            for i in range(1, module.n_inputs):
                body.append(f"_c = _s == {i}")
                body.append(f"_v = _w(_c, values[{ins[i]}], _v)")
                if partial:
                    body.append(f"_kv = _w(_c, known[{ins[i]}], _kv)")
            if partial:
                body.append(f"_k = known[{ctls[0]}] & _kv")
        elif t == "TristateModule":
            body.append(f"_s = values[{ctls[0]}] == 1")
            body.append(f"_v = _w(_s, values[{ins[0]}], 0)")
            if partial:
                body.append(f"_k = known[{ctls[0]}] & (~_s | known[{ins[0]}])")
        else:
            expr = _np_expr(module, [f"values[{i}]" for i in ins])
            if expr is None or ctls:
                if partial:
                    body.append(f"_v, _k = _pl(_m{k}, _ti{k}, _tc{k}, "
                                f"values, known, n, None, {m})")
                else:
                    body.append(f"_v = _el(_m{k}, _ti{k}, _tc{k}, "
                                f"values, n, None, {m})")
            else:
                body.append(f"_v = {expr}")
                if partial:
                    knowns = " & ".join(f"known[{i}]" for i in ins)
                    body.append(f"_k = {knowns}")
        if hooked:
            lines = [f"if {k} in ovr:"]
            if partial:
                lines.append(f"    _v, _k = _pl(_m{k}, _ti{k}, _tc{k}, "
                             f"values, known, n, ovr[{k}], {m})")
            else:
                lines.append(f"    _v = _el(_m{k}, _ti{k}, _tc{k}, "
                             f"values, n, ovr[{k}], {m})")
            lines.append("else:")
            lines += ["    " + line for line in body]
            lines.append(f"if {out} in inj:")
            if partial:
                lines.append(f"    _v = _ipk(inj[{out}], _v, _k, {m})")
            else:
                lines.append(f"    _v = _ie(inj[{out}], _v, {m})")
            body = lines
        if partial:
            body.append(f"values[{out}] = _w(_k, _v, 0)")
            body.append(f"known[{out}] = _k")
        else:
            body.append(f"values[{out}] = _v")
        return body

    def _source_sources(self, hooked: bool, partial: bool) -> list[str]:
        cd = self.cd
        lines: list[str] = []
        if partial:
            lines.append("_kt = _np.ones(n, _b)")
        emits: list[tuple[int, str, str | None]] = []
        for i, _ in cd.ext_pairs:
            emits.append((i, f"ext_v[{i}] & {self.net_mask[i]}",
                          f"ext_k[{i}]"))
        for i, value in cd.const_slots:
            emits.append((i, f"_np.full(n, {value}, _dt)", "_kt"))
        for j, i in enumerate(cd.reg_q_ids):
            emits.append((i, f"state[{j}]", "_kt"))
        for i, expr, kexpr in emits:
            if not hooked:
                lines.append(f"values[{i}] = {expr}")
            else:
                m = self.net_mask[i]
                lines.append(f"_v = {expr}")
                lines.append(f"if {i} in inj:")
                if partial:
                    lines.append(f"    _v = _ipk(inj[{i}], _v, {kexpr}, {m})")
                else:
                    lines.append(f"    _v = _ie(inj[{i}], _v, {m})")
                lines.append(f"values[{i}] = _v")
            if partial:
                lines.append(f"known[{i}] = {kexpr}")
        return lines

    def _clock_lines(self) -> list[str]:
        cd = self.cd
        lines: list[str] = []
        for j, reg in enumerate(cd.registers):
            d = cd.reg_d_ids[j]
            ctl = cd.reg_ctl_ids[j]
            lines.append(f"_d = values[{d}] & {mask(reg.width)}")
            pos = 0
            if reg.has_enable:
                lines.append(f"_d = _w(values[{ctl[pos]}] == 1, _d, state[{j}])")
                pos += 1
            if reg.has_clear:
                lines.append(f"_d = _w(values[{ctl[pos]}] == 1, "
                             f"{reg.clear_value}, _d)")
            lines.append(f"state[{j}] = _d")
        return lines

    def _generate_source(self) -> str:
        def fn(name: str, hooked: bool, partial: bool,
               clock: bool) -> list[str]:
            sig = "n, values, state, ext_v"
            if partial:
                sig = "n, values, known, state, ext_v, ext_k"
            if hooked:
                sig += ", ovr, inj"
            lines = [f"def {name}({sig}):"]
            body = self._source_sources(hooked, partial)
            for k in range(len(self.cd.sched_modules)):
                body += self._module_lines(k, hooked, partial)
            if clock:
                body += self._clock_lines()
            if not body:
                body = ["pass"]
            lines += ["    " + line for line in body]
            return lines

        chunks: list[str] = []
        chunks += fn("eval_plain", False, False, False)
        chunks += fn("step_plain", False, False, True)
        chunks += fn("partial_plain", False, True, False)
        chunks += fn("eval_hooked", True, False, False)
        chunks += fn("step_hooked", True, False, True)
        chunks += fn("partial_hooked", True, True, False)
        return "\n".join(chunks) + "\n"

    def _maybe_dump(self) -> None:
        directory = os.environ.get("REPRO_KERNEL_DUMP")
        if not directory:
            return
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"batched_{self.netlist.name}.py")
        with open(path, "w") as handle:
            handle.write(self.source)


def batched_datapath(netlist) -> BatchedDatapath:
    """The cached batched form of a netlist.

    Cached on the scalar :class:`CompiledDatapath`, which the netlist
    already invalidates on structural edits — so the batched form follows
    the same lifecycle for free.
    """
    require_numpy()
    cd = netlist.compiled()
    bd = getattr(cd, "_batched", None)
    if bd is None:
        bd = BatchedDatapath(netlist)
        cd._batched = bd
    return bd


class BatchedDatapathSimulator:
    """Lane-batch counterpart of :class:`CompiledDatapathSimulator`.

    Carries ``n_lanes`` independent stimulus streams through one kernel call
    per cycle.  The dict-based API mirrors the scalar simulators with one
    mapping *per lane*; the array buffers (``values`` / ``known`` /
    ``state`` and the external staging arrays) are exposed for hot-loop
    consumers like the lane co-simulator.

    ``active_lanes`` feeds the batch fill-rate counter: consumers carrying
    ragged batches (lanes that already finished their program) lower it so
    the profile counters stay honest about wasted lane-cycles.
    """

    def __init__(
        self,
        netlist,
        n_lanes: int,
        injector=no_injection,
        module_overrides: Mapping | None = None,
    ) -> None:
        require_numpy()
        if n_lanes < 1:
            raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.batched = batched_datapath(netlist)
        self.compiled = self.batched.cd
        cd = self.compiled
        self._inj = cd.injector_map(injector)
        self._ovr = cd.override_map(module_overrides or {})
        self.hooked = bool(self._inj) or bool(self._ovr)
        self.values: list = [None] * cd.n_nets
        self.known: list = [None] * cd.n_nets
        self.state = [
            _np.full(n_lanes, reg.reset_value, _np.uint64)
            for reg in cd.registers
        ]
        self._ext_v: list = [None] * cd.n_nets
        self._ext_k: list = [None] * cd.n_nets
        for i, _ in cd.ext_pairs:
            self._ext_v[i] = _np.zeros(n_lanes, _np.uint64)
            self._ext_k[i] = _np.zeros(n_lanes, _np.bool_)
        self.active_lanes = n_lanes

    def reset(self) -> None:
        for j, reg in enumerate(self.compiled.registers):
            self.state[j] = _np.full(self.n_lanes, reg.reset_value, _np.uint64)

    # -- external staging ----------------------------------------------
    def fill_external(self, frames: Sequence[Mapping], default=0) -> None:
        """Stage one named external frame per lane into the ext arrays.

        Values are masked to the net width in Python (uint64 arrays refuse
        negative ints); ``None`` marks a lane's external unknown and stores
        0 per the stored-0 invariant.
        """
        cd = self.compiled
        nm = self.batched.net_mask
        for i, name in cd.ext_pairs:
            v = self._ext_v[i]
            k = self._ext_k[i]
            m = nm[i]
            for b, frame in enumerate(frames):
                value = frame.get(name, default)
                if value is None:
                    v[b] = 0
                    k[b] = False
                else:
                    v[b] = value & m
                    k[b] = True

    def set_external_lane(self, name: str, lane: int, value) -> None:
        """Poke one lane of one external (None = unknown)."""
        i = self.compiled.index[name]
        if value is None:
            self._ext_v[i][lane] = 0
            self._ext_k[i][lane] = False
        else:
            self._ext_v[i][lane] = value & self.batched.net_mask[i]
            self._ext_k[i][lane] = True

    # -- kernel invocation ---------------------------------------------
    def run_eval(self) -> None:
        """Run the concrete evaluate kernel on the staged externals."""
        bd = self.batched
        _note_call(self.n_lanes, self.active_lanes)
        if self.hooked:
            bd.eval_hooked(self.n_lanes, self.values, self.state,
                           self._ext_v, self._ovr, self._inj)
        else:
            bd.eval_plain(self.n_lanes, self.values, self.state, self._ext_v)

    def run_partial(self) -> None:
        """Run the three-valued kernel on the staged externals."""
        bd = self.batched
        _note_call(self.n_lanes, self.active_lanes)
        if self.hooked:
            bd.partial_hooked(self.n_lanes, self.values, self.known,
                              self.state, self._ext_v, self._ext_k,
                              self._ovr, self._inj)
        else:
            bd.partial_plain(self.n_lanes, self.values, self.known,
                             self.state, self._ext_v, self._ext_k)

    def run_step(self) -> None:
        """Run the step kernel (evaluate + clock) on the staged externals."""
        bd = self.batched
        _note_call(self.n_lanes, self.active_lanes)
        if self.hooked:
            bd.step_hooked(self.n_lanes, self.values, self.state,
                           self._ext_v, self._ovr, self._inj)
        else:
            bd.step_plain(self.n_lanes, self.values, self.state, self._ext_v)

    # -- dict-compatible per-lane API ----------------------------------
    def evaluate(self, frames: Sequence[Mapping]) -> list[dict]:
        self.fill_external(frames, 0)
        self.run_eval()
        return [self.lane_values(b) for b in range(self.n_lanes)]

    def evaluate_partial(self, frames: Sequence[Mapping]) -> list[dict]:
        self.fill_external(frames, None)
        self.run_partial()
        return [self.lane_values_partial(b) for b in range(self.n_lanes)]

    def step(self, frames: Sequence[Mapping]) -> list[dict]:
        self.fill_external(frames, 0)
        self.run_step()
        return [self.lane_values(b) for b in range(self.n_lanes)]

    def run(self, frame_rows: Sequence[Sequence[Mapping]]) -> list[list[dict]]:
        """Run a sequence of cycles (each a per-lane frame list)."""
        return [self.step(frames) for frames in frame_rows]

    # -- extraction ----------------------------------------------------
    def lane_values(self, lane: int) -> dict:
        values = self.values
        return {
            name: int(values[i][lane])
            for i, name in enumerate(self.compiled.names)
        }

    def lane_values_partial(self, lane: int) -> dict:
        values, known = self.values, self.known
        return {
            name: int(values[i][lane]) if known[i][lane] else None
            for i, name in enumerate(self.compiled.names)
        }

    def lane_state(self, lane: int) -> dict[str, int]:
        return {
            name: int(self.state[j][lane])
            for j, name in enumerate(self.compiled.reg_names)
        }

    def set_state(self, name: str, lane: int, value: int) -> None:
        j = self.compiled.reg_pos[name]
        self.state[j][lane] = value & mask(self.compiled.registers[j].width)
