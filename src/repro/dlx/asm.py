"""A small DLX assembler / disassembler (text front-end).

Accepts the syntax ``Instruction.__str__`` produces, so assemble and
disassemble round-trip:

    ADD r3, r1, r2          ; R-type: op rd, rs, rt
    ADDI r2, r1, #5         ; I-type: op rt, rs, #imm
    SLLI r2, r1, #3
    LW r2, 8(r1)            ; loads:  op rt, imm(rs)
    SW 4(r1), r2            ; stores: op imm(rs), rt
    BEQZ r1                 ; branches: op rs
    JR r1
    JAL #16                 ; link value (see repro.dlx.isa)
    J
    NOP                     ; alias for ADDI r0, r0, #0

Immediates are decimal or 0x-hex, optionally negative (encoded two's
complement in 16 bits).  ``;`` and ``#`` at line start introduce comments.
"""

from __future__ import annotations

import re

from repro.dlx.isa import (
    BRANCHES,
    IMM_OPS,
    LOADS,
    OPCODES,
    RTYPE,
    STORES,
    Instruction,
)
from repro.utils.bits import to_unsigned


class AsmError(Exception):
    """Raised on unparseable assembly text."""


_REG = re.compile(r"^r(\d|[12]\d|3[01])$")


def _reg(token: str, line_no: int) -> int:
    match = _REG.match(token.strip().lower())
    if not match:
        raise AsmError(f"line {line_no}: bad register {token!r}")
    return int(match.group(1))


def _imm(token: str, line_no: int) -> int:
    token = token.strip().lstrip("#")
    try:
        value = int(token, 0)
    except ValueError:
        raise AsmError(f"line {line_no}: bad immediate {token!r}") from None
    if not -(1 << 15) <= value < (1 << 16):
        raise AsmError(f"line {line_no}: immediate {value} out of range")
    return to_unsigned(value, 16)


_MEMREF = re.compile(r"^(?P<imm>[^()]+)\((?P<reg>[^()]+)\)$")


def _memref(token: str, line_no: int) -> tuple[int, int]:
    match = _MEMREF.match(token.strip())
    if not match:
        raise AsmError(f"line {line_no}: bad memory operand {token!r}")
    return _imm(match.group("imm"), line_no), _reg(match.group("reg"), line_no)


def assemble_line(line: str, line_no: int = 0) -> Instruction | None:
    """Assemble one line; returns None for blank/comment lines."""
    code = line.split(";", 1)[0].strip()
    if not code or code.startswith("#"):
        return None
    parts = code.split(None, 1)
    mnemonic = parts[0].upper()
    rest = parts[1] if len(parts) > 1 else ""
    operands = [p.strip() for p in rest.split(",")] if rest else []

    if mnemonic == "NOP":
        if operands:
            raise AsmError(f"line {line_no}: NOP takes no operands")
        return Instruction("ADDI", rs=0, rt=0, imm=0)
    if mnemonic not in OPCODES:
        raise AsmError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
    op = OPCODES[mnemonic]

    if op in BRANCHES or mnemonic == "JR":
        if len(operands) != 1:
            raise AsmError(f"line {line_no}: {mnemonic} takes one register")
        return Instruction(mnemonic, rs=_reg(operands[0], line_no))
    if mnemonic == "J":
        if operands:
            raise AsmError(f"line {line_no}: J takes no operands")
        return Instruction("J")
    if mnemonic == "JAL":
        if len(operands) != 1:
            raise AsmError(f"line {line_no}: JAL takes one immediate")
        return Instruction("JAL", imm=_imm(operands[0], line_no))
    if op in LOADS:
        if len(operands) != 2:
            raise AsmError(f"line {line_no}: {mnemonic} rt, imm(rs)")
        rt = _reg(operands[0], line_no)
        imm, rs = _memref(operands[1], line_no)
        return Instruction(mnemonic, rs=rs, rt=rt, imm=imm)
    if op in STORES:
        if len(operands) != 2:
            raise AsmError(f"line {line_no}: {mnemonic} imm(rs), rt")
        imm, rs = _memref(operands[0], line_no)
        rt = _reg(operands[1], line_no)
        return Instruction(mnemonic, rs=rs, rt=rt, imm=imm)
    if op in RTYPE:
        if len(operands) != 3:
            raise AsmError(f"line {line_no}: {mnemonic} rd, rs, rt")
        return Instruction(
            mnemonic,
            rd=_reg(operands[0], line_no),
            rs=_reg(operands[1], line_no),
            rt=_reg(operands[2], line_no),
        )
    if op in IMM_OPS:
        if len(operands) != 3:
            raise AsmError(f"line {line_no}: {mnemonic} rt, rs, #imm")
        return Instruction(
            mnemonic,
            rt=_reg(operands[0], line_no),
            rs=_reg(operands[1], line_no),
            imm=_imm(operands[2], line_no),
        )
    raise AsmError(f"line {line_no}: cannot assemble {mnemonic!r}")


def assemble(text: str) -> list[Instruction]:
    """Assemble a multi-line program."""
    program = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        instruction = assemble_line(line, line_no)
        if instruction is not None:
            program.append(instruction)
    return program


def disassemble(program: list[Instruction]) -> str:
    """Render a program back to assembly text."""
    return "\n".join(str(i) for i in program)
