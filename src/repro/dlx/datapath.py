"""The DLX five-stage pipelined datapath (word level).

Stage map (stage numbers follow the pipeline): 0 = IF (behavioural fetch —
the instruction stream is supplied by the environment, so IF contributes no
datapath logic), 1 = ID, 2 = EX, 3 = MEM, 4 = WB.

Register-file reads and data-memory reads are modelled as data primary
inputs (test stimulus), writes as gated data primary outputs; the
environment shim (``repro.dlx.env``) closes the loop when running whole
programs.  All control inputs (mux selects, gates) are CTRL nets driven by
the controller; the address low bits feed back to the controller as a status
field so the byte/halfword extraction muxes stay controller-driven, as the
Figure 1 model requires.

Bypass structure: the EX/MEM ALU result and the MEM/WB write-back value are
the two forwarding buses into the EX operand muxes (three-way per operand) —
these are the datapath's tertiary paths.
"""

from __future__ import annotations

from repro.datapath import DatapathBuilder
from repro.datapath.netlist import Netlist
from repro.dlx.isa import IMM_WIDTH, WIDTH

STAGE_IF, STAGE_ID, STAGE_EX, STAGE_MEM, STAGE_WB = range(5)


def build_dlx_datapath() -> Netlist:
    """Construct the DLX datapath netlist."""
    b = DatapathBuilder("dlx_dp")

    # ------------------------------------------------------------------
    # ID: operand fetch and immediate extension
    # ------------------------------------------------------------------
    b.set_stage(STAGE_ID)
    rf_a = b.input("rf_a", WIDTH)  # register-file read port 1 (rs)
    rf_b = b.input("rf_b", WIDTH)  # register-file read port 2 (rt)
    imm16 = b.input("imm16", IMM_WIDTH)
    ext_sel = b.ctrl("ext_sel", 1)  # 0: sign extend, 1: zero extend
    imm_se = b.sign_extend("imm_sext", imm16, WIDTH)
    imm_ze = b.zero_extend("imm_zext", imm16, WIDTH)
    imm_x = b.mux("imm_mux", ext_sel, imm_se, imm_ze)

    # ID/EX pipe registers (data side; control bubbles live in the
    # controller, so the data registers need no clear).
    b.set_stage(STAGE_EX)
    ex_a = b.register("ex_a", rf_a)
    ex_b = b.register("ex_b", rf_b)
    ex_imm = b.register("ex_imm", imm_x)

    # ------------------------------------------------------------------
    # EX: forwarding, ALU, compare units, branch condition
    # ------------------------------------------------------------------
    # Forwarding buses come from later stages; declare their registers
    # first so the muxes can reference them (feedback through registers).
    b.set_stage(STAGE_MEM)
    mem_alu = b.placeholder_register("mem_alu", WIDTH)
    mem_sdata = b.placeholder_register("mem_sdata", WIDTH)
    b.set_stage(STAGE_WB)
    wb_alu = b.placeholder_register("wb_alu", WIDTH)
    wb_load = b.placeholder_register("wb_load", WIDTH)
    memtoreg = b.ctrl("memtoreg_ctl", 1)
    wb_value = b.mux("wb_mux", memtoreg, wb_alu, wb_load)

    b.set_stage(STAGE_EX)
    fwd_a = b.ctrl("fwd_a_ctl", 2)  # 0: register, 1: EX/MEM, 2: MEM/WB
    fwd_b = b.ctrl("fwd_b_ctl", 2)
    alusrc = b.ctrl("alusrc", 1)
    opa = b.mux("opa_mux", fwd_a, ex_a, mem_alu, wb_value)
    opb_pre = b.mux("opb_fwd_mux", fwd_b, ex_b, mem_alu, wb_value)
    opb = b.mux("opb_mux", alusrc, opb_pre, ex_imm)

    add_r = b.add("alu_add", opa, opb)
    sub_r = b.sub("alu_sub", opa, opb)
    and_r = b.and_("alu_and", opa, opb)
    or_r = b.or_("alu_or", opa, opb)
    xor_r = b.xor("alu_xor", opa, opb)
    shamt = b.slice("shamt", opb, 0, 5)
    sll_r = b.shl("alu_sll", opa, shamt)
    srl_r = b.shr("alu_srl", opa, shamt)
    sra_r = b.sra("alu_sra", opa, shamt)

    # Set-on-compare unit: six predicates, selected and zero-extended.
    seq_r = b.eq("cmp_eq", opa, opb)
    sne_r = b.ne("cmp_ne", opa, opb)
    slt_r = b.lt("cmp_lt", opa, opb)
    sgt_r = b.gt("cmp_gt", opa, opb)
    sle_r = b.le("cmp_le", opa, opb)
    sge_r = b.ge("cmp_ge", opa, opb)
    setcc_sel = b.ctrl("setcc_sel", 3)
    setcc_bit = b.mux(
        "setcc_mux", setcc_sel, seq_r, sne_r, slt_r, sgt_r, sle_r, sge_r
    )
    setcc32 = b.zero_extend("setcc_ext", setcc_bit, WIDTH)

    alu_sel = b.ctrl("alu_sel", 4)
    alu_out = b.mux(
        "alu_mux", alu_sel,
        add_r, sub_r, and_r, or_r, xor_r, sll_r, srl_r, sra_r, setcc32, opb,
    )

    # Branch condition: rs operand compared with zero.
    zero32 = b.const("zero32", WIDTH, 0)
    b.status("zero", b.eq("brz_cmp", opa, zero32))

    # EX/MEM pipe registers.
    b.set_stage(STAGE_MEM)
    b.connect_register("mem_alu", alu_out)
    b.connect_register("mem_sdata", opb_pre)

    # ------------------------------------------------------------------
    # MEM: data-memory interface and load extraction
    # ------------------------------------------------------------------
    dmem_rdata = b.input("dmem_rdata", WIDTH)  # aligned word from memory
    # The address low bits steer the extraction muxes via the controller.
    b.status("addrlo", b.slice("addrlo_slice", mem_alu, 0, 2))
    bytesel = b.ctrl("bytesel_ctl", 2)
    shift0 = b.const("sh0", 5, 0)
    shift8 = b.const("sh8", 5, 8)
    shift16 = b.const("sh16", 5, 16)
    shift24 = b.const("sh24", 5, 24)
    rshift = b.mux("rshift_mux", bytesel, shift0, shift8, shift16, shift24)
    rdata_sh = b.shr("rdata_shift", dmem_rdata, rshift)
    byte_v = b.slice("load_byte", rdata_sh, 0, 8)
    half_v = b.slice("load_half", rdata_sh, 0, 16)
    lb_v = b.sign_extend("lb_ext", byte_v, WIDTH)
    lbu_v = b.zero_extend("lbu_ext", byte_v, WIDTH)
    lh_v = b.sign_extend("lh_ext", half_v, WIDTH)
    lhu_v = b.zero_extend("lhu_ext", half_v, WIDTH)
    loadext = b.ctrl("loadext_ctl", 3)
    load_val = b.mux(
        "load_mux", loadext, lb_v, lbu_v, lh_v, lhu_v, rdata_sh
    )

    # Observable memory interface, gated by the access controls.
    mem_access = b.ctrl("mem_access_ctl", 1)
    memwrite = b.ctrl("memwrite_ctl", 1)
    zero_mem = b.const("zero_mem", WIDTH, 0)
    addr_o = b.mux("addr_gate", mem_access, zero_mem, mem_alu)
    wdata_o = b.mux("wdata_gate", memwrite, zero_mem, mem_sdata)
    b.output("dmem_addr_o", addr_o)
    b.output("dmem_wdata_o", wdata_o)

    # MEM/WB pipe registers.
    b.set_stage(STAGE_WB)
    b.connect_register("wb_alu", mem_alu)
    b.connect_register("wb_load", load_val)

    # ------------------------------------------------------------------
    # WB: write-back value, gated observable output
    # ------------------------------------------------------------------
    regwrite_g = b.ctrl("regwrite_g_ctl", 1)
    zero_wb = b.const("zero_wb", WIDTH, 0)
    wb_out = b.mux("wb_gate", regwrite_g, zero_wb, wb_value)
    b.output("wb_value_o", wb_out)

    return b.build()
