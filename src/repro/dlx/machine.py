"""The complete DLX processor model (Figure 1 instance for Section VI)."""

from __future__ import annotations

from repro.dlx.controller import build_dlx_controller
from repro.dlx.datapath import build_dlx_datapath
from repro.dlx.isa import NOP, to_cpi
from repro.model.processor import Processor


def build_dlx(branch_prediction: bool = False) -> Processor:
    """Build and validate the five-stage pipelined DLX.

    With ``branch_prediction`` a one-bit last-outcome predictor is added to
    the controller (the paper's DLX "has branch prediction logic"):
    correctly-predicted branches cost no squash; mispredictions squash two
    slots and redirect the fetch unit.  The architecture — and therefore
    the ISA specification — is unchanged.
    """
    processor = Processor(
        name="dlx_bp" if branch_prediction else "dlx",
        datapath=build_dlx_datapath(),
        controller=build_dlx_controller(branch_prediction),
        n_stages=5,
        stimulus_registers=frozenset(),
        cpi_defaults=to_cpi(NOP),
        cpi_dpi_bindings={},
    )
    processor.validate()
    return processor
