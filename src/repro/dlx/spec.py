"""The DLX ISA-level specification simulator.

Executes instructions sequentially with the behavioural sequencing model of
this reproduction (see ``repro.dlx.isa``): a taken branch skips the next two
stream slots, a jump skips one.  Memory is little-endian; sub-word accesses
select the byte lane from the address low bits and never straddle a word
(matching the implementation's extraction network — misalignment traps are
not modelled).

The ISA-visible trace is the ordered list of events:

* ``("reg", dest, value)`` — register write (r0 writes are dropped);
* ``("mem", address, size, data)`` — memory store, data masked to size;
* ``("load", address, size)`` — memory read: the address/size appear on the
  processor's memory pins, so a diverging load address is observable even
  when the loaded value happens to match.

Comparing this trace against the one extracted from the pipelined
implementation (``repro.dlx.env``) is the detection criterion of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dlx.isa import (
    ALU_ADD,
    ALU_AND,
    ALU_OR,
    ALU_PASSB,
    ALU_SETCC,
    ALU_SLL,
    ALU_SRA,
    ALU_SRL,
    ALU_SUB,
    ALU_XOR,
    BRANCHES,
    IMM_OPS,
    IMM_WIDTH,
    JUMPS,
    LOADS,
    N_REGS,
    OPCODES,
    SETCC_EQ,
    SETCC_GT,
    SETCC_LE,
    SETCC_LT,
    SETCC_NE,
    STORES,
    WIDTH,
    ZERO_EXT_OPS,
    Instruction,
    alu_sel_for,
    loadext_for,
    setcc_sel_for,
    size_for,
)
from repro.utils.bits import mask, sign_extend, to_signed, to_unsigned

Event = tuple  # ("reg", dest, value) | ("mem", addr, size, data)

_SIZE_BYTES = {0: 1, 1: 2, 2: 4}


class Memory:
    """Sparse little-endian word memory with sub-word writes."""

    def __init__(self) -> None:
        self.words: dict[int, int] = {}

    def read_word(self, address: int) -> int:
        return self.words.get(address & ~0x3 & mask(WIDTH), 0)

    def write(self, address: int, value: int, size: int) -> None:
        address &= mask(WIDTH)
        aligned = address & ~0x3
        lane = address & 0x3
        nbytes = _SIZE_BYTES[size]
        write_mask = (mask(8 * nbytes) << (8 * lane)) & mask(WIDTH)
        data = (value & mask(8 * nbytes)) << (8 * lane)
        old = self.words.get(aligned, 0)
        self.words[aligned] = (old & ~write_mask & mask(WIDTH)) | (
            data & write_mask
        )

    def load(self, address: int, size: int) -> int:
        """Raw (unextended) loaded bits: word shifted to the byte lane."""
        word = self.read_word(address)
        lane = address & 0x3
        return (word >> (8 * lane)) & mask(WIDTH)


@dataclass
class DlxSpecResult:
    """ISA-visible outcome of a program run."""

    events: list[Event] = field(default_factory=list)
    registers: list[int] = field(default_factory=list)
    memory: Memory = field(default_factory=Memory)


def _alu(op_sel: int, setcc: int, a: int, b: int) -> int:
    if op_sel == ALU_ADD:
        return to_unsigned(a + b, WIDTH)
    if op_sel == ALU_SUB:
        return to_unsigned(a - b, WIDTH)
    if op_sel == ALU_AND:
        return a & b
    if op_sel == ALU_OR:
        return a | b
    if op_sel == ALU_XOR:
        return a ^ b
    shamt = b & 0x1F
    if op_sel == ALU_SLL:
        return to_unsigned(a << shamt, WIDTH)
    if op_sel == ALU_SRL:
        return a >> shamt
    if op_sel == ALU_SRA:
        return to_unsigned(to_signed(a, WIDTH) >> shamt, WIDTH)
    if op_sel == ALU_PASSB:
        return b
    assert op_sel == ALU_SETCC
    sa, sb = to_signed(a, WIDTH), to_signed(b, WIDTH)
    if setcc == SETCC_EQ:
        return int(a == b)
    if setcc == SETCC_NE:
        return int(a != b)
    if setcc == SETCC_LT:
        return int(sa < sb)
    if setcc == SETCC_GT:
        return int(sa > sb)
    if setcc == SETCC_LE:
        return int(sa <= sb)
    return int(sa >= sb)


def _extend_load(raw: int, loadext: int) -> int:
    if loadext == 0:  # LB
        return sign_extend(raw & 0xFF, 8, WIDTH)
    if loadext == 1:  # LBU
        return raw & 0xFF
    if loadext == 2:  # LH
        return sign_extend(raw & 0xFFFF, 16, WIDTH)
    if loadext == 3:  # LHU
        return raw & 0xFFFF
    return raw  # LW


class DlxSpec:
    """Sequential DLX interpreter."""

    def run(
        self,
        program: Sequence[Instruction],
        init_regs: Sequence[int] | None = None,
        init_memory: dict[int, int] | None = None,
    ) -> DlxSpecResult:
        regs = list(init_regs) if init_regs is not None else [0] * N_REGS
        if len(regs) != N_REGS:
            raise ValueError(f"expected {N_REGS} registers")
        regs = [to_unsigned(r, WIDTH) for r in regs]
        regs[0] = 0
        memory = Memory()
        if init_memory:
            for addr, word in init_memory.items():
                memory.words[addr & ~0x3 & mask(WIDTH)] = to_unsigned(
                    word, WIDTH
                )
        events: list[Event] = []
        skip = 0
        for instruction in program:
            if skip:
                skip -= 1
                continue
            op = instruction.opcode
            a = regs[instruction.rs]
            b_reg = regs[instruction.rt]
            imm = instruction.imm
            if op in ZERO_EXT_OPS:
                imm_x = imm
            else:
                imm_x = sign_extend(imm, IMM_WIDTH, WIDTH)
            b = imm_x if op in IMM_OPS else b_reg

            if op in BRANCHES:
                taken = (a == 0) == (op == OPCODES["BEQZ"])
                if taken:
                    skip = 2
                continue
            if op in JUMPS:
                if op == OPCODES["JAL"]:
                    regs[31] = imm_x
                    events.append(("reg", 31, imm_x))
                skip = 1
                continue
            if op in STORES:
                address = to_unsigned(a + imm_x, WIDTH)
                size = size_for(op)
                memory.write(address, b_reg, size)
                nbytes = _SIZE_BYTES[size]
                events.append(
                    ("mem", address, size, b_reg & mask(8 * nbytes))
                )
                continue
            if op in LOADS:
                address = to_unsigned(a + imm_x, WIDTH)
                events.append(("load", address, size_for(op)))
                raw = memory.load(address, size_for(op))
                value = _extend_load(raw, loadext_for(op))
            else:
                value = _alu(alu_sel_for(op), setcc_sel_for(op), a, b)
            dest = instruction.dest
            if dest != 0:
                regs[dest] = value
                events.append(("reg", dest, value))
        return DlxSpecResult(events=events, registers=regs, memory=memory)
