"""Lane-batched DLX environment: many programs per kernel call.

:class:`BatchDlxEnv` runs a batch of DLX programs on the pipelined
implementation in lockstep over :class:`repro.verify.lanes.
LaneProcessorSimulator`, reproducing :class:`repro.dlx.env.DlxEnv` lane by
lane — same full-resolve preview, same commit/store/load event extraction,
same fetch-unit and branch-prediction bookkeeping.  Lanes carry their own
architectural registers, memory image and shadow fetch pipeline; only the
netlist evaluation is vectorised.

Programs may be ragged (different lengths and cycle limits): a finished
lane keeps stepping on NOPs with quiescent stimulus, unobserved, and the
``active_lanes`` count keeps the batch fill-rate counters honest.  A lane
whose scalar run would raise ``CosimError`` records the message and goes
dead instead of aborting the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.datapath.simulate import Injector, ModuleOverride, no_injection
from repro.dlx.isa import NOP, N_REGS, WIDTH, Instruction, to_cpi
from repro.dlx.spec import DlxSpecResult, Event, Memory, _SIZE_BYTES
from repro.model.processor import Processor
from repro.utils.bits import mask, to_unsigned
from repro.verify.cosim import CycleTrace, Trace
from repro.verify.lanes import LaneProcessorSimulator


@dataclass
class LaneRun:
    """Per-lane outcome of one batched run."""

    result: DlxSpecResult | None
    trace: Trace
    failure: str | None
    dense_cycles: list | None


class BatchDlxEnv:
    """Drives a batch of programs through the DLX implementation."""

    def __init__(
        self,
        processor: Processor,
        n_lanes: int,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
    ) -> None:
        self.processor = processor
        self.sim = LaneProcessorSimulator(
            processor, n_lanes, injector=injector,
            module_overrides=module_overrides,
        )
        self.n_lanes = n_lanes
        self.branch_prediction = (
            "predict_taken" in processor.controller.network.signals
        )
        index = self.sim.cd.index
        self._wb_id = index["wb_value_o"]
        self._addr_id = index["dmem_addr_o"]
        self._wdata_id = index["dmem_wdata_o"]
        self._alu_id = index.get("mem_alu.y")

    def _lane_value(self, net_id, lane):
        if net_id is None or not self.sim.dp.known[net_id][lane]:
            return None
        return int(self.sim.dp.values[net_id][lane])

    def run(
        self,
        programs: Sequence[Sequence[Instruction]],
        init_regs: Sequence[Sequence[int] | None] | None = None,
        init_memory: Sequence[dict[int, int] | None] | None = None,
        drain: int = 8,
        max_cycles: int | None = None,
        record: str = "controller",
    ) -> list[LaneRun]:
        """Run one program per lane (lockstep); returns per-lane outcomes.

        ``record`` works as in :class:`repro.mini.lanes.BatchMiniEnv`:
        ``"controller"`` / ``"dense"`` / ``"full"``.
        """
        if len(programs) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} programs, got {len(programs)}"
            )
        if record not in ("controller", "dense", "full"):
            raise ValueError(f"unknown record mode {record!r}")
        sim = self.sim
        n = self.n_lanes

        regs: list[list[int]] = []
        memories: list[Memory] = []
        streams: list[list[Instruction]] = []
        limits: list[int] = []
        for b in range(n):
            lane_init = init_regs[b] if init_regs is not None else None
            lane_regs = list(lane_init) if lane_init is not None else (
                [0] * N_REGS
            )
            lane_regs = [to_unsigned(r, WIDTH) for r in lane_regs]
            lane_regs[0] = 0
            regs.append(lane_regs)
            memory = Memory()
            lane_mem = init_memory[b] if init_memory is not None else None
            if lane_mem:
                for addr, word in lane_mem.items():
                    memory.words[addr & ~0x3 & mask(WIDTH)] = to_unsigned(
                        word, WIDTH
                    )
            memories.append(memory)
            program = programs[b]
            n_branches = sum(
                1 for i in program if i.op in ("BEQZ", "BNEZ")
            )
            stream = list(program) + [NOP] * (drain + 2 * n_branches)
            streams.append(stream)
            limits.append(max_cycles or (len(stream) + 3 * len(stream) + 16))

        events: list[list[Event]] = [[] for _ in range(n)]
        traces = [Trace() for _ in range(n)]
        dense: list[list | None] = [
            [] if record == "dense" else None for _ in range(n)
        ]
        failure: list[str | None] = [None] * n
        position = [0] * n
        imm_in_id = [0] * n
        cycles = [0] * n
        id_pos: list[int | None] = [None] * n
        ex_pos: list[int | None] = [None] * n
        empty_cpi: dict = {}
        quiet_dpi = {"rf_a": 0, "rf_b": 0, "imm16": 0, "dmem_rdata": 0}
        nop_cpi = to_cpi(NOP)

        while True:
            active = [
                b for b in range(n)
                if failure[b] is None
                and position[b] < len(streams[b])
                and cycles[b] < limits[b]
            ]
            if not active:
                break
            sim.dp.active_lanes = len(active)

            ctl_list = sim.resolve([empty_cpi] * n, [empty_cpi] * n)
            previews = []
            for b in range(n):
                previews.append((
                    self._lane_value(self._wb_id, b),
                    self._lane_value(self._addr_id, b),
                    self._lane_value(self._wdata_id, b),
                    self._lane_value(self._alu_id, b),
                ))

            cpi_list: list[dict] = [nop_cpi] * n
            dpi_list: list[dict] = [quiet_dpi] * n
            stalled = [False] * n
            instructions: list[Instruction] = [NOP] * n
            for b in active:
                cycles[b] += 1
                ctl = ctl_list[b]
                wb_value, dmem_addr, dmem_wdata, alu_y = previews[b]

                # Commit the write-back of the instruction in WB.
                if ctl.get("regwrite_g_ctl") == 1:
                    dest = ctl["dest_wb"]
                    if dest != 0 and wb_value is not None:
                        regs[b][dest] = wb_value
                        events[b].append(("reg", dest, wb_value))

                # Memory-pin activity of the instruction in MEM.
                if (
                    ctl.get("mem_access_ctl") == 1
                    and ctl.get("memwrite_ctl") != 1
                ):
                    if dmem_addr is not None:
                        events[b].append(
                            ("load", dmem_addr, ctl["size_mem"])
                        )

                # Commit the store of the instruction in MEM.
                if ctl.get("memwrite_ctl") == 1:
                    size = ctl["size_mem"]
                    if dmem_addr is not None and dmem_wdata is not None:
                        memories[b].write(dmem_addr, dmem_wdata, size)
                        nbytes = _SIZE_BYTES[size]
                        events[b].append(
                            ("mem", dmem_addr, size,
                             dmem_wdata & mask(8 * nbytes))
                        )

                stalled[b] = ctl.get("stall") == 1
                instruction = streams[b][position[b]]
                instructions[b] = instruction

                rs_id = ctl["rs_id"]
                rt_id = ctl["rt_id"]
                dpi = {
                    "rf_a": regs[b][rs_id],
                    "rf_b": regs[b][rt_id],
                    "imm16": imm_in_id[b],
                }
                mem_address = dmem_addr
                if ctl.get("mem_access_ctl") != 1:
                    mem_address = alu_y
                if mem_address is not None:
                    dpi["dmem_rdata"] = memories[b].read_word(mem_address)
                cpi_list[b] = to_cpi(instruction)
                dpi_list[b] = dpi

            ctl_values, failures = sim.step(cpi_list, dpi_list)
            for b in active:
                if b in failures:
                    failure[b] = failures[b]
                    continue
                if record == "full":
                    datapath = sim.datapath_dict(b)
                else:
                    datapath = {}
                    if record == "dense":
                        dense[b].append(sim.dense_datapath(b))
                traces[b].cycles.append(
                    CycleTrace(datapath=datapath, controller=ctl_values[b])
                )

                ctl = ctl_list[b]
                instruction = instructions[b]
                if self.branch_prediction:
                    presented_pos = position[b]
                    if ctl.get("id_ex_clear") == 1:
                        new_ex_pos = None
                    else:
                        new_ex_pos = id_pos[b]
                    if ctl.get("if_id_clear") == 1:
                        id_pos[b] = None
                    elif not stalled[b]:
                        id_pos[b] = presented_pos
                    ex_at_resolution = ex_pos[b]
                    ex_pos[b] = new_ex_pos
                    if (
                        ctl.get("redirect_back") == 1
                        and ex_at_resolution is not None
                    ):
                        position[b] = ex_at_resolution + 1
                    elif not stalled[b]:
                        imm_in_id[b] = instruction.imm
                        predicted_taken = (
                            ctl.get("pred") == 1
                            and instruction.op in ("BEQZ", "BNEZ")
                        )
                        position[b] += 3 if predicted_taken else 1
                else:
                    if not stalled[b]:
                        imm_in_id[b] = instruction.imm
                        position[b] += 1
        sim.dp.active_lanes = self.n_lanes

        return [
            LaneRun(
                result=(
                    None if failure[b] is not None
                    else DlxSpecResult(
                        events=events[b], registers=regs[b],
                        memory=memories[b],
                    )
                ),
                trace=traces[b],
                failure=failure[b],
                dense_cycles=dense[b],
            )
            for b in range(n)
        ]
