"""The DLX instruction set (44 instructions, per Section VI).

The paper's test vehicle implements 44 DLX instructions on a five-stage
pipeline [14].  We reproduce exactly 44:

* loads:            LB LBU LH LHU LW                        (5)
* stores:           SB SH SW                                (3)
* ALU immediate:    ADDI ADDUI SUBI ANDI ORI XORI           (6)
* ALU register:     ADD ADDU SUB SUBU AND OR XOR            (7)
* set-on-compare:   SEQ SNE SLT SGT SLE SGE                 (6)
* set-on-cmp imm:   SEQI SNEI SLTI SGTI SLEI SGEI           (6)
* shifts register:  SLL SRL SRA                             (3)
* shifts immediate: SLLI SRLI SRAI                          (3)
* branches:         BEQZ BNEZ                               (2)
* jumps:            J JAL JR                                (3)

Sequencing is behavioural (see DESIGN.md): the instruction stream is the
program, a taken branch (resolved in EX) squashes the two following slots, a
jump (resolved in ID) squashes one.  JAL's link value is defined as its
immediate, routed through the EX pass path to r31 — this keeps the datapath
path real without modelling a PC/fetch unit.
"""

from __future__ import annotations

from dataclasses import dataclass

WIDTH = 32
N_REGS = 32
IMM_WIDTH = 16

MNEMONIC_LIST = [
    # loads (5)
    "LB", "LBU", "LH", "LHU", "LW",
    # stores (3)
    "SB", "SH", "SW",
    # ALU immediate (6)
    "ADDI", "ADDUI", "SUBI", "ANDI", "ORI", "XORI",
    # ALU register (7)
    "ADD", "ADDU", "SUB", "SUBU", "AND", "OR", "XOR",
    # set-on-compare register (6)
    "SEQ", "SNE", "SLT", "SGT", "SLE", "SGE",
    # set-on-compare immediate (6)
    "SEQI", "SNEI", "SLTI", "SGTI", "SLEI", "SGEI",
    # shifts register (3)
    "SLL", "SRL", "SRA",
    # shifts immediate (3)
    "SLLI", "SRLI", "SRAI",
    # branches (2)
    "BEQZ", "BNEZ",
    # jumps (3)
    "J", "JAL", "JR",
]
assert len(MNEMONIC_LIST) == 44

OPCODES = {name: code for code, name in enumerate(MNEMONIC_LIST)}
MNEMONICS = dict(enumerate(MNEMONIC_LIST))

LOADS = frozenset(OPCODES[m] for m in ("LB", "LBU", "LH", "LHU", "LW"))
STORES = frozenset(OPCODES[m] for m in ("SB", "SH", "SW"))
ALU_IMM = frozenset(
    OPCODES[m] for m in ("ADDI", "ADDUI", "SUBI", "ANDI", "ORI", "XORI")
)
ALU_REG = frozenset(
    OPCODES[m] for m in ("ADD", "ADDU", "SUB", "SUBU", "AND", "OR", "XOR")
)
SETCC_REG = frozenset(
    OPCODES[m] for m in ("SEQ", "SNE", "SLT", "SGT", "SLE", "SGE")
)
SETCC_IMM = frozenset(
    OPCODES[m] for m in ("SEQI", "SNEI", "SLTI", "SGTI", "SLEI", "SGEI")
)
SHIFT_REG = frozenset(OPCODES[m] for m in ("SLL", "SRL", "SRA"))
SHIFT_IMM = frozenset(OPCODES[m] for m in ("SLLI", "SRLI", "SRAI"))
BRANCHES = frozenset(OPCODES[m] for m in ("BEQZ", "BNEZ"))
JUMPS = frozenset(OPCODES[m] for m in ("J", "JAL", "JR"))

#: Instructions whose second ALU operand is the (extended) immediate.
IMM_OPS = LOADS | STORES | ALU_IMM | SETCC_IMM | SHIFT_IMM | {OPCODES["JAL"]}
#: Instructions whose immediate is zero-extended (logical immediates).
ZERO_EXT_OPS = frozenset(OPCODES[m] for m in ("ANDI", "ORI", "XORI"))
#: Instructions that write a destination register.
WRITING_OPS = (
    LOADS | ALU_IMM | ALU_REG | SETCC_REG | SETCC_IMM | SHIFT_REG | SHIFT_IMM
    | {OPCODES["JAL"]}
)
#: Instructions that read rs / rt.
USES_RS = frozenset(range(44)) - {OPCODES["J"], OPCODES["JAL"]}
USES_RT = STORES | ALU_REG | SETCC_REG | SHIFT_REG
#: R-type destination is rd; I-type destination is rt; JAL links to r31.
RTYPE = ALU_REG | SETCC_REG | SHIFT_REG

#: ALU result select (datapath alu_mux input index).
ALU_ADD, ALU_SUB, ALU_AND, ALU_OR, ALU_XOR = 0, 1, 2, 3, 4
ALU_SLL, ALU_SRL, ALU_SRA, ALU_SETCC, ALU_PASSB = 5, 6, 7, 8, 9

_ALU_SEL_TABLE = {
    **{op: ALU_ADD for op in LOADS | STORES},
    OPCODES["ADDI"]: ALU_ADD, OPCODES["ADDUI"]: ALU_ADD,
    OPCODES["SUBI"]: ALU_SUB,
    OPCODES["ANDI"]: ALU_AND, OPCODES["ORI"]: ALU_OR,
    OPCODES["XORI"]: ALU_XOR,
    OPCODES["ADD"]: ALU_ADD, OPCODES["ADDU"]: ALU_ADD,
    OPCODES["SUB"]: ALU_SUB, OPCODES["SUBU"]: ALU_SUB,
    OPCODES["AND"]: ALU_AND, OPCODES["OR"]: ALU_OR,
    OPCODES["XOR"]: ALU_XOR,
    **{op: ALU_SETCC for op in SETCC_REG | SETCC_IMM},
    OPCODES["SLL"]: ALU_SLL, OPCODES["SRL"]: ALU_SRL,
    OPCODES["SRA"]: ALU_SRA,
    OPCODES["SLLI"]: ALU_SLL, OPCODES["SRLI"]: ALU_SRL,
    OPCODES["SRAI"]: ALU_SRA,
    **{op: ALU_SUB for op in BRANCHES},  # don't-care; sub keeps buses busy
    OPCODES["J"]: ALU_ADD,
    OPCODES["JAL"]: ALU_PASSB,  # link value = immediate, passed through
    OPCODES["JR"]: ALU_ADD,
}


def alu_sel_for(op: int) -> int:
    return _ALU_SEL_TABLE[op]


#: Set-on-compare select (datapath setcc_mux input index).
SETCC_EQ, SETCC_NE, SETCC_LT, SETCC_GT, SETCC_LE, SETCC_GE = range(6)
_SETCC_TABLE = {
    OPCODES["SEQ"]: SETCC_EQ, OPCODES["SEQI"]: SETCC_EQ,
    OPCODES["SNE"]: SETCC_NE, OPCODES["SNEI"]: SETCC_NE,
    OPCODES["SLT"]: SETCC_LT, OPCODES["SLTI"]: SETCC_LT,
    OPCODES["SGT"]: SETCC_GT, OPCODES["SGTI"]: SETCC_GT,
    OPCODES["SLE"]: SETCC_LE, OPCODES["SLEI"]: SETCC_LE,
    OPCODES["SGE"]: SETCC_GE, OPCODES["SGEI"]: SETCC_GE,
}


def setcc_sel_for(op: int) -> int:
    return _SETCC_TABLE.get(op, SETCC_EQ)


#: Load extension select (datapath load_mux input index).
LOADEXT_LB, LOADEXT_LBU, LOADEXT_LH, LOADEXT_LHU, LOADEXT_LW = range(5)
_LOADEXT_TABLE = {
    OPCODES["LB"]: LOADEXT_LB, OPCODES["LBU"]: LOADEXT_LBU,
    OPCODES["LH"]: LOADEXT_LH, OPCODES["LHU"]: LOADEXT_LHU,
    OPCODES["LW"]: LOADEXT_LW,
}


def loadext_for(op: int) -> int:
    return _LOADEXT_TABLE.get(op, LOADEXT_LW)


#: Memory access size in bytes (1, 2, 4) encoded as 0, 1, 2.
SIZE_BYTE, SIZE_HALF, SIZE_WORD = 0, 1, 2
_SIZE_TABLE = {
    OPCODES["LB"]: SIZE_BYTE, OPCODES["LBU"]: SIZE_BYTE,
    OPCODES["SB"]: SIZE_BYTE,
    OPCODES["LH"]: SIZE_HALF, OPCODES["LHU"]: SIZE_HALF,
    OPCODES["SH"]: SIZE_HALF,
    OPCODES["LW"]: SIZE_WORD, OPCODES["SW"]: SIZE_WORD,
}


def size_for(op: int) -> int:
    return _SIZE_TABLE.get(op, SIZE_WORD)


#: Destination select: 0 = rt (I-type), 1 = rd (R-type), 2 = r31 (JAL).
def regdst_for(op: int) -> int:
    if op in RTYPE:
        return 1
    if op == OPCODES["JAL"]:
        return 2
    return 0


@dataclass(frozen=True)
class Instruction:
    """One DLX instruction (behavioural sequencing; see module docstring)."""

    op: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown mnemonic {self.op!r}")
        for reg in (self.rs, self.rt, self.rd):
            if not 0 <= reg < N_REGS:
                raise ValueError(f"register {reg} out of range")
        if not 0 <= self.imm < (1 << IMM_WIDTH):
            raise ValueError(f"immediate {self.imm} out of range (unsigned)")

    @property
    def opcode(self) -> int:
        return OPCODES[self.op]

    @property
    def writes(self) -> bool:
        return self.opcode in WRITING_OPS

    @property
    def dest(self) -> int:
        sel = regdst_for(self.opcode)
        return (self.rt, self.rd, 31)[sel]

    def __str__(self) -> str:
        op = self.opcode
        if op in BRANCHES:
            return f"{self.op} r{self.rs}"
        if op == OPCODES["JR"]:
            return f"JR r{self.rs}"
        if op in (OPCODES["J"],):
            return "J"
        if op == OPCODES["JAL"]:
            return f"JAL #{self.imm}"
        if op in STORES:
            return f"{self.op} {self.imm}(r{self.rs}), r{self.rt}"
        if op in LOADS:
            return f"{self.op} r{self.rt}, {self.imm}(r{self.rs})"
        if op in IMM_OPS:
            return f"{self.op} r{self.rt}, r{self.rs}, #{self.imm}"
        return f"{self.op} r{self.rd}, r{self.rs}, r{self.rt}"


NOP = Instruction("ADDI", rs=0, rt=0, imm=0)  # the canonical DLX no-op


def to_cpi(instruction: Instruction) -> dict[str, int]:
    """Controller primary inputs encoding one instruction."""
    return {
        "op": instruction.opcode,
        "rs": instruction.rs,
        "rt": instruction.rt,
        "rd": instruction.rd,
    }
