"""Realize a TG test case as a DLX program + initial register/memory state.

TG's stimulus is cycle-indexed: CPI fields per cycle (the instruction
presented to IF), DPI values per cycle (raw register-file reads for the
instruction in ID, the memory word for the instruction in MEM, the
immediate).  A program reproduces that stimulus through the architecture
only if

* stalled cycles re-present the same instruction (the fetch unit holds);
* every raw register read that the pipeline *uses* (not covered by a
  bypass, belonging to an instruction with an architectural effect) sees
  the value relaxation chose — bound through initial register contents and
  the committed write timeline;
* every memory word a load reads matches the store timeline plus bindable
  initial memory.

The realizer replays the fault-free co-simulation of the stimulus to learn
the control trace (stalls, squashes, forwarding, commits), then solves the
binding constraints.  Conflicts raise :class:`RealizationError`; in the
campaign those count as aborted errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tg import TestCase
from repro.dlx.isa import IMM_WIDTH, MNEMONICS, N_REGS, WIDTH, Instruction
from repro.model.processor import Processor
from repro.utils.bits import mask, to_unsigned
from repro.verify.cosim import CosimError, ProcessorSimulator

_SIZE_BYTES = {0: 1, 1: 2, 2: 4}


@dataclass
class RealizedDlxTest:
    """A DLX program plus the initial architectural state it needs."""

    program: list[Instruction]
    init_regs: list[int]
    init_memory: dict[int, int] = field(default_factory=dict)


class RealizationError(Exception):
    """The stimulus cannot be produced through the architecture."""


class _RegBinder:
    """Initial-register binding against the committed write timeline."""

    def __init__(self, commits: dict[int, list[tuple[int, int]]]) -> None:
        self.commits = commits  # reg -> [(cycle, value)] sorted
        self.init: dict[int, int] = {0: 0}

    def committed_value(self, reg: int, cycle: int) -> int | None:
        value = None
        for commit_cycle, commit_value in self.commits.get(reg, []):
            if commit_cycle <= cycle:
                value = commit_value
        return value

    def can_bind(self, reg: int, cycle: int, want: int) -> bool:
        committed = self.committed_value(reg, cycle)
        if committed is not None:
            return committed == want
        bound = self.init.get(reg)
        return bound is None or bound == want

    def bind(self, reg: int, cycle: int, want: int, where: str) -> None:
        committed = self.committed_value(reg, cycle)
        if committed is not None:
            if committed != want:
                raise RealizationError(
                    f"{where}: r{reg} reads committed {committed:#x}, "
                    f"needs {want:#x}"
                )
            return
        bound = self.init.get(reg)
        if bound is None:
            self.init[reg] = want
        elif bound != want:
            raise RealizationError(
                f"{where}: r{reg} initial value pinned to {bound:#x}, "
                f"needs {want:#x}"
            )


class _MemBinder:
    """Initial-memory binding (per byte) against the store timeline."""

    def __init__(self, stores: list[tuple[int, int, int, int]]) -> None:
        # stores: (cycle, address, size, data)
        self.stores = stores
        self.init_bytes: dict[int, int] = {}

    def _byte_at(self, address: int, cycle: int) -> int | None:
        """Committed byte from stores up to ``cycle``; None if untouched."""
        value = None
        for store_cycle, store_addr, size, data in self.stores:
            if store_cycle > cycle:
                continue
            nbytes = _SIZE_BYTES[size]
            lane = store_addr & 0x3
            base = store_addr & ~0x3
            offset = address - (base + lane)
            if base == (address & ~0x3) and 0 <= offset < nbytes:
                # Bytes shifted past the word boundary are dropped.
                if lane + offset < 4:
                    value = (data >> (8 * offset)) & 0xFF
        return value

    def bind_word(self, address: int, cycle: int, want: int, where: str) -> None:
        aligned = address & ~0x3 & mask(WIDTH)
        for offset in range(4):
            byte_addr = aligned + offset
            want_byte = (want >> (8 * offset)) & 0xFF
            committed = self._byte_at(byte_addr, cycle)
            if committed is not None:
                if committed != want_byte:
                    raise RealizationError(
                        f"{where}: mem[{byte_addr:#x}] holds "
                        f"{committed:#x}, needs {want_byte:#x}"
                    )
                continue
            bound = self.init_bytes.get(byte_addr)
            if bound is None:
                self.init_bytes[byte_addr] = want_byte
            elif bound != want_byte:
                raise RealizationError(
                    f"{where}: mem[{byte_addr:#x}] initial byte pinned to "
                    f"{bound:#x}, needs {want_byte:#x}"
                )

    def init_words(self) -> dict[int, int]:
        words: dict[int, int] = {}
        for byte_addr, value in self.init_bytes.items():
            aligned = byte_addr & ~0x3
            lane = byte_addr & 0x3
            words[aligned] = words.get(aligned, 0) | (value << (8 * lane))
        return words


def realize(processor: Processor, test: TestCase) -> RealizedDlxTest:
    """Turn a TG test case into a DLX program + initial state."""
    sim = ProcessorSimulator(processor)
    try:
        trace = sim.run(test.cpi_frames, test.dpi_frames)
    except CosimError as exc:  # pragma: no cover - defensive
        raise RealizationError(f"stimulus does not co-simulate: {exc}")
    ctl = [c.controller for c in trace.cycles]
    dp = [c.datapath for c in trace.cycles]
    n = test.n_frames

    # On the branch-predicted machine a trained predictor changes the
    # fetch-position mapping (predicted-taken branches skip slots); the
    # realizer models the predict-not-taken fetch, so it only accepts
    # traces where the predictor never trains taken.
    if "predict_taken" in processor.controller.network.signals and any(
        c.get("pred") == 1 for c in ctl
    ):
        raise RealizationError(
            "trained branch predictor: fetch-skip realization unsupported"
        )

    # ------------------------------------------------------------------
    # 1. Stream construction: stalled cycles replay the same instruction.
    # ------------------------------------------------------------------
    stream_fields: list[dict[str, int]] = []
    slot_decided: list[set[str]] = []  # fields the search decided, per slot
    for t in range(n):
        decided_here = {
            fld for fld in ("op", "rs", "rt", "rd")
            if (t, fld) in test.decided_cpi
        }
        if t > 0 and ctl[t - 1].get("stall") == 1:
            # Replayed slot: the fields TG decided here must match what the
            # fetch unit will actually re-present.
            held = stream_fields[-1]
            for fld in decided_here:
                if held[fld] != test.cpi_frames[t].get(fld, held[fld]):
                    raise RealizationError(
                        f"cycle {t}: stalled fetch cannot change field "
                        f"{fld!r}"
                    )
            slot_decided[-1] |= decided_here
            continue
        stream_fields.append(dict(test.cpi_frames[t]))
        slot_decided.append(decided_here)

    # Which slot is in ID at each cycle (None = bubble/squash NOP), and
    # registers that are safe to re-allocate for undecided specifiers:
    # changing an rs/rt to one of these never flips a forwarding or stall
    # comparison, because no in-flight instruction targets them.
    id_slot: list[int | None] = [None] * n
    current: int | None = None
    pos = 0
    for t in range(n):
        id_slot[t] = current
        presented = pos if pos < len(stream_fields) else None
        if ctl[t].get("if_id_clear") == 1:
            current = None
        elif ctl[t].get("stall") != 1:
            current = presented
        if ctl[t].get("stall") != 1 and presented is not None:
            pos += 1
    forbidden = {0}
    for t in range(n):
        if ctl[t].get("regwrite_ex") == 1:
            forbidden.add(ctl[t].get("dest_ex", 0))
    for t in range(n):
        for fld in ("rs", "rt", "rd"):
            if (t, fld) in test.decided_cpi:
                forbidden.add(test.cpi_frames[t].get(fld, 0))
    free_pool = [r for r in range(1, N_REGS) if r not in forbidden]

    # ------------------------------------------------------------------
    # 2. Commit timelines from the fault-free trace.
    # ------------------------------------------------------------------
    reg_commits: dict[int, list[tuple[int, int]]] = {}
    stores: list[tuple[int, int, int, int]] = []
    for t in range(n):
        if ctl[t].get("regwrite_g_ctl") == 1:
            dest = ctl[t]["dest_wb"]
            value = dp[t].get("wb_value_o")
            if dest != 0 and value is not None:
                reg_commits.setdefault(dest, []).append((t, value))
        if ctl[t].get("memwrite_ctl") == 1:
            address = dp[t].get("dmem_addr_o")
            data = dp[t].get("dmem_wdata_o")
            if address is not None and data is not None:
                stores.append((t, address, ctl[t]["size_mem"], data))

    regs = _RegBinder(reg_commits)
    memory = _MemBinder(stores)

    # ------------------------------------------------------------------
    # 3. Read-binding constraints per cycle.
    # ------------------------------------------------------------------
    def bind_read(slot: int | None, field_name: str, trace_reg: int,
                  cycle: int, want: int, where: str) -> None:
        """Bind a raw register read, re-allocating a free register when the
        specifier was not decided by the search."""
        if slot is not None and field_name not in slot_decided[slot]:
            if not regs.can_bind(trace_reg, cycle, want):
                for candidate in free_pool:
                    if regs.can_bind(candidate, cycle, want):
                        stream_fields[slot][field_name] = candidate
                        regs.bind(candidate, cycle, want, where)
                        return
                raise RealizationError(
                    f"{where}: no register can deliver {want:#x}"
                )
            # The default register works; keep it (but record the binding).
            regs.bind(trace_reg, cycle, want, where)
            return
        regs.bind(trace_reg, cycle, want, where)

    for t in range(n):
        # The instruction leaving ID at cycle t (held instructions bind at
        # their leave cycle; bubbled/squashed ones have no effect flags).
        if ctl[t].get("stall") == 1:
            continue
        writes_visibly = (
            t + 1 < n
            and ctl[t + 1].get("regwrite_ex") == 1
            and ctl[t + 1].get("dest_ex") != 0
        )
        has_effect_next = t + 1 < n and (
            writes_visibly
            or any(
                ctl[t + 1].get(flag) == 1
                for flag in (
                    "memread_ex", "memwrite_ex", "is_beqz_ex", "is_bnez_ex",
                )
            )
        )
        if not has_effect_next:
            continue
        where = f"cycle {t}"
        slot = id_slot[t]
        if ctl[t].get("uses_rs_id") == 1 and ctl[t + 1].get("fwd_a") == 0:
            bind_read(slot, "rs", ctl[t]["rs_id"], t,
                      test.dpi_frames[t].get("rf_a", 0), where)
        if ctl[t].get("uses_rt_id") == 1 and ctl[t + 1].get("fwd_b") == 0:
            bind_read(slot, "rt", ctl[t]["rt_id"], t,
                      test.dpi_frames[t].get("rf_b", 0), where)
        # Loads: the word supplied two cycles later must be in memory —
        # but only when the loaded value is architecturally used (a load
        # into r0 reads a don't-care word).
        if (
            ctl[t + 1].get("memread_ex") == 1
            and ctl[t + 1].get("dest_ex") != 0
            and t + 2 < n
        ):
            address = dp[t + 2].get("dmem_addr_o")
            if address is not None:
                memory.bind_word(
                    address, t + 2,
                    test.dpi_frames[t + 2].get("dmem_rdata", 0),
                    f"cycle {t + 2}",
                )

    # ------------------------------------------------------------------
    # 4. Assemble instructions (immediate taken at the ID leave cycle).
    # ------------------------------------------------------------------
    program: list[Instruction] = []
    # First-presentation cycle of each stream slot (same dedup rule as the
    # stream construction above).
    presented_cycles: list[int] = []
    pos = 0
    for t in range(n):
        if pos < len(stream_fields) and (
            t == 0 or ctl[t - 1].get("stall") != 1
        ):
            presented_cycles.append(t)
            pos += 1
    for i, fields in enumerate(stream_fields):
        # The slot is re-presented while stalled; it is latched into ID at
        # the end of its last presentation q, sits in ID from q+1, and
        # leaves at the first non-stall cycle — where its immediate is
        # latched into EX.
        q = presented_cycles[i]
        while q < n and ctl[q].get("stall") == 1:
            q += 1
        leave = q + 1
        while leave < n and ctl[leave].get("stall") == 1:
            leave += 1
        imm_cycle = min(leave, n - 1)
        imm = to_unsigned(
            test.dpi_frames[imm_cycle].get("imm16", 0), IMM_WIDTH
        )
        program.append(
            Instruction(
                MNEMONICS[fields.get("op", 0)],
                rs=fields.get("rs", 0),
                rt=fields.get("rt", 0),
                rd=fields.get("rd", 0),
                imm=imm,
            )
        )

    init_regs = [regs.init.get(r, 0) for r in range(N_REGS)]
    return RealizedDlxTest(
        program=program,
        init_regs=init_regs,
        init_memory=memory.init_words(),
    )
