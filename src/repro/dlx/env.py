"""Environment shim: run DLX programs on the pipelined implementation.

The implementation models register-file and data-memory reads as data
primary inputs and writes as gated observable outputs (see
``repro.dlx.datapath``).  ``DlxEnv`` closes the loop, playing the part of
the register file, the data memory and the fetch unit:

* each cycle it first *previews* the pipeline (state-only evaluation) to
  commit the write-back and store of the instructions in WB/MEM and to read
  the ``stall`` tertiary signal (a real fetch unit holds the PC on stall);
* it then supplies the cycle's stimulus: the next instruction's fields
  (replayed while stalled), the register read data for the instruction in
  ID, and the memory word addressed by the instruction in MEM.

The extracted event trace has exactly the specification's format, so
``detects`` compares implementation and specification directly — the
paper's simulation-based detection criterion.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.datapath.simulate import Injector, ModuleOverride, no_injection
from repro.dlx.isa import NOP, N_REGS, WIDTH, Instruction, to_cpi
from repro.dlx.spec import DlxSpec, DlxSpecResult, Event, Memory, _SIZE_BYTES
from repro.model.processor import Processor
from repro.utils.bits import mask, to_unsigned
from repro.verify.cosim import ProcessorSimulator, Trace


class DlxEnv:
    """Drives the DLX implementation with a program."""

    def __init__(
        self,
        processor: Processor,
        injector: Injector = no_injection,
        module_overrides: Mapping[str, ModuleOverride] | None = None,
        compiled: bool = True,
    ) -> None:
        self.processor = processor
        self.sim = ProcessorSimulator(
            processor, injector=injector, module_overrides=module_overrides,
            compiled=compiled,
        )
        #: Branch-prediction controllers expose 'predict_taken'; the fetch
        #: unit then skips ahead on predicted-taken branches and rewinds on
        #: a redirect_back misprediction.
        self.branch_prediction = (
            "predict_taken" in processor.controller.network.signals
        )
        #: Cycle-accurate co-simulation trace of the most recent ``run``
        #: (consumed by the coverage collector in ``repro.fuzz``).
        self.trace = Trace()

    # ------------------------------------------------------------------
    def _preview(self):
        """State-only resolution of the current cycle (no external data)."""
        externals = {
            net.name: None
            for net in self.processor.datapath.nets.values()
            if net.is_external_input
        }
        ctl_values, dp_values = self.sim.resolve({}, externals)
        return ctl_values, dp_values

    def run(
        self,
        program: Sequence[Instruction],
        init_regs: Sequence[int] | None = None,
        init_memory: dict[int, int] | None = None,
        drain: int = 8,
        max_cycles: int | None = None,
    ) -> DlxSpecResult:
        regs = list(init_regs) if init_regs is not None else [0] * N_REGS
        regs = [to_unsigned(r, WIDTH) for r in regs]
        regs[0] = 0
        memory = Memory()
        if init_memory:
            for addr, word in init_memory.items():
                memory.words[addr & ~0x3 & mask(WIDTH)] = to_unsigned(
                    word, WIDTH
                )
        events: list[Event] = []
        self.trace = Trace()
        # Predicted-taken branches skip two slots each, eating into the
        # drain; pad accordingly so in-flight instructions always retire.
        n_branches = sum(1 for i in program if i.op in ("BEQZ", "BNEZ"))
        stream = list(program) + [NOP] * (drain + 2 * n_branches)
        limit = max_cycles or (len(stream) + 3 * len(stream) + 16)

        position = 0
        imm_in_id = 0
        cycles = 0
        # Shadow pipeline of stream positions (branch prediction only):
        # which stream slot is in ID / EX, so a redirect_back misprediction
        # can rewind the fetch position to just after the branch.
        id_pos: int | None = None
        ex_pos: int | None = None
        while position < len(stream) and cycles < limit:
            cycles += 1
            ctl, dp = self._preview()

            # Commit the write-back of the instruction in WB.  All
            # observable values are taken from the gated output pins, so an
            # error on a pin net corrupts real traffic.
            if ctl.get("regwrite_g_ctl") == 1:
                dest = ctl["dest_wb"]
                value = dp["wb_value_o"]
                if dest != 0 and value is not None:
                    regs[dest] = value
                    events.append(("reg", dest, value))

            # Memory-pin activity of the instruction in MEM.
            if (
                ctl.get("mem_access_ctl") == 1
                and ctl.get("memwrite_ctl") != 1
            ):
                address = dp.get("dmem_addr_o")
                if address is not None:
                    events.append(("load", address, ctl["size_mem"]))

            # Commit the store of the instruction in MEM.
            if ctl.get("memwrite_ctl") == 1:
                address = dp["dmem_addr_o"]
                data = dp["dmem_wdata_o"]
                size = ctl["size_mem"]
                if address is not None and data is not None:
                    memory.write(address, data, size)
                    nbytes = _SIZE_BYTES[size]
                    events.append(
                        ("mem", address, size, data & mask(8 * nbytes))
                    )

            stalled = ctl.get("stall") == 1
            instruction = stream[position]

            # Stimulus for the instruction currently in ID.
            rs_id = ctl["rs_id"]
            rt_id = ctl["rt_id"]
            dpi = {
                "rf_a": regs[rs_id],
                "rf_b": regs[rt_id],
                "imm16": imm_in_id,
            }
            # Memory read data for the instruction in MEM (the memory
            # sees the address pins).
            mem_address = dp.get("dmem_addr_o")
            if ctl.get("mem_access_ctl") != 1:
                mem_address = dp.get("mem_alu.y")
            if mem_address is not None:
                dpi["dmem_rdata"] = memory.read_word(mem_address)

            self.trace.cycles.append(self.sim.step(to_cpi(instruction), dpi))

            if self.branch_prediction:
                presented_pos = position
                # Clock the shadow pipeline with the controller's own
                # gating decisions.
                if ctl.get("id_ex_clear") == 1:
                    new_ex_pos = None
                else:
                    new_ex_pos = id_pos
                if ctl.get("if_id_clear") == 1:
                    id_pos = None
                elif not stalled:
                    id_pos = presented_pos
                ex_at_resolution = ex_pos
                ex_pos = new_ex_pos
                # Fetch-unit position update.
                if ctl.get("redirect_back") == 1 and ex_at_resolution is not None:
                    # Predicted taken, actually not taken: resume with the
                    # slot right behind the branch.
                    position = ex_at_resolution + 1
                elif not stalled:
                    imm_in_id = instruction.imm
                    predicted_taken = (
                        ctl.get("pred") == 1
                        and instruction.op in ("BEQZ", "BNEZ")
                    )
                    # A predicted-taken branch skips its two shadow slots.
                    position += 3 if predicted_taken else 1
            else:
                if not stalled:
                    imm_in_id = instruction.imm
                    position += 1

        return DlxSpecResult(events=events, registers=regs, memory=memory)


def detects(
    processor: Processor,
    program: Sequence[Instruction],
    error,
    init_regs: Sequence[int] | None = None,
    init_memory: dict[int, int] | None = None,
) -> bool:
    """True iff the program distinguishes the erroneous implementation from
    the ISA specification — the Table 1 detection criterion."""
    spec = DlxSpec().run(program, init_regs, init_memory)
    bad = error.attach(processor.datapath)
    env = DlxEnv(
        processor,
        injector=bad.injector,
        module_overrides=bad.module_overrides,
    )
    impl = env.run(program, init_regs, init_memory)
    return impl.events != spec.events


def batch_detects(
    processor: Processor,
    program: Sequence[Instruction],
    errors: Sequence,
    init_regs: Sequence[int] | None = None,
    init_memory: dict[int, int] | None = None,
    stats: list | None = None,
    golden: tuple | None = None,
) -> list[bool]:
    """``[detects(processor, program, e, ...) for e in errors]`` via one
    golden run plus cone forks (:mod:`repro.datapath.faultsim`).

    The environment closes feedback loops the open-loop fork cannot model
    (``dmem_rdata`` echoes the same cycle's address pins), so the fork is
    used purely as a *negative screen*: a fork that never touches a net the
    environment reads — the DPO pins, the STS nets, or ``mem_alu.y`` —
    leaves every stimulus and every commit identical to the golden run and
    inherits the golden verdict.  Any touch is confirmed serially.

    ``golden`` optionally supplies a precomputed fault-free run as
    ``(result, trace, dense_cycles)`` — e.g. one lane of a batched
    :class:`repro.dlx.lanes.BatchDlxEnv` run.
    """
    from repro.datapath.faultsim import BatchFaultSimulator

    spec = DlxSpec().run(program, init_regs, init_memory)
    if golden is not None:
        golden_result, golden_trace, dense_cycles = golden
    else:
        env = DlxEnv(processor)
        golden_result = env.run(program, init_regs, init_memory)
        golden_trace, dense_cycles = env.trace, None
    golden_detects = golden_result.events != spec.events
    sim = BatchFaultSimulator(
        processor, golden_trace, observed_extra=("mem_alu.y",),
        dense_cycles=dense_cycles,
    )
    results = []
    for error in errors:
        fork = sim.fork(error, stop_at_first_observed=True)
        if fork.kind == "clean":
            results.append(golden_detects)
        else:
            results.append(
                detects(processor, program, error, init_regs, init_memory)
            )
    if stats is not None:
        stats.append(sim.stats)
    return results


def dlx_exposure_comparator(processor, good, bad):
    """Transaction-gated divergence check for TG's internal exposure test.

    Compares exactly what the ISA-level detection compares — register
    write-backs and memory-pin transactions — so a TG "detected" verdict
    survives realization.  Returns the first (cycle, tag) divergence.
    """

    def cycle_events(cycle):
        ctl, dp = cycle.controller, cycle.datapath
        events = []
        if ctl.get("regwrite_g_ctl") == 1 and ctl.get("dest_wb") != 0:
            events.append(("reg", ctl.get("dest_wb"), dp.get("wb_value_o")))
        if ctl.get("mem_access_ctl") == 1 and ctl.get("memwrite_ctl") != 1:
            events.append(
                ("load", dp.get("dmem_addr_o"), ctl.get("size_mem"))
            )
        if ctl.get("memwrite_ctl") == 1:
            size = ctl.get("size_mem")
            data = dp.get("dmem_wdata_o")
            if data is not None and size is not None:
                data &= mask(8 * _SIZE_BYTES[size])
            events.append(("mem", dp.get("dmem_addr_o"), size, data))
        return events

    for index, (g, b) in enumerate(zip(good.cycles, bad.cycles)):
        ge, be = cycle_events(g), cycle_events(b)
        if ge != be:
            return (index, "isa-events")
    return None
