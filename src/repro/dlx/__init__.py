"""The DLX five-stage pipelined processor (the paper's test vehicle)."""

from repro.dlx.env import DlxEnv, detects
from repro.dlx.isa import (
    BRANCHES,
    IMM_OPS,
    JUMPS,
    LOADS,
    MNEMONICS,
    NOP,
    OPCODES,
    STORES,
    USES_RS,
    USES_RT,
    WRITING_OPS,
    Instruction,
    to_cpi,
)
from repro.dlx.machine import build_dlx
from repro.dlx.spec import DlxSpec, DlxSpecResult, Memory

__all__ = [
    "BRANCHES",
    "DlxEnv",
    "DlxSpec",
    "DlxSpecResult",
    "IMM_OPS",
    "Instruction",
    "JUMPS",
    "LOADS",
    "MNEMONICS",
    "Memory",
    "NOP",
    "OPCODES",
    "STORES",
    "USES_RS",
    "USES_RT",
    "WRITING_OPS",
    "build_dlx",
    "detects",
    "to_cpi",
]
