"""The DLX five-stage pipelined controller.

Stage structure mirrors the datapath: IF holds the incoming instruction
fields (CPI), IF/ID pipe registers latch them into ID, where the decode
logic lives; decoded controls ride the ID/EX, EX/MEM and MEM/WB control
pipe registers alongside the data.

Tertiary signals (the essential instruction interaction, Section III):

* ``stall``         — load-use hazard: the IF/ID registers hold and the
                      ID/EX registers take a bubble; suppressed while the
                      stalling instruction is itself being squashed;
* ``branch_taken``  — a taken BEQZ/BNEZ in EX squashes the two younger
                      instructions (predict-not-taken);
* ``fwd_a, fwd_b``  — three-way bypass selects per EX operand
                      (0: register file, 1: EX/MEM, 2: MEM/WB).

Status inputs from the datapath: ``zero`` (branch condition, EX) and
``addrlo`` (address low bits, MEM — steer the load/store byte lanes).

With ``branch_prediction=True`` (the paper's DLX "has branch prediction
logic") a one-bit last-outcome predictor is added: a correctly-predicted
branch costs no squash at all; a misprediction squashes the two younger
slots and redirects the fetch unit *forward* (predicted not-taken, actually
taken) or *back* (predicted taken, actually not-taken).  The prediction is
purely micro-architectural — the ISA specification is unchanged — and the
two redirect signals replace ``branch_taken`` as tertiary signals.
"""

from __future__ import annotations

from repro.controller import (
    AndNode,
    Signal,
    BufNode,
    ConstNode,
    EqConstNode,
    EqNode,
    InSetNode,
    NotNode,
    OrNode,
    PipelinedController,
    PipeRegister,
    SignalKind,
    TableNode,
    bit_signal,
    field_signal,
)
from repro.dlx.isa import (
    IMM_OPS,
    LOADS,
    N_REGS,
    OPCODES,
    STORES,
    USES_RS,
    USES_RT,
    WRITING_OPS,
    ZERO_EXT_OPS,
    alu_sel_for,
    loadext_for,
    regdst_for,
    setcc_sel_for,
    size_for,
)

OP_DOMAIN = tuple(range(44))
REG_DOMAIN = tuple(range(N_REGS))
ALUSEL_DOMAIN = tuple(range(10))
SETCC_DOMAIN = tuple(range(6))
LOADEXT_DOMAIN = tuple(range(5))
SIZE_DOMAIN = (0, 1, 2)
REGDST_DOMAIN = (0, 1, 2)

#: Opcode the IF/ID register decodes to when squashed (the canonical NOP:
#: ADDI r0, r0, 0 — its write is killed by the r0 gate).
SQUASH_OP = OPCODES["ADDI"]


def build_dlx_controller(
    branch_prediction: bool = False,
) -> PipelinedController:
    name = "dlx_bp_ctl" if branch_prediction else "dlx_ctl"
    ctl = PipelinedController(name, n_stages=5)
    add = ctl.add_signal

    # ------------------------------------------------------------------
    # IF: the incoming instruction fields
    # ------------------------------------------------------------------
    add(field_signal("op", OP_DOMAIN, SignalKind.CPI, stage=0))
    add(field_signal("rs", REG_DOMAIN, SignalKind.CPI, stage=0))
    add(field_signal("rt", REG_DOMAIN, SignalKind.CPI, stage=0))
    add(field_signal("rd", REG_DOMAIN, SignalKind.CPI, stage=0))

    # ------------------------------------------------------------------
    # ID: latched instruction and decode
    # ------------------------------------------------------------------
    add(field_signal("op_id", OP_DOMAIN, SignalKind.CSI, stage=1))
    add(field_signal("rs_id", REG_DOMAIN, SignalKind.CSI, stage=1))
    add(field_signal("rt_id", REG_DOMAIN, SignalKind.CSI, stage=1))
    add(field_signal("rd_id", REG_DOMAIN, SignalKind.CSI, stage=1))

    decode_bits = [
        ("regwrite_id", InSetNode("op_id", WRITING_OPS)),
        ("memread_id", InSetNode("op_id", LOADS)),
        ("memwrite_id", InSetNode("op_id", STORES)),
        ("memtoreg_id", InSetNode("op_id", LOADS)),
        ("alusrc_id", InSetNode("op_id", IMM_OPS)),
        ("uses_rs_id", InSetNode("op_id", USES_RS)),
        ("uses_rt_id", InSetNode("op_id", USES_RT)),
        ("is_beqz_id", EqConstNode("op_id", OPCODES["BEQZ"])),
        ("is_bnez_id", EqConstNode("op_id", OPCODES["BNEZ"])),
        ("jump_in_id", InSetNode(
            "op_id", {OPCODES["J"], OPCODES["JAL"], OPCODES["JR"]}
        )),
    ]
    for name, node in decode_bits:
        add(bit_signal(name, stage=1))
        ctl.drive(name, node)

    decode_fields = [
        ("alu_sel_id", ALUSEL_DOMAIN, alu_sel_for),
        ("setcc_id", SETCC_DOMAIN, setcc_sel_for),
        ("loadext_id", LOADEXT_DOMAIN, loadext_for),
        ("size_id", SIZE_DOMAIN, size_for),
        ("regdst_id", REGDST_DOMAIN, regdst_for),
    ]
    for name, domain, fn in decode_fields:
        add(field_signal(name, domain, stage=1))
        ctl.drive(name, TableNode(["op_id"], fn, [OP_DOMAIN]))

    add(field_signal("r31const", (31,), stage=1))
    ctl.drive("r31const", ConstNode(31))
    add(field_signal("dest_id", REG_DOMAIN, stage=1))
    from repro.controller.nodes import MuxNode

    ctl.drive("dest_id", MuxNode("regdst_id", "rt_id", "rd_id", "r31const"))

    # ------------------------------------------------------------------
    # Status inputs from the datapath
    # ------------------------------------------------------------------
    add(bit_signal("zero", SignalKind.STS, stage=2))
    add(field_signal("addrlo", (0, 1, 2, 3), SignalKind.STS, stage=3))

    # ------------------------------------------------------------------
    # EX state (ID/EX control pipe registers)
    # ------------------------------------------------------------------
    ex_bits = [
        "regwrite_ex", "memread_ex", "memwrite_ex", "memtoreg_ex",
        "alusrc_ex", "is_beqz_ex", "is_bnez_ex",
    ]
    for name in ex_bits:
        add(bit_signal(name, SignalKind.CSI, stage=2))
    add(field_signal("alu_sel_ex", ALUSEL_DOMAIN, SignalKind.CSI, stage=2))
    add(field_signal("setcc_ex", SETCC_DOMAIN, SignalKind.CSI, stage=2))
    add(field_signal("loadext_ex", LOADEXT_DOMAIN, SignalKind.CSI, stage=2))
    add(field_signal("size_ex", SIZE_DOMAIN, SignalKind.CSI, stage=2))
    add(field_signal("dest_ex", REG_DOMAIN, SignalKind.CSI, stage=2))
    add(field_signal("rs_ex", REG_DOMAIN, SignalKind.CSI, stage=2))
    add(field_signal("rt_ex", REG_DOMAIN, SignalKind.CSI, stage=2))

    # ------------------------------------------------------------------
    # MEM and WB state
    # ------------------------------------------------------------------
    for name in ("regwrite_mem", "memread_mem", "memwrite_mem",
                 "memtoreg_mem"):
        add(bit_signal(name, SignalKind.CSI, stage=3))
    add(field_signal("loadext_mem", LOADEXT_DOMAIN, SignalKind.CSI, stage=3))
    add(field_signal("size_mem", SIZE_DOMAIN, SignalKind.CSI, stage=3))
    add(field_signal("dest_mem", REG_DOMAIN, SignalKind.CSI, stage=3))
    for name in ("regwrite_wb", "memtoreg_wb"):
        add(bit_signal(name, SignalKind.CSI, stage=4))
    add(field_signal("dest_wb", REG_DOMAIN, SignalKind.CSI, stage=4))

    # ------------------------------------------------------------------
    # Tertiary signals: hazards, squash, forwarding
    # ------------------------------------------------------------------
    # Load-use stall (raw), suppressed when the instruction in ID is being
    # squashed by a taken branch anyway.
    add(bit_signal("dest_ex_z", stage=2))
    ctl.drive("dest_ex_z", EqConstNode("dest_ex", 0))
    add(bit_signal("dest_ex_nz", stage=2))
    ctl.drive("dest_ex_nz", NotNode("dest_ex_z"))
    add(bit_signal("rs_hazard", stage=1))
    add(bit_signal("rt_hazard", stage=1))
    add(bit_signal("rs_match_ex", stage=1))
    add(bit_signal("rt_match_ex", stage=1))
    ctl.drive("rs_match_ex", EqNode("rs_id", "dest_ex"))
    ctl.drive("rt_match_ex", EqNode("rt_id", "dest_ex"))
    ctl.drive("rs_hazard", AndNode(["uses_rs_id", "rs_match_ex"]))
    ctl.drive("rt_hazard", AndNode(["uses_rt_id", "rt_match_ex"]))
    add(bit_signal("any_hazard", stage=1))
    ctl.drive("any_hazard", OrNode(["rs_hazard", "rt_hazard"]))
    add(bit_signal("stall_raw", stage=1))
    ctl.drive("stall_raw", AndNode(["memread_ex", "dest_ex_nz", "any_hazard"]))

    add(bit_signal("not_zero", stage=2))
    ctl.drive("not_zero", NotNode("zero"))
    add(bit_signal("beqz_taken", stage=2))
    add(bit_signal("bnez_taken", stage=2))
    ctl.drive("beqz_taken", AndNode(["is_beqz_ex", "zero"]))
    ctl.drive("bnez_taken", AndNode(["is_bnez_ex", "not_zero"]))
    taken_kind = SignalKind.INTERNAL if branch_prediction else SignalKind.CTI
    add(Signal("branch_taken", (0, 1), taken_kind, stage=2))
    ctl.drive("branch_taken", OrNode(["beqz_taken", "bnez_taken"]))

    if branch_prediction:
        # One-bit last-outcome predictor: updated whenever a branch
        # resolves in EX, consulted at fetch; the prediction travels with
        # the branch so resolution knows whether the fetch went the wrong
        # way (squash + redirect) or the right way (no penalty).
        add(bit_signal("branch_in_ex", stage=2))
        ctl.drive("branch_in_ex", OrNode(["is_beqz_ex", "is_bnez_ex"]))
        add(bit_signal("pred", SignalKind.CSI, stage=0))
        ctl.add_cpr(PipeRegister(
            "pred", "branch_taken", stage=0, reset=0, enable="branch_in_ex",
        ))
        add(bit_signal("is_branch_if", stage=0))
        ctl.drive("is_branch_if", InSetNode(
            "op", {OPCODES["BEQZ"], OPCODES["BNEZ"]}
        ))
        add(Signal("predict_taken", (0, 1), SignalKind.CPO, stage=0))
        ctl.drive("predict_taken", AndNode(["is_branch_if", "pred"]))
        add(bit_signal("predicted_id", SignalKind.CSI, stage=1))
        add(bit_signal("predicted_ex", SignalKind.CSI, stage=2))
        add(bit_signal("not_predicted_ex", stage=2))
        ctl.drive("not_predicted_ex", NotNode("predicted_ex"))
        add(bit_signal("not_taken_ex", stage=2))
        ctl.drive("not_taken_ex", NotNode("branch_taken"))
        add(bit_signal("redirect_forward", SignalKind.CTI, stage=2))
        add(bit_signal("redirect_back", SignalKind.CTI, stage=2))
        ctl.drive("redirect_forward",
                  AndNode(["branch_taken", "not_predicted_ex"]))
        ctl.drive("redirect_back",
                  AndNode(["branch_in_ex", "not_taken_ex", "predicted_ex"]))
        add(bit_signal("squash", stage=2))
        ctl.drive("squash", OrNode(["redirect_forward", "redirect_back"]))
        squash_signal = "squash"
    else:
        squash_signal = "branch_taken"

    add(bit_signal("not_squash", stage=2))
    ctl.drive("not_squash", NotNode(squash_signal))
    add(bit_signal("stall", SignalKind.CTI, stage=1))
    ctl.drive("stall", AndNode(["stall_raw", "not_squash"]))
    add(bit_signal("not_stall", stage=1))
    ctl.drive("not_stall", NotNode("stall"))

    add(bit_signal("if_id_clear", stage=1))
    add(bit_signal("jump_advancing", stage=1))
    ctl.drive("jump_advancing", AndNode(["jump_in_id", "not_stall"]))
    ctl.drive("if_id_clear", OrNode([squash_signal, "jump_advancing"]))
    add(bit_signal("id_ex_clear", stage=2))
    ctl.drive("id_ex_clear", OrNode([squash_signal, "stall"]))
    if branch_prediction:
        ctl.add_cpr(PipeRegister(
            "predicted_id", "predict_taken", stage=1, reset=0,
            enable="not_stall", clear="if_id_clear", clear_value=0,
        ))
        ctl.add_cpr(PipeRegister(
            "predicted_ex", "predicted_id", stage=2, reset=0,
            clear="id_ex_clear", clear_value=0,
        ))

    # Forwarding: per-operand three-way select.
    add(bit_signal("dest_mem_nz", stage=3))
    add(bit_signal("dest_mem_z", stage=3))
    ctl.drive("dest_mem_z", EqConstNode("dest_mem", 0))
    ctl.drive("dest_mem_nz", NotNode("dest_mem_z"))
    add(bit_signal("dest_wb_nz", stage=4))
    add(bit_signal("dest_wb_z", stage=4))
    ctl.drive("dest_wb_z", EqConstNode("dest_wb", 0))
    ctl.drive("dest_wb_nz", NotNode("dest_wb_z"))

    for operand, src in (("a", "rs_ex"), ("b", "rt_ex")):
        add(bit_signal(f"{operand}_eq_mem", stage=2))
        add(bit_signal(f"{operand}_eq_wb", stage=2))
        ctl.drive(f"{operand}_eq_mem", EqNode("dest_mem", src))
        ctl.drive(f"{operand}_eq_wb", EqNode("dest_wb", src))
        add(bit_signal(f"{operand}_from_mem", stage=2))
        add(bit_signal(f"{operand}_from_wb", stage=2))
        ctl.drive(
            f"{operand}_from_mem",
            AndNode(["regwrite_mem", "dest_mem_nz", f"{operand}_eq_mem"]),
        )
        ctl.drive(
            f"{operand}_from_wb",
            AndNode(["regwrite_wb", "dest_wb_nz", f"{operand}_eq_wb"]),
        )
        add(field_signal(f"fwd_{operand}", (0, 1, 2), SignalKind.CTI, stage=2))
        ctl.drive(
            f"fwd_{operand}",
            TableNode(
                [f"{operand}_from_mem", f"{operand}_from_wb"],
                lambda m, w: 1 if m else (2 if w else 0),
                [(0, 1), (0, 1)],
            ),
        )

    # ------------------------------------------------------------------
    # Control outputs to the datapath
    # ------------------------------------------------------------------
    ctrl_outputs = [
        ("ext_sel", (0, 1), 1, InSetNode("op_id", ZERO_EXT_OPS)),
        ("fwd_a_ctl", (0, 1, 2), 2, BufNode("fwd_a")),
        ("fwd_b_ctl", (0, 1, 2), 2, BufNode("fwd_b")),
        ("alusrc", (0, 1), 2, BufNode("alusrc_ex")),
        ("alu_sel", ALUSEL_DOMAIN, 2, BufNode("alu_sel_ex")),
        ("setcc_sel", SETCC_DOMAIN, 2, BufNode("setcc_ex")),
        ("bytesel_ctl", (0, 1, 2, 3), 3, BufNode("addrlo")),
        ("loadext_ctl", LOADEXT_DOMAIN, 3, BufNode("loadext_mem")),
        ("memwrite_ctl", (0, 1), 3, BufNode("memwrite_mem")),
        ("mem_access_ctl", (0, 1), 3, OrNode(["memread_mem", "memwrite_mem"])),
        ("memtoreg_ctl", (0, 1), 4, BufNode("memtoreg_wb")),
        ("regwrite_g_ctl", (0, 1), 4, AndNode(["regwrite_wb", "dest_wb_nz"])),
    ]
    for name, domain, stage, node in ctrl_outputs:
        add(field_signal(name, domain, SignalKind.CTRL, stage=stage))
        ctl.drive(name, node)

    # ------------------------------------------------------------------
    # Control pipe registers
    # ------------------------------------------------------------------
    # IF -> ID: hold on stall, squash to the canonical NOP.
    ctl.add_cpr(PipeRegister(
        "op_id", "op", stage=1, reset=SQUASH_OP, enable="not_stall",
        clear="if_id_clear", clear_value=SQUASH_OP,
    ))
    for field in ("rs", "rt", "rd"):
        ctl.add_cpr(PipeRegister(
            f"{field}_id", field, stage=1, reset=0, enable="not_stall",
            clear="if_id_clear", clear_value=0,
        ))
    # ID -> EX: bubble on stall or squash.
    id_ex = [
        ("regwrite_ex", "regwrite_id"),
        ("memread_ex", "memread_id"),
        ("memwrite_ex", "memwrite_id"),
        ("memtoreg_ex", "memtoreg_id"),
        ("alusrc_ex", "alusrc_id"),
        ("is_beqz_ex", "is_beqz_id"),
        ("is_bnez_ex", "is_bnez_id"),
        ("alu_sel_ex", "alu_sel_id"),
        ("setcc_ex", "setcc_id"),
        ("loadext_ex", "loadext_id"),
        ("size_ex", "size_id"),
        ("dest_ex", "dest_id"),
        ("rs_ex", "rs_id"),
        ("rt_ex", "rt_id"),
    ]
    for q, d in id_ex:
        ctl.add_cpr(PipeRegister(
            q, d, stage=2, reset=0, clear="id_ex_clear", clear_value=0
        ))
    # EX -> MEM and MEM -> WB: free-running.
    for q, d in [
        ("regwrite_mem", "regwrite_ex"),
        ("memread_mem", "memread_ex"),
        ("memwrite_mem", "memwrite_ex"),
        ("memtoreg_mem", "memtoreg_ex"),
        ("loadext_mem", "loadext_ex"),
        ("size_mem", "size_ex"),
        ("dest_mem", "dest_ex"),
    ]:
        ctl.add_cpr(PipeRegister(q, d, stage=3, reset=0))
    for q, d in [
        ("regwrite_wb", "regwrite_mem"),
        ("memtoreg_wb", "memtoreg_mem"),
        ("dest_wb", "dest_mem"),
    ]:
        ctl.add_cpr(PipeRegister(q, d, stage=4, reset=0))

    ctl.validate()
    return ctl
