"""Multi-tenant admission control: token-bucket rates + concurrency caps.

Two independent gates protect a shared campaign server:

* **Rate** — each tenant owns a token bucket (``burst`` capacity,
  ``rate_per_second`` refill).  A submission with no token available is
  rejected immediately with :class:`RateLimited` (HTTP 429 + a
  ``Retry-After`` hint); nothing queues, so a misbehaving tenant cannot
  grow the queue without bound.
* **Concurrency** — admitted jobs queue FIFO, but a job only *starts*
  while its tenant is under ``per_tenant_concurrency`` and the server is
  under its global worker capacity.  The scheduler skips over capped
  tenants, so one tenant's backlog never blocks another tenant's jobs
  (no head-of-line blocking across tenants).

The governor is synchronous and clock-injectable — the asyncio server
calls it from the event loop thread only, and tests drive it with a fake
clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


class RateLimited(Exception):
    """Submission rejected by the tenant's token bucket."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is over its request rate "
            f"(retry in {retry_after:.1f}s)"
        )
        self.tenant = tenant
        self.retry_after = retry_after


@dataclass
class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``rate`` tokens/second."""

    capacity: float
    rate: float
    tokens: float
    updated: float

    def try_take(self, now: float) -> bool:
        self.tokens = min(
            self.capacity, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        if self.tokens >= 1.0 or self.rate <= 0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class TenantGovernor:
    """Per-tenant admission state shared by the whole server."""

    per_tenant_concurrency: int = 2
    rate_per_second: float = 5.0
    burst: float = 20.0
    clock: Callable[[], float] = time.monotonic

    _running: dict[str, int] = field(default_factory=dict)
    _buckets: dict[str, TokenBucket] = field(default_factory=dict)
    rejected: int = 0

    def admit(self, tenant: str) -> None:
        """Charge one token; raise :class:`RateLimited` when empty."""
        now = self.clock()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                capacity=self.burst, rate=self.rate_per_second,
                tokens=self.burst, updated=now,
            )
            self._buckets[tenant] = bucket
        if not bucket.try_take(now):
            self.rejected += 1
            raise RateLimited(tenant, bucket.seconds_until_token())

    def can_start(self, tenant: str) -> bool:
        return self._running.get(tenant, 0) < self.per_tenant_concurrency

    def started(self, tenant: str) -> None:
        self._running[tenant] = self._running.get(tenant, 0) + 1

    def finished(self, tenant: str) -> None:
        remaining = self._running.get(tenant, 0) - 1
        if remaining > 0:
            self._running[tenant] = remaining
        else:
            self._running.pop(tenant, None)

    def running_by_tenant(self) -> dict[str, int]:
        return dict(self._running)
