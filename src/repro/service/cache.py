"""Warm per-machine-identity campaign state shared across service requests.

Every accelerator the repo has grown — learned no-goods, CDCL
unjustifiability certificates (``repro.core.clauses``), the golden-trace
cache, the path-set cache, memoized justification answers, compiled
implication networks and datapath kernels — lives on (or hangs off) one
:class:`~repro.campaign.runner.CampaignBase` instance: the generator owns
the memo stores, and the compiled structures are cached on the processor's
netlist/controller objects the campaign pins.  A CLI invocation rebuilds
all of it per process and throws it away; the service instead keeps **one
campaign per machine identity** (``dlx``, ``mini``) alive for the life of
the process, so request N+1 starts with everything request N learned.

All the stores are outcome-transparent (see ``repro.core.nogoods``), so a
warm request returns byte-identical outcomes to a cold one — only the
hit/miss split moves, and :class:`WarmCacheRegistry` accounts for exactly
that: each lease snapshots the counters before and after the request, the
per-request delta lands on the job status, and ``/metrics`` exposes the
cumulative per-machine picture including ``warm_requests`` (requests that
started with a non-empty store — the cross-request wins the ISSUE asks
for).

Sharded runs (``jobs > 1``) still rebuild worker processes cold, but the
coordinator side of the pool *is* the warm campaign: its pooled no-good
store seeds every dispatch (``nogood_records_to_wire``), so learned
records cross both worker and request boundaries.

Concurrency: one lease per machine identity at a time (an ``asyncio``
lock), because the underlying stores are plain dicts mutated by the
worker thread.  Requests for different machines run concurrently;
requests for the same machine queue on the lock — the right trade for
caches whose value is being shared.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator

import asyncio

from repro.campaign.orchestrator import build_campaign
from repro.campaign.runner import CampaignBase


def generator_cache_counters(generator) -> dict[str, dict[str, int]]:
    """The cache counters of one TestGenerator, grouped by store."""
    return {
        "nogood": generator.nogoods.stats(),
        "golden": generator._golden.stats(),
        "path": generator._path_cache.stats(),
        "clause": generator.clauses.stats(),
        "activity": generator.activity.stats(),
    }


def _store_sizes(generator) -> dict[str, int]:
    return {
        "nogood_records": len(generator.nogoods),
        "golden_traces": len(generator._golden),
        "path_entries": len(generator._path_cache),
        "clause_records": len(generator.clauses),
        "activity_signals": len(generator.activity),
    }


#: Store-size counters: meaningful as absolutes, not as request deltas.
_OCCUPANCY_KEYS = frozenset({
    "entries", "records", "justify_entries", "signals",
})


def _counter_delta(
    before: dict[str, dict[str, int]], after: dict[str, dict[str, int]]
) -> dict[str, dict[str, int]]:
    return {
        store: {
            key: value - before.get(store, {}).get(key, 0)
            for key, value in counters.items()
            if key not in _OCCUPANCY_KEYS
        }
        for store, counters in after.items()
    }


@dataclass
class _WarmEntry:
    """One machine identity's long-lived campaign plus its accounting."""

    campaign: CampaignBase
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    requests: int = 0
    #: Requests that began with at least one warm store entry — i.e. that
    #: could (and, given identical work, do) hit caches populated by an
    #: earlier request.
    warm_requests: int = 0
    built_at: float = field(default_factory=time.time)
    last_request: dict[str, Any] | None = None


class WarmLease:
    """A held lease on one machine's warm campaign (see ``lease()``)."""

    def __init__(self, entry: _WarmEntry) -> None:
        self._entry = entry
        self.campaign = entry.campaign
        self.warm_start = _store_sizes(entry.campaign.generator)
        self._before = generator_cache_counters(entry.campaign.generator)

    def report(self) -> dict[str, Any]:
        """The per-request cache story: what was warm at the start and
        how much of it this request hit.  Attached to the job status."""
        after = generator_cache_counters(self.campaign.generator)
        return {
            "warm_start": dict(self.warm_start),
            "delta": _counter_delta(self._before, after),
        }


class WarmCacheRegistry:
    """Long-lived campaigns keyed by machine identity.

    ``lease(target, deadline_seconds)`` is an async context manager: it
    builds the campaign on first use (cold), re-arms its generator
    deadline, and yields a :class:`WarmLease` while holding the
    per-machine lock.  The campaign object — and with it the processor,
    whose netlist/controller carry the compiled kernels and implication
    network — is pinned for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._entries: dict[str, _WarmEntry] = {}
        self._build_lock = asyncio.Lock()
        self.cold_builds = 0

    async def _entry(self, target: str, deadline_seconds: float) -> _WarmEntry:
        """Get-or-build, with the cold build off the event loop.

        ``build_campaign`` compiles kernels and networks for seconds —
        run it in the default executor so /healthz, submissions and live
        streams stay responsive, with a lock (double-checked) so two
        concurrent first requests build once.
        """
        entry = self._entries.get(target)
        if entry is not None:
            return entry
        async with self._build_lock:
            entry = self._entries.get(target)
            if entry is None:
                campaign = await asyncio.get_running_loop().run_in_executor(
                    None, build_campaign, target, deadline_seconds
                )
                entry = _WarmEntry(campaign=campaign)
                self._entries[target] = entry
                self.cold_builds += 1
            return entry

    @contextlib.asynccontextmanager
    async def lease(
        self, target: str, deadline_seconds: float
    ) -> AsyncIterator[WarmLease]:
        entry = await self._entry(target, deadline_seconds)
        async with entry.lock:
            # The deadline is a per-request knob on the long-lived
            # generator; TG reads it at generate() time.
            entry.campaign.generator.deadline_seconds = deadline_seconds
            lease = WarmLease(entry)
            entry.requests += 1
            if any(lease.warm_start.values()):
                entry.warm_requests += 1
            try:
                yield lease
            finally:
                entry.last_request = lease.report()

    def targets(self) -> list[str]:
        return sorted(self._entries)

    def stats(self) -> dict[str, Any]:
        """Per-machine cumulative cache metrics for ``/metrics``."""
        out: dict[str, Any] = {}
        for target, entry in sorted(self._entries.items()):
            generator = entry.campaign.generator
            out[target] = {
                "requests": entry.requests,
                "warm_requests": entry.warm_requests,
                "store": _store_sizes(generator),
                "counters": generator_cache_counters(generator),
                "last_request": entry.last_request,
            }
        return out
