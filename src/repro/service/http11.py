"""Minimal asyncio HTTP/1.1 plumbing for the campaign service.

The service speaks plain HTTP/1.1 with JSON bodies and newline-delimited
JSON streams, using nothing beyond the standard library: requests are
parsed straight off the :class:`asyncio.StreamReader`, responses are
written with an explicit ``Content-Length`` or as ``Transfer-Encoding:
chunked`` (the live event stream).  Connections are one-request:
``Connection: close`` on every response keeps the state machine trivial
and costs nothing at campaign-shaped request rates.

This is deliberately not a framework — just the four pieces the server
needs: :func:`read_request`, :func:`send_json`, :func:`send_empty` and
:class:`ChunkedWriter`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote

#: Request bodies larger than this are rejected with 413.  Campaign and
#: fuzz requests are a few hundred bytes; nothing legitimate comes close.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: A single header section larger than this aborts the connection.
MAX_HEADER_LINES = 100

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Route-level failure that maps to one JSON error response."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.extra = extra

    def body(self) -> dict[str, Any]:
        return {"error": self.message, "status": self.status, **self.extra}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, Any]:
        """The JSON object body ({} for an empty body)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except ValueError:
            raise HttpError(400, "request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data


async def read_request(reader) -> Request | None:
    """Parse one request off ``reader``; ``None`` on a clean EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many header lines")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked request bodies are not supported")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "bad Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string))
    return Request(
        method=method,
        path=unquote(path),
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: str = "") -> bytes:
    reason = REASONS.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Connection: close\r\n{extra}"
    ).encode("latin-1")


async def send_json(
    writer, status: int, obj: Any, *, headers: dict[str, str] | None = None
) -> None:
    """One complete JSON response (sorted keys: stable bytes for tests)."""
    body = (json.dumps(obj, sort_keys=True) + "\n").encode()
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    writer.write(
        _head(status, "application/json",
              f"Content-Length: {len(body)}\r\n{extra}\r\n")
        + body
    )
    await writer.drain()


async def send_empty(writer, status: int = 204) -> None:
    writer.write(_head(status, "text/plain", "Content-Length: 0\r\n\r\n"))
    await writer.drain()


class ChunkedWriter:
    """``Transfer-Encoding: chunked`` response — the live event stream.

    One :meth:`write` call per event keeps each JSON line its own chunk,
    so clients reading line-by-line see events as they happen.
    """

    def __init__(self, writer) -> None:
        self._writer = writer
        self._started = False

    async def start(
        self, status: int = 200, content_type: str = "application/x-ndjson"
    ) -> None:
        self._writer.write(
            _head(status, content_type, "Transfer-Encoding: chunked\r\n\r\n")
        )
        await self._writer.drain()
        self._started = True

    async def write(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        await self._writer.drain()

    async def write_json_line(self, obj: Any) -> None:
        await self.write((json.dumps(obj, sort_keys=True) + "\n").encode())

    async def close(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()
