"""Service job model: one submitted campaign/fuzz request and its state.

A :class:`Job` is the unit the server queues, runs and reports on.  Its
event feed is the same structured stream every other consumer of
``repro.campaign.events`` sees: the orchestrator (or fuzz harness) emits
into a private :class:`EventStream`, the job's bounded :class:`EventLog`
records it, and each emission pokes the asyncio side (thread-safely) so
live ``/events`` streamers wake up.  The JSON report a finished campaign
job carries is built by the very same :func:`campaign_run_to_dict` the
CLI uses — which is what makes the HTTP-vs-CLI byte-identity guarantee a
code path, not a test aspiration.

Request validation happens here (:func:`campaign_config_from_request`,
:func:`fuzz_config_from_request`) so the HTTP layer stays dumb and the
same checks guard in-process submissions from tests.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any

import asyncio

from repro.campaign.events import EventLog, EventStream
from repro.campaign.orchestrator import (
    CAMPAIGN_TARGETS,
    CampaignOrchestrator,
    OrchestratorConfig,
    campaign_run_to_dict,
)
from repro.service.http11 import HttpError

JOB_KINDS = ("campaign", "fuzz")
TERMINAL_STATUSES = frozenset({
    "done", "failed", "interrupted", "cancelled"
})

#: Per-target defaults matching the CLI subcommand defaults, so a request
#: that omits them reproduces ``python -m repro table1`` / ``minipipe``.
DEFAULT_DEADLINES = {"dlx": 20.0, "mini": 10.0}
DEFAULT_SAMPLES = {"dlx": 6, "mini": 1}


def new_job_id(kind: str) -> str:
    return f"{kind}-{uuid.uuid4().hex[:12]}"


@dataclass
class Job:
    """One queued/running/finished service request."""

    id: str
    kind: str
    tenant: str
    request: dict[str, Any]
    max_events: int | None = None

    status: str = "queued"
    created_wall: float = field(default_factory=time.time)
    started_wall: float | None = None
    finished_wall: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    #: Per-request warm-cache story (``WarmLease.report()``).
    cache: dict[str, Any] | None = None
    checkpoint_path: str | None = None
    resumable: bool = False
    #: True once the server compacted this terminal job: the full result
    #: and event buffer are gone, status metadata remains queryable.
    evicted: bool = False
    _dropped_at_compaction: int = 0

    log: EventLog = field(init=False)
    stream: EventStream = field(init=False)
    #: The running orchestrator, for cooperative interruption on drain.
    orchestrator: CampaignOrchestrator | None = None
    _waiters: list[asyncio.Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.log = EventLog(max_events=self.max_events)
        self.stream = EventStream()
        self.stream.subscribe(self.log)

    # ------------------------------------------------------------------
    # Live-stream plumbing
    # ------------------------------------------------------------------
    def bump(self) -> None:
        """Wake every waiting streamer (event-loop thread only)."""
        for waiter in self._waiters:
            waiter.set()

    def attach_notifier(self, loop: asyncio.AbstractEventLoop) -> None:
        """Forward every event emission to the loop thread's waiters."""
        self.stream.subscribe(
            lambda _event: loop.call_soon_threadsafe(self.bump)
        )

    async def wait_for_change(self) -> None:
        waiter = asyncio.Event()
        self._waiters.append(waiter)
        try:
            await waiter.wait()
        finally:
            self._waiters.remove(waiter)

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def events_dropped(self) -> int:
        """Ring-buffer evictions (compaction clears are not drops)."""
        return (self._dropped_at_compaction if self.evicted
                else self.log.dropped)

    def interrupt(self) -> None:
        if self.orchestrator is not None:
            self.orchestrator.interrupt()

    def compact(self) -> None:
        """Release the result dict and event buffer of a terminal job.

        Status metadata (including ``events_seen``/``events_dropped``
        and the warm-cache report) stays; ``GET`` keeps answering with
        ``evicted: true`` and ``result: null``.
        """
        if self.evicted:
            return
        self._dropped_at_compaction = self.log.dropped
        self.evicted = True
        self.result = None
        self.log.clear()

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_status_dict(self, include_result: bool = True) -> dict[str, Any]:
        status: dict[str, Any] = {
            "kind": "service-job",
            "id": self.id,
            "job_kind": self.kind,
            "tenant": self.tenant,
            "status": self.status,
            "created_wall": self.created_wall,
            "started_wall": self.started_wall,
            "finished_wall": self.finished_wall,
            "request": dict(self.request),
            "events_seen": self.log.seen,
            "events_dropped": self.events_dropped,
            "evicted": self.evicted,
            "resumable": self.resumable,
            "checkpoint_path": self.checkpoint_path,
            "cache": self.cache,
            "error": self.error,
        }
        if include_result:
            status["result"] = self.result
        return status


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------
def _field(request: dict, name: str, kind, default):
    value = request.get(name, default)
    if value is default:
        return default
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise HttpError(400, f"bad field {name!r}: {value!r}") from None


def campaign_config_from_request(
    request: dict[str, Any],
    checkpoint_path: str | None,
    resume: bool,
) -> OrchestratorConfig:
    """Validate a ``POST /v1/campaigns`` body into an orchestrator config.

    Mirrors the CLI flag set exactly — same knobs, same defaults — so a
    request dict and an argv produce the same run.
    """
    target = request.get("target", "dlx")
    if target not in CAMPAIGN_TARGETS:
        raise HttpError(400, f"unknown campaign target {target!r}")
    deadline = _field(
        request, "deadline", float, DEFAULT_DEADLINES[target]
    )
    jobs = _field(request, "jobs", int, 1)
    if jobs < 1:
        raise HttpError(400, "jobs must be >= 1")
    try:
        return OrchestratorConfig(
            target=target,
            jobs=jobs,
            deadline_seconds=deadline,
            error_simulation=bool(request.get("dropping", False)),
            checkpoint_path=checkpoint_path,
            resume=resume,
            profile=bool(request.get("profile", False)),
            restarts=bool(request.get("restarts", False)),
            deadline_bank=bool(request.get("deadline_bank", False)),
        )
    except ValueError as exc:
        raise HttpError(400, str(exc)) from None


def select_campaign_errors(campaign, target: str, request: dict[str, Any]):
    """The error list a campaign request targets.

    ``errors`` (a list of ``repro.fuzz.minimize`` spec strings, e.g.
    ``bus-ssl:alu_add.y:0:1``) wins when present — the single-error "TG
    request" shape; otherwise the CLI's default enumeration with the
    CLI's ``--sample`` semantics.
    """
    from repro.fuzz.minimize import parse_error_spec

    specs = request.get("errors")
    if specs:
        if not isinstance(specs, list):
            raise HttpError(400, "errors must be a list of spec strings")
        try:
            return [
                parse_error_spec(spec, campaign.processor.datapath)
                for spec in specs
            ]
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
    errors = campaign.default_errors(
        **({"max_bits_per_net": 4} if target == "dlx" else {})
    )
    sample = _field(request, "sample", int, DEFAULT_SAMPLES[target])
    if sample > 1:
        errors = errors[::sample]
    return errors


def run_campaign_job(
    job: Job, orchestrator: CampaignOrchestrator, errors
) -> dict[str, Any]:
    """Blocking campaign execution (runs on the server's worker thread).

    Returns the same ``campaign-run`` dict the CLI writes with
    ``--json`` — config, report, full event list.
    """
    report = orchestrator.run(errors)
    run = campaign_run_to_dict(orchestrator.config, report, job.log.events)
    return run


def fuzz_config_from_request(request: dict[str, Any]):
    """Validate a ``POST /v1/fuzz`` body into Fuzz/Matrix config(s)."""
    from repro.fuzz import FuzzConfig, MatrixConfig

    common = dict(
        machine=request.get("machine", "mini"),
        seed=_field(request, "seed", int, 1),
        length=_field(request, "length", int, 12),
        lanes=_field(request, "lanes", int, None),
    )
    try:
        if request.get("matrix"):
            return MatrixConfig(
                programs=_field(request, "programs", int, 16),
                sample=_field(request, "sample", int, 1),
                max_bits_per_net=(
                    4 if common["machine"].startswith("dlx") else None
                ),
                **common,
            )
        return FuzzConfig(
            iters=_field(request, "iters", int, 200),
            jobs=_field(request, "jobs", int, 1),
            budget_seconds=_field(request, "budget_seconds", float, None),
            plant=request.get("plant"),
            max_minimize=_field(request, "max_minimize", int, 5),
            **common,
        )
    except ValueError as exc:
        raise HttpError(400, str(exc)) from None


def run_fuzz_job(job: Job, config) -> dict[str, Any]:
    """Blocking fuzz / conformance-matrix execution (worker thread)."""
    from repro.fuzz import (
        FuzzConfig,
        machine_adapter,
        matrix_artifact,
        run_fuzz,
        run_matrix,
    )

    if isinstance(config, FuzzConfig):
        report = run_fuzz(config, events=job.stream)
        return {
            "kind": "fuzz-run",
            "report": report.to_dict(machine_adapter(config.machine).build()),
            "events": job.log.to_dicts(),
        }
    fragment = run_matrix(config, events=job.stream)
    return {
        "kind": "matrix-run",
        "artifact": matrix_artifact({config.machine: fragment}),
        "events": job.log.to_dicts(),
    }
