"""TG-as-a-service: the persistent asyncio campaign server.

One long-lived process serves test-generation campaigns, differential
fuzzing and conformance matrices over HTTP/1.1 + JSON, keeping every
search accelerator warm across requests (:mod:`repro.service.cache`).

Endpoints::

    POST /v1/campaigns            submit a campaign (202 + job id)
    GET  /v1/campaigns/{id}       job status; full JSON report when done
    GET  /v1/campaigns/{id}/events   live NDJSON event stream (chunked);
                                     ?since=SEQ resumes after that seq
    POST /v1/fuzz                 submit a fuzz run (or matrix=true)
    GET  /v1/fuzz/{id}[/events]   same surface for fuzz jobs
    GET  /v1/jobs/{id}[/events]   kind-agnostic aliases
    GET  /healthz                 liveness + draining flag
    GET  /metrics                 JSON counters (requests, queue, workers,
                                  per-phase CPU, warm-cache hit rates)
    POST /v1/drain                begin graceful drain (also on SIGTERM)

Execution model: the asyncio loop owns all bookkeeping; each admitted job
runs its (blocking) orchestrator on a bounded thread-pool slot, and the
orchestrator may itself shard across processes (``jobs`` in the request,
exactly like ``--jobs``).  Draining interrupts running campaigns
cooperatively — they flush their checkpoint tail, emit
``campaign-interrupted``, and report ``resumable`` so a client can
resubmit with ``{"resume": "<job id>"}`` after a restart.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import signal
import sys
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import asyncio

from repro.campaign.events import EVENT_SCHEMA_VERSION
from repro.campaign.orchestrator import CampaignOrchestrator
from repro.service.cache import WarmCacheRegistry
from repro.service.http11 import (
    ChunkedWriter,
    HttpError,
    Request,
    read_request,
    send_json,
)
from repro.service.jobs import (
    Job,
    campaign_config_from_request,
    fuzz_config_from_request,
    new_job_id,
    run_campaign_job,
    run_fuzz_job,
    select_campaign_errors,
)
from repro.service.queueing import RateLimited, TenantGovernor


def _batched_counters() -> dict:
    """Process-wide batched-kernel profile counters for ``/metrics``.

    Lane-batched fuzz/matrix jobs run on this process's worker threads
    (multiprocessing shards fold their deltas back in), so the module
    counters are the service totals.
    """
    from repro.datapath.batched import counters_snapshot

    return counters_snapshot()


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs (all CLI-settable)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (tests); CLI default is 8321
    state_dir: str = "repro-service-state"
    max_workers: int = 2
    per_tenant_concurrency: int = 2
    rate_per_second: float = 5.0
    burst: float = 20.0
    #: Ring-buffer bound per job's event log (None = unbounded).
    max_events_per_job: int | None = 20000
    #: Finished jobs that keep their full result + event buffer.  Older
    #: terminal jobs are compacted to status metadata; metadata older
    #: than 4x this cap is forgotten entirely (GET returns 404).
    max_finished_jobs: int = 64
    drain_grace_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.per_tenant_concurrency < 1:
            raise ValueError("per_tenant_concurrency must be >= 1")
        if self.max_finished_jobs < 1:
            raise ValueError("max_finished_jobs must be >= 1")


class CampaignServer:
    """The service: routing, queueing, job execution, metrics."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = WarmCacheRegistry()
        self.governor = TenantGovernor(
            per_tenant_concurrency=self.config.per_tenant_concurrency,
            rate_per_second=self.config.rate_per_second,
            burst=self.config.burst,
        )
        self.jobs: dict[str, Job] = {}
        #: Terminal jobs, oldest first — the retention window (_retire).
        self._finished_order: deque[str] = deque()
        self.jobs_compacted = 0
        self.jobs_forgotten = 0
        #: [seen, dropped] totals of forgotten jobs, so the /metrics
        #: event counters stay monotonic across forgetting.
        self._events_forgotten = [0, 0]
        self._queue: deque[Job] = deque()
        self._running: set[str] = set()
        self._tasks: dict[str, asyncio.Task] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-job",
        )
        self._server: asyncio.base_events.Server | None = None
        self.draining = False
        self.started_wall = time.time()
        self._requests_by_endpoint: dict[str, int] = {}
        self.rejected_draining = 0
        self._phase_cpu: dict[str, float] = {}
        #: Lifetime restart-search / deadline-bank totals across finished
        #: campaign jobs (additive, like _phase_cpu).
        self._restarts_total = 0
        self._bank_totals: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        os.makedirs(self._checkpoint_dir(), exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> dict[str, Any]:
        """Stop admitting, cancel the queue, interrupt running campaigns,
        and wait (bounded) for them to flush checkpoints and finish."""
        self.draining = True
        cancelled = []
        while self._queue:
            job = self._queue.popleft()
            job.status = "cancelled"
            job.finished_wall = time.time()
            job.bump()
            self._retire(job)
            cancelled.append(job.id)
        for job_id in list(self._running):
            self.jobs[job_id].interrupt()
        pending = [t for t in self._tasks.values() if not t.done()]
        if pending:
            await asyncio.wait(
                pending, timeout=self.config.drain_grace_seconds
            )
        return {
            "cancelled": cancelled,
            "interrupted": [
                job.id for job in self.jobs.values()
                if job.status == "interrupted"
            ],
            "still_running": sorted(self._running),
        }

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def _checkpoint_dir(self) -> str:
        return os.path.join(self.config.state_dir, "checkpoints")

    def _checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self._checkpoint_dir(), f"{job_id}.jsonl")

    # ------------------------------------------------------------------
    # Connection handling / routing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except HttpError as exc:  # malformed request: answer, close
                await send_json(writer, exc.status, exc.body())
                return
            if request is None:
                return
            try:
                await self._route(request, writer)
            except HttpError as exc:
                await send_json(writer, exc.status, exc.body())
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # route bug: report, don't die
                await send_json(
                    writer, 500,
                    {"error": f"internal error: {exc!r}", "status": 500},
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: Request, writer) -> None:
        method, path = request.method, request.path.rstrip("/")
        parts = [p for p in path.split("/") if p]
        self._requests_by_endpoint[f"{method} /{'/'.join(parts[:2])}"] = (
            self._requests_by_endpoint.get(
                f"{method} /{'/'.join(parts[:2])}", 0
            ) + 1
        )
        if parts == ["healthz"] and method == "GET":
            await send_json(writer, 200, self._healthz())
            return
        if parts == ["metrics"] and method == "GET":
            await send_json(writer, 200, self.metrics())
            return
        if parts == ["v1", "drain"] and method == "POST":
            await send_json(writer, 200, await self.drain())
            return
        if parts == ["v1", "campaigns"] and method == "POST":
            await self._submit(request, writer, kind="campaign")
            return
        if parts == ["v1", "fuzz"] and method == "POST":
            await self._submit(request, writer, kind="fuzz")
            return
        if (
            len(parts) in (3, 4)
            and parts[0] == "v1"
            and parts[1] in ("campaigns", "fuzz", "jobs")
            and method == "GET"
        ):
            job = self.jobs.get(parts[2])
            wanted = {"campaigns": "campaign", "fuzz": "fuzz"}.get(parts[1])
            if job is None or (wanted and job.kind != wanted):
                raise HttpError(404, f"no such job {parts[2]!r}")
            if len(parts) == 3:
                await send_json(writer, 200, job.to_status_dict())
                return
            if parts[3] == "events":
                await self._stream_events(job, request, writer)
                return
        raise HttpError(404, f"no route for {method} {request.path}")

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": time.time() - self.started_wall,
            "jobs_running": len(self._running),
            "queue_depth": len(self._queue),
        }

    # ------------------------------------------------------------------
    # Submission + scheduling
    # ------------------------------------------------------------------
    async def _submit(self, request: Request, writer, kind: str) -> None:
        if self.draining:
            self.rejected_draining += 1
            raise HttpError(503, "server is draining; resubmit elsewhere")
        body = request.json()
        tenant = str(
            body.get("tenant")
            or request.headers.get("x-tenant")
            or "default"
        )
        try:
            self.governor.admit(tenant)
        except RateLimited as exc:
            raise HttpError(
                429, str(exc), retry_after=round(exc.retry_after, 3)
            ) from None
        job = Job(
            id=new_job_id(kind),
            kind=kind,
            tenant=tenant,
            request=body,
            max_events=self.config.max_events_per_job,
        )
        # Validate now so a bad request fails at submit time, not in the
        # worker; campaign checkpoint/resume paths are server-assigned.
        if kind == "campaign":
            resume_of = body.get("resume")
            if resume_of is not None:
                job.checkpoint_path = self._checkpoint_path(str(resume_of))
                if not os.path.exists(job.checkpoint_path):
                    raise HttpError(
                        404, f"no checkpoint for job {resume_of!r}"
                    )
            elif body.get("checkpoint"):
                job.checkpoint_path = self._checkpoint_path(job.id)
            campaign_config_from_request(
                body, job.checkpoint_path, resume=resume_of is not None
            )
        else:
            fuzz_config_from_request(body)
        job.attach_notifier(asyncio.get_running_loop())
        self.jobs[job.id] = job
        self._queue.append(job)
        self._maybe_start()
        base = {"campaign": "campaigns", "fuzz": "fuzz"}[kind]
        await send_json(
            writer, 202,
            {
                "id": job.id,
                "status": job.status,
                "tenant": tenant,
                "links": {
                    "self": f"/v1/{base}/{job.id}",
                    "events": f"/v1/{base}/{job.id}/events",
                },
            },
        )

    def _maybe_start(self) -> None:
        """FIFO scheduling, skipping tenants at their concurrency cap."""
        while len(self._running) < self.config.max_workers:
            eligible = next(
                (
                    job for job in self._queue
                    if self.governor.can_start(job.tenant)
                ),
                None,
            )
            if eligible is None:
                return
            self._queue.remove(eligible)
            self.governor.started(eligible.tenant)
            self._running.add(eligible.id)
            eligible.status = "starting"
            task = asyncio.get_running_loop().create_task(
                self._run_job(eligible)
            )
            self._tasks[eligible.id] = task

    async def _run_job(self, job: Job) -> None:
        job.started_wall = time.time()
        try:
            if job.kind == "campaign":
                await self._run_campaign(job)
            else:
                await self._run_fuzz(job)
        except HttpError as exc:
            job.status = "failed"
            job.error = exc.message
        except Exception as exc:
            job.status = "failed"
            job.error = repr(exc)
        finally:
            job.finished_wall = time.time()
            job.orchestrator = None
            self._running.discard(job.id)
            self._tasks.pop(job.id, None)
            self.governor.finished(job.tenant)
            job.bump()
            self._retire(job)
            self._maybe_start()

    def _retire(self, job: Job) -> None:
        """Bound the memory terminal jobs hold on a long-lived server.

        The newest ``max_finished_jobs`` terminal jobs keep their full
        result dict and event buffer; jobs pushed past that window are
        compacted to status metadata (result and events released,
        ``evicted`` flagged); metadata pushed past 4x the window is
        dropped from ``jobs`` entirely.
        """
        self._finished_order.append(job.id)
        full_cap = self.config.max_finished_jobs
        while len(self._finished_order) > 4 * full_cap:
            old = self.jobs.pop(self._finished_order.popleft(), None)
            if old is not None:
                self.jobs_forgotten += 1
                self._events_forgotten[0] += old.log.seen
                self._events_forgotten[1] += old.events_dropped
        for job_id in list(self._finished_order)[:-full_cap]:
            old = self.jobs.get(job_id)
            if old is not None and not old.evicted:
                old.compact()
                self.jobs_compacted += 1

    async def _run_campaign(self, job: Job) -> None:
        body = job.request
        resume = body.get("resume") is not None
        config = campaign_config_from_request(
            body, job.checkpoint_path, resume=resume
        )
        loop = asyncio.get_running_loop()
        async with self.registry.lease(
            config.target, config.deadline_seconds
        ) as lease:
            orchestrator = CampaignOrchestrator(
                config, events=job.stream, campaign=lease.campaign
            )
            job.orchestrator = orchestrator
            if self.draining:  # drained between admit and start
                orchestrator.interrupt()
            # Error enumeration walks the whole netlist — off the loop,
            # so /healthz and streams stay responsive while it runs.
            errors = await loop.run_in_executor(
                None,
                functools.partial(
                    select_campaign_errors, lease.campaign, config.target,
                    body,
                ),
            )
            job.status = "running"
            job.bump()
            run = await loop.run_in_executor(
                self._executor,
                functools.partial(run_campaign_job, job, orchestrator,
                                  errors),
            )
            job.cache = lease.report()
        job.result = run
        for outcome in run["report"]["outcomes"]:
            for phase, seconds in outcome.get("phase_seconds", {}).items():
                self._phase_cpu[phase] = (
                    self._phase_cpu.get(phase, 0.0) + seconds
                )
            self._restarts_total += outcome.get("restarts", 0) or 0
        for key, value in (run["report"].get("bank") or {}).items():
            if key == "balance_seconds":
                continue  # a per-campaign snapshot, not additive
            self._bank_totals[key] = self._bank_totals.get(key, 0) + value
        if run["report"].get("interrupted"):
            job.status = "interrupted"
            job.resumable = job.checkpoint_path is not None
        else:
            job.status = "done"

    async def _run_fuzz(self, job: Job) -> None:
        config = fuzz_config_from_request(job.request)
        job.status = "running"
        job.bump()
        loop = asyncio.get_running_loop()
        job.result = await loop.run_in_executor(
            self._executor, functools.partial(run_fuzz_job, job, config)
        )
        job.status = "done"

    # ------------------------------------------------------------------
    # Event streaming
    # ------------------------------------------------------------------
    async def _stream_events(
        self, job: Job, request: Request, writer
    ) -> None:
        try:
            since = int(request.query.get("since", -1))
        except ValueError:
            raise HttpError(400, "bad since= (want an integer seq)")
        chunked = ChunkedWriter(writer)
        await chunked.start()
        try:
            while True:
                for event in job.log.since(since):
                    await chunked.write_json_line(event.to_dict())
                    since = event.seq
                if job.finished:
                    break
                await job.wait_for_change()
        finally:
            await chunked.close()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        jobs_by_status: dict[str, int] = {}
        for job in self.jobs.values():
            jobs_by_status[job.status] = jobs_by_status.get(job.status, 0) + 1
        queue_by_tenant: dict[str, int] = {}
        for job in self._queue:
            queue_by_tenant[job.tenant] = queue_by_tenant.get(job.tenant, 0) + 1
        busy = len(self._running)
        return {
            "kind": "service-metrics",
            "event_schema_version": EVENT_SCHEMA_VERSION,
            "uptime_seconds": time.time() - self.started_wall,
            "draining": self.draining,
            "requests": {
                "total": sum(self._requests_by_endpoint.values()),
                "by_endpoint": dict(sorted(
                    self._requests_by_endpoint.items()
                )),
                "rate_limited": self.governor.rejected,
                "rejected_draining": self.rejected_draining,
            },
            "jobs": {
                "total": len(self.jobs) + self.jobs_forgotten,
                "retained": len(self.jobs),
                "compacted": self.jobs_compacted,
                "forgotten": self.jobs_forgotten,
                "by_status": jobs_by_status,
            },
            "queue": {
                "depth": len(self._queue),
                "by_tenant": queue_by_tenant,
                "running_by_tenant": self.governor.running_by_tenant(),
            },
            "workers": {
                "capacity": self.config.max_workers,
                "busy": busy,
                "utilization": busy / self.config.max_workers,
            },
            "phase_cpu_seconds": dict(sorted(self._phase_cpu.items())),
            "restarts": self._restarts_total,
            "deadline_bank": dict(sorted(self._bank_totals.items())),
            "caches": self.registry.stats(),
            "batched": _batched_counters(),
            "events": {
                "emitted": self._events_forgotten[0]
                + sum(j.log.seen for j in self.jobs.values()),
                "dropped": self._events_forgotten[1]
                + sum(j.events_dropped for j in self.jobs.values()),
            },
        }


# ---------------------------------------------------------------------------
# ``repro serve``
# ---------------------------------------------------------------------------
def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="listen port (default 8321; 0 = pick free)")
    parser.add_argument("--state-dir", default="repro-service-state",
                        help="checkpoint/state directory")
    parser.add_argument("--max-workers", type=int, default=2,
                        help="concurrent jobs server-wide (default 2)")
    parser.add_argument("--tenant-concurrency", type=int, default=2,
                        help="concurrent jobs per tenant (default 2)")
    parser.add_argument("--rate", type=float, default=5.0,
                        help="submissions/second/tenant (default 5)")
    parser.add_argument("--burst", type=float, default=20.0,
                        help="submission burst per tenant (default 20)")
    parser.add_argument("--max-events", type=int, default=20000,
                        help="event ring-buffer size per job (default "
                             "20000; 0 = unbounded)")
    parser.add_argument("--max-finished-jobs", type=int, default=64,
                        help="finished jobs kept with full results "
                             "(default 64); older ones shrink to status "
                             "metadata, then age out")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds to wait for interrupted jobs on "
                             "drain (default 30)")


def config_from_args(args) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        max_workers=args.max_workers,
        per_tenant_concurrency=args.tenant_concurrency,
        rate_per_second=args.rate,
        burst=args.burst,
        max_events_per_job=args.max_events or None,
        max_finished_jobs=args.max_finished_jobs,
        drain_grace_seconds=args.drain_grace,
    )


async def _serve(config: ServiceConfig) -> int:
    server = CampaignServer(config)
    await server.start()
    print(f"repro campaign service listening on {server.url} "
          f"(state: {config.state_dir})", file=sys.stderr, flush=True)
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except NotImplementedError:  # non-Unix event loop
            pass
    serve_task = loop.create_task(server.serve_forever())
    await shutdown.wait()
    print("repro service: draining ...", file=sys.stderr, flush=True)
    summary = await server.drain()
    serve_task.cancel()
    await server.stop()
    print(f"repro service: drained "
          f"({json.dumps(summary, sort_keys=True)})",
          file=sys.stderr, flush=True)
    return 0


def serve_main(args) -> int:
    """Entry point behind ``python -m repro serve``."""
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return asyncio.run(_serve(config))
