"""Synchronous stdlib client for the campaign service.

Used by the test suite, the CI smoke probe and the CLI's ``--remote URL``
passthrough.  One ``http.client`` connection per call (the server closes
connections after each response); the event stream reads the chunked
NDJSON response line by line, yielding each event dict as it arrives.
"""

from __future__ import annotations

import http.client
import json
import sys
import time
from typing import Any, Iterator
from urllib.parse import urlsplit


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 body: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.body = body or {}


class ServiceClient:
    """Talk to a :class:`repro.service.server.CampaignServer`."""

    def __init__(
        self,
        base_url: str,
        tenant: str | None = None,
        timeout: float = 300.0,
    ) -> None:
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r} "
                             "(the service speaks plain http)")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        return headers

    def _json(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        connection = self._connect()
        try:
            payload = json.dumps(body).encode() if body is not None else None
            connection.request(method, path, body=payload,
                               headers=self._headers())
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except ValueError:
                data = {}
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    data.get("error", raw.decode(errors="replace")),
                    data,
                )
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._json("GET", "/metrics")

    def drain(self) -> dict[str, Any]:
        return self._json("POST", "/v1/drain")

    def submit_campaign(self, **request: Any) -> dict[str, Any]:
        return self._json("POST", "/v1/campaigns", request)

    def submit_fuzz(self, **request: Any) -> dict[str, Any]:
        return self._json("POST", "/v1/fuzz", request)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, since: int = -1
    ) -> Iterator[dict[str, Any]]:
        """Stream a job's events live; ends when the job finishes.

        Yields serialized event dicts (``schema_version``/``seq``
        included).  Pass the last seen ``seq`` as ``since`` to resume a
        dropped stream without replaying.
        """
        connection = self._connect()
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events?since={since}",
                headers=self._headers(),
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    data = json.loads(raw)
                except ValueError:
                    data = {}
                raise ServiceError(
                    response.status, data.get("error", "stream failed"),
                    data,
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, poll_seconds: float = 0.1) -> dict[str, Any]:
        """Block until ``job_id`` reaches a terminal status; return it."""
        from repro.service.jobs import TERMINAL_STATUSES

        while True:
            status = self.job(job_id)
            if status["status"] in TERMINAL_STATUSES:
                return status
            # The stream ends when the job does; draining it is the
            # cheap way to sleep exactly as long as needed.
            for _ in self.events(job_id, since=status["events_seen"]):
                pass
            time.sleep(poll_seconds)


# ---------------------------------------------------------------------------
# CLI ``--remote`` passthrough
# ---------------------------------------------------------------------------
def run_remote_campaign(args, target: str, title: str | None) -> int:
    """Run a ``table1``/``minipipe`` invocation against a remote service.

    Mirrors the local flow: live progress on stderr (rendered from the
    streamed events), the Table-1 summary on stdout, ``--json`` writing
    the server's run report verbatim.
    """
    from repro.campaign.events import ProgressRenderer, event_from_dict
    from repro.campaign.serialize import report_from_dict, save_json

    if args.checkpoint or args.resume:
        # Service checkpoints are server-side, keyed by job id — a local
        # --checkpoint path / --resume flag cannot be honoured remotely.
        print("error: --checkpoint/--resume do not combine with --remote "
              "(the service checkpoints server-side: submit with "
              '{"checkpoint": true}, resume with {"resume": "<job id>"} '
              "via the API)", file=sys.stderr)
        return 2
    client = ServiceClient(args.remote)
    request: dict[str, Any] = {
        "target": target,
        "sample": args.sample,
        "deadline": args.deadline,
        "jobs": args.jobs,
        "dropping": args.dropping,
        "profile": args.profile,
        "restarts": args.restarts,
        "deadline_bank": args.deadline_bank,
    }
    try:
        submitted = client.submit_campaign(**request)
    except (ServiceError, OSError) as exc:
        print(f"error: cannot submit to {args.remote}: {exc}",
              file=sys.stderr)
        return 2
    job_id = submitted["id"]
    print(f"submitted campaign {job_id} to {args.remote}")
    renderer = ProgressRenderer(sys.stderr)
    try:
        for event in client.events(job_id):
            renderer(event_from_dict(event))
        status = client.wait(job_id)
    except (ServiceError, OSError) as exc:
        print(f"error: lost remote job {job_id}: {exc}", file=sys.stderr)
        return 2
    if status["status"] == "failed" or status.get("result") is None:
        print(f"error: remote job {job_id} "
              f"{status['status']}: {status.get('error')}", file=sys.stderr)
        return 1
    run = status["result"]
    report = report_from_dict(run["report"])
    print(report.table1(title) if title else report.table1())
    if args.dropping:
        dropped = sum(1 for o in report.outcomes if o.dropped_by)
        print(f"(fault dropping skipped TG for {dropped} errors)")
    if args.json:
        try:
            save_json(run, args.json)
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote JSON run report to {args.json}")
    return 130 if status["status"] == "interrupted" else 0
