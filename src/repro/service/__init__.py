"""TG-as-a-service: a persistent asyncio campaign server with warm caches.

The batch CLI rebuilds every accelerator per process; the service keeps
them hot across requests instead (see ``docs/SERVICE.md``):

* :class:`~repro.service.server.CampaignServer` — asyncio HTTP/1.1 JSON
  endpoints (``/v1/campaigns``, ``/v1/fuzz``, live event streams,
  ``/healthz``, ``/metrics``), multi-tenant queueing, graceful drain.
* :class:`~repro.service.cache.WarmCacheRegistry` — one long-lived
  campaign per machine identity, so learned no-goods, golden traces,
  path-set entries and compiled kernels survive across requests.
* :class:`~repro.service.client.ServiceClient` — stdlib client used by
  tests, CI and the CLI's ``--remote URL`` passthrough.
"""

from repro.service.cache import WarmCacheRegistry, WarmLease
from repro.service.client import ServiceClient, ServiceError
from repro.service.http11 import HttpError
from repro.service.jobs import Job
from repro.service.queueing import RateLimited, TenantGovernor, TokenBucket
from repro.service.server import CampaignServer, ServiceConfig

__all__ = [
    "CampaignServer",
    "HttpError",
    "Job",
    "RateLimited",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TenantGovernor",
    "TokenBucket",
    "WarmCacheRegistry",
    "WarmLease",
]
