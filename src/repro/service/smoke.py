"""Service smoke probe: HTTP-vs-CLI identity + health/metrics checks.

CI boots ``python -m repro serve`` and points this module at it::

    python -m repro.service.smoke --url http://127.0.0.1:8321 \\
        --target mini --sample 30 --events-out events.ndjson

The probe:

1. checks ``/healthz`` and ``/metrics``,
2. submits a campaign over HTTP, streaming its events to
   ``--events-out`` (the CI artifact),
3. runs the *same* campaign through the CLI (in-process) with
   ``--json``, and asserts the two run reports are byte-identical in
   canonical form (timing stripped — see
   ``repro.campaign.serialize.canonical_campaign_run``),
4. submits the identical request a second time and asserts the warm
   caches produced cross-request hits without changing outcomes.

Exit 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile


def _canonical_bytes(run: dict, include_cache_traffic: bool = True) -> bytes:
    from repro.campaign.serialize import canonical_campaign_run

    return json.dumps(
        canonical_campaign_run(
            run, include_cache_traffic=include_cache_traffic
        ),
        sort_keys=True,
    ).encode()


def main(argv: list[str] | None = None) -> int:
    from repro.__main__ import main as repro_main
    from repro.service.client import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", required=True)
    parser.add_argument("--target", default="mini",
                        choices=("mini", "dlx"))
    parser.add_argument("--sample", type=int, default=30)
    parser.add_argument("--deadline", type=float, default=10.0)
    parser.add_argument("--events-out", default=None,
                        help="write the streamed events (NDJSON) here")
    args = parser.parse_args(argv)

    client = ServiceClient(args.url, tenant="smoke")
    failures: list[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        line = f"[{'ok' if ok else 'FAIL'}] {name}"
        if detail and not ok:
            line += f": {detail}"
        print(line, flush=True)
        if not ok:
            failures.append(name)

    health = client.healthz()
    check("healthz", health.get("status") == "ok", json.dumps(health))
    metrics = client.metrics()
    check("metrics", metrics.get("kind") == "service-metrics")

    request = dict(target=args.target, sample=args.sample,
                   deadline=args.deadline)

    def run_remote(events_path: str | None):
        job_id = client.submit_campaign(**request)["id"]
        n_events = 0
        sink = open(events_path, "w") if events_path else None
        try:
            for event in client.events(job_id):
                n_events += 1
                if sink:
                    sink.write(json.dumps(event, sort_keys=True) + "\n")
        finally:
            if sink:
                sink.close()
        status = client.wait(job_id)
        return status, n_events

    try:
        status1, n_events = run_remote(args.events_out)
    except ServiceError as exc:
        check("campaign over HTTP", False, str(exc))
        return 1
    check("campaign over HTTP",
          status1["status"] == "done" and status1["result"] is not None,
          json.dumps({k: status1[k] for k in ("status", "error")}))
    check("event stream nonempty", n_events > 0, f"{n_events} events")

    # CLI reference run (same knobs) in this process.
    command = "table1" if args.target == "dlx" else "minipipe"
    with tempfile.TemporaryDirectory() as tmp:
        cli_json = os.path.join(tmp, "cli.json")
        code = repro_main([
            command, "--sample", str(args.sample),
            "--deadline", str(args.deadline), "--json", cli_json,
        ])
        check("CLI reference run", code == 0, f"exit {code}")
        with open(cli_json, encoding="utf-8") as handle:
            cli_run = json.load(handle)

    if status1["result"] is not None:
        check(
            "HTTP report byte-identical to CLI (canonical)",
            _canonical_bytes(status1["result"])
            == _canonical_bytes(cli_run),
        )

    # Warm second request: cross-request cache hits, same outcomes.
    status2, _ = run_remote(None)
    cache2 = status2.get("cache") or {}
    warm = cache2.get("warm_start", {})
    delta = cache2.get("delta", {})
    check("request 2 started warm",
          any(warm.values()), json.dumps(warm))
    warm_hits = sum(d.get("hits", 0) for d in delta.values())
    check("request 2 cache hits > 0", warm_hits > 0, json.dumps(delta))
    if status1["result"] is not None and status2.get("result") is not None:
        check(
            "warm outcomes identical (canonical, cache traffic aside)",
            _canonical_bytes(status1["result"], include_cache_traffic=False)
            == _canonical_bytes(status2["result"],
                                include_cache_traffic=False),
        )
    metrics = client.metrics()
    caches = metrics.get("caches", {}).get(args.target, {})
    check("metrics report warm request",
          caches.get("warm_requests", 0) >= 1, json.dumps(caches))

    if failures:
        print(f"SMOKE FAILED: {', '.join(failures)}", flush=True)
        return 1
    print("SMOKE OK", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
