"""repro — High-Level Test Generation for Design Verification of Pipelined
Microprocessors.

A from-scratch Python reproduction of Van Campenhout, Mudge & Hayes
(DAC 1999): a structured processor model (word-level datapath + bit-level
controller with primary/secondary/tertiary signal classification), the
pipeframe search organization, and the three-part test generation algorithm
(DPTRACE path selection, DPRELAX discrete-relaxation value selection,
CTRLJUST controller justification), evaluated on a five-stage pipelined DLX
against bus single-stuck-line design errors.

Quick start::

    from repro import build_dlx, TestGenerator, BusSSLError

    dlx = build_dlx()
    tg = TestGenerator(dlx)
    result = tg.generate(BusSSLError("alu_add.y", 0, 0))
    assert result.status.value == "detected"
"""

from repro.campaign import (
    CampaignOrchestrator,
    CampaignReport,
    DlxCampaign,
    MiniCampaign,
    OrchestratorConfig,
)
from repro.core.tg import TestCase, TestGenerator, TGResult, TGStatus
from repro.datapath import DatapathBuilder, DatapathSimulator, Netlist
from repro.dlx import build_dlx
from repro.errors import (
    BusOrderError,
    BusSSLError,
    ModuleSubstitutionError,
    enumerate_boe,
    enumerate_bus_ssl,
    enumerate_mse,
)
from repro.mini import build_minipipe
from repro.model.processor import Processor
from repro.verify import ProcessorSimulator

__version__ = "1.0.0"

__all__ = [
    "BusOrderError",
    "BusSSLError",
    "CampaignOrchestrator",
    "CampaignReport",
    "DatapathBuilder",
    "DatapathSimulator",
    "DlxCampaign",
    "MiniCampaign",
    "ModuleSubstitutionError",
    "Netlist",
    "OrchestratorConfig",
    "Processor",
    "ProcessorSimulator",
    "TGResult",
    "TGStatus",
    "TestCase",
    "TestGenerator",
    "build_dlx",
    "build_minipipe",
    "enumerate_boe",
    "enumerate_bus_ssl",
    "enumerate_mse",
]
