"""Conflict-driven clause learning for CTRLJUST: refute, don't exhaust.

The chronological PODEM search in :mod:`repro.core.ctrljust` spends almost
all of its budget on *unjustifiable* objective sets: a doomed window is
only abandoned after the whole variant/backtrack budget (or the per-error
deadline) is burned.  This module adds the standard SAT machinery that
turns those give-ups into millisecond *proofs*:

* :class:`CdclRefuter` — a conflict-driven search over the **external**
  (CPI/STS) signals in the fanin cone of the objectives, run as a
  refutation-first probe before the chronological search.  Objectives are
  level-0 assumptions (driven objectives are cut exactly like CTRLJUST's
  CTI overrides, so the :class:`ImplicationSession` classifies them
  justified/conflicting for free).  Each session conflict is explained by
  walking the implication graph (the session's fixpoint invariant makes
  the graph implicit — see ``ImplicationSession.antecedent_literals``),
  a **1-UIP** conflict no-good is derived (:func:`one_uip`), the search
  **backjumps** to its assertion level, and the clause prunes the rest of
  the run.  A conflict at decision level 0 closes the proof: expanding
  the remaining forced literals yields a subset of the objectives — an
  unsatisfiable **core** — and the question is refuted outright.

* :class:`ClauseDB` — the persistent store of those cores.  A core is an
  *unjustifiability certificate*: any later objective set that contains
  it (same window size, absolute frames) is unjustifiable without any
  search at all, which generalizes the exact-match
  :class:`~repro.core.nogoods.LearnedNogoods` keys to whole families of
  objective supersets.  Certificates are indexed by a witness literal for
  subset lookup, bounded by a deterministic size/LBD eviction policy,
  shipped between orchestrator workers as frame-offset-normalized records
  (``repro.campaign.serialize``), and kept warm across campaign-service
  requests (``repro.service.cache``).

Soundness and transparency contract (enforced by differential tests):

* The refuter only ever *fails* a question — a completed UNSAT proof is a
  FAILURE the chronological search would also reach, and SAT or
  budget-exhausted probes fall through to the unchanged chronological
  search.  Detected/aborted outcomes are therefore byte-identical with
  learning on or off; only effort counters move.
* Within one run the refuter is a pure function of the question: learned
  clauses start empty per run and certificates are consulted *before*
  the search, never during it — so whether a question refutes does not
  depend on mutable cross-question state, which keeps the PR-5 no-good
  on/off counter identity intact.
* Deadline-tainted probes (``deadline_hit``) never store certificates,
  mirroring the PathCache taint rule.
* :class:`SearchActivity` is the one deliberate exception to purity: with
  ``restarts`` enabled the chronological search orders decisions by
  cross-question EVSIDS scores, so its *effort* (not its verdicts) depends
  on what ran before.  That is why restart mode is opt-in and the
  knobs-off paths never consult the store.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.controller.implication import ImplicationSession

#: ((frame, name), value) literals, the cross-run certificate alphabet
#: (same shape as the no-good keys in :mod:`repro.core.nogoods`).
CertItems = tuple[tuple[tuple[int, str], int], ...]


# ----------------------------------------------------------------------
# 1-UIP derivation (pure; unit-tested directly)
# ----------------------------------------------------------------------
def one_uip(ext_lits, obj_lits, level_of, pos_of, reason_of):
    """Resolve a conflicting literal set down to its 1-UIP no-good.

    ``ext_lits`` maps external var id -> assigned value for the conflict's
    external antecedents; ``obj_lits`` is the set of (id, value) objective
    assumptions already implicated.  ``level_of`` / ``pos_of`` give each
    external's decision level and trail position, and ``reason_of`` maps a
    *forced* external to its reason ``(ext_lits_tuple, obj_lits_frozenset)``
    (decisions map to ``None``).

    Returns ``(learned_ext, learned_obj, assertion_level)``:

    * at a conflict level > 0: ``learned_ext`` keeps exactly one literal —
      the first unique implication point — at the conflict level, plus
      every lower-level literal, ordered (level, position);
    * at conflict level 0 every external is forced, so resolution runs to
      the empty external set: ``learned_ext == ()`` and ``learned_obj`` is
      an unsatisfiable **core** of the objective assumptions.
    """
    lits = dict(ext_lits)
    obj = set(obj_lits)
    if not lits:
        return (), frozenset(obj), 0
    conflict_level = max(level_of[v] for v in lits)
    if conflict_level == 0:
        while lits:
            var = max(lits, key=lambda v: pos_of[v])
            r_ext, r_obj = reason_of[var]
            del lits[var]
            obj |= r_obj
            for v, value in r_ext:
                if v != var:
                    lits[v] = value
        return (), frozenset(obj), 0
    while True:
        at_level = [v for v in lits if level_of[v] == conflict_level]
        if len(at_level) <= 1:
            break
        # The decision is first on its level, so with >1 literal at the
        # conflict level the latest one is always forced (has a reason).
        var = max(at_level, key=lambda v: pos_of[v])
        r_ext, r_obj = reason_of[var]
        del lits[var]
        obj |= r_obj
        for v, value in r_ext:
            if v != var and v not in lits:
                lits[v] = value
    learned = tuple(sorted(
        lits.items(), key=lambda kv: (level_of[kv[0]], pos_of[kv[0]])
    ))
    assertion = max(
        (level_of[v] for v in lits if level_of[v] < conflict_level),
        default=0,
    )
    return learned, frozenset(obj), assertion


@dataclass
class Refutation:
    """Outcome of one :class:`CdclRefuter` run."""

    refuted: bool = False
    #: Unsatisfiable subset of the objectives, as (instance, value) pairs;
    #: only set when ``refuted``.
    core: tuple = ()
    #: LBD of the closing conflict (1 for an assumption core).
    lbd: int = 1
    conflicts: int = 0
    learned: int = 0
    backjumps: int = 0
    #: Luby restarts taken (restart-scheduled probes only; always 0 with
    #: ``restart_unit=0``).  Learned clauses survive every restart.
    restarts: int = 0
    #: The probe hit the caller's deadline: never learn from it.
    deadline_hit: bool = False


class CdclRefuter:
    """One refutation probe for one CTRLJUST justification question.

    Decision variables are the external signals in the fanin cone of the
    objectives; multi-valued domains are handled by per-variable forbidden
    sets (a learned no-good forbids one value, and when all but one value
    of a domain is forbidden the remainder is forced with the forbidding
    clauses as its combined reason).
    """

    def __init__(
        self,
        network,
        objectives,
        conflict_limit: int = 400,
        deadline: float | None = None,
        restart_unit: int = 0,
    ) -> None:
        self.compiled = network.compiled()
        self.objectives = list(objectives)
        self.conflict_limit = conflict_limit
        self.deadline = deadline
        #: Conflicts per Luby unit; 0 disables restart scheduling.  With
        #: restarts on, the probe unwinds to the assumptions after
        #: ``restart_unit * luby(k)`` conflicts while KEEPING every
        #: learned clause (and the variable activity it carries), so each
        #: epoch resumes against a stronger clause set — the standard SAT
        #: discipline that lets one large conflict budget close proofs a
        #: single monolithic descent thrashes on.
        self.restart_unit = restart_unit
        self._restart_index = 1
        self._restarted_at = 0
        self.session = ImplicationSession(self.compiled)
        index = self.compiled.index
        #: (id, value) objective literals; driven ones are session cuts.
        self.obj_lit_of: dict[int, int] = {}
        self.override_ids: set[int] = set()
        self._obj_ids = [index[inst] for inst, _ in self.objectives]
        # Decision variables: externals in the objectives' fanin cone.
        cone_exts: set[int] = set()
        seen: set[int] = set(self._obj_ids)
        stack = list(self._obj_ids)
        inputs_of = self.compiled.inputs_of
        is_driven = self.compiled.is_driven
        while stack:
            out = stack.pop()
            if is_driven[out]:
                for i in inputs_of[out]:
                    if i not in seen:
                        seen.add(i)
                        stack.append(i)
            else:
                cone_exts.add(out)
        self.decision_vars = sorted(cone_exts)
        # Goal-directed decision order: externals ranked by breadth-first
        # distance from the objectives.  The conflicts that close a
        # refutation live near the objectives, so deciding goal-near
        # variables first concentrates the learned clauses on the core
        # instead of wandering the far end of the cone.
        rank: dict[int, int] = {}
        order = deque(self._obj_ids)
        ranked: set[int] = set(self._obj_ids)
        next_rank = 0
        while order:
            out = order.popleft()
            if is_driven[out]:
                for i in inputs_of[out]:
                    if i not in ranked:
                        ranked.add(i)
                        order.append(i)
            elif out not in rank:
                rank[out] = next_rank
                next_rank += 1
        self._rank = rank
        # Assignment state.
        self.assigns: dict[int, int] = {}
        self.level_of: dict[int, int] = {}
        self.pos_of: dict[int, int] = {}
        self.reason_of: dict[int, tuple | None] = {}
        self._pos = 0
        #: Per level: (assigned var list, applied forbid list).
        self.levels: list[tuple[list[int], list[tuple[int, int]]]] = [
            ([], [])
        ]
        self.forbidden: dict[int, dict[int, tuple]] = {}
        #: Learned within-run clauses as (ext_lits, obj_lits); indexed by
        #: every external variable they mention (evaluate-on-touch).
        self.clauses: list[tuple] = []
        self.watch: dict[int, list[int]] = {}
        self.activity: dict[int, int] = {}
        self.stats = Refutation()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> Refutation:
        conflict = self._assume_objectives()
        while True:
            if conflict is not None:
                self.stats.conflicts += 1
                if self._past_deadline():
                    self.stats.deadline_hit = True
                    return self.stats
                if self.stats.conflicts > self.conflict_limit:
                    return self.stats
                conflict = self._resolve_conflict(conflict)
                if self.stats.refuted:
                    return self.stats
                if (
                    conflict is None
                    and self.restart_unit
                    and self.stats.conflicts - self._restarted_at
                    >= self.restart_unit * luby(self._restart_index)
                ):
                    # Luby restart: back to the level-0 assumptions.  The
                    # learned clauses stay in ``self.clauses``/``watch``
                    # and keep pruning, and ``self.activity`` keeps its
                    # bumps, so the next epoch decides differently.
                    self._backjump(0)
                    self.stats.restarts += 1
                    self._restart_index += 1
                    self._restarted_at = self.stats.conflicts
                continue
            if self._satisfied():
                return self.stats  # a model exists: nothing to refute
            var = self._pick_variable()
            if var is None:
                return self.stats  # cannot decide further: give up
            if (
                self.stats.conflicts % 16 == 0
                and self._past_deadline()
            ):
                self.stats.deadline_hit = True
                return self.stats
            value = self._pick_value(var)
            self.levels.append(([], []))
            conflict = self._assign(var, value, None)

    # ------------------------------------------------------------------
    # Level-0 assumptions
    # ------------------------------------------------------------------
    def _assume_objectives(self):
        index = self.compiled.index
        is_driven = self.compiled.is_driven
        for inst, want in self.objectives:
            out = index[inst]
            self.obj_lit_of[out] = want
            if is_driven[out]:
                self.override_ids.add(out)
                self.session.assume(inst, want)
                if self.session.has_conflict:
                    return self._session_conflict()
            else:
                # An external objective is a forced level-0 assignment
                # whose reason is the assumption itself.
                reason = ((), frozenset({(out, want)}))
                conflict = self._assign(out, want, reason)
                if conflict is not None:
                    return conflict
        return None

    # ------------------------------------------------------------------
    # Assignment, clause propagation, forbidden-value forcing
    # ------------------------------------------------------------------
    def _assign(self, var: int, value: int, reason):
        """Assign external ``var``; returns a conflict or ``None``.

        A conflict is ``(ext_lits_dict, obj_lits_set)`` — the no-good that
        just fired.  Propagation is a worklist over the learned clauses
        touching each newly assigned variable; the session's own cone
        propagation runs inside ``assume`` and is checked first.
        """
        pending = [(var, value, reason)]
        while pending:
            var, value, reason = pending.pop()
            if var in self.assigns:
                if self.assigns[var] == value:
                    continue
                # Forced to two different values: both reasons conflict.
                ext = dict(reason[0]) if reason else {}
                ext.pop(var, None)
                prior = self.reason_of.get(var)
                if prior:
                    for v, val in prior[0]:
                        if v != var:
                            ext[v] = val
                obj = set(reason[1]) if reason else set()
                if prior:
                    obj |= prior[1]
                ext[var] = self.assigns[var]
                return ext, obj
            self.assigns[var] = value
            level = len(self.levels) - 1
            self.level_of[var] = level
            self.pos_of[var] = self._pos
            self._pos += 1
            self.reason_of[var] = reason
            self.levels[-1][0].append(var)
            self.session.assume(self.compiled.names[var], value)
            if self.session.has_conflict:
                return self._session_conflict()
            for ci in self.watch.get(var, ()):
                verdict = self._clause_verdict(self.clauses[ci])
                if verdict is None:
                    continue
                kind, payload = verdict
                if kind == "conflict":
                    return payload
                forced = self._forbid(payload[0], payload[1],
                                      self.clauses[ci])
                if forced is None:
                    continue
                if forced[0] == "conflict":
                    return forced[1]
                pending.append(forced[1])
        return None

    def _clause_verdict(self, clause):
        """Evaluate a no-good against the current assignment.

        Returns ``None`` (dormant or can no longer fire), ``("conflict",
        lits)`` when every literal matches, or ``("unit", (var, value))``
        when exactly one external literal is unassigned.
        """
        ext_lits, obj_lits = clause
        unassigned = None
        for var, value in ext_lits:
            got = self.assigns.get(var)
            if got is None:
                if unassigned is not None:
                    return None
                unassigned = (var, value)
            elif got != value:
                return None
        if unassigned is None:
            return "conflict", (dict(ext_lits), set(obj_lits))
        return "unit", unassigned

    def _forbid(self, var: int, value: int, clause):
        """Forbid ``value`` for unassigned ``var`` (no-good ``clause``).

        Returns ``None``, ``("assign", (var, forced_value, reason))`` when
        the domain collapses to one value, or ``("conflict", lits)`` when
        it wipes out.
        """
        got = self.assigns.get(var)
        if got is not None:
            if got == value:
                return "conflict", (dict(clause[0]), set(clause[1]))
            return None
        per_var = self.forbidden.setdefault(var, {})
        if value in per_var:
            return None
        per_var[value] = clause
        self.levels[-1][1].append((var, value))
        allowed = [
            v for v in self.compiled.domains[var] if v not in per_var
        ]
        if allowed and len(allowed) > 1:
            return None
        # Combine the forbidding clauses of every ruled-out value.
        ext: dict[int, int] = {}
        obj: set = set()
        for ruled_out, source in per_var.items():
            for v, val in source[0]:
                if v != var:
                    ext[v] = val
            obj |= source[1]
        if not allowed:
            return "conflict", (ext, obj)
        reason = (tuple(sorted(ext.items())), frozenset(obj))
        return "assign", (var, allowed[0], reason)

    # ------------------------------------------------------------------
    # Conflict analysis and backjumping
    # ------------------------------------------------------------------
    def _session_conflict(self):
        """Explain a session conflict as (ext lits, objective lits).

        The conflicting objective's cone computed a concrete value other
        than the assumption; walking antecedents through the implicit
        implication graph bottoms out at assigned externals and at other
        objective cuts (whose decided value feeds the cone).
        """
        cid = min(self.session.conflicting_ids)
        ext: dict[int, int] = {}
        obj: set = {(cid, self.obj_lit_of[cid])}
        seen: set[int] = set()
        stack = [i for i, _ in self.session.antecedent_literals(cid)]
        values = self.session.values
        is_driven = self.compiled.is_driven
        while stack:
            i = stack.pop()
            if i in seen or values[i] is None:
                continue
            seen.add(i)
            if not is_driven[i]:
                if i in self.assigns:
                    ext[i] = self.assigns[i]
            elif i in self.override_ids:
                obj.add((i, self.obj_lit_of[i]))
            else:
                stack.extend(
                    j for j, _ in self.session.antecedent_literals(i)
                )
        return ext, obj

    def _resolve_conflict(self, conflict):
        """Learn from one conflict; returns a follow-up conflict or None."""
        ext_lits, obj_lits = conflict
        learned_ext, learned_obj, assertion = one_uip(
            ext_lits, obj_lits, self.level_of, self.pos_of, self.reason_of
        )
        if not learned_ext:
            self.stats.refuted = True
            names = self.compiled.names
            self.stats.core = tuple(sorted(
                (names[i], value) for i, value in learned_obj
            ))
            self.stats.lbd = 1
            return None
        levels = {self.level_of[v] for v, _ in learned_ext}
        self.stats.lbd = max(1, len(levels))
        clause = (learned_ext, learned_obj)
        ci = len(self.clauses)
        self.clauses.append(clause)
        self.stats.learned += 1
        for var, _ in learned_ext:
            self.watch.setdefault(var, []).append(ci)
            self.activity[var] = self.activity.get(var, 0) + 1
        conflict_level = len(self.levels) - 1
        if conflict_level - assertion > 1:
            self.stats.backjumps += 1
        self._backjump(assertion)
        # The clause is asserting at its backjump level: every literal but
        # the UIP (the deepest entry of the (level, pos)-sorted clause,
        # unassigned after the jump) still matches — forbid its value now.
        uip_var, uip_value = learned_ext[-1]
        forced = self._forbid(uip_var, uip_value, clause)
        if forced is None:
            return None
        if forced[0] == "conflict":
            return forced[1]
        return self._assign(*forced[1])

    def _backjump(self, to_level: int) -> None:
        while len(self.levels) - 1 > to_level:
            assigned, forbids = self.levels.pop()
            for var, value in reversed(forbids):
                del self.forbidden[var][value]
            for var in reversed(assigned):
                self.session.retract()
                del self.assigns[var]
                del self.level_of[var]
                del self.pos_of[var]
                del self.reason_of[var]

    # ------------------------------------------------------------------
    # Heuristics and termination checks
    # ------------------------------------------------------------------
    def _satisfied(self) -> bool:
        justified = self.session.justified_ids
        return all(out in justified for out in self.override_ids)

    def _pick_variable(self):
        """Highest-activity unassigned external; goal-near wins ties."""
        best = None
        best_key = None
        activity = self.activity
        rank = self._rank
        far = 1 << 30
        for var in self.decision_vars:
            if var in self.assigns:
                continue
            key = (-activity.get(var, 0), rank.get(var, far))
            if best_key is None or key < best_key:
                best, best_key = var, key
        return best

    def _pick_value(self, var: int) -> int:
        per_var = self.forbidden.get(var, ())
        for value in self.compiled.domains[var]:
            if value not in per_var:
                return value
        # Unreachable: a wiped domain conflicts inside _forbid first.
        return self.compiled.domains[var][0]

    def _past_deadline(self) -> bool:
        return (
            self.deadline is not None
            and time.process_time() > self.deadline
        )


# ----------------------------------------------------------------------
# Restart schedule and activity state (the chronological search's side)
# ----------------------------------------------------------------------
def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... — the universally
    optimal schedule for restarting a Las Vegas search with unknown
    runtime distribution (Luby, Sinclair, Zuckerman 1993).  The
    chronological CTRLJUST search multiplies this by its restart unit to
    pace Luby restarts.
    """
    if i < 1:
        raise ValueError("luby index is 1-based")
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class ActivityRun:
    """One search's working copy of a :class:`SearchActivity` store.

    The chronological search bumps and decays on this private copy; the
    caller commits it back to the shared store only when the run was not
    deadline-tainted (the restart-taint rule: a run cut short by its CPU
    budget never teaches the shared ordering, mirroring
    ``LearnedNogoods.record_blame``).
    """

    #: EVSIDS geometric decay: each conflict's increment grows by 1/DECAY,
    #: which is equivalent to decaying every existing score.
    DECAY = 0.95
    RESCALE = 1e100

    __slots__ = ("scores", "phases", "inc", "touched", "bumps")

    def __init__(self, store: "SearchActivity") -> None:
        self.scores = dict(store.scores)
        self.phases = dict(store.phases)
        self.inc = store.inc
        self.touched: set[str] = set()
        self.bumps = 0

    def bump(self, name: str) -> None:
        score = self.scores.get(name, 0.0) + self.inc
        self.scores[name] = score
        self.touched.add(name)
        self.bumps += 1
        if score > self.RESCALE:
            scale = 1.0 / self.RESCALE
            self.scores = {k: v * scale for k, v in self.scores.items()}
            self.inc *= scale

    def decay(self) -> None:
        self.inc /= self.DECAY

    def score(self, name: str) -> float:
        return self.scores.get(name, 0.0)

    def save_phase(self, name: str, value: int) -> None:
        self.phases[name] = value
        self.touched.add(name)

    def phase(self, name: str):
        return self.phases.get(name)


@dataclass
class SearchActivity:
    """Cross-question EVSIDS activity scores and saved phases.

    Keys are frame-collapsed *base* signal names (``alu_op``, not
    ``f2.alu_op``), so what one window learns about a signal's conflict
    involvement transfers to every other window — and pooling snapshots
    across orchestrator workers needs no frame normalization at all.

    Lives on :class:`~repro.core.tg.TestGenerator` next to the no-good
    and clause stores, and follows the same export/merge transport idiom
    (:meth:`export_records` drains a fresh set; merged foreign records
    never re-export).  Unlike those stores this one is *not*
    outcome-transparent — it deliberately reorders the restart-capable
    search — which is why everything it feeds sits behind the
    ``restarts`` knob, off by default.
    """

    scores: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    inc: float = 1.0
    bumps: int = 0
    merged: int = 0
    _fresh: set = field(default_factory=set)

    def begin(self) -> ActivityRun:
        return ActivityRun(self)

    def commit(self, run: ActivityRun) -> None:
        """Adopt a (non-tainted) run's working copy wholesale."""
        self.scores = run.scores
        self.phases = run.phases
        self.inc = run.inc
        self.bumps += run.bumps
        self._fresh |= run.touched

    def __len__(self) -> int:
        return len(self.scores)

    def stats(self) -> dict[str, int]:
        """Occupancy/traffic counters (read by the campaign service)."""
        return {
            "signals": len(self.scores),
            "bumps": self.bumps,
            "merged": self.merged,
        }

    # ------------------------------------------------------------------
    # Worker pooling (orchestrator transport; see serialize.py)
    # ------------------------------------------------------------------
    def export_records(self) -> list:
        """Signals touched since the last export, as ``(name, score,
        phase_or_None)`` tuples sorted by name (canonical order)."""
        fresh, self._fresh = self._fresh, set()
        return [
            (name, self.scores.get(name, 0.0), self.phases.get(name))
            for name in sorted(fresh)
        ]

    def all_records(self) -> list:
        """Every signal's snapshot, for seeding a fresh worker."""
        return [
            (name, self.scores.get(name, 0.0), self.phases.get(name))
            for name in sorted(set(self.scores) | set(self.phases))
        ]

    def merge_records(self, records) -> int:
        """Fold foreign snapshots in: scores max-merge (both sides'
        evidence survives), phases overwrite (freshest hint wins).
        Merged entries never re-export (the coordinator is the hub)."""
        changed = 0
        for name, score, phase in records:
            if score > self.scores.get(name, 0.0):
                self.scores[name] = score
                changed += 1
            if phase is not None and self.phases.get(name) != phase:
                self.phases[name] = phase
                changed += 1
        self.merged += changed
        return changed


# ----------------------------------------------------------------------
# Persistent certificate database
# ----------------------------------------------------------------------
@dataclass
class ClauseDB:
    """Cross-run store of unjustifiability certificates.

    A certificate is the final conflict clause of a completed refutation:
    a subset of the objective assumptions (absolute ``(frame, name)``
    literals, keyed by window size) that is unjustifiable on its own.  Any
    justification question whose objective set is a *superset* of a
    stored certificate is refuted instantly — subsumption lookup replaces
    the exact-match blame keys' whole-set comparison.

    Lookup walks the query's literals and checks only certificates
    *witnessed* by that literal (each certificate is indexed under its
    smallest literal), so the cost is proportional to the query size, not
    the store size — the watched-literal scheme adapted to subset tests.

    ``lookup(..., transfer=True)`` additionally matches certificates
    proven at a *different* window size.  Time-frame expansion is causal:
    frame ``k`` of an ``n``-frame unrolling is the identical network (and
    reset state) as frame ``k`` of any other unrolling that reaches frame
    ``k``, and later frames never constrain earlier ones — so a set of
    objectives confined to frames ``< n`` is justifiable in an ``n``-frame
    window iff it is justifiable in any other window containing those
    frames.  A core proven anywhere therefore refutes supersets at every
    window size that spans its frames.  The knobs-off callers never pass
    ``transfer`` (the restart knob gates it), keeping their lookup —
    and with it every knobs-off artifact — byte-identical.

    Eviction is deterministic (worst ``(lbd, size)`` first, oldest among
    ties) and ignores hit recency on purpose: the store's contents must be
    a pure function of the insertion sequence so differential arms that
    skip redundant recomputation still converge to identical databases.
    """

    max_certs: int = 4096

    #: (n_frames, frozenset(items)) -> (size, lbd, seq).
    _certs: dict = field(default_factory=dict)
    #: (n_frames, witness item) -> [cert key, ...] in insertion order.
    _witness: dict = field(default_factory=dict)
    #: witness item -> [cert key, ...] across window sizes, for
    #: ``transfer`` lookups; maintained in step with ``_witness``.
    _any_witness: dict = field(default_factory=dict)
    _fresh: list = field(default_factory=list)
    _seq: int = 0

    hits: int = 0
    misses: int = 0
    added: int = 0
    evicted: int = 0

    def __len__(self) -> int:
        return len(self._certs)

    def stats(self) -> dict[str, int]:
        """Hit/miss/occupancy counters (read by the campaign service)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "records": len(self._certs),
            "added": self.added,
            "evicted": self.evicted,
        }

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def lookup(self, n_frames: int, items: CertItems,
               transfer: bool = False):
        """The first stored certificate subsumed by ``items``, or None.

        ``transfer=True`` also matches certificates proven at other
        window sizes whose literal frames all fit inside ``n_frames``
        (sound by causality — see the class docstring); restart-mode
        callers only.
        """
        query = frozenset(items)
        for lit in sorted(query):
            for key in self._witness.get((n_frames, lit), ()):
                _, cert = key
                if cert <= query:
                    self.hits += 1
                    return cert
            if not transfer:
                continue
            for key in self._any_witness.get(lit, ()):
                cert_frames, cert = key
                if cert_frames == n_frames:
                    continue  # same-window bucket already checked
                if cert <= query and all(
                    frame < n_frames for (frame, _), _ in cert
                ):
                    self.hits += 1
                    return cert
        self.misses += 1
        return None

    def add(self, n_frames: int, items: CertItems, lbd: int = 1) -> bool:
        """Store one certificate; idempotent; returns True when new."""
        if not items:
            return False
        cert = frozenset(items)
        key = (n_frames, cert)
        if key in self._certs:
            return False
        self._certs[key] = (len(cert), lbd, self._seq)
        self._seq += 1
        self._witness.setdefault((n_frames, min(cert)), []).append(key)
        self._any_witness.setdefault(min(cert), []).append(key)
        self._fresh.append(key)
        self.added += 1
        while len(self._certs) > self.max_certs:
            self._evict_one()
        return True

    def _evict_one(self) -> None:
        worst = max(
            self._certs.items(),
            key=lambda kv: (kv[1][1], kv[1][0], -kv[1][2]),
        )[0]
        del self._certs[worst]
        n_frames, cert = worst
        bucket = self._witness.get((n_frames, min(cert)))
        if bucket:
            bucket.remove(worst)
            if not bucket:
                del self._witness[(n_frames, min(cert))]
        bucket = self._any_witness.get(min(cert))
        if bucket:
            bucket.remove(worst)
            if not bucket:
                del self._any_witness[min(cert)]
        self.evicted += 1

    # ------------------------------------------------------------------
    # Worker pooling (orchestrator transport; see serialize.py)
    # ------------------------------------------------------------------
    def export_records(self) -> list:
        """Certificates learned since the last export, as plain tuples
        ``(n_frames, sorted items, lbd)``."""
        fresh, self._fresh = self._fresh, []
        out = []
        for key in fresh:
            meta = self._certs.get(key)
            if meta is None:
                continue  # evicted before it was ever exported
            n_frames, cert = key
            out.append((n_frames, tuple(sorted(cert)), meta[1]))
        return out

    def all_records(self) -> list:
        """Every certificate, for seeding a fresh worker."""
        return [
            (n_frames, tuple(sorted(cert)), meta[1])
            for (n_frames, cert), meta in self._certs.items()
        ]

    def merge_records(self, records) -> int:
        """Fold foreign records in; returns how many were new.  Merged
        entries do not re-export (the coordinator is the fan-out hub)."""
        added = 0
        for n_frames, items, lbd in records:
            key = (n_frames, frozenset(items))
            if key in self._certs:
                continue
            self._certs[key] = (len(key[1]), lbd, self._seq)
            self._seq += 1
            self._witness.setdefault(
                (n_frames, min(key[1])), []
            ).append(key)
            self._any_witness.setdefault(min(key[1]), []).append(key)
            self.added += 1
            added += 1
            while len(self._certs) > self.max_certs:
                self._evict_one()
        return added
