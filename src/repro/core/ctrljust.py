"""CTRLJUST: justification of CTRL objectives in the controller (V.C).

Given objectives ``(c_i, v_i)`` on CTRL signal instances of the unrolled
controller (produced by DPTRACE) CTRLJUST determines an input sequence —
values for the CPI and STS signals of each timeframe, starting from the
controller's reset state — that satisfies every objective.

It is a PODEM-based branch-and-bound whose decision variables are the CPI,
CTI and STS signal instances (the pipeframe organization of Section IV):

* CPI and STS instances are external signals: deciding them is a plain
  assignment.
* CTI instances are *driven* signals that we cut: deciding one lets
  implication proceed through its consumers immediately, and adds the
  decided value to the J-frontier — the driving cone must eventually
  compute the same value, which the implication sweep checks (justified /
  conflicting classification).

Implication runs, by default, on the event-driven
:class:`~repro.controller.implication.ImplicationSession`: each decision
``assume``\\ s one signal and propagates only through its fanout cone, and
each backtrack ``retract``\\ s in O(changed) off the trail — instead of
re-sweeping the whole unrolled network per decision.  Constructing the
engine with ``incremental=False`` selects the original full-sweep
implication (``ControlNetwork.consistency``), kept as the reference
oracle; both paths share the identical search loop, so their decisions,
backtracks and outcomes are bit-identical.

The backtrace walks each node's ``backtrace_options`` (memoized in the
compiled network) until it reaches an open decision variable.  STS
decisions are returned to the caller: the datapath (DPRELAX) must justify
them.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.controller.implication import ImplicationSession
from repro.controller.pipeline import UnrolledController
from repro.controller.signals import SignalKind


class JustStatus(enum.Enum):
    SUCCESS = "success"
    FAILURE = "failure"


@dataclass
class JustDecision:
    """One CTRLJUST decision with untried alternative values."""

    signal: str  # instance name
    value: int
    alternatives: list[int]
    is_cti: bool


@dataclass
class JustResult:
    """Outcome of a justification run."""

    status: JustStatus
    assignment: dict[str, int] = field(default_factory=dict)  # CPI/STS insts
    cti_values: dict[str, int] = field(default_factory=dict)
    implied: dict[str, int | None] = field(default_factory=dict)
    backtracks: int = 0
    decisions: int = 0
    #: The search was cut short by the caller's deadline: the FAILURE is
    #: time-bound, not a proof — never cache or learn from it.
    deadline_hit: bool = False

    def sts_requirements(
        self, unrolled: UnrolledController
    ) -> list[tuple[int, str, int]]:
        """(frame, signal, value) triples the datapath must justify."""
        out = []
        for inst, value in self.assignment.items():
            frame, name = unrolled.frame_and_signal(inst)
            if unrolled.controller.network.signal(name).kind is SignalKind.STS:
                out.append((frame, name, value))
        return out

    def cpi_sequence(
        self, unrolled: UnrolledController, defaults: dict[str, int]
    ) -> list[dict[str, int]]:
        """Per-frame CPI assignments, filling gaps from ``defaults``."""
        frames: list[dict[str, int]] = []
        for frame in range(unrolled.n_frames):
            frame_values = {}
            for name in unrolled.controller.cpi_signals:
                inst = unrolled.instance(frame, name)
                if inst in self.assignment:
                    frame_values[name] = self.assignment[inst]
                elif self.implied.get(inst) is not None:
                    frame_values[name] = self.implied[inst]
                else:
                    frame_values[name] = defaults.get(name, 0)
            frames.append(frame_values)
        return frames

    def ctrl_values(
        self, unrolled: UnrolledController
    ) -> dict[tuple[int, str], int]:
        """Concrete implied CTRL values, keyed (frame, signal)."""
        out: dict[tuple[int, str], int] = {}
        for name in unrolled.controller.ctrl_signals:
            for frame in range(unrolled.n_frames):
                value = self.implied.get(unrolled.instance(frame, name))
                if value is not None:
                    out[(frame, name)] = value
        return out


class _IncrementalState:
    """Implication backend over an event-driven session (the default)."""

    def __init__(self, compiled, base_assignment) -> None:
        self.session = ImplicationSession(compiled, base_assignment)
        #: The session doubles as the value mapping (``.get`` by name).
        self.values = self.session

    def refresh(self) -> None:
        pass  # state is maintained eagerly by assume/retract

    @property
    def has_conflict(self) -> bool:
        return self.session.has_conflict

    def is_justified(self, name: str) -> bool:
        return self.session.is_justified(name)

    def assume(self, name: str, value: int) -> None:
        self.session.assume(name, value)

    def retract(self) -> None:
        self.session.retract()

    def snapshot(self) -> dict[str, int | None]:
        return self.session.snapshot()


class _FullSweepState:
    """Reference implication backend: one full consistency sweep per query.

    Reads the same ``assignment`` / ``cti_values`` dicts the search loop
    mutates, so ``assume`` / ``retract`` have nothing to do.
    """

    def __init__(self, network, assignment, cti_values) -> None:
        self.network = network
        self.assignment = assignment
        self.cti_values = cti_values
        self.values: dict[str, int | None] = {}
        self._justified: set[str] = set()
        self.has_conflict = False

    def refresh(self) -> None:
        values, justified, conflicting = self.network.consistency(
            self.assignment, self.cti_values
        )
        self.values = values
        self._justified = set(justified)
        self.has_conflict = bool(conflicting)

    def is_justified(self, name: str) -> bool:
        return name in self._justified

    def assume(self, name: str, value: int) -> None:
        pass

    def retract(self) -> None:
        pass

    def snapshot(self) -> dict[str, int | None]:
        return self.values


class CtrlJust:
    """PODEM justification engine over an unrolled controller."""

    def __init__(
        self,
        unrolled: UnrolledController,
        max_backtracks: int = 1000,
        variant: int = 0,
        incremental: bool = True,
        deadline: float | None = None,
    ) -> None:
        self.unrolled = unrolled
        self.network = unrolled.network
        self.max_backtracks = max_backtracks
        #: Event-driven implication (default) vs the full-sweep oracle.
        self.incremental = incremental
        #: Absolute ``time.process_time()`` budget; the search returns a
        #: (non-cacheable) FAILURE promptly once it passes.
        self.deadline = deadline
        #: Diversification index: rotates backtrace option order so retries
        #: explore different (equally valid) justifications, e.g. a
        #: different store opcode for the same memwrite objective.
        self.variant = variant
        ctl = unrolled.controller
        self._decidable: set[str] = set()
        self._cti: set[str] = set()
        for frame in range(unrolled.n_frames):
            for name in ctl.cpi_signals + ctl.sts_signals:
                self._decidable.add(unrolled.instance(frame, name))
            for name in ctl.cti_signals:
                inst = unrolled.instance(frame, name)
                self._decidable.add(inst)
                self._cti.add(inst)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def justify(
        self,
        objectives: list[tuple[str, int]],
        pre_assignment: dict[str, int] | None = None,
    ) -> JustResult:
        """Satisfy all (instance, value) objectives from the reset state."""
        for inst, value in objectives:
            signal = self.network.signal(inst)
            signal.validate_value(value)
        assignment: dict[str, int] = dict(pre_assignment or {})
        cti_values: dict[str, int] = {}
        stack: list[JustDecision] = []
        backtracks = 0
        decision_count = 0
        if self.incremental:
            state = _IncrementalState(self.network.compiled(), assignment)
        else:
            state = _FullSweepState(self.network, assignment, cti_values)

        while True:
            if (
                self.deadline is not None
                and time.process_time() > self.deadline
            ):
                return JustResult(JustStatus.FAILURE, backtracks=backtracks,
                                  decisions=decision_count,
                                  deadline_hit=True)
            state.refresh()
            values = state.values
            conflict = state.has_conflict
            open_objectives: list[tuple[str, int]] = []
            if not conflict:
                for inst, want in objectives:
                    got = values.get(inst)
                    if got is None:
                        open_objectives.append((inst, want))
                    elif got != want:
                        conflict = True
                        break
            if not conflict:
                unjustified = [
                    (inst, cti_values[inst])
                    for inst in cti_values
                    if not state.is_justified(inst)
                ]
                if not open_objectives and not unjustified:
                    return JustResult(
                        JustStatus.SUCCESS,
                        assignment=dict(assignment),
                        cti_values=dict(cti_values),
                        implied=state.snapshot(),
                        backtracks=backtracks,
                        decisions=decision_count,
                    )
                # Select an objective and backtrace to a decision.
                decision = None
                for inst, want in open_objectives + unjustified:
                    decision = self._backtrace(inst, want, values, assignment,
                                               cti_values)
                    if decision is not None:
                        break
                if decision is not None:
                    self._apply(decision, assignment, cti_values, state)
                    stack.append(decision)
                    decision_count += 1
                    continue
                conflict = True  # no way to make progress
            # Backtrack.  The budget is enforced per unwind step, so one
            # exhausted deep stack cannot blow far past the limit before
            # the overrun is noticed.
            while stack:
                last = stack[-1]
                self._unapply(last, assignment, cti_values, state)
                backtracks += 1
                if backtracks > self.max_backtracks:
                    return JustResult(JustStatus.FAILURE,
                                      backtracks=backtracks,
                                      decisions=decision_count)
                if (
                    backtracks % 64 == 0
                    and self.deadline is not None
                    and time.process_time() > self.deadline
                ):
                    return JustResult(JustStatus.FAILURE,
                                      backtracks=backtracks,
                                      decisions=decision_count,
                                      deadline_hit=True)
                if last.alternatives:
                    last.value = last.alternatives.pop(0)
                    self._apply(last, assignment, cti_values, state)
                    break
                stack.pop()
            else:
                return JustResult(JustStatus.FAILURE, backtracks=backtracks,
                                  decisions=decision_count)

    # ------------------------------------------------------------------
    # Decision bookkeeping
    # ------------------------------------------------------------------
    def _apply(self, decision: JustDecision, assignment, cti_values,
               state) -> None:
        if decision.is_cti:
            cti_values[decision.signal] = decision.value
        else:
            assignment[decision.signal] = decision.value
        state.assume(decision.signal, decision.value)

    def _unapply(self, decision: JustDecision, assignment, cti_values,
                 state) -> None:
        if decision.is_cti:
            cti_values.pop(decision.signal, None)
        else:
            assignment.pop(decision.signal, None)
        state.retract()

    # ------------------------------------------------------------------
    # Backtrace
    # ------------------------------------------------------------------
    def _backtrace(
        self,
        inst: str,
        target: int,
        values,
        assignment: dict[str, int],
        cti_values: dict[str, int],
    ) -> JustDecision | None:
        """Walk from an objective to an open decision variable.

        Depth-first over each node's (memoized) ``backtrace_options``,
        with an explicit stack: unrolled networks produce walks deeper
        than Python's recursion limit.
        """
        compiled = self.network.compiled()
        drivers = self.network.drivers
        stack = [iter(((inst, target),))]
        while stack:
            entry = next(stack[-1], None)
            if entry is None:
                stack.pop()
                continue
            inst, target = entry
            if inst in self._decidable and self._open(
                inst, assignment, cti_values
            ):
                domain = self.network.signal(inst).domain
                if target not in domain:
                    continue  # infeasible: try the next option
                alternatives = [v for v in domain if v != target]
                return JustDecision(
                    inst, target, alternatives, is_cti=inst in self._cti
                )
            node = drivers.get(inst)
            if node is None:
                continue  # an already-assigned external: cannot help
            input_values = tuple(values.get(i) for i in node.inputs)
            options = compiled.backtrace_options(
                compiled.index[inst], target, input_values
            )
            if self.variant and len(options) > 1:
                shift = self.variant % len(options)
                options = options[shift:] + options[:shift]
            stack.append(
                iter([(node.inputs[index], want) for index, want in options])
            )
        return None

    def _open(self, inst: str, assignment, cti_values) -> bool:
        return inst not in assignment and inst not in cti_values
